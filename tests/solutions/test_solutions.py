"""Solution-level behaviour and cross-solution invariants."""

import pytest

from repro.energy import GALAXY_S4, NEXUS_ONE
from repro.solutions import (
    ClientSideSolution,
    CombinedSolution,
    HideRealisticSolution,
    HideSolution,
    ReceiveAllSolution,
)
from repro.traces.generators import generate_trace
from repro.traces.scenarios import ScenarioSpec
from repro.traces.usefulness import clustered_fraction_mask, random_fraction_mask

SPEC = ScenarioSpec(
    name="unit", duration_s=300.0, quiet_rate_fps=1.0, burst_rate_fps=25.0,
    quiet_dwell_s=8.0, burst_dwell_s=1.5, seed=21,
)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(SPEC)


@pytest.fixture(scope="module")
def mask(trace):
    return random_fraction_mask(trace, 0.10, seed=9)


@pytest.fixture(scope="module")
def results(trace, mask):
    return {
        "receive-all": ReceiveAllSolution().evaluate(trace, mask, NEXUS_ONE),
        "client-side": ClientSideSolution().evaluate(trace, mask, NEXUS_ONE),
        "hide": HideSolution().evaluate(trace, mask, NEXUS_ONE),
        "hide-realistic": HideRealisticSolution().evaluate(trace, mask, NEXUS_ONE),
        "combined": CombinedSolution().evaluate(trace, mask, NEXUS_ONE),
    }


class TestReceivedFrames:
    def test_receive_all_gets_everything(self, results, trace):
        assert results["receive-all"].received_frames == len(trace)

    def test_client_side_receives_everything_too(self, results, trace):
        assert results["client-side"].received_frames == len(trace)

    def test_hide_receives_only_useful(self, results, mask):
        assert results["hide"].received_frames == mask.useful_count

    def test_hide_realistic_between_hide_and_all(self, results):
        assert (
            results["hide"].received_frames
            <= results["hide-realistic"].received_frames
            <= results["receive-all"].received_frames
        )

    def test_combined_matches_realistic_reception(self, results):
        assert (
            results["combined"].received_frames
            == results["hide-realistic"].received_frames
        )


class TestEnergyOrdering:
    def test_hide_beats_receive_all(self, results):
        assert (
            results["hide"].breakdown.total_j
            < results["receive-all"].breakdown.total_j
        )

    def test_hide_beats_client_side(self, results):
        assert (
            results["hide"].breakdown.total_j
            < results["client-side"].breakdown.total_j
        )

    def test_client_side_never_holds_more_wakelock_than_receive_all(self, results):
        assert (
            results["client-side"].breakdown.wakelock_j
            <= results["receive-all"].breakdown.wakelock_j
        )

    def test_combined_no_worse_than_realistic(self, results):
        assert (
            results["combined"].breakdown.total_j
            <= results["hide-realistic"].breakdown.total_j + 1e-9
        )

    def test_beacon_energy_identical_across_solutions(self, results):
        beacons = {r.breakdown.beacon_j for r in results.values()}
        assert len(beacons) == 1

    def test_only_hide_variants_pay_overhead(self, results):
        assert results["receive-all"].breakdown.overhead_j == 0.0
        assert results["client-side"].breakdown.overhead_j == 0.0
        for name in ("hide", "hide-realistic", "combined"):
            assert results[name].breakdown.overhead_j > 0.0


class TestSuspendOrdering:
    def test_hide_sleeps_most(self, results):
        assert (
            results["hide"].suspend_fraction
            >= results["client-side"].suspend_fraction
            >= results["receive-all"].suspend_fraction
        )

    def test_fractions_valid(self, results):
        for result in results.values():
            assert 0.0 <= result.suspend_fraction <= 1.0


class TestFractionSweep:
    def test_less_useful_means_less_energy_for_hide(self, trace):
        energies = []
        for fraction in (0.10, 0.06, 0.02):
            mask = clustered_fraction_mask(trace, fraction, seed=4)
            result = HideSolution().evaluate(trace, mask, NEXUS_ONE)
            energies.append(result.breakdown.total_j)
        assert energies == sorted(energies, reverse=True)

    def test_receive_all_insensitive_to_fraction(self, trace):
        a = ReceiveAllSolution().evaluate(
            trace, random_fraction_mask(trace, 0.10, seed=1), NEXUS_ONE
        )
        b = ReceiveAllSolution().evaluate(
            trace, random_fraction_mask(trace, 0.02, seed=1), NEXUS_ONE
        )
        assert a.breakdown.total_j == pytest.approx(b.breakdown.total_j)


class TestResultMetadata:
    def test_labels(self, results, trace):
        assert results["hide"].solution == "hide"
        assert results["hide"].trace_name == trace.name
        assert results["hide"].device == "Nexus One"
        assert results["hide"].total_frames == len(trace)

    def test_average_power_mw(self, results):
        result = results["receive-all"]
        assert result.average_power_mw == pytest.approx(
            result.breakdown.average_power_w * 1e3
        )

    def test_savings_vs(self, results):
        saving = results["hide"].savings_vs(results["receive-all"])
        assert 0.0 < saving < 1.0

    def test_s4_higher_transitions(self, trace, mask):
        n1 = ClientSideSolution().evaluate(trace, mask, NEXUS_ONE)
        s4 = ClientSideSolution().evaluate(trace, mask, GALAXY_S4)
        assert (
            s4.breakdown.state_transfer_j > n1.breakdown.state_transfer_j
        )
