import pytest

from repro.analysis.sensitivity import (
    sweep_dtim_period,
    sweep_report_interval,
    sweep_useful_fraction,
    sweep_wakelock_timeout,
)
from repro.energy.profile import NEXUS_ONE
from repro.errors import ConfigurationError
from repro.traces.generators import generate_trace
from repro.traces.scenarios import ScenarioSpec
from repro.traces.usefulness import clustered_fraction_mask

SPEC = ScenarioSpec(
    name="sens", duration_s=240.0, quiet_rate_fps=0.6, burst_rate_fps=25.0,
    quiet_dwell_s=6.0, burst_dwell_s=1.0, seed=77,
)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(SPEC)


@pytest.fixture(scope="module")
def mask(trace):
    return clustered_fraction_mask(trace, 0.10, seed=1)


class TestTauSweep:
    def test_receive_all_grows_with_tau(self, trace, mask):
        points = sweep_wakelock_timeout(trace, mask, NEXUS_ONE, [0.25, 1.0, 4.0])
        totals = [p.receive_all.breakdown.total_j for p in points]
        assert totals == sorted(totals)

    def test_hide_energy_grows_with_tau(self, trace, mask):
        points = sweep_wakelock_timeout(trace, mask, NEXUS_ONE, [0.25, 1.0, 4.0])
        totals = [p.hide.breakdown.total_j for p in points]
        assert totals == sorted(totals)

    def test_saving_peaks_at_moderate_tau(self, trace, mask):
        # Relative savings are hump-shaped: tiny wakelocks leave little
        # for HIDE to save; huge wakelocks keep even HIDE awake between
        # its (fewer) useful frames. The paper's 1 s sits near the top.
        points = sweep_wakelock_timeout(
            trace, mask, NEXUS_ONE, [0.25, 1.0, 4.0]
        )
        small, moderate, huge = (p.saving for p in points)
        assert all(p.saving > 0 for p in points)
        assert moderate >= small - 0.02
        assert moderate >= huge

    def test_paper_tau_point_included(self, trace, mask):
        (point,) = sweep_wakelock_timeout(trace, mask, NEXUS_ONE, [1.0])
        assert point.wakelock_timeout_s == 1.0
        assert 0.0 < point.saving < 1.0

    def test_validation(self, trace, mask):
        with pytest.raises(ConfigurationError):
            sweep_wakelock_timeout(trace, mask, NEXUS_ONE, [])
        with pytest.raises(ConfigurationError):
            sweep_wakelock_timeout(trace, mask, NEXUS_ONE, [-1.0])


class TestDtimSweep:
    def test_energy_insensitive_to_typical_dtim_periods(self):
        # With a 1 s wakelock, batching broadcast delivery into 102 vs
        # 307 ms DTIM windows barely moves the energy — which is why
        # the paper can treat "typical values 1-3" interchangeably.
        points = sweep_dtim_period(SPEC, NEXUS_ONE, 0.10, [1, 3])
        t1 = points[0].receive_all.breakdown.total_j
        t3 = points[1].receive_all.breakdown.total_j
        assert abs(t3 - t1) / t1 < 0.05

    def test_hide_still_wins_at_every_period(self):
        for point in sweep_dtim_period(SPEC, NEXUS_ONE, 0.10, [1, 2, 3]):
            assert point.saving > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sweep_dtim_period(SPEC, NEXUS_ONE, 0.10, [])
        with pytest.raises(ConfigurationError):
            sweep_dtim_period(SPEC, NEXUS_ONE, 0.10, [0])


class TestReportIntervalSweep:
    def test_both_costs_fall_with_interval(self):
        points = sweep_report_interval(NEXUS_ONE, [10.0, 60.0, 600.0])
        powers = [p.overhead_power_w for p in points]
        delays = [p.delay_increase for p in points]
        assert powers == sorted(powers, reverse=True)
        assert delays == sorted(delays, reverse=True)

    def test_paper_point_overhead_small(self):
        (point,) = sweep_report_interval(NEXUS_ONE, [10.0])
        # E_o^2 at the paper's heavy-usage setting: well under 1 mW.
        assert point.overhead_power_w < 1e-3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sweep_report_interval(NEXUS_ONE, [])


class TestFractionSweep:
    def test_energy_monotone_in_fraction(self, trace):
        points = sweep_useful_fraction(
            trace, NEXUS_ONE, [0.02, 0.05, 0.10, 0.20]
        )
        totals = [p.hide.breakdown.total_j for p in points]
        assert totals == sorted(totals)

    def test_savings_monotone_decreasing(self, trace):
        points = sweep_useful_fraction(trace, NEXUS_ONE, [0.02, 0.10, 0.20])
        savings = [p.saving for p in points]
        assert savings == sorted(savings, reverse=True)

    def test_achieved_fraction_recorded(self, trace):
        (point,) = sweep_useful_fraction(trace, NEXUS_ONE, [0.10])
        assert point.achieved_fraction == pytest.approx(0.10, abs=0.05)

    def test_validation(self, trace):
        with pytest.raises(ConfigurationError):
            sweep_useful_fraction(trace, NEXUS_ONE, [])
