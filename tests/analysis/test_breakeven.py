import pytest

from repro.analysis.breakeven import find_breakeven
from repro.energy.profile import NEXUS_ONE
from repro.errors import ConfigurationError
from repro.traces.generators import generate_trace
from repro.traces.scenarios import ScenarioSpec

#: Dense storm-style trace where the crossover is reachable.
DENSE = ScenarioSpec("dense", 240.0, 0.2, 150.0, 1.0, 0.12, 55)
#: Sparse trace where HIDE wins at every fraction.
SPARSE = ScenarioSpec("sparse", 240.0, 0.3, 3.0, 30.0, 5.0, 56)


@pytest.fixture(scope="module")
def dense_trace():
    return generate_trace(DENSE)


@pytest.fixture(scope="module")
def sparse_trace():
    return generate_trace(SPARSE)


class TestBreakeven:
    def test_dense_trace_has_crossover(self, dense_trace):
        result = find_breakeven(dense_trace, NEXUS_ONE, tolerance=0.02)
        assert result.breakeven_fraction is not None
        # The crossover sits well above the paper's 2-10% regime...
        assert result.breakeven_fraction > 0.15
        # ...so the paper's operating points still save comfortably.
        assert result.saving_at_10pct > 0.1
        assert result.saving_at_2pct > result.saving_at_10pct

    def test_sparse_trace_never_crosses(self, sparse_trace):
        result = find_breakeven(sparse_trace, NEXUS_ONE, tolerance=0.02)
        assert result.breakeven_fraction is None
        assert result.saving_at_10pct > 0.3

    def test_recomputed_mode_pushes_crossover_out(self, dense_trace):
        original = find_breakeven(
            dense_trace, NEXUS_ONE, tolerance=0.02, more_data_mode="original"
        )
        recomputed = find_breakeven(
            dense_trace, NEXUS_ONE, tolerance=0.02, more_data_mode="recomputed"
        )
        if recomputed.breakeven_fraction is None:
            assert original.breakeven_fraction is not None
        else:
            assert (
                recomputed.breakeven_fraction >= original.breakeven_fraction
            )

    def test_result_metadata(self, sparse_trace):
        result = find_breakeven(sparse_trace, NEXUS_ONE, tolerance=0.05)
        assert result.trace_name == "sparse"
        assert result.device == "Nexus One"
        assert result.search_ceiling == 0.95

    def test_validation(self, sparse_trace):
        with pytest.raises(ConfigurationError):
            find_breakeven(sparse_trace, NEXUS_ONE, search_ceiling=0.0)
        with pytest.raises(ConfigurationError):
            find_breakeven(sparse_trace, NEXUS_ONE, tolerance=0.0)
