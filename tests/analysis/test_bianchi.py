import pytest

from repro.analysis.bianchi import BianchiModel
from repro.analysis.netconfig import DOT11B_CONFIG, NetworkConfig
from repro.errors import ConfigurationError


class TestNetConfig:
    def test_table2_defaults(self):
        c = DOT11B_CONFIG
        assert c.cw_min == 32
        assert c.cw_max == 1024
        assert c.slot_time_s == pytest.approx(20e-6)
        assert c.sifs_s == pytest.approx(10e-6)
        assert c.difs_s == pytest.approx(50e-6)
        assert c.propagation_delay_s == pytest.approx(1e-6)
        assert c.channel_rate_bps == pytest.approx(11e6)
        assert c.mac_header_bits == 224
        assert c.phy_overhead_bits == 192
        assert c.payload_bits == 1000

    def test_backoff_stages(self):
        assert DOT11B_CONFIG.max_backoff_stage == 5  # 32 * 2^5 = 1024

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(cw_min=0)
        with pytest.raises(ConfigurationError):
            NetworkConfig(cw_min=64, cw_max=32)
        with pytest.raises(ConfigurationError):
            NetworkConfig(cw_min=32, cw_max=96)  # not power-of-two multiple
        with pytest.raises(ConfigurationError):
            NetworkConfig(slot_time_s=0)
        with pytest.raises(ConfigurationError):
            NetworkConfig(payload_bits=0)


class TestFixedPoint:
    def test_single_station_never_collides(self):
        tau, p = BianchiModel().solve_fixed_point(1)
        assert p == 0.0
        assert tau == pytest.approx(2 / (DOT11B_CONFIG.cw_min + 1))

    def test_fixed_point_self_consistent(self):
        model = BianchiModel()
        for n in (2, 5, 10, 50):
            tau, p = model.solve_fixed_point(n)
            assert p == pytest.approx(1 - (1 - tau) ** (n - 1), abs=1e-9)

    def test_collision_probability_increases_with_n(self):
        model = BianchiModel()
        ps = [model.solve_fixed_point(n)[1] for n in (2, 5, 20, 50)]
        assert ps == sorted(ps)

    def test_tau_decreases_with_n(self):
        model = BianchiModel()
        taus = [model.solve_fixed_point(n)[0] for n in (2, 5, 20, 50)]
        assert taus == sorted(taus, reverse=True)

    def test_invalid_station_count(self):
        with pytest.raises(ConfigurationError):
            BianchiModel().solve_fixed_point(0)


class TestThroughput:
    def test_throughput_fraction_bounded(self):
        model = BianchiModel()
        for n in (1, 5, 50):
            result = model.evaluate(n)
            assert 0.0 < result.throughput_fraction < 1.0

    def test_throughput_with_bigger_payload_is_higher(self):
        model = BianchiModel()
        small = model.evaluate(10, payload_bits=500)
        large = model.evaluate(10, payload_bits=8000)
        assert large.throughput_fraction > small.throughput_fraction

    def test_throughput_bps_consistent(self):
        result = BianchiModel().evaluate(10)
        assert result.throughput_bps == pytest.approx(
            result.throughput_fraction * DOT11B_CONFIG.channel_rate_bps
        )

    def test_throughput_nearly_flat_in_n(self):
        # The paper notes capacity "drops only slightly" from 5 to 50
        # nodes — Bianchi saturation throughput is insensitive to n.
        model = BianchiModel()
        s5 = model.evaluate(5).throughput_bps
        s50 = model.evaluate(50).throughput_bps
        assert abs(s5 - s50) / s5 < 0.10

    def test_bianchi_classic_regime(self):
        # With Bianchi's canonical large payload (8184 bits) the model
        # must produce throughput fractions in the published ~0.6-0.85
        # range for moderate n.
        model = BianchiModel()
        result = model.evaluate(10, payload_bits=8184)
        assert 0.55 < result.throughput_fraction < 0.9

    def test_payload_validation(self):
        with pytest.raises(ConfigurationError):
            BianchiModel().evaluate(5, payload_bits=0)
