import pytest

from repro.analysis.capacity import CapacityAnalysis
from repro.analysis.delay import DEFAULT_RTT_S, DelayAnalysis
from repro.analysis.hash_timing import (
    CALIBRATED_AP_TIMINGS,
    HashTimingModel,
    measure_host_timings,
)
from repro.errors import ConfigurationError


class TestCapacity:
    def test_paper_headline_point(self):
        # 50 nodes, 75% HIDE-enabled: paper reports 0.13%.
        result = CapacityAnalysis().evaluate(50, 0.75, 10.0, 50)
        assert result.capacity_decrease == pytest.approx(0.0013, abs=0.0003)

    def test_decrease_below_half_percent_everywhere(self):
        # Figure 10's y-axis tops out at 0.5%.
        analysis = CapacityAnalysis()
        for result in analysis.sweep((5, 10, 20, 30, 40, 50), (0.05, 0.25, 0.5, 0.75)):
            assert result.capacity_decrease < 0.005

    def test_linear_in_nodes(self):
        analysis = CapacityAnalysis()
        d10 = analysis.evaluate(10, 0.5).capacity_decrease
        d50 = analysis.evaluate(50, 0.5).capacity_decrease
        # S1 is nearly flat in n, so the decrease is ~linear in N.
        assert d50 / d10 == pytest.approx(5.0, rel=0.1)

    def test_linear_in_hide_fraction(self):
        analysis = CapacityAnalysis()
        d25 = analysis.evaluate(50, 0.25).capacity_decrease
        d75 = analysis.evaluate(50, 0.75).capacity_decrease
        assert d75 / d25 == pytest.approx(3.0, rel=0.01)

    def test_more_frequent_messages_cost_more(self):
        analysis = CapacityAnalysis()
        fast = analysis.evaluate(50, 0.5, port_message_interval_s=1.0)
        slow = analysis.evaluate(50, 0.5, port_message_interval_s=100.0)
        assert fast.capacity_decrease > slow.capacity_decrease

    def test_zero_hide_fraction_no_decrease(self):
        result = CapacityAnalysis().evaluate(50, 0.0)
        assert result.capacity_decrease == 0.0

    def test_port_message_bits_eq19(self):
        analysis = CapacityAnalysis()
        # 192 PHY + 224 MAC + (2 + 100) bytes for 50 ports.
        assert analysis.port_message_bits(50) == 192 + 224 + 102 * 8

    def test_validation(self):
        analysis = CapacityAnalysis()
        with pytest.raises(ConfigurationError):
            analysis.evaluate(50, 1.5)
        with pytest.raises(ConfigurationError):
            analysis.evaluate(50, 0.5, port_message_interval_s=0)
        with pytest.raises(ConfigurationError):
            analysis.port_message_bits(-1)


class TestDelay:
    def test_paper_headline_point(self):
        # 1/f = 10 s, N = 50, p = 50%, n_o = 50: paper reports 2.3%.
        result = DelayAnalysis().evaluate(50, 0.5, 10.0, 50, 10)
        assert result.delay_increase == pytest.approx(0.023, abs=0.001)

    def test_ten_minute_interval_tiny(self):
        result = DelayAnalysis().evaluate(50, 0.5, 600.0, 50, 10)
        assert result.delay_increase < 0.002

    def test_hundred_ports_under_1_6_percent(self):
        # Figure 12's caption: < 1.6% with 100 ports at 1/f = 30 s.
        result = DelayAnalysis().evaluate(50, 0.5, 30.0, 100, 10)
        assert result.delay_increase < 0.016

    def test_t1_dominates_t2(self):
        # Paper: t1 >> t2 in the swept configurations.
        result = DelayAnalysis().evaluate(50, 0.5, 10.0, 50, 10)
        assert result.refresh_time_s > 5 * result.lookup_time_s

    def test_monotone_in_nodes(self):
        analysis = DelayAnalysis()
        values = [
            analysis.evaluate(n, 0.5, 30.0, 50, 10).delay_increase
            for n in (5, 10, 20, 30, 40, 50)
        ]
        assert values == sorted(values)

    def test_monotone_in_frequency_and_ports(self):
        analysis = DelayAnalysis()
        assert (
            analysis.evaluate(50, 0.5, 10.0, 50, 10).delay_increase
            > analysis.evaluate(50, 0.5, 60.0, 50, 10).delay_increase
        )
        assert (
            analysis.evaluate(50, 0.5, 30.0, 100, 10).delay_increase
            > analysis.evaluate(50, 0.5, 30.0, 10, 10).delay_increase
        )

    def test_sweeps_cover_grid(self):
        analysis = DelayAnalysis()
        results = analysis.sweep_intervals((5, 50), (10.0, 600.0))
        assert len(results) == 4
        results = analysis.sweep_open_ports((5, 50), (10, 100))
        assert len(results) == 4

    def test_delay_independent_of_rtt_for_t1_share(self):
        # Paper §VI-B: results have little dependence on D because t1
        # is proportional to D. Only the (small) t2 share shifts.
        fast = DelayAnalysis(baseline_rtt_s=0.02).evaluate(50, 0.5, 10.0, 50, 0)
        slow = DelayAnalysis(baseline_rtt_s=0.2).evaluate(50, 0.5, 10.0, 50, 0)
        assert fast.delay_increase == pytest.approx(slow.delay_increase)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DelayAnalysis(baseline_rtt_s=0)
        analysis = DelayAnalysis()
        with pytest.raises(ConfigurationError):
            analysis.evaluate(-1)
        with pytest.raises(ConfigurationError):
            analysis.evaluate(5, 2.0)
        with pytest.raises(ConfigurationError):
            analysis.evaluate(5, 0.5, 0.0)


class TestHashTimings:
    def test_calibrated_values(self):
        t = CALIBRATED_AP_TIMINGS
        assert t.refresh_per_port_s == pytest.approx(180e-6)
        assert t.lookup_s == pytest.approx(4e-6)

    def test_scaled(self):
        scaled = CALIBRATED_AP_TIMINGS.scaled(2.0)
        assert scaled.delete_s == pytest.approx(180e-6)
        assert scaled.lookup_s == pytest.approx(8e-6)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            HashTimingModel(-1e-6, 1e-6, 1e-6)

    def test_host_measurement_runs(self):
        timings = measure_host_timings(stations=10, samples=20)
        assert timings.insert_s >= 0
        assert timings.lookup_s < 1e-3  # host dict ops are fast

    def test_host_measurement_validates(self):
        with pytest.raises(ConfigurationError):
            measure_host_timings(hide_fraction=2.0)
