"""PortShard: ingest queue, apply semantics, coalesced ACKs, expiry."""

from repro.service import wire
from repro.service.shard import PortShard

ADDR = ("127.0.0.1", 40000)


def mac_of(i: int) -> bytes:
    return bytes([0x02, 0x00]) + i.to_bytes(4, "big")


def offer_report(shard, aid, ports, seq=1, bss=0, mac=None, want_ack=False):
    shard.offer(
        wire.encode_port_report(bss, aid, mac or mac_of(aid), seq, ports, want_ack),
        ADDR,
    )


def offer_keepalive(shard, aid, seq=1, bss=0, mac=None, want_ack=False):
    shard.offer(
        wire.encode_keep_alive(bss, aid, mac or mac_of(aid), seq, want_ack),
        ADDR,
    )


class TestBackpressure:
    def test_drop_oldest_when_full(self):
        shard = PortShard(0, queue_capacity=3)
        for aid in (1, 2, 3, 4):
            offer_report(shard, aid, {137})
        assert shard.depth == 3
        assert shard.counters.drops == 1
        shard.drain(0.0)
        # AID 1 was the oldest and got dropped.
        table = shard.tables[0]
        assert table.ports_for_client(1) == frozenset()
        assert table.ports_for_client(4) == frozenset({137})

    def test_drain_empties_queue(self):
        shard = PortShard(0)
        for aid in range(1, 20):
            offer_report(shard, aid, {137})
        assert shard.drain(0.0) == 19
        assert shard.depth == 0
        assert shard.counters.reports == 19


class TestApply:
    def test_report_then_keepalive(self):
        shard = PortShard(0, ttl_s=10.0)
        offer_report(shard, 5, {137, 5353})
        shard.drain(1.0)
        assert shard.tables[0].ports_for_client(5) == frozenset({137, 5353})
        assert shard.wheel.deadline_of((0, 5)) == 11.0
        offer_keepalive(shard, 5)
        shard.drain(4.0)
        assert shard.counters.keepalives == 1
        assert shard.wheel.deadline_of((0, 5)) == 14.0

    def test_keepalive_for_unknown_client_rejected(self):
        shard = PortShard(0)
        offer_keepalive(shard, 9, want_ack=True)
        acks = []
        shard.drain(0.0, ack_sink=lambda payload, addr: acks.append(payload))
        assert shard.counters.rejected == 1
        assert len(acks) == 1
        assert wire.decode_message(acks[0]).status == wire.ACK_UNKNOWN_CLIENT

    def test_invalid_aid_rejected_not_crashed(self):
        shard = PortShard(0)
        offer_report(shard, 2008, {137})  # beyond MAX_AID: table refuses
        shard.drain(0.0)
        assert shard.counters.rejected == 1
        assert shard.counters.errors == 0

    def test_mac_ownership_enforced(self):
        shard = PortShard(0)
        offer_report(shard, 3, {137}, mac=mac_of(3))
        shard.drain(0.0)
        # Another station may not steal the bound AID.
        offer_report(shard, 3, {9999}, mac=mac_of(77), want_ack=True)
        acks = []
        shard.drain(1.0, ack_sink=lambda payload, addr: acks.append(payload))
        assert shard.counters.rejected == 1
        assert wire.decode_message(acks[0]).status == wire.ACK_REJECTED
        assert shard.tables[0].ports_for_client(3) == frozenset({137})

    def test_bss_tables_are_independent(self):
        shard = PortShard(0)
        offer_report(shard, 1, {137}, bss=0, mac=mac_of(1))
        offer_report(shard, 1, {5353}, bss=1, mac=mac_of(2))
        shard.drain(0.0)
        assert shard.tables[0].ports_for_client(1) == frozenset({137})
        assert shard.tables[1].ports_for_client(1) == frozenset({5353})
        assert shard.client_count == 2

    def test_garbage_counted_not_fatal(self):
        shard = PortShard(0)
        shard.offer(b"\x00" * 30, ADDR)
        offer_report(shard, 1, {137})
        assert shard.drain(0.0) == 2
        assert shard.counters.garbage == 1
        assert shard.counters.reports == 1

    def test_stray_ack_rejected(self):
        shard = PortShard(0)
        shard.offer(wire.encode_ack(0, 1, mac_of(1), 1), ADDR)
        shard.drain(0.0)
        assert shard.counters.rejected == 1


class TestCoalescedAcks:
    def test_one_ack_per_client_per_drain(self):
        shard = PortShard(0)
        offer_report(shard, 4, {137}, seq=1, want_ack=True)
        for seq in (2, 3, 4):
            offer_keepalive(shard, 4, seq=seq, want_ack=True)
        acks = []
        shard.drain(0.0, ack_sink=lambda payload, addr: acks.append(payload))
        assert len(acks) == 1
        ack = wire.decode_message(acks[0])
        assert ack.seq == 4  # only the latest sequence is confirmed
        assert shard.counters.acks_sent == 1

    def test_no_ack_without_flag(self):
        shard = PortShard(0)
        offer_report(shard, 4, {137})
        acks = []
        shard.drain(0.0, ack_sink=lambda payload, addr: acks.append(payload))
        assert acks == []


class TestExpiry:
    def test_idle_client_expires(self):
        shard = PortShard(0, ttl_s=2.0)
        offer_report(shard, 6, {137})
        shard.drain(0.0)
        assert shard.expire(1.9) == []
        expired = shard.expire(2.5)
        assert [(bss, entry.aid) for bss, entry in expired] == [(0, 6)]
        assert expired[0][1].ports == frozenset({137})
        assert shard.client_count == 0
        assert shard.counters.expirations == 1

    def test_keepalive_defers_expiry(self):
        shard = PortShard(0, ttl_s=2.0)
        offer_report(shard, 6, {137})
        shard.drain(0.0)
        offer_keepalive(shard, 6)
        shard.drain(1.5)
        assert shard.expire(2.5) == []
        assert shard.expire(4.0) != []

    def test_rereport_after_expiry_allows_new_mac(self):
        shard = PortShard(0, ttl_s=1.0)
        offer_report(shard, 8, {137}, mac=mac_of(8))
        shard.drain(0.0)
        shard.expire(2.0)
        # The AID freed up; a different station may claim it now.
        offer_report(shard, 8, {5353}, mac=mac_of(99))
        shard.drain(2.1)
        assert shard.counters.rejected == 0
        assert shard.tables[0].ports_for_client(8) == frozenset({5353})

    def test_snapshot_shape(self):
        shard = PortShard(2, ttl_s=5.0)
        offer_report(shard, 1, {137, 5353})
        shard.drain(0.0)
        snap = shard.snapshot()
        assert snap["shard"] == 2
        assert snap["clients"] == 1
        assert snap["pairs"] == 2
        assert snap["counters"]["reports"] == 1
