"""Broadcast-frame feed: DTIM batching, cycling, determinism."""

import pytest

from repro.ap.flags import compute_broadcast_flags
from repro.ap.port_table import ClientUdpPortTable
from repro.errors import ConfigurationError
from repro.service.feed import BroadcastFrameFeed


def test_batches_follow_trace_density():
    feed = BroadcastFrameFeed.from_scenario("Classroom", 0.1024, seed=3)
    sizes = [len(feed.next_batch()) for _ in range(500)]
    assert sum(sizes) > 0
    # A bursty MMPP trace must produce both empty and non-empty DTIMs.
    assert any(size == 0 for size in sizes)
    assert any(size > 0 for size in sizes)
    assert feed.batches_served == 500
    assert feed.frames_served == sum(sizes)


def test_feed_cycles_forever():
    feed = BroadcastFrameFeed.from_scenario(
        "Starbucks", 0.1024, seed=1, max_pool=50
    )
    # Far more batches than the pool spans: the feed must wrap, and
    # every pooled frame must be served again on each full cycle.
    total = sum(len(feed.next_batch()) for _ in range(100_000))
    assert total > len(feed)


def test_deterministic_for_same_seed():
    a = BroadcastFrameFeed.from_scenario("WML", 0.1024, seed=9, max_pool=200)
    b = BroadcastFrameFeed.from_scenario("WML", 0.1024, seed=9, max_pool=200)
    for _ in range(300):
        assert len(a.next_batch()) == len(b.next_batch())


def test_frames_run_algorithm1():
    """The pre-built frames must survive the genuine byte-parsing path."""
    feed = BroadcastFrameFeed.from_scenario("Classroom", 0.1024, seed=3)
    table = ClientUdpPortTable()
    # Open every well-known port so any frame in the batch matches.
    from repro.net.ports import WELL_KNOWN_BROADCAST_SERVICES

    table.update_client(1, set(WELL_KNOWN_BROADCAST_SERVICES))
    flagged = 0
    for _ in range(200):
        frames = feed.next_batch()
        flagged += len(compute_broadcast_flags(frames, table))
        if flagged:
            break
    assert flagged > 0


def test_bad_dtim_rejected():
    with pytest.raises(ConfigurationError):
        BroadcastFrameFeed.from_scenario("Classroom", 0.0)
