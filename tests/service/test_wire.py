"""Wire codec: round-trips, strict rejection, boundaries."""

import struct

import pytest

from repro.errors import FrameDecodeError, FrameEncodeError
from repro.service import wire

MAC = bytes([0x02, 0x00, 0x00, 0x00, 0x00, 0x2A])


class TestRoundTrips:
    def test_port_report(self):
        raw = wire.encode_port_report(3, 1500, MAC, 77, {137, 5353, 1900})
        message = wire.decode_message(raw)
        assert isinstance(message, wire.PortReport)
        assert message.bss == 3
        assert message.aid == 1500
        assert message.mac == MAC
        assert message.seq == 77
        assert message.ports == frozenset({137, 5353, 1900})
        assert message.want_ack is False

    def test_port_report_want_ack_flag(self):
        raw = wire.encode_port_report(0, 1, MAC, 1, {53}, want_ack=True)
        assert wire.decode_message(raw).want_ack is True

    def test_port_report_deduplicates_and_sorts(self):
        raw = wire.encode_port_report(0, 1, MAC, 1, [5353, 137, 5353, 137])
        # Wire bytes carry each port once, in ascending order.
        count = struct.unpack_from(">H", raw, wire.HEADER_BYTES)[0]
        assert count == 2
        ports = struct.unpack_from(">2H", raw, wire.HEADER_BYTES + 2)
        assert list(ports) == [137, 5353]

    def test_keep_alive(self):
        raw = wire.encode_keep_alive(2, 42, MAC, 9, want_ack=True)
        message = wire.decode_message(raw)
        assert isinstance(message, wire.KeepAlive)
        assert (message.bss, message.aid, message.seq) == (2, 42, 9)
        assert message.mac == MAC
        assert message.want_ack is True
        assert len(raw) == wire.HEADER_BYTES

    def test_ack(self):
        raw = wire.encode_ack(1, 7, MAC, 123, wire.ACK_UNKNOWN_CLIENT)
        message = wire.decode_message(raw)
        assert isinstance(message, wire.Ack)
        assert message.status == wire.ACK_UNKNOWN_CLIENT
        assert (message.bss, message.aid, message.seq) == (1, 7, 123)

    def test_encode_message_dispatch(self):
        for message in (
            wire.PortReport(bss=0, aid=1, mac=MAC, seq=2, ports=frozenset({80})),
            wire.KeepAlive(bss=0, aid=1, mac=MAC, seq=3),
            wire.Ack(bss=0, aid=1, mac=MAC, seq=4, status=wire.ACK_REJECTED),
        ):
            assert wire.decode_message(wire.encode_message(message)) == message

    def test_encode_message_rejects_other_types(self):
        with pytest.raises(FrameEncodeError):
            wire.encode_message("not a message")


class TestRejection:
    def test_empty_datagram(self):
        with pytest.raises(FrameDecodeError):
            wire.decode_message(b"")

    def test_truncated_header(self):
        raw = wire.encode_keep_alive(0, 1, MAC, 1)
        for cut in range(len(raw)):
            with pytest.raises(FrameDecodeError):
                wire.decode_message(raw[:cut])

    def test_truncated_report_body(self):
        raw = wire.encode_port_report(0, 1, MAC, 1, {137, 5353})
        for cut in range(wire.HEADER_BYTES, len(raw)):
            with pytest.raises(FrameDecodeError):
                wire.decode_message(raw[:cut])

    def test_trailing_garbage_rejected(self):
        for raw in (
            wire.encode_port_report(0, 1, MAC, 1, {137}),
            wire.encode_keep_alive(0, 1, MAC, 1),
            wire.encode_ack(0, 1, MAC, 1),
        ):
            with pytest.raises(FrameDecodeError):
                wire.decode_message(raw + b"\x00")

    def test_bad_magic(self):
        raw = bytearray(wire.encode_keep_alive(0, 1, MAC, 1))
        raw[:2] = b"XX"
        with pytest.raises(FrameDecodeError):
            wire.decode_message(bytes(raw))

    def test_bad_version(self):
        raw = bytearray(wire.encode_keep_alive(0, 1, MAC, 1))
        raw[2] = 99
        with pytest.raises(FrameDecodeError):
            wire.decode_message(bytes(raw))

    def test_unknown_message_type(self):
        raw = bytearray(wire.encode_keep_alive(0, 1, MAC, 1))
        raw[3] = 9
        with pytest.raises(FrameDecodeError):
            wire.decode_message(bytes(raw))

    def test_random_garbage(self):
        import random

        rng = random.Random(7)
        for length in (1, 5, 17, 18, 19, 64, 1500):
            blob = bytes(rng.randrange(256) for _ in range(length))
            if blob[:2] == wire.WIRE_MAGIC:  # pragma: no cover - 1/65536
                continue
            with pytest.raises(FrameDecodeError):
                wire.decode_message(blob)

    def test_zero_port_in_report_rejected(self):
        raw = bytearray(wire.encode_port_report(0, 1, MAC, 1, {137}))
        raw[-2:] = b"\x00\x00"
        with pytest.raises(FrameDecodeError):
            wire.decode_message(bytes(raw))

    def test_zero_port_count_rejected(self):
        raw = bytearray(wire.encode_port_report(0, 1, MAC, 1, {137}))
        header_plus_count = raw[: wire.HEADER_BYTES] + b"\x00\x00"
        with pytest.raises(FrameDecodeError):
            wire.decode_message(bytes(header_plus_count))

    def test_report_length_mismatch_rejected(self):
        # Count says 3, body carries 1 port.
        raw = bytearray(wire.encode_port_report(0, 1, MAC, 1, {137}))
        struct.pack_into(">H", raw, wire.HEADER_BYTES, 3)
        with pytest.raises(FrameDecodeError):
            wire.decode_message(bytes(raw))


class TestBoundaries:
    def test_max_ports_round_trips(self):
        ports = set(range(1, wire.MAX_PORTS_PER_REPORT + 1))
        message = wire.decode_message(
            wire.encode_port_report(0, 1, MAC, 1, ports)
        )
        assert message.ports == frozenset(ports)

    def test_one_over_max_rejected_at_encode(self):
        ports = set(range(1, wire.MAX_PORTS_PER_REPORT + 2))
        with pytest.raises(FrameEncodeError):
            wire.encode_port_report(0, 1, MAC, 1, ports)

    def test_over_max_count_rejected_at_decode(self):
        ports = list(range(1, wire.MAX_PORTS_PER_REPORT + 2))
        body = struct.pack(f">H{len(ports)}H", len(ports), *ports)
        raw = wire.encode_keep_alive(0, 1, MAC, 1)  # borrow a header
        raw = bytearray(raw + body)
        raw[3] = wire.MSG_PORT_REPORT
        with pytest.raises(FrameDecodeError):
            wire.decode_message(bytes(raw))

    def test_empty_report_rejected_at_encode(self):
        with pytest.raises(FrameEncodeError):
            wire.encode_port_report(0, 1, MAC, 1, set())

    def test_port_zero_rejected_at_encode(self):
        with pytest.raises(FrameEncodeError):
            wire.encode_port_report(0, 1, MAC, 1, {0})

    def test_identity_bounds(self):
        with pytest.raises(FrameEncodeError):
            wire.encode_keep_alive(256, 1, MAC, 1)
        with pytest.raises(FrameEncodeError):
            wire.encode_keep_alive(0, 0x10000, MAC, 1)
        with pytest.raises(FrameEncodeError):
            wire.encode_keep_alive(0, 1, MAC[:5], 1)
        with pytest.raises(FrameEncodeError):
            wire.encode_keep_alive(0, 1, MAC, 2**32)
        with pytest.raises(FrameEncodeError):
            wire.encode_ack(0, 1, MAC, 1, status=256)


class TestRouting:
    def test_peek_route_matches_decode(self):
        raw = wire.encode_port_report(5, 1999, MAC, 4, {443})
        assert wire.peek_route(raw) == (5, 1999, MAC)
        raw = wire.encode_keep_alive(0, 1, MAC, 0)
        assert wire.peek_route(raw) == (0, 1, MAC)

    def test_peek_route_rejects_non_v1(self):
        with pytest.raises(FrameDecodeError):
            wire.peek_route(b"nope")
        with pytest.raises(FrameDecodeError):
            wire.peek_route(b"XX" + bytes(16))

    def test_shard_index_stable_and_in_range(self):
        for shards in (1, 2, 4, 7):
            seen = set()
            for aid in range(1, 200):
                mac = bytes([0x02, 0, 0, 0, aid % 256, aid // 256])
                index = wire.shard_index(0, aid, mac, shards)
                assert 0 <= index < shards
                assert index == wire.shard_index(0, aid, mac, shards)
                seen.add(index)
            assert seen == set(range(shards))

    def test_shard_index_separates_bsses(self):
        mac = MAC
        indices = {wire.shard_index(bss, 7, mac, 8) for bss in range(16)}
        assert len(indices) > 1
