"""End-to-end: real sockets, loadgen against a live service.

No pytest-asyncio in the toolchain, so each test drives its own event
loop with ``asyncio.run`` — the same entry points the CLI uses.
"""

import asyncio
import json
import socket

import pytest

from repro.errors import ServiceError
from repro.service import (
    LoadgenConfig,
    PortService,
    ServiceConfig,
    run_loadgen_async,
)
from repro.service.loadgen import build_clients


def test_loadgen_against_live_service(tmp_path):
    port_file = tmp_path / "ports.json"
    state_path = tmp_path / "state.json"

    async def scenario():
        service = PortService(
            ServiceConfig(
                port=0,
                shards=4,
                ttl_s=10.0,
                port_file=str(port_file),
                final_state_path=str(state_path),
            )
        )
        await service.start()
        report = await run_loadgen_async(
            LoadgenConfig(
                port=service.server_port,
                clients=300,
                rate=8000,
                duration_s=1.5,
                workers=2,
                ack_every=32,
            )
        )
        await asyncio.sleep(0.2)
        totals = service.totals()
        await service.stop()
        return report, totals

    report, totals = asyncio.run(scenario())
    assert report.sent_total > 0
    assert totals["datagrams_received"] == report.sent_total
    assert totals["reports"] + totals["keepalives"] == report.sent_total
    assert totals["shard_errors"] == 0
    assert totals["garbage"] == 0
    assert totals["rejected"] == 0
    assert totals["clients"] == 300
    assert report.acks_received > 0
    assert set(report.acks_by_status) == {0}
    # Bound ports were published for scripts/CI.
    ports = json.loads(port_file.read_text())
    assert ports["service_port"] > 0
    # The shutdown flush captured the final table state.
    state = json.loads(state_path.read_text())
    assert state["schema"] == "repro-service-state/v1"
    assert state["totals"]["clients"] == 300
    assert len(state["shards"]) == 4


def test_ttl_expiry_and_rereport_recovery():
    """Clients expire when silent; a keep-alive after expiry gets
    ACK_UNKNOWN_CLIENT, and a fresh report re-admits the client."""
    from repro.service import wire

    async def scenario():
        service = PortService(
            ServiceConfig(port=0, shards=2, ttl_s=0.6, expiry_sweep_s=0.1)
        )
        await service.start()
        # Phase 1: populate, then go silent past the TTL.
        await run_loadgen_async(
            LoadgenConfig(
                port=service.server_port,
                clients=50,
                rate=2000,
                duration_s=0.5,
                workers=1,
                ack_every=0,
            )
        )
        await asyncio.sleep(1.2)
        after_silence = service.totals()
        # Phase 2: a keep-alive for an expired client must be refused
        # with unknown-client, and a full report must re-admit it —
        # the paper's keep-alive recovery protocol.
        loop = asyncio.get_event_loop()
        mac = bytes([0x02, 0x00, 0x00, 0x00, 0x00, 0x00])  # station 0
        addr = ("127.0.0.1", service.server_port)

        def probe(payload):
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.settimeout(5.0)
            try:
                sock.sendto(payload, addr)
                return wire.decode_message(sock.recv(2048))
            finally:
                sock.close()

        stale_ka = wire.encode_keep_alive(0, 1, mac, 500, want_ack=True)
        refused = await loop.run_in_executor(None, probe, stale_ka)
        rereport = wire.encode_port_report(
            0, 1, mac, 501, {137}, want_ack=True
        )
        readmitted = await loop.run_in_executor(None, probe, rereport)
        await asyncio.sleep(0.1)
        recovered = service.totals()
        await service.stop()
        return after_silence, refused, readmitted, recovered

    after_silence, refused, readmitted, recovered = asyncio.run(scenario())
    assert after_silence["clients"] == 0
    assert after_silence["expirations"] == 50
    assert refused.status == 2  # ACK_UNKNOWN_CLIENT
    assert readmitted.status == 0  # ACK_OK: the report re-admitted it
    assert recovered["clients"] == 1


def test_graceful_stop_drains_pending_datagrams():
    """Datagrams still queued at stop() are applied by the final drain."""

    async def scenario():
        service = PortService(ServiceConfig(port=0, shards=2))
        await service.start()
        clients = build_clients(LoadgenConfig(clients=40))
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            for client in clients:
                sock.sendto(
                    client.next_payload(keepalive=False, want_ack=False),
                    ("127.0.0.1", service.server_port),
                )
            # Stop immediately: no worker got a chance to run yet, so
            # the shutdown path must drain the queues itself.
            await service.stop()
        finally:
            sock.close()
        return service.totals()

    totals = asyncio.run(scenario())
    assert totals["clients"] == 40
    assert totals["reports"] == 40
    assert totals["shard_errors"] == 0


def test_metrics_endpoint_exports_service_series():
    import urllib.request

    async def scenario():
        service = PortService(ServiceConfig(port=0, shards=2, metrics_port=0))
        await service.start()
        await run_loadgen_async(
            LoadgenConfig(
                port=service.server_port,
                clients=20,
                rate=500,
                duration_s=0.5,
                workers=1,
            )
        )
        await asyncio.sleep(0.1)
        url = f"http://127.0.0.1:{service.metrics_port}"
        loop = asyncio.get_event_loop()
        text = await loop.run_in_executor(
            None,
            lambda: urllib.request.urlopen(f"{url}/metrics", timeout=5)
            .read()
            .decode(),
        )
        health = await loop.run_in_executor(
            None,
            lambda: json.loads(
                urllib.request.urlopen(f"{url}/healthz", timeout=5).read()
            ),
        )
        await service.stop()
        return text, health

    text, health = asyncio.run(scenario())
    for family in (
        "service_reports_total",
        "service_keepalives_total",
        "service_clients",
        "service_shard_depth",
        "service_reports_per_second",
        "service_flags_per_second",
        "service_uptime_seconds",
    ):
        assert family in text, f"missing {family} in /metrics"
    assert health["status"] == "ok"
    assert health["shard_errors"] == 0
    assert health["clients"] == 20


def test_serve_honors_duration():
    async def scenario():
        service = PortService(ServiceConfig(port=0, shards=1, duration_s=0.3))
        state = await service.serve()
        return state

    state = asyncio.run(scenario())
    assert state["uptime_s"] >= 0.3
    assert state["totals"]["datagrams_received"] == 0


def test_config_validation():
    with pytest.raises(ServiceError):
        ServiceConfig(shards=0)
    with pytest.raises(ServiceError):
        ServiceConfig(ttl_s=0.0)
    with pytest.raises(ServiceError):
        LoadgenConfig(clients=0)
    with pytest.raises(ServiceError):
        LoadgenConfig(keepalive_fraction=1.5)


def test_loadgen_client_identity_mapping():
    """10k clients fold into BSS/AID space without collisions."""
    clients = build_clients(LoadgenConfig(clients=4500, seed=2))
    identities = {(c.bss, c.aid) for c in clients}
    assert len(identities) == 4500
    assert all(1 <= c.aid <= 2007 for c in clients)
    assert max(c.bss for c in clients) == 2
    macs = {c.mac for c in clients}
    assert len(macs) == 4500
