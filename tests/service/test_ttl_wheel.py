"""Hierarchical TTL wheel: exactness, laziness, cascading."""

import pytest

from repro.errors import ConfigurationError
from repro.service.ttl_wheel import TtlWheel


def test_expires_after_deadline_not_before():
    wheel = TtlWheel(granularity_s=0.25, start=0.0)
    wheel.schedule("a", 1.0)
    assert wheel.advance(0.99) == []
    assert "a" in [k for k in wheel.advance(1.26)]
    assert len(wheel) == 0


def test_never_expires_early_across_granularities():
    for granularity in (0.05, 0.25, 1.0):
        wheel = TtlWheel(granularity_s=granularity, start=0.0)
        wheel.schedule("k", 2.0)
        now = 0.0
        expired_at = None
        while now < 5.0:
            now += granularity / 3
            if wheel.advance(now):
                expired_at = now
                break
        assert expired_at is not None
        assert expired_at >= 2.0


def test_refresh_wins_over_stale_slot_entry():
    wheel = TtlWheel(granularity_s=0.25, start=0.0)
    wheel.schedule("a", 1.0)
    wheel.schedule("a", 10.0)  # keep-alive pushed the deadline out
    assert wheel.advance(2.0) == []
    assert wheel.deadline_of("a") == 10.0
    assert wheel.advance(10.5) == ["a"]


def test_cancel_prevents_expiry():
    wheel = TtlWheel(granularity_s=0.25, start=0.0)
    wheel.schedule("a", 1.0)
    wheel.cancel("a")
    assert wheel.advance(5.0) == []
    assert len(wheel) == 0


def test_coarse_level_cascades_into_fine():
    wheel = TtlWheel(granularity_s=0.25, wheel_slots=16, cascade_slots=8, start=0.0)
    # Fine horizon is 4 s; this deadline lands in the coarse level.
    wheel.schedule("far", 10.0)
    assert wheel.advance(5.0) == []
    assert wheel.deadline_of("far") == 10.0
    assert wheel.advance(10.3) == ["far"]


def test_overflow_beyond_coarse_horizon():
    wheel = TtlWheel(granularity_s=0.25, wheel_slots=4, cascade_slots=4, start=0.0)
    # Fine 1 s, coarse 4 s; 30 s goes to the overflow list.
    wheel.schedule("deep", 30.0)
    assert wheel.advance(15.0) == []
    assert wheel.advance(30.5) == ["deep"]


def test_past_deadline_expires_on_next_sweep():
    wheel = TtlWheel(granularity_s=0.25, start=0.0)
    wheel.advance(5.0)
    wheel.schedule("late", 3.0)  # already past
    assert wheel.advance(5.5) == ["late"]


def test_many_keys_expire_sorted():
    wheel = TtlWheel(granularity_s=0.25, start=0.0)
    keys = [(i % 3, i) for i in range(50)]
    for key in keys:
        wheel.schedule(key, 1.0 + (key[1] % 5) * 0.1)
    out = wheel.advance(2.0)
    assert sorted(out) == out
    assert set(out) == set(keys)


def test_time_backwards_rejected():
    wheel = TtlWheel(start=0.0)
    wheel.advance(2.0)
    with pytest.raises(ConfigurationError):
        wheel.advance(1.0)


def test_bad_construction_rejected():
    with pytest.raises(ConfigurationError):
        TtlWheel(granularity_s=0.0)
    with pytest.raises(ConfigurationError):
        TtlWheel(wheel_slots=1)


def test_steady_state_churn():
    """Keep-alive churn: repeatedly rescheduled keys never expire while
    refreshed, all expire once refreshes stop."""
    wheel = TtlWheel(granularity_s=0.25, start=0.0)
    keys = list(range(100))
    now = 0.0
    for _ in range(40):
        now += 0.5
        for key in keys:
            wheel.schedule(key, now + 3.0)
        assert wheel.advance(now) == []
    expired = []
    while now < 30.0 and len(expired) < len(keys):
        now += 0.5
        expired.extend(wheel.advance(now))
    assert sorted(expired) == keys
