"""Port-service tests."""
