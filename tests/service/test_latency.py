"""Service-side latency ledger: shard histograms, loadgen RTT, export.

The shard's queue-wait / drain-batch / ACK-latency histograms and the
loadgen's per-status RTT share one HDR geometry (1 µs to 60 s, in ms),
so the server's ``/metrics`` export and the loadgen's ``repro-loadgen/
v1`` document are directly diffable end to end.
"""

import asyncio

from repro.service import (
    LoadgenConfig,
    PortService,
    ServiceConfig,
    run_loadgen_async,
    wire,
)
from repro.service.loadgen import LoadgenReport, render_report
from repro.service.shard import PortShard

ADDR = ("127.0.0.1", 40000)


def _report():
    return LoadgenReport(config=LoadgenConfig(port=1))


def _offer_report(shard, aid, at=None, want_ack=False, seq=1):
    mac = bytes([0x02, 0x00]) + aid.to_bytes(4, "big")
    shard.offer(
        wire.encode_port_report(0, aid, mac, seq, {137}, want_ack),
        ADDR,
        at=at,
    )


class TestShardHistograms:
    def test_drain_records_queue_wait_from_ingress_stamp(self):
        shard = PortShard(0)
        _offer_report(shard, 1, at=1.0)
        _offer_report(shard, 2, at=1.25)
        shard.drain(1.5)
        waits = shard.queue_wait_ms
        assert waits.count == 2
        assert waits.min == 250.0  # (1.5 - 1.25) s in ms
        assert waits.max == 500.0
        assert shard.drain_batch_ms.count == 1

    def test_ack_latency_recorded_only_for_ack_worthy_messages(self):
        shard = PortShard(0)
        _offer_report(shard, 1, at=0.0, want_ack=True)
        _offer_report(shard, 2, at=0.0, want_ack=False)
        acks = []
        shard.drain(0.010, ack_sink=lambda payload, addr: acks.append(payload))
        assert len(acks) == 1
        assert shard.ack_latency_ms.count == 1
        # Queue wait plus the (tiny, host-measured) drain cost.
        assert shard.ack_latency_ms.min >= 10.0

    def test_unstamped_ingress_skips_latency(self):
        shard = PortShard(0)
        _offer_report(shard, 1)  # no `at`: pre-instrumentation call shape
        shard.drain(5.0)
        assert shard.queue_wait_ms.count == 0
        assert shard.counters.reports == 1

    def test_empty_drain_records_no_batch(self):
        shard = PortShard(0)
        shard.drain(0.0)
        assert shard.drain_batch_ms.count == 0

    def test_snapshot_carries_latency_section(self):
        shard = PortShard(3)
        _offer_report(shard, 1, at=0.0)
        shard.drain(0.001)
        snap = shard.snapshot()
        assert set(snap["latency"]) == {
            "queue_wait_ms",
            "drain_batch_ms",
            "ack_latency_ms",
        }
        assert snap["latency"]["queue_wait_ms"]["count"] == 1


class TestLoadgenReport:
    def test_rtt_recorded_per_status_and_merged(self):
        report = _report()
        report.record_rtt(0, 1.5)
        report.record_rtt(0, 2.5)
        report.record_rtt(2, 40.0)
        merged = report.merged_rtt()
        assert merged.count == 3
        assert merged.min == 1.5
        assert merged.max == 40.0
        assert report.rtt_ms_by_status[0].count == 2

    def test_empty_report_merges_to_ms_geometry(self):
        merged = _report().merged_rtt()
        assert merged.count == 0
        assert merged.max_value == 6e4  # ms geometry, not the default

    def test_document_latency_section(self):
        report = _report()
        report.sent_total = 1
        report.record_rtt(0, 3.0)
        document = report.to_document()
        assert document["achieved"]["acks_unmatched"] == 0
        latency = document["latency"]
        assert latency["rtt_ms"]["count"] == 1
        assert "0" in latency["rtt_ms_by_status"]

    def test_render_mentions_rtt(self):
        report = _report()
        report.acks_received = 1
        report.acks_by_status = {0: 1}
        report.record_rtt(0, 3.0)
        text = render_report(report)
        assert "rtt" in text
        assert "p99" in text


class TestEndToEndLatency:
    def test_live_service_populates_rtt_and_export(self):
        async def scenario():
            service = PortService(ServiceConfig(port=0, shards=2))
            await service.start()
            report = await run_loadgen_async(
                LoadgenConfig(
                    port=service.server_port,
                    clients=50,
                    rate=2000,
                    duration_s=0.8,
                    workers=2,
                    ack_every=4,
                )
            )
            await asyncio.sleep(0.2)
            service.collect_into_registry()
            registry = service.registry
            merged = service.merged_latency()
            await service.stop()
            return report, registry, merged

        report, registry, merged = asyncio.run(scenario())
        rtt = report.merged_rtt()
        assert rtt.count > 0
        assert rtt.count == report.acks_received - report.acks_unmatched
        assert merged["queue_wait_ms"].count == report.sent_total
        assert merged["ack_latency_ms"].count > 0
        count_series = registry.get("service_ack_latency_ms_count_total")
        assert count_series is not None and count_series.value > 0
        p99 = registry.get("service_ack_latency_ms", {"quantile": "p99"})
        assert p99 is not None and p99.value > 0.0
