import pytest

from repro.ap.association import AssociationTable
from repro.dot11.mac_address import MacAddress
from repro.errors import AssociationError


class TestAssociation:
    def test_aids_allocated_from_one(self):
        table = AssociationTable()
        records = [table.associate(MacAddress.station(i)) for i in range(3)]
        assert [r.aid for r in records] == [1, 2, 3]

    def test_reassociation_keeps_aid(self):
        table = AssociationTable()
        first = table.associate(MacAddress.station(1))
        again = table.associate(MacAddress.station(1), hide_capable=True)
        assert again.aid == first.aid
        assert again.hide_capable

    def test_disassociate_frees_aid(self):
        table = AssociationTable()
        table.associate(MacAddress.station(1))
        table.associate(MacAddress.station(2))
        table.disassociate(MacAddress.station(1))
        assert table.associate(MacAddress.station(3)).aid == 1

    def test_disassociate_unknown(self):
        table = AssociationTable()
        with pytest.raises(AssociationError):
            table.disassociate(MacAddress.station(9))

    def test_lookup_by_mac_and_aid(self):
        table = AssociationTable()
        record = table.associate(MacAddress.station(5))
        assert table.by_mac(MacAddress.station(5)) is record
        assert table.by_aid(record.aid) is record

    def test_lookup_missing(self):
        table = AssociationTable()
        with pytest.raises(AssociationError):
            table.by_mac(MacAddress.station(1))
        with pytest.raises(AssociationError):
            table.by_aid(1)
        assert table.get_by_mac(MacAddress.station(1)) is None

    def test_iteration_sorted_by_aid(self):
        table = AssociationTable()
        for i in (5, 3, 9):
            table.associate(MacAddress.station(i))
        aids = [record.aid for record in table]
        assert aids == sorted(aids)

    def test_power_save_tracking(self):
        table = AssociationTable()
        record = table.associate(MacAddress.station(1))
        assert table.any_in_power_save()  # PS by default
        record.power_save = False
        assert not table.any_in_power_save()

    def test_len(self):
        table = AssociationTable()
        assert len(table) == 0
        table.associate(MacAddress.station(1))
        assert len(table) == 1
