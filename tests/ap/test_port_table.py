import pytest

from repro.ap.port_table import ClientUdpPortTable, ExpiredEntry
from repro.errors import PortTableError


class TestUpdateSemantics:
    def test_update_and_lookup(self):
        table = ClientUdpPortTable()
        table.update_client(1, {5353, 1900})
        table.update_client(2, {5353})
        assert table.clients_for_port(5353) == frozenset({1, 2})
        assert table.clients_for_port(1900) == frozenset({1})
        assert table.clients_for_port(9999) == frozenset()

    def test_refresh_replaces_old_ports(self):
        table = ClientUdpPortTable()
        table.update_client(1, {5353, 1900})
        table.update_client(1, {137})
        assert table.clients_for_port(5353) == frozenset()
        assert table.clients_for_port(137) == frozenset({1})
        assert table.ports_for_client(1) == frozenset({137})

    def test_refresh_counts_delete_and_insert_ops(self):
        table = ClientUdpPortTable()
        table.update_client(1, {10, 20, 30})
        assert table.stats.inserts == 3
        assert table.stats.deletes == 0
        table.update_client(1, {30, 40})
        # Paper semantics: delete all old, insert all new.
        assert table.stats.deletes == 3
        assert table.stats.inserts == 5

    def test_empty_update_rejected(self):
        table = ClientUdpPortTable()
        table.update_client(1, {5353})
        with pytest.raises(PortTableError):
            table.update_client(1, set())
        # The rejected report leaves the stored state untouched.
        assert table.ports_for_client(1) == frozenset({5353})
        table.remove_client(1)
        assert table.client_count == 0
        assert table.clients_for_port(5353) == frozenset()

    def test_aid_bounds_rejected(self):
        table = ClientUdpPortTable()
        with pytest.raises(PortTableError):
            table.update_client(0, {5353})
        with pytest.raises(PortTableError):
            table.update_client(2008, {5353})
        table.update_client(2007, {5353})  # the highest legal AID
        assert table.port_is_open_for(5353, 2007)

    def test_remove_client(self):
        table = ClientUdpPortTable()
        table.update_client(1, {5353, 137})
        table.update_client(2, {5353})
        table.remove_client(1)
        assert table.clients_for_port(5353) == frozenset({2})
        assert table.clients_for_port(137) == frozenset()
        assert table.ports_for_client(1) == frozenset()

    def test_remove_unknown_client_is_noop(self):
        table = ClientUdpPortTable()
        table.remove_client(42)
        assert len(table) == 0

    def test_port_validation(self):
        table = ClientUdpPortTable()
        with pytest.raises(ValueError):
            table.update_client(1, {0})
        with pytest.raises(ValueError):
            table.update_client(1, {65536})
        # The typed exception is also a ValueError, so pre-existing
        # callers that caught ValueError still work.
        with pytest.raises(PortTableError):
            table.update_client(1, {0})

    def test_len_counts_pairs(self):
        table = ClientUdpPortTable()
        table.update_client(1, {10, 20})
        table.update_client(2, {10})
        assert len(table) == 3
        assert table.distinct_ports == 2
        assert table.client_count == 2

    def test_port_is_open_for(self):
        table = ClientUdpPortTable()
        table.update_client(3, {17500})
        assert table.port_is_open_for(17500, 3)
        assert not table.port_is_open_for(17500, 4)


class TestExpiry:
    def test_expire_returns_full_entries(self):
        table = ClientUdpPortTable()
        table.update_client(1, {5353, 1900}, now=0.0)
        table.update_client(2, {137}, now=5.0)
        expired = table.expire_older_than(4.0)
        assert expired == [
            ExpiredEntry(aid=1, ports=frozenset({5353, 1900}), updated_at=0.0)
        ]
        assert table.aids() == frozenset({2})
        assert table.stats.expirations == 1

    def test_expire_sorted_by_aid(self):
        table = ClientUdpPortTable()
        for aid in (7, 3, 5):
            table.update_client(aid, {aid + 1000}, now=0.0)
        expired = table.expire_older_than(1.0)
        assert [entry.aid for entry in expired] == [3, 5, 7]

    def test_touch_refreshes_timestamp(self):
        table = ClientUdpPortTable()
        table.update_client(1, {5353}, now=0.0)
        assert table.touch(1, now=10.0)
        assert table.expire_older_than(5.0) == []
        assert table.updated_at(1) == 10.0

    def test_touch_unknown_client_is_refused(self):
        table = ClientUdpPortTable()
        assert not table.touch(9, now=1.0)
        assert table.updated_at(9) is None


class TestStats:
    def test_lookup_counted(self):
        table = ClientUdpPortTable()
        table.clients_for_port(1)
        table.clients_for_port(2)
        assert table.stats.lookups == 2

    def test_reset(self):
        table = ClientUdpPortTable()
        table.update_client(1, {5})
        table.stats.reset()
        assert table.stats.inserts == 0
        assert table.stats.refreshes == 0


class TestMeasurement:
    def test_measure_leaves_table_unchanged(self):
        table = ClientUdpPortTable()
        table.update_client(1, {5353})
        before_pairs = len(table)
        times = table.measure_operation_times(samples=10)
        assert len(table) == before_pairs
        assert times.insert_s >= 0
        assert times.delete_s >= 0
        assert times.lookup_s >= 0

    def test_measure_returns_plausible_magnitudes(self):
        table = ClientUdpPortTable()
        times = table.measure_operation_times(samples=50)
        # Python dict ops on a laptop: well under a millisecond each.
        assert times.insert_s < 1e-3
        assert times.lookup_s < 1e-3
