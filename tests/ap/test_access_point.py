"""DES-level AP behaviour: beaconing, DTIM bursts, port messages."""

import pytest

from repro.ap.access_point import AccessPoint, ApConfig
from repro.dot11.control import Ack
from repro.dot11.management import Beacon, UdpPortMessage
from repro.dot11.mac_address import MacAddress
from repro.errors import ConfigurationError
from repro.net.packet import build_broadcast_udp_packet
from repro.sim.engine import Simulator
from repro.sim.entity import Entity
from repro.sim.medium import Medium

AP_MAC = MacAddress.from_string("02:aa:00:00:00:01")
WIRED_SRC = MacAddress.from_string("02:bb:00:00:00:99")


class Sniffer(Entity):
    """Captures every frame on the medium."""

    def __init__(self):
        super().__init__("sniffer")
        self.frames = []

    def on_receive(self, transmission):
        self.frames.append((self.now, transmission.frame))

    def of_type(self, frame_type):
        return [f for _, f in self.frames if isinstance(f, frame_type)]


def make_ap(config=None):
    sim = Simulator()
    medium = Medium(sim)
    ap = AccessPoint(AP_MAC, medium, config or ApConfig())
    medium.attach(ap)
    sniffer = Sniffer()
    medium.attach(sniffer)
    return sim, medium, ap, sniffer


class TestBeaconing:
    def test_beacons_at_interval(self):
        sim, medium, ap, sniffer = make_ap()
        sim.run(until=1.0)
        beacons = sniffer.of_type(Beacon)
        assert len(beacons) == 9  # every 102.4 ms starting at t=102.4ms
        assert ap.counters.beacons_sent == 9

    def test_every_beacon_is_dtim_with_period_one(self):
        sim, medium, ap, sniffer = make_ap(ApConfig(dtim_period=1))
        sim.run(until=0.5)
        for beacon in sniffer.of_type(Beacon):
            assert beacon.tim.is_dtim

    def test_dtim_period_three_counts_down(self):
        sim, medium, ap, sniffer = make_ap(ApConfig(dtim_period=3))
        sim.run(until=1.0)
        counts = [b.tim.dtim_count for b in sniffer.of_type(Beacon)]
        assert counts[:6] == [0, 1, 2, 0, 1, 2]

    def test_btim_present_when_hide_enabled(self):
        sim, medium, ap, sniffer = make_ap(ApConfig(hide_enabled=True))
        sim.run(until=0.3)
        assert all(b.btim is not None for b in sniffer.of_type(Beacon))

    def test_no_btim_when_hide_disabled(self):
        sim, medium, ap, sniffer = make_ap(ApConfig(hide_enabled=False))
        sim.run(until=0.3)
        assert all(b.btim is None for b in sniffer.of_type(Beacon))

    def test_beacons_parse_from_real_bytes(self):
        sim, medium, ap, sniffer = make_ap()
        captured = []
        original = sniffer.on_receive

        def checking(transmission):
            if isinstance(transmission.frame, Beacon):
                captured.append(Beacon.from_bytes(transmission.frame_bytes))
            original(transmission)

        sniffer.on_receive = checking
        sim.run(until=0.3)
        assert captured and all(b.bssid == AP_MAC for b in captured)


class TestBroadcastBuffering:
    def test_frames_buffered_until_dtim(self):
        sim, medium, ap, sniffer = make_ap()
        ap.associate(MacAddress.station(1))  # PS client forces buffering
        packet = build_broadcast_udp_packet(5353, b"x")
        sim.schedule(0.01, lambda: ap.deliver_from_ds(packet, WIRED_SRC))
        sim.run(until=0.09)
        # Before the first DTIM nothing is on the air.
        assert ap.counters.broadcast_frames_sent == 0
        assert len(ap.broadcast_buffer) == 1
        sim.run(until=0.2)
        assert ap.counters.broadcast_frames_sent == 1

    def test_group_bit_set_when_buffered(self):
        sim, medium, ap, sniffer = make_ap()
        ap.associate(MacAddress.station(1))
        packet = build_broadcast_udp_packet(5353, b"x")
        sim.schedule(0.01, lambda: ap.deliver_from_ds(packet, WIRED_SRC))
        sim.run(until=0.11)
        first_beacon = sniffer.of_type(Beacon)[0]
        assert first_beacon.tim.group_traffic_buffered

    def test_immediate_send_without_ps_clients(self):
        sim, medium, ap, sniffer = make_ap()
        record = ap.associate(MacAddress.station(1))
        record.power_save = False
        packet = build_broadcast_udp_packet(5353, b"x")
        sim.schedule(0.01, lambda: ap.deliver_from_ds(packet, WIRED_SRC))
        sim.run(until=0.05)
        assert ap.counters.broadcast_frames_sent == 1

    def test_burst_more_data_bits(self):
        from repro.dot11.data import DataFrame

        sim, medium, ap, sniffer = make_ap()
        ap.associate(MacAddress.station(1))
        for port in (137, 138, 1900):
            packet = build_broadcast_udp_packet(port, b"x")
            sim.schedule(0.01, lambda p=packet: ap.deliver_from_ds(p, WIRED_SRC))
        sim.run(until=0.25)
        data = sniffer.of_type(DataFrame)
        assert [f.more_data for f in data] == [True, True, False]


class TestBtimFlags:
    def test_btim_flags_only_listening_clients(self):
        sim, medium, ap, sniffer = make_ap()
        r1 = ap.associate(MacAddress.station(1), hide_capable=True)
        r2 = ap.associate(MacAddress.station(2), hide_capable=True)
        ap.port_table.update_client(r1.aid, {5353})
        ap.port_table.update_client(r2.aid, {137})
        packet = build_broadcast_udp_packet(5353, b"x")
        sim.schedule(0.01, lambda: ap.deliver_from_ds(packet, WIRED_SRC))
        sim.run(until=0.11)
        dtim = sniffer.of_type(Beacon)[0]
        assert dtim.btim.indicates_useful_broadcast_for(r1.aid)
        assert not dtim.btim.indicates_useful_broadcast_for(r2.aid)

    def test_port_message_updates_table_and_acks(self):
        sim, medium, ap, sniffer = make_ap()
        record = ap.associate(MacAddress.station(1), hide_capable=True)

        class Sender(Entity):
            def on_attach(self):
                message = UdpPortMessage(
                    source=MacAddress.station(1), bssid=AP_MAC,
                    ports=frozenset({5353, 1900}),
                )
                self.simulator.schedule(
                    0.005,
                    lambda: medium.transmit(self, message, message.to_bytes(), 1e6),
                )

        medium.attach(Sender("sender"))
        sim.run(until=0.05)
        assert ap.counters.port_messages_received == 1
        assert ap.port_table.ports_for_client(record.aid) == frozenset({5353, 1900})
        assert len(sniffer.of_type(Ack)) == 1

    def test_port_message_from_unassociated_ignored(self):
        sim, medium, ap, sniffer = make_ap()

        class Sender(Entity):
            def on_attach(self):
                message = UdpPortMessage(
                    source=MacAddress.station(9), bssid=AP_MAC,
                    ports=frozenset({5353}),
                )
                self.simulator.schedule(
                    0.005,
                    lambda: medium.transmit(self, message, message.to_bytes(), 1e6),
                )

        medium.attach(Sender("sender"))
        sim.run(until=0.05)
        assert ap.counters.port_messages_received == 0
        assert sniffer.of_type(Ack) == []

    def test_disassociate_clears_port_table(self):
        sim, medium, ap, sniffer = make_ap()
        record = ap.associate(MacAddress.station(1))
        ap.port_table.update_client(record.aid, {5353})
        ap.disassociate(MacAddress.station(1))
        assert ap.port_table.ports_for_client(record.aid) == frozenset()


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ApConfig(beacon_interval_s=0)
        with pytest.raises(ConfigurationError):
            ApConfig(dtim_period=0)
