"""Algorithm 1 tests: traffic differentiation at the AP."""

import pytest

from repro.ap.flags import compute_broadcast_flags, frame_udp_port
from repro.ap.port_table import ClientUdpPortTable
from repro.dot11.data import DataFrame
from repro.dot11.llc import ETHERTYPE_ARP, LlcSnapHeader
from repro.dot11.mac_address import BROADCAST, MacAddress
from repro.net.packet import build_broadcast_udp_packet

BSSID = MacAddress.from_string("02:aa:00:00:00:01")
SRC = MacAddress.from_string("02:bb:00:00:00:99")


def udp_frame(port: int) -> DataFrame:
    return DataFrame.broadcast_udp(
        bssid=BSSID, source=SRC, ip_packet=build_broadcast_udp_packet(port, b"svc")
    )


class TestFrameUdpPort:
    def test_extracts_port_from_real_bytes(self):
        assert frame_udp_port(udp_frame(5353)) == 5353

    def test_non_ip_frame_gives_none(self):
        frame = DataFrame(
            destination=BROADCAST,
            bssid=BSSID,
            source=SRC,
            llc_payload=LlcSnapHeader.wrap(ETHERTYPE_ARP, b"\x00" * 28),
        )
        assert frame_udp_port(frame) is None

    def test_malformed_payload_gives_none(self):
        frame = DataFrame(
            destination=BROADCAST, bssid=BSSID, source=SRC, llc_payload=b"garbage!"
        )
        assert frame_udp_port(frame) is None


class TestAlgorithm1:
    def test_flags_set_for_listening_clients(self):
        table = ClientUdpPortTable()
        table.update_client(1, {5353})
        table.update_client(2, {1900})
        table.update_client(3, {5353, 1900})
        flags = compute_broadcast_flags([udp_frame(5353)], table)
        assert flags == frozenset({1, 3})

    def test_multiple_frames_union(self):
        table = ClientUdpPortTable()
        table.update_client(1, {5353})
        table.update_client(2, {1900})
        flags = compute_broadcast_flags([udp_frame(5353), udp_frame(1900)], table)
        assert flags == frozenset({1, 2})

    def test_no_buffered_frames_no_flags(self):
        table = ClientUdpPortTable()
        table.update_client(1, {5353})
        assert compute_broadcast_flags([], table) == frozenset()

    def test_no_listeners_no_flags(self):
        table = ClientUdpPortTable()
        table.update_client(1, {137})
        assert compute_broadcast_flags([udp_frame(5353)], table) == frozenset()

    def test_unparseable_frames_wake_nobody(self):
        table = ClientUdpPortTable()
        table.update_client(1, {5353})
        bad = DataFrame(
            destination=BROADCAST, bssid=BSSID, source=SRC, llc_payload=b"xx"
        )
        assert compute_broadcast_flags([bad], table) == frozenset()

    def test_duplicate_ports_single_lookup_each_frame(self):
        table = ClientUdpPortTable()
        table.update_client(1, {5353})
        table.stats.reset()
        compute_broadcast_flags([udp_frame(5353)] * 4, table)
        # One lookup per buffered frame, as in Algorithm 1's loop.
        assert table.stats.lookups == 4
