import pytest

from repro.ap.buffer import BroadcastBuffer, UnicastBuffer
from repro.dot11.data import DataFrame
from repro.dot11.mac_address import MacAddress
from repro.net.packet import build_broadcast_udp_packet

BSSID = MacAddress.from_string("02:aa:00:00:00:01")
SRC = MacAddress.from_string("02:bb:00:00:00:99")


def bframe(port=137):
    return DataFrame.broadcast_udp(
        bssid=BSSID, source=SRC, ip_packet=build_broadcast_udp_packet(port, b"x")
    )


def uframe(dest: MacAddress):
    return DataFrame(
        destination=dest, bssid=BSSID, source=SRC,
        llc_payload=bframe().llc_payload,
    )


class TestBroadcastBuffer:
    def test_fifo_order(self):
        buffer = BroadcastBuffer()
        frames = [bframe(100 + i) for i in range(3)]
        for frame in frames:
            buffer.enqueue(frame)
        drained = buffer.drain()
        assert [f.llc_payload for f in drained] == [f.llc_payload for f in frames]

    def test_more_data_bits_on_drain(self):
        buffer = BroadcastBuffer()
        for i in range(3):
            buffer.enqueue(bframe())
        drained = buffer.drain()
        assert [f.more_data for f in drained] == [True, True, False]

    def test_drain_empties(self):
        buffer = BroadcastBuffer()
        buffer.enqueue(bframe())
        buffer.drain()
        assert len(buffer) == 0
        assert buffer.drain() == []

    def test_peek_does_not_consume(self):
        buffer = BroadcastBuffer()
        buffer.enqueue(bframe())
        assert len(buffer.peek_all()) == 1
        assert len(buffer) == 1

    def test_capacity_and_drop_counting(self):
        buffer = BroadcastBuffer(capacity=2)
        assert buffer.enqueue(bframe())
        assert buffer.enqueue(bframe())
        assert not buffer.enqueue(bframe())
        assert buffer.dropped == 1
        assert len(buffer) == 2

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            BroadcastBuffer(capacity=0)

    def test_single_frame_has_no_more_data(self):
        buffer = BroadcastBuffer()
        buffer.enqueue(bframe())
        assert buffer.drain()[0].more_data is False


class TestUnicastBuffer:
    def test_per_client_queues(self):
        buffer = UnicastBuffer()
        a, b = MacAddress.station(1), MacAddress.station(2)
        buffer.enqueue(uframe(a))
        buffer.enqueue(uframe(b))
        assert buffer.has_frames_for(a)
        assert set(buffer.clients_with_traffic()) == {a, b}

    def test_pop_sets_more_data(self):
        buffer = UnicastBuffer()
        a = MacAddress.station(1)
        buffer.enqueue(uframe(a))
        buffer.enqueue(uframe(a))
        first = buffer.pop_for(a)
        assert first.more_data
        second = buffer.pop_for(a)
        assert not second.more_data
        assert buffer.pop_for(a) is None

    def test_capacity(self):
        buffer = UnicastBuffer(per_client_capacity=1)
        a = MacAddress.station(1)
        assert buffer.enqueue(uframe(a))
        assert not buffer.enqueue(uframe(a))
        assert buffer.dropped == 1

    def test_pop_for_unknown_client(self):
        buffer = UnicastBuffer()
        assert buffer.pop_for(MacAddress.station(7)) is None
