"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.dot11.mac_address import MacAddress
from repro.energy.profile import GALAXY_S4, NEXUS_ONE
from repro.traces.frame_record import BroadcastFrameRecord
from repro.traces.scenarios import ScenarioSpec
from repro.traces.trace import BroadcastTrace
from repro.units import mbps


@pytest.fixture
def ap_mac() -> MacAddress:
    return MacAddress.from_string("02:aa:00:00:00:01")


@pytest.fixture
def sta_mac() -> MacAddress:
    return MacAddress.station(1)


@pytest.fixture
def nexus_one():
    return NEXUS_ONE


@pytest.fixture
def galaxy_s4():
    return GALAXY_S4


def make_record(
    time: float,
    port: int = 5353,
    length: int = 200,
    rate: float = mbps(1),
    more: bool = False,
) -> BroadcastFrameRecord:
    """Convenience constructor used across trace/energy tests."""
    return BroadcastFrameRecord(
        time=time, udp_port=port, length_bytes=length, rate_bps=rate, more_data=more
    )


def make_trace(times, duration: float = None, name: str = "test", **kwargs):
    """A small trace with frames at the given times."""
    records = tuple(make_record(t, **kwargs) for t in times)
    if duration is None:
        duration = (records[-1].time + 5.0) if records else 10.0
    return BroadcastTrace(name=name, duration_s=duration, records=records)


@pytest.fixture
def tiny_scenario() -> ScenarioSpec:
    """A short scenario for fast end-to-end experiment tests."""
    return ScenarioSpec(
        name="tiny",
        duration_s=60.0,
        quiet_rate_fps=0.5,
        burst_rate_fps=20.0,
        quiet_dwell_s=5.0,
        burst_dwell_s=1.0,
        seed=7,
    )
