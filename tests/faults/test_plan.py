"""FaultPlan: validation, null detection, serialization, spec parsing."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    BEACON_KIND,
    MAX_CLOCK_JITTER_S,
    ClientCrashEvent,
    FaultPlan,
)


class TestValidation:
    def test_default_plan_is_null(self):
        assert FaultPlan().is_null

    @pytest.mark.parametrize("rate", [-0.1, 1.1])
    def test_rejects_bad_probabilities(self, rate):
        with pytest.raises(ConfigurationError):
            FaultPlan(default_loss=rate)
        with pytest.raises(ConfigurationError):
            FaultPlan(beacon_loss=rate)
        with pytest.raises(ConfigurationError):
            FaultPlan(loss_by_kind={"DataFrame": rate})

    def test_rejects_excess_jitter(self):
        FaultPlan(clock_jitter_s=MAX_CLOCK_JITTER_S)  # boundary is legal
        with pytest.raises(ConfigurationError):
            FaultPlan(clock_jitter_s=MAX_CLOCK_JITTER_S * 1.01)

    def test_crash_event_ordering(self):
        with pytest.raises(ConfigurationError):
            ClientCrashEvent(client_index=0, crash_at_s=5.0, rejoin_at_s=5.0)
        with pytest.raises(ConfigurationError):
            ClientCrashEvent(client_index=0, crash_at_s=0.0)
        with pytest.raises(ConfigurationError):
            ClientCrashEvent(client_index=-1, crash_at_s=1.0)

    def test_null_detection_covers_every_knob(self):
        assert not FaultPlan(default_loss=0.1).is_null
        assert not FaultPlan(beacon_loss=0.1).is_null
        assert not FaultPlan(clock_jitter_s=1e-4).is_null
        assert not FaultPlan(loss_by_kind={"Ack": 0.5}).is_null
        assert not FaultPlan(
            crashes=(ClientCrashEvent(0, crash_at_s=1.0),)
        ).is_null
        # Zero-valued overrides inject nothing.
        assert FaultPlan(loss_by_kind={"Ack": 0.0}).is_null
        # The seed alone never makes a plan non-null.
        assert FaultPlan(seed=123).is_null


class TestLossLookup:
    def test_beacons_exempt_from_default_loss(self):
        plan = FaultPlan.uniform(0.3)
        assert plan.loss_for_kind("DataFrame") == 0.3
        assert plan.loss_for_kind(BEACON_KIND) == 0.0

    def test_per_kind_override_beats_default(self):
        plan = FaultPlan(default_loss=0.1, loss_by_kind={"UdpPortMessage": 0.9})
        assert plan.loss_for_kind("UdpPortMessage") == 0.9
        assert plan.loss_for_kind("DataFrame") == 0.1

    def test_beacon_loss_via_its_own_knob(self):
        plan = FaultPlan(beacon_loss=0.25)
        assert plan.loss_for_kind(BEACON_KIND) == 0.25


class TestSerialization:
    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=7,
            default_loss=0.1,
            loss_by_kind={"Ack": 0.5},
            beacon_loss=0.02,
            clock_jitter_s=1e-4,
            crashes=(
                ClientCrashEvent(0, crash_at_s=5.0, rejoin_at_s=15.0),
                ClientCrashEvent(2, crash_at_s=9.0),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.from_json("[1, 2]")
        with pytest.raises(ConfigurationError):
            FaultPlan.from_json("{not json")

    def test_parse_reads_json_file(self, tmp_path):
        plan = FaultPlan(seed=3, default_loss=0.05)
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert FaultPlan.parse(str(path)) == plan


class TestInlineSpec:
    def test_full_spec(self):
        plan = FaultPlan.parse(
            "loss=0.1, beacon=0.05, seed=7, jitter=1e-4,"
            " UdpPortMessage=0.5, crash=0@5:15, crash=1@9"
        )
        assert plan.seed == 7
        assert plan.default_loss == 0.1
        assert plan.beacon_loss == 0.05
        assert plan.clock_jitter_s == pytest.approx(1e-4)
        assert plan.loss_by_kind == {"UdpPortMessage": 0.5}
        assert plan.crashes == (
            ClientCrashEvent(0, crash_at_s=5.0, rejoin_at_s=15.0),
            ClientCrashEvent(1, crash_at_s=9.0),
        )

    def test_rejects_unknown_key_and_bad_values(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("bogus=1")
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("loss")
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("loss=high")
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("crash=0")
