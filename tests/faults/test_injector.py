"""FaultInjector: determinism, stream independence, drop accounting."""

from repro.dot11.data import DataFrame
from repro.dot11.mac_address import BROADCAST, MacAddress
from repro.dot11.management import Beacon, UdpPortMessage
from repro.dot11.elements.tim import TimElement
from repro.faults import FaultInjector, FaultPlan

AP = MacAddress.from_string("02:aa:00:00:00:01")
STA = MacAddress.station(1)


def _data(seq: int = 1) -> DataFrame:
    return DataFrame(
        destination=BROADCAST, bssid=AP, source=AP, llc_payload=b"x", sequence=seq
    )


def _beacon() -> Beacon:
    return Beacon(
        bssid=AP,
        timestamp_us=0,
        beacon_interval_tu=100,
        tim=TimElement(dtim_count=0, dtim_period=1),
    )


def _port_message() -> UdpPortMessage:
    return UdpPortMessage(
        source=STA, bssid=AP, ports=frozenset({5353}), report_sequence=1, sequence=2
    )


class TestDeterminism:
    def test_same_plan_same_decisions(self):
        pair = [FaultInjector(FaultPlan.uniform(0.5, seed=11)) for _ in range(2)]
        seq_a = [pair[0].should_drop(_data()) for _ in range(200)]
        seq_b = [pair[1].should_drop(_data()) for _ in range(200)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)

    def test_different_seeds_differ(self):
        a = FaultInjector(FaultPlan.uniform(0.5, seed=1))
        b = FaultInjector(FaultPlan.uniform(0.5, seed=2))
        assert [a.should_drop(_data()) for _ in range(100)] != [
            b.should_drop(_data()) for _ in range(100)
        ]

    def test_jitter_stream_independent_of_loss_stream(self):
        """Adding jitter to a plan must not change which frames drop."""
        plain = FaultInjector(FaultPlan.uniform(0.5, seed=11))
        jittered = FaultInjector(
            FaultPlan.uniform(0.5, seed=11, clock_jitter_s=1e-4)
        )
        drops = []
        for injector in (plain, jittered):
            sequence = []
            for _ in range(100):
                sequence.append(injector.should_drop(_data()))
                injector.delivery_jitter_s()
            drops.append(sequence)
        assert drops[0] == drops[1]

    def test_zero_rate_kinds_never_consult_rng(self):
        """Turning loss on for one kind leaves other kinds' draws alone."""
        plan = FaultPlan(seed=11, loss_by_kind={"UdpPortMessage": 0.5})
        injector = FaultInjector(plan)
        for _ in range(50):
            assert not injector.should_drop(_data())
        assert injector.decisions == 0
        port_drops = [injector.should_drop(_port_message()) for _ in range(50)]
        assert injector.decisions == 50
        # The port-message draw sequence matches a run without the
        # interleaved data frames (which took no draws).
        clean = FaultInjector(plan)
        assert [clean.should_drop(_port_message()) for _ in range(50)] == port_drops


class TestAccounting:
    def test_certain_loss_drops_everything(self):
        injector = FaultInjector(FaultPlan(loss_by_kind={"DataFrame": 1.0}))
        for _ in range(10):
            assert injector.should_drop(_data())
        assert injector.drops_of("DataFrame") == 10
        assert injector.injected_drops == 10
        assert injector.drops_by_kind == {"DataFrame": 10}

    def test_beacon_loss_only_hits_beacons(self):
        injector = FaultInjector(FaultPlan(beacon_loss=1.0))
        assert injector.should_drop(_beacon())
        assert not injector.should_drop(_data())
        assert injector.drops_by_kind == {"Beacon": 1}

    def test_jitter_bounded_and_zero_without_knob(self):
        assert FaultInjector(FaultPlan()).delivery_jitter_s() == 0.0
        injector = FaultInjector(FaultPlan(clock_jitter_s=2e-4))
        samples = [injector.delivery_jitter_s() for _ in range(200)]
        assert all(0.0 <= s <= 2e-4 for s in samples)
        assert max(samples) > 0.0
