"""The profiler's prime directive: attribution never perturbs the run.

Attaching an :class:`AttributionProfiler` adds no events, removes none,
and reorders none — so the same seeded scenario must produce the exact
same determinism fingerprint with profiling off, in exact mode, and in
sampling mode, on both queue backends. These tests pin that, plus the
attribution-sum acceptance check (per-site wall + scheduler overhead
reconstructs the run wall) and the ``repro profile`` CLI surface.
"""

import json

import pytest

from repro.experiments.des_run import DesRunConfig, run_trace_des
from repro.obs.profiler import PROFILE_SCHEMA, ProfilerConfig
from repro.traces import generate_trace, scenario_by_name

_DURATION_S = 12.0


def _fingerprint(trace, queue, profiler):
    config = DesRunConfig(
        client_count=3,
        duration_s=_DURATION_S,
        queue_backend=queue,
        profiler=profiler,
    )
    result = run_trace_des(trace, config)
    try:
        return result.deterministic_fingerprint(), result
    finally:
        result.close()


@pytest.fixture(scope="module")
def trace():
    return generate_trace(scenario_by_name("Classroom"), seed=7)


class TestFingerprintIdentity:
    @pytest.mark.parametrize("queue", ["heap", "calendar"])
    def test_profiling_never_changes_the_fingerprint(self, trace, queue):
        baseline, _ = _fingerprint(trace, queue, None)
        exact, exact_result = _fingerprint(
            trace, queue, ProfilerConfig(mode="exact")
        )
        sampling, sampling_result = _fingerprint(
            trace, queue, ProfilerConfig(mode="sampling", stride=16)
        )
        assert exact == baseline
        assert sampling == baseline
        # And the profilers actually observed the whole run.
        assert (
            exact_result.profiler.events_seen
            == exact_result.simulator.events_processed
        )
        assert (
            sampling_result.profiler.events_seen
            == sampling_result.simulator.events_processed
        )

    def test_profiled_metrics_exclude_profiler_series(self, trace):
        _, result = _fingerprint(trace, "calendar", ProfilerConfig(mode="exact"))
        names = {
            metric.name for metric in result.collect_metrics().collect()
        }
        assert not any(name.startswith("repro_profile_") for name in names)


class TestAttributionSums:
    def test_exact_sites_reconstruct_the_run_wall(self, trace):
        _, result = _fingerprint(trace, "calendar", ProfilerConfig(mode="exact"))
        profiler = result.profiler
        document = result.profile_report()
        site_sum = sum(site["wall_s"] for site in document["sites"])
        assert document["attributed_wall_s"] == pytest.approx(site_sum)
        # attributed + scheduler overhead == run wall, exactly by
        # construction when attributed <= run wall (the overhead is
        # clamped at zero otherwise — timer granularity noise).
        assert (
            document["attributed_wall_s"] + document["scheduler_overhead_s"]
            >= document["run_wall_s"] * (1.0 - 1e-9)
        )
        assert document["run_wall_s"] == pytest.approx(
            result.simulator.run_wall_time_s
        )
        # The callbacks can't have taken longer than the whole loop by
        # more than perf_counter jitter (~µs per event).
        jitter_budget = 2e-6 * profiler.events_seen
        assert document["attributed_wall_s"] <= (
            document["run_wall_s"] + jitter_budget
        )

    def test_exact_event_counts_are_exact(self, trace):
        _, result = _fingerprint(trace, "calendar", ProfilerConfig(mode="exact"))
        document = result.profile_report()
        assert document["events_attributed"] == document["events_total"]
        assert document["events_total"] == result.simulator.events_processed

    def test_sampling_estimates_land_near_truth(self, trace):
        _, result = _fingerprint(
            trace, "calendar", ProfilerConfig(mode="sampling", stride=8)
        )
        document = result.profile_report()
        truth = document["events_total"]
        estimate = document["events_attributed"]
        assert truth > 0
        # The stride estimator is unbiased; allow one stride of slack.
        assert abs(estimate - truth) <= 8


class TestProfileCli:
    def test_profile_command_emits_report_and_collapsed(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "profile.json"
        folded = tmp_path / "stacks.folded"
        code = main(
            [
                "profile", "Classroom",
                "--duration", "8",
                "--mode", "exact",
                "--out", str(out),
                "--collapsed", str(folded),
                "--top", "5",
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "hotspots (exact)" in captured
        assert "scheduler" in captured
        document = json.loads(out.read_text())
        assert document["schema"] == PROFILE_SCHEMA
        assert document["sites"], "profile saw no sites"
        lines = folded.read_text().splitlines()
        assert lines, "collapsed stacks are empty"
        for line in lines:
            frames, _, usec = line.rpartition(" ")
            assert len(frames.split(";")) == 3
            int(usec)  # integer microseconds
        # The collapsed totals agree with the JSON report's sites.
        collapsed_total = sum(int(l.rpartition(" ")[2]) for l in lines)
        json_total = sum(s["wall_s"] for s in document["sites"]) * 1e6
        assert collapsed_total == pytest.approx(json_total, abs=len(lines))

    def test_profile_command_sampling_mode(self, capsys):
        from repro.cli import main

        code = main(
            ["profile", "Classroom", "--duration", "6",
             "--mode", "sampling", "--stride", "8"]
        )
        assert code == 0
        assert "sampling, stride 8" in capsys.readouterr().out
