"""Cross-validation: the DES and the closed-form model must agree.

The paper's evaluation is trace-driven through the Section IV closed
form; the DES implements the same protocol mechanics event by event.
Feeding both the same broadcast schedule must produce the same wake-up
counts and closely matching suspend fractions.
"""

import pytest

from repro.ap.access_point import AccessPoint, ApConfig
from repro.dot11.mac_address import MacAddress
from repro.energy.dynamics import FrameEvent
from repro.energy.model import EnergyModel
from repro.energy.profile import NEXUS_ONE
from repro.energy.timeline import build_timeline
from repro.net.packet import build_broadcast_udp_packet
from repro.sim.engine import Simulator
from repro.sim.medium import Medium
from repro.station.client import Client, ClientConfig, ClientPolicy
from repro.station.power import PowerState
from repro.units import mbps

AP_MAC = MacAddress.from_string("02:aa:00:00:00:01")
WIRED_SRC = MacAddress.from_string("02:bb:00:00:00:99")

USEFUL_PORT = 5353
USELESS_PORT = 137


def run_des(offered, policy, duration, tau=1.0):
    """Run the DES; returns (client, on-air schedule of received frames)."""
    sim = Simulator()
    medium = Medium(sim)
    ap = AccessPoint(AP_MAC, medium, ApConfig())
    medium.attach(ap)
    client = Client(
        MacAddress.station(1), medium, AP_MAC,
        ClientConfig(
            policy=policy,
            wakelock_timeout_s=tau,
            resume_duration_s=NEXUS_ONE.resume_duration_s,
            suspend_duration_s=NEXUS_ONE.suspend_duration_s,
        ),
    )
    medium.attach(client)
    record = ap.associate(client.mac, hide_capable=True)
    client.set_aid(record.aid)
    client.open_port(USEFUL_PORT)

    on_air = []

    from repro.dot11.data import DataFrame

    class AirSniffer:
        pass

    from repro.sim.entity import Entity

    class Sniffer(Entity):
        def on_receive(self, transmission):
            if isinstance(transmission.frame, DataFrame):
                on_air.append(
                    (
                        transmission.start_time,
                        transmission.frame,
                        transmission.length_bytes,
                        transmission.rate_bps,
                    )
                )

    medium.attach(Sniffer("sniffer"))
    for time, port in offered:
        packet = build_broadcast_udp_packet(port, b"x" * 100)
        sim.schedule(time, lambda p=packet: ap.deliver_from_ds(p, WIRED_SRC))
    sim.run(until=duration)
    return client, on_air


def events_from_air(on_air, useful_only):
    from repro.ap.flags import frame_udp_port

    events = []
    for start, frame, length, rate in on_air:
        port = frame_udp_port(frame)
        useful = port == USEFUL_PORT
        if useful_only and not useful:
            continue
        events.append(
            FrameEvent(
                time=start,
                length_bytes=length,
                rate_bps=rate,
                useful=useful,
                more_data=frame.more_data,
            )
        )
    return events


# Offered schedule: sparse singletons + one burst, mixed usefulness.
OFFERED = (
    [(1.0, USEFUL_PORT), (4.0, USELESS_PORT), (7.5, USEFUL_PORT)]
    + [(12.0 + 0.01 * i, USELESS_PORT) for i in range(5)]
    + [(12.03, USEFUL_PORT), (20.0, USEFUL_PORT)]
)
DURATION = 30.0


class TestReceiveAllAgreement:
    def test_resume_count_matches_model(self):
        client, on_air = run_des(OFFERED, ClientPolicy.RECEIVE_ALL, DURATION)
        events = events_from_air(on_air, useful_only=False)
        model = EnergyModel(NEXUS_ONE)
        dynamics = model.derive_dynamics(events)
        model_resumes = sum(1 for d in dynamics if d.suspended_on_arrival)
        assert client.power.counters.resumes == model_resumes

    def test_suspend_fraction_close(self):
        client, on_air = run_des(OFFERED, ClientPolicy.RECEIVE_ALL, DURATION)
        events = events_from_air(on_air, useful_only=False)
        dynamics = EnergyModel(NEXUS_ONE).derive_dynamics(events)
        timeline = build_timeline(dynamics, NEXUS_ONE, DURATION)
        # The DES includes protocol details (ACK waits, boot-time
        # suspend entry) the closed form abstracts, so allow a few
        # percentage points.
        assert client.suspend_fraction(DURATION) == pytest.approx(
            timeline.suspend_fraction, abs=0.05
        )

    def test_wakelock_time_close(self):
        client, on_air = run_des(OFFERED, ClientPolicy.RECEIVE_ALL, DURATION)
        events = events_from_air(on_air, useful_only=False)
        dynamics = EnergyModel(NEXUS_ONE).derive_dynamics(events)
        model_wl = sum(d.coverage_increment for d in dynamics)
        assert client.wakelock.total_held_time() == pytest.approx(
            model_wl, rel=0.05
        )


class TestHideAgreement:
    def test_useful_frame_count_matches_eq1(self):
        client, on_air = run_des(OFFERED, ClientPolicy.HIDE, DURATION)
        useful_offered = sum(1 for _, port in OFFERED if port == USEFUL_PORT)
        assert client.counters.useful_frames_received == useful_offered

    def test_des_hide_between_ideal_and_receive_all(self):
        client, on_air = run_des(OFFERED, ClientPolicy.HIDE, DURATION)
        ideal_events = events_from_air(on_air, useful_only=True)
        all_events = events_from_air(on_air, useful_only=False)
        model = EnergyModel(NEXUS_ONE)
        ideal = build_timeline(
            model.derive_dynamics(ideal_events), NEXUS_ONE, DURATION
        )
        receive_all = build_timeline(
            model.derive_dynamics(all_events), NEXUS_ONE, DURATION
        )
        des_fraction = client.suspend_fraction(DURATION)
        # Real HIDE receives whole bursts -> sleeps no more than the
        # Eq. (1) idealization and no less than receive-all.
        assert des_fraction <= ideal.suspend_fraction + 0.05
        assert des_fraction >= receive_all.suspend_fraction - 0.02

    def test_client_side_resumes_match_model(self):
        client, on_air = run_des(OFFERED, ClientPolicy.CLIENT_SIDE, DURATION)
        events = events_from_air(on_air, useful_only=False)
        model = EnergyModel(NEXUS_ONE)
        tau = NEXUS_ONE.wakelock_timeout_s
        dynamics = model.derive_dynamics(
            events, wakelock_for_frame=lambda e: tau if e.useful else 0.0
        )
        model_resumes = sum(1 for d in dynamics if d.suspended_on_arrival)
        assert client.power.counters.resumes == pytest.approx(model_resumes, abs=1)
