"""End-to-end fault injection, protocol recovery, and determinism.

The acceptance contract for the fault layer:

* 10 % uniform loss with recovery enabled finishes with **zero**
  invariant violations and zero slept-through useful frames.
* With recovery disabled, killing every UDP Port Message makes the
  useful-frame-miss invariant fire — and the error carries the seed.
* A zero-loss plan is byte-identical to no plan at all.
* The same seed + plan produces an identical run: metrics fingerprint,
  Prometheus export (wall-clock lines excluded), and trace-event
  sequence.
"""

import json

import pytest

from repro.experiments.des_run import DesRunConfig, run_trace_des
from repro.faults import ClientCrashEvent, FaultPlan
from repro.obs.exporters import render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import JsonlTracer
from repro.sim.invariants import InvariantViolation
from repro.traces.generators import generate_trace


def _trace(seed: int = 3):
    return generate_trace("Starbucks", seed=seed)


def _config(**kwargs) -> DesRunConfig:
    kwargs.setdefault("duration_s", 20.0)
    kwargs.setdefault("client_count", 3)
    return DesRunConfig(**kwargs)


class TestRecoveryUnderLoss:
    def test_ten_percent_loss_zero_violations(self):
        """The headline acceptance criterion: 10 % uniform loss with the
        recovery protocol on -> no invariant trips, nothing missed."""
        result = run_trace_des(
            _trace(),
            _config(
                check_invariants=True,
                fault_plan=FaultPlan.uniform(0.10, seed=42),
            ),
        )
        assert result.invariants is not None
        assert result.invariants.violations() == []
        assert all(
            c.counters.useful_frames_missed == 0 for c in result.clients
        )
        # The plan actually did something.
        assert result.fault_injector.injected_drops > 0

    def test_report_loss_retransmits_until_acked(self):
        """Killing half the Port Messages forces backoff retransmission;
        the reports still all land eventually (no give-up)."""
        result = run_trace_des(
            _trace(),
            _config(
                check_invariants=True,
                fault_plan=FaultPlan(
                    seed=11, loss_by_kind={"UdpPortMessage": 0.5}
                ),
            ),
        )
        dropped = result.fault_injector.drops_of("UdpPortMessage")
        retransmitted = sum(
            c.counters.port_message_retransmissions for c in result.clients
        )
        assert dropped > 0
        assert retransmitted >= dropped
        assert result.invariants.violations() == []

    def test_beacon_loss_triggers_conservative_fallback(self):
        """Losing beacons flips clients into receive-all until a decoded
        DTIM resynchronizes them; no useful frame is missed."""
        result = run_trace_des(
            _trace(),
            _config(
                check_invariants=True,
                fault_plan=FaultPlan(seed=5, beacon_loss=0.3),
            ),
        )
        assert result.fault_injector.drops_of("Beacon") > 0
        assert sum(c.counters.beacon_misses_detected for c in result.clients) > 0
        assert result.invariants.violations() == []

    def test_recovery_disabled_invariant_fires_with_seed(self):
        """The demonstration the issue demands: turn recovery off, kill
        every Port Message, and the useful-frame-miss invariant fires."""
        with pytest.raises(InvariantViolation) as excinfo:
            run_trace_des(
                _trace(),
                _config(
                    check_invariants=True,
                    recovery=False,
                    fault_plan=FaultPlan(
                        seed=13, loss_by_kind={"UdpPortMessage": 1.0}
                    ),
                ),
            )
        assert excinfo.value.seed == 13
        assert any(
            v.invariant == "useful-frame-miss" for v in excinfo.value.violations
        )


class TestNullPlanIdentity:
    def test_zero_loss_plan_reproduces_headline_exactly(self):
        trace = _trace()
        baseline = run_trace_des(trace, _config())
        under_null = run_trace_des(trace, _config(fault_plan=FaultPlan()))
        assert under_null.fault_injector is None
        assert (
            under_null.deterministic_fingerprint()
            == baseline.deterministic_fingerprint()
        )
        # Energy numbers match to the bit, not just approximately.
        assert [m.breakdown.average_power_w for m in under_null.meter()] == [
            m.breakdown.average_power_w for m in baseline.meter()
        ]

    def test_invariant_checking_does_not_perturb_the_protocol(self):
        trace = _trace()
        baseline = run_trace_des(trace, _config())
        checked = run_trace_des(trace, _config(check_invariants=True))
        assert [vars(c.counters) for c in checked.clients] == [
            vars(c.counters) for c in baseline.clients
        ]
        assert [m.breakdown.average_power_w for m in checked.meter()] == [
            m.breakdown.average_power_w for m in baseline.meter()
        ]


def _run_traced(tmp_path, name):
    log = tmp_path / f"{name}.jsonl"
    tracer = JsonlTracer(str(log))
    try:
        result = run_trace_des(
            _trace(),
            _config(
                check_invariants=True,
                fault_plan=FaultPlan.uniform(0.05, seed=99),
            ),
            tracer=tracer,
        )
    finally:
        tracer.close()
    return result, log


def _event_sequence(log_path):
    """(name, sim_time, other-fields) tuples, wall-clock data stripped."""
    events = []
    with open(log_path, "r", encoding="utf-8") as handle:
        for line in handle:
            record = json.loads(line)
            record.pop("wall_time", None)
            record.pop("wall_duration_s", None)
            events.append(tuple(sorted(record.items())))
    return events


def _stable_prometheus(result):
    """The .prom export minus host-speed (wall-clock) lines."""
    text = render_prometheus(result.collect_metrics(MetricsRegistry()))
    return "\n".join(
        line for line in text.splitlines() if "wall" not in line
    )


class TestDeterminism:
    def test_same_seed_and_plan_identical_run(self, tmp_path):
        a, log_a = _run_traced(tmp_path, "a")
        b, log_b = _run_traced(tmp_path, "b")
        assert a.deterministic_fingerprint() == b.deterministic_fingerprint()
        assert _stable_prometheus(a) == _stable_prometheus(b)
        sequence_a, sequence_b = _event_sequence(log_a), _event_sequence(log_b)
        assert sequence_a, "expected traced events"
        assert sequence_a == sequence_b

    def test_different_seed_diverges(self):
        trace = _trace()
        a = run_trace_des(
            trace, _config(fault_plan=FaultPlan.uniform(0.10, seed=1))
        )
        b = run_trace_des(
            trace, _config(fault_plan=FaultPlan.uniform(0.10, seed=2))
        )
        assert a.deterministic_fingerprint() != b.deterministic_fingerprint()


class TestCrashRejoinAndTtl:
    def test_crash_expires_rejoin_relearns(self):
        """A crashed client ages out of the port table; after rejoin the
        AP relearns its ports and the keep-alive holds the TTL at bay."""
        result = run_trace_des(
            _trace(),
            _config(
                check_invariants=True,
                port_entry_ttl_s=2.0,
                port_refresh_interval_s=0.9,
                fault_plan=FaultPlan(
                    seed=5,
                    crashes=(
                        ClientCrashEvent(0, crash_at_s=4.0, rejoin_at_s=9.0),
                    ),
                ),
            ),
        )
        crashed = result.clients[0]
        survivor = result.clients[1]
        ap = result.access_point
        assert crashed.counters.crashes == 1
        assert crashed.counters.rejoins == 1
        assert crashed.power.counters.forced_suspends == 1
        # The TTL reaped the dead client's entry...
        assert ap.counters.port_entries_expired >= 1
        # ...and the rejoin re-associated (same AID) and re-reported.
        assert crashed.aid == 1
        assert ap.port_table.ports_for_client(1) == result.useful_ports
        # Live clients kept refreshing and never expired.
        assert survivor.counters.port_refreshes > 0
        assert ap.port_table.ports_for_client(survivor.aid) == result.useful_ports
        assert result.invariants.violations() == []

    def test_crash_without_rejoin_stays_dark(self):
        result = run_trace_des(
            _trace(),
            _config(
                check_invariants=True,
                port_entry_ttl_s=2.0,
                port_refresh_interval_s=0.9,
                fault_plan=FaultPlan(
                    seed=6, crashes=(ClientCrashEvent(0, crash_at_s=4.0),)
                ),
            ),
        )
        crashed = result.clients[0]
        assert crashed.counters.crashes == 1
        assert crashed.counters.rejoins == 0
        assert crashed.aid is None
        assert result.access_point.port_table.ports_for_client(1) == frozenset()
        # The dead client's radio stayed off: the invariant suite must
        # not charge it for frames it could never have received.
        assert result.invariants.violations() == []

    def test_refresh_must_stay_below_ttl(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            _config(port_entry_ttl_s=1.0, port_refresh_interval_s=1.0)
