"""Fingerprint identity across event-queue backends.

The calendar queue earns its place as the default by being *bit-
identical* to the reference heap under the full protocol stack: same
deterministic fingerprint, same Prometheus export, same windowed
timeseries — under fault injection, crash/rejoin recovery, and
streaming telemetry all at once. ``repro obs diff`` is exercised both
as a library and through the CLI, because the CI gate runs the CLI.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.experiments.des_run import (
    DesRunConfig,
    TelemetryConfig,
    run_trace_des,
)
from repro.faults import FaultPlan
from repro.obs import format_for_path, write_metrics
from repro.obs.diff import diff_files
from repro.traces import generate_trace

_PLAN = FaultPlan.parse("loss=0.08,beacon=0.01,seed=11,crash=0@2:5")


def _run(queue_backend, tmp_path, tag, telemetry=True):
    trace = generate_trace("Starbucks", seed=7)
    config = DesRunConfig(
        client_count=3,
        duration_s=8.0,
        fault_plan=_PLAN,
        check_invariants=True,
        telemetry=TelemetryConfig(window="dtim") if telemetry else None,
        queue_backend=queue_backend,
    )
    result = run_trace_des(trace, config)
    result.close()
    prom = tmp_path / f"{tag}.prom"
    write_metrics(result.collect_metrics(), str(prom), format_for_path(str(prom)))
    series = tmp_path / f"{tag}_timeseries.json"
    if result.timeseries is not None:
        result.timeseries.write(str(series))
    return result, prom, series


class TestBackendIdentity:
    def test_fingerprints_identical_under_faults(self, tmp_path):
        heap, heap_prom, heap_series = _run("heap", tmp_path, "heap")
        calendar, cal_prom, cal_series = _run("calendar", tmp_path, "calendar")
        assert heap.simulator.queue_kind == "heap"
        assert calendar.simulator.queue_kind == "calendar"
        assert (
            heap.deterministic_fingerprint()
            == calendar.deterministic_fingerprint()
        )
        # Event-level agreement, not just the hash: same event count,
        # same drops, same per-client wakeups.
        assert (
            heap.simulator.events_processed
            == calendar.simulator.events_processed
        )
        assert heap.medium.frames_dropped == calendar.medium.frames_dropped
        for h_client, c_client in zip(heap.clients, calendar.clients):
            assert h_client.counters == c_client.counters

        result = diff_files(
            str(heap_prom), str(cal_prom), ignore=("wall",)
        )
        assert result.ok(), [c for c in result.changed]

        assert heap_series.read_text() == cal_series.read_text()

    def test_obs_diff_cli_clean_across_backends(self, tmp_path, capsys):
        _, heap_prom, heap_series = _run("heap", tmp_path, "heap")
        _, cal_prom, cal_series = _run("calendar", tmp_path, "calendar")
        assert (
            cli_main(
                [
                    "obs",
                    "diff",
                    str(heap_prom),
                    str(cal_prom),
                    "--ignore",
                    "wall",
                    "--fail-on-missing",
                ]
            )
            == 0
        )
        assert (
            cli_main(["obs", "diff", str(heap_series), str(cal_series)]) == 0
        )
        capsys.readouterr()

    def test_telemetry_does_not_change_fingerprint(self, tmp_path):
        """Attaching the streaming stack never perturbs either backend."""
        for backend in ("heap", "calendar"):
            with_telemetry, _, _ = _run(backend, tmp_path, f"{backend}_t", True)
            without, _, _ = _run(backend, tmp_path, f"{backend}_q", False)
            assert (
                with_telemetry.deterministic_fingerprint()
                == without.deterministic_fingerprint()
            )

    def test_queue_depth_gauges_present_both_backends(self, tmp_path):
        for backend in ("heap", "calendar"):
            result, prom, _ = _run(backend, tmp_path, f"{backend}_gauge")
            text = prom.read_text()
            assert "repro_sim_queue_depth" in text
            assert "repro_sim_heap_depth" in text

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            DesRunConfig(queue_backend="splay-tree")


class TestSweepWorkerIdentity:
    def test_sweep_report_independent_of_worker_count(self, tmp_path):
        from repro.experiments.sweep import SweepSpec, run_sweep

        spec = SweepSpec(
            scenarios=("Starbucks", "Classroom"),
            seeds=(0, 1, 2),
            config=DesRunConfig(client_count=2, duration_s=3.0),
            fault_spec="loss=0.05",
        )
        serial = run_sweep(spec, workers=1)
        sharded = run_sweep(spec, workers=4)
        assert serial["merged_fingerprint"] == sharded["merged_fingerprint"]
        assert serial["runs"] == sharded["runs"]
        assert serial["totals"] == sharded["totals"]

    def test_sweep_backends_agree(self):
        from repro.experiments.sweep import SweepSpec, run_sweep

        def fingerprint(backend):
            spec = SweepSpec(
                scenarios=("Starbucks",),
                seeds=(0, 1),
                config=DesRunConfig(
                    client_count=2, duration_s=3.0, queue_backend=backend
                ),
            )
            return run_sweep(spec, workers=2)["merged_fingerprint"]

        assert fingerprint("heap") == fingerprint("calendar")
