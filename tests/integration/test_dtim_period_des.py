"""DES behaviour with DTIM periods above 1 (paper: typical values 1-3)."""

import pytest

from repro.ap.access_point import AccessPoint, ApConfig
from repro.dot11.data import DataFrame
from repro.dot11.mac_address import MacAddress
from repro.energy.model import HideOverheadParams
from repro.net.packet import build_broadcast_udp_packet
from repro.sim.engine import Simulator
from repro.sim.medium import Medium
from repro.sim.sniffer import ProtocolSniffer
from repro.station.client import Client, ClientConfig, ClientPolicy
from repro.units import BEACON_INTERVAL_S

AP_MAC = MacAddress.from_string("02:aa:00:00:00:01")
WIRED = MacAddress.from_string("02:bb:00:00:00:99")


def build(dtim_period):
    sim = Simulator()
    medium = Medium(sim)
    ap = AccessPoint(AP_MAC, medium, ApConfig(dtim_period=dtim_period))
    medium.attach(ap)
    client = Client(
        MacAddress.station(1), medium, AP_MAC,
        ClientConfig(policy=ClientPolicy.HIDE, wakelock_timeout_s=0.3),
    )
    medium.attach(client)
    record = ap.associate(client.mac, hide_capable=True)
    client.set_aid(record.aid)
    client.open_port(5353)
    sniffer = ProtocolSniffer(frame_filter=(DataFrame,))
    medium.attach(sniffer)
    return sim, medium, ap, client, sniffer


class TestDtimPeriodThree:
    def test_broadcast_released_only_at_dtims(self):
        # The first beacon (t = 102.4 ms) is DTIM count 0, so DTIMs fall
        # at 0.1024 + k * 0.3072 s with period 3. Offer a frame after
        # the first DTIM: it must wait for the next one.
        sim, medium, ap, client, sniffer = build(dtim_period=3)
        packet = build_broadcast_udp_packet(5353, b"x")
        sim.schedule(0.15, lambda: ap.deliver_from_ds(packet, WIRED))
        sim.run(until=2.0)
        assert len(sniffer.captures) == 1
        air_time = sniffer.captures[0].time
        dtim_interval = 3 * BEACON_INTERVAL_S
        offset_into_cycle = (air_time - BEACON_INTERVAL_S) % dtim_interval
        assert offset_into_cycle < BEACON_INTERVAL_S / 2
        assert air_time > 0.4  # not before the second DTIM at ~0.41 s

    def test_frame_still_delivered_to_listener(self):
        sim, medium, ap, client, sniffer = build(dtim_period=3)
        packet = build_broadcast_udp_packet(5353, b"x")
        sim.schedule(0.15, lambda: ap.deliver_from_ds(packet, WIRED))
        sim.run(until=2.0)
        assert client.counters.useful_frames_received == 1

    def test_longer_period_defers_delivery(self):
        # Offered after the shared first DTIM: period 1 delivers at the
        # next beacon (~0.20 s), period 3 at the next DTIM (~0.41 s).
        times = {}
        for period in (1, 3):
            sim, medium, ap, client, sniffer = build(dtim_period=period)
            packet = build_broadcast_udp_packet(5353, b"x")
            sim.schedule(
                0.15, lambda p=packet, a=ap: a.deliver_from_ds(p, WIRED)
            )
            sim.run(until=2.0)
            times[period] = sniffer.captures[0].time
        assert times[3] > times[1] + BEACON_INTERVAL_S

    def test_buffered_frames_batch_at_dtim(self):
        sim, medium, ap, client, sniffer = build(dtim_period=3)
        for i in range(4):
            packet = build_broadcast_udp_packet(5353, b"x%d" % i)
            sim.schedule(
                0.15 + 0.05 * i, lambda p=packet: ap.deliver_from_ds(p, WIRED)
            )
        sim.run(until=2.0)
        assert len(sniffer.captures) == 4
        spread = sniffer.captures[-1].time - sniffer.captures[0].time
        assert spread < 0.02  # all in one back-to-back burst


class TestComputedBtimSize:
    def test_for_bss_grows_with_population(self):
        small = HideOverheadParams.for_bss(station_count=5)
        large = HideOverheadParams.for_bss(station_count=200)
        assert large.btim_bytes > small.btim_bytes

    def test_empty_bss(self):
        params = HideOverheadParams.for_bss(station_count=0)
        assert params.btim_bytes >= 3  # header + offset + 1 bitmap octet

    def test_kwargs_pass_through(self):
        params = HideOverheadParams.for_bss(
            station_count=10, port_message_interval_s=30.0
        )
        assert params.port_message_interval_s == 30.0

    def test_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            HideOverheadParams.for_bss(station_count=-1)
        with pytest.raises(ConfigurationError):
            HideOverheadParams.for_bss(station_count=5, flagged_fraction=1.5)
