"""End-to-end DES runs of the full HIDE protocol."""

import pytest

from repro.ap.access_point import AccessPoint, ApConfig
from repro.dot11.mac_address import MacAddress
from repro.net.packet import build_broadcast_udp_packet
from repro.sim.engine import Simulator
from repro.sim.medium import Medium
from repro.station.client import Client, ClientConfig, ClientPolicy

AP_MAC = MacAddress.from_string("02:aa:00:00:00:01")
WIRED_SRC = MacAddress.from_string("02:bb:00:00:00:99")


def build_network(client_specs, hide_ap=True):
    """client_specs: list of (policy, open_ports)."""
    sim = Simulator()
    medium = Medium(sim)
    ap = AccessPoint(AP_MAC, medium, ApConfig(hide_enabled=hide_ap))
    medium.attach(ap)
    clients = []
    for index, (policy, ports) in enumerate(client_specs):
        mac = MacAddress.station(index + 1)
        client = Client(
            mac, medium, AP_MAC,
            ClientConfig(policy=policy, wakelock_timeout_s=0.3),
        )
        medium.attach(client)
        record = ap.associate(mac, hide_capable=policy is ClientPolicy.HIDE)
        client.set_aid(record.aid)
        for port in ports:
            client.open_port(port)
        clients.append(client)
    return sim, medium, ap, clients


def schedule_traffic(sim, ap, traffic):
    """traffic: list of (time, port)."""
    for time, port in traffic:
        packet = build_broadcast_udp_packet(port, b"svc-announce")
        sim.schedule(time, lambda p=packet: ap.deliver_from_ds(p, WIRED_SRC))


class TestSelectiveWakeup:
    def test_each_client_gets_exactly_its_services(self):
        sim, medium, ap, (mdns_client, ssdp_client, silent_client) = build_network(
            [
                (ClientPolicy.HIDE, [5353]),
                (ClientPolicy.HIDE, [1900]),
                (ClientPolicy.HIDE, []),
            ]
        )
        traffic = [(0.2 + 0.5 * i, 5353 if i % 2 == 0 else 1900) for i in range(20)]
        schedule_traffic(sim, ap, traffic)
        sim.run(until=15.0)

        assert mdns_client.counters.useful_frames_received == 10
        assert ssdp_client.counters.useful_frames_received == 10
        assert silent_client.counters.broadcast_frames_received == 0
        assert silent_client.power.counters.resumes == 0
        assert silent_client.suspend_fraction() > 0.95

    def test_all_broadcast_frames_still_air(self):
        # HIDE never drops frames; it only hides their presence.
        sim, medium, ap, clients = build_network([(ClientPolicy.HIDE, [])])
        schedule_traffic(sim, ap, [(0.1 * i, 137) for i in range(1, 11)])
        sim.run(until=5.0)
        assert ap.counters.broadcast_frames_sent == 10

    def test_suspend_fraction_ordering_across_policies(self):
        sim, medium, ap, (hide, client_side, receive_all) = build_network(
            [
                (ClientPolicy.HIDE, [5353]),
                (ClientPolicy.CLIENT_SIDE, [5353]),
                (ClientPolicy.RECEIVE_ALL, [5353]),
            ]
        )
        # Mostly useless traffic with a little mDNS.
        traffic = [(0.3 * i, 5353 if i % 10 == 0 else 137) for i in range(1, 60)]
        schedule_traffic(sim, ap, traffic)
        sim.run(until=25.0)

        assert hide.suspend_fraction() >= client_side.suspend_fraction()
        assert client_side.suspend_fraction() >= receive_all.suspend_fraction()
        # Receive-all and client-side radios saw everything.
        assert receive_all.counters.broadcast_frames_received == 59
        assert client_side.counters.broadcast_frames_received == 59
        # HIDE's radio only came up for bursts containing useful frames.
        assert hide.counters.broadcast_frames_received < 59

    def test_hide_client_never_misses_useful_frames(self):
        sim, medium, ap, (client,) = build_network([(ClientPolicy.HIDE, [5353])])
        useful_times = [0.4 * i for i in range(1, 30)]
        schedule_traffic(sim, ap, [(t, 5353) for t in useful_times])
        schedule_traffic(sim, ap, [(t + 0.05, 137) for t in useful_times])
        sim.run(until=20.0)
        assert client.counters.useful_frames_received == 29
        assert client.counters.frames_delivered_to_apps == 29


class TestLegacyCoexistence:
    def test_legacy_client_unaffected_by_btim(self):
        # A legacy (receive-all) client under a HIDE AP must behave as
        # under a plain AP: TIM group bit drives it.
        sim_h, _, ap_h, (legacy_h,) = build_network(
            [(ClientPolicy.RECEIVE_ALL, [5353])], hide_ap=True
        )
        schedule_traffic(sim_h, ap_h, [(0.5, 137), (1.7, 1900)])
        sim_h.run(until=5.0)

        sim_p, _, ap_p, (legacy_p,) = build_network(
            [(ClientPolicy.RECEIVE_ALL, [5353])], hide_ap=False
        )
        schedule_traffic(sim_p, ap_p, [(0.5, 137), (1.7, 1900)])
        sim_p.run(until=5.0)

        assert (
            legacy_h.counters.broadcast_frames_received
            == legacy_p.counters.broadcast_frames_received
            == 2
        )
        assert legacy_h.power.counters.resumes == legacy_p.power.counters.resumes

    def test_mixed_population(self):
        sim, medium, ap, (hide, legacy) = build_network(
            [(ClientPolicy.HIDE, [5353]), (ClientPolicy.RECEIVE_ALL, [5353])]
        )
        schedule_traffic(sim, ap, [(0.5, 137), (1.5, 137), (2.5, 5353)])
        sim.run(until=8.0)
        assert legacy.counters.broadcast_frames_received == 3
        assert hide.counters.broadcast_frames_received == 1
        assert hide.counters.useful_frames_received == 1


class TestProtocolAccounting:
    def test_port_message_flow(self):
        sim, medium, ap, (client,) = build_network([(ClientPolicy.HIDE, [5353])])
        schedule_traffic(sim, ap, [(1.0, 5353), (3.0, 5353)])
        sim.run(until=10.0)
        # Initial suspend entry + one re-entry per wake-up.
        assert client.counters.port_messages_sent >= 3
        assert ap.counters.port_messages_received == client.counters.port_messages_sent
        assert ap.counters.acks_sent == ap.counters.port_messages_received
        assert client.counters.acks_received == ap.counters.acks_sent

    def test_ap_and_client_frame_counters_agree(self):
        sim, medium, ap, (client,) = build_network(
            [(ClientPolicy.RECEIVE_ALL, [])]
        )
        schedule_traffic(sim, ap, [(0.2 * i, 137) for i in range(1, 21)])
        sim.run(until=10.0)
        assert ap.counters.broadcast_frames_sent == 20
        assert client.counters.broadcast_frames_received == 20

    def test_long_run_stability(self):
        sim, medium, ap, clients = build_network(
            [(ClientPolicy.HIDE, [5353]), (ClientPolicy.CLIENT_SIDE, [1900])]
        )
        schedule_traffic(
            sim, ap, [(0.37 * i, [137, 5353, 1900][i % 3]) for i in range(1, 150)]
        )
        sim.run(until=120.0)
        # Sanity: the simulation drained and the clients ended suspended.
        from repro.station.power import PowerState

        for client in clients:
            assert client.power.state is PowerState.SUSPENDED
