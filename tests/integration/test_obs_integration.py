"""End-to-end observability: a short HIDE DES run is fully observable.

Runs the Classroom scenario through the event-level simulator with a
live tracer and a metrics registry attached, then checks that the trace
log carries the protocol's heartbeat (DTIM cycles, Algorithm-1 spans,
BTIM elements, client wakeups) and that the exported metrics agree with
what the components themselves counted — including the inputs the
:class:`~repro.energy.meter.ClientEnergyMeter` bills from.
"""

import io
import json

import pytest

from repro.energy.profile import NEXUS_ONE
from repro.experiments.des_run import DesRunConfig, run_trace_des
from repro.obs.exporters import render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.summarize import summarize_trace
from repro.obs.tracing import read_trace_jsonl, tracer_to_string_buffer
from repro.station.client import ClientPolicy
from repro.traces import generate_trace


DURATION_S = 20.0


@pytest.fixture(scope="module")
def traced_run():
    tracer, buffer = tracer_to_string_buffer()
    result = run_trace_des(
        generate_trace("Classroom"),
        DesRunConfig(
            policy=ClientPolicy.HIDE,
            client_count=2,
            useful_fraction=0.10,
            duration_s=DURATION_S,
            profile=NEXUS_ONE,
        ),
        tracer=tracer,
    )
    buffer.seek(0)
    return result, read_trace_jsonl(buffer)


class TestTraceLog:
    def test_dtim_cycle_spans_cover_every_dtim(self, traced_run):
        result, records = traced_run
        spans = [r for r in records if r["type"] == "span" and r["name"] == "dtim_cycle"]
        assert len(spans) == result.access_point.counters.dtims_sent
        assert all(r["wall_duration_s"] >= 0.0 for r in spans)
        assert all(0.0 <= r["sim_time"] <= DURATION_S for r in spans)

    def test_algorithm1_spans_match_counter(self, traced_run):
        result, records = traced_run
        spans = [r for r in records if r["name"] == "algorithm1"]
        assert len(spans) == result.access_point.counters.algorithm1_runs
        assert sum(r["wall_duration_s"] for r in spans) == pytest.approx(
            result.access_point.counters.algorithm1_wall_s
        )

    def test_btim_events_report_bits_and_population(self, traced_run):
        result, records = traced_run
        events = [r for r in records if r["name"] == "btim"]
        assert len(events) == result.access_point.counters.algorithm1_runs
        assert sum(r["bits_set"] for r in events) == (
            result.access_point.counters.btim_bits_set_total
        )
        assert all(r["total_clients"] == len(result.clients) for r in events)
        assert all(len(r["aids"]) == r["bits_set"] for r in events)
        # Under HIDE some DTIMs flag clients and some don't.
        assert any(r["bits_set"] > 0 for r in events)
        assert any(r["bits_set"] == 0 for r in events)

    def test_wakeup_events_match_power_counters(self, traced_run):
        result, records = traced_run
        wakeups = [r for r in records if r["name"] == "wakeup"]
        assert len(wakeups) > 0
        # Each wakeup event is a wake request landing on a (fully or
        # partially) suspended radio: a resume or an aborted suspend.
        expected = sum(
            client.power.counters.resumes + client.power.counters.suspends_aborted
            for client in result.clients
        )
        assert len(wakeups) == expected
        per_client = {str(client.mac): 0 for client in result.clients}
        for record in wakeups:
            per_client[record["client"]] += 1
        assert all(count > 0 for count in per_client.values())

    def test_summarize_sees_the_run(self, traced_run):
        _, records = traced_run
        buffer = io.StringIO("".join(json.dumps(r) + "\n" for r in records))
        summary = summarize_trace(buffer)
        span_names = {s.name for s in summary.span_stats}
        assert {"dtim_cycle", "algorithm1"} <= span_names
        assert summary.event_counts["btim"] > 0


class TestMetricsExport:
    def test_collected_metrics_match_components(self, traced_run):
        result, _ = traced_run
        registry = result.collect_metrics(MetricsRegistry())
        sim = result.simulator
        assert registry.get("repro_sim_events_processed_total").value == (
            sim.events_processed
        )
        ap_labels = {"ap": str(result.access_point.mac)}
        assert registry.get("repro_ap_dtims_sent_total", ap_labels).value == (
            result.access_point.counters.dtims_sent
        )
        assert registry.get("repro_ap_btim_bits_set_total", ap_labels).value == (
            result.access_point.counters.btim_bits_set_total
        )

    def test_wakeup_counters_agree_with_energy_meter_inputs(self, traced_run):
        result, _ = traced_run
        registry = result.collect_metrics(MetricsRegistry())
        for client, metered in zip(result.clients, result.meter()):
            labels = {"client": str(client.mac), "aid": str(client.aid)}
            wakeups = registry.get("repro_client_wakeups_total", labels)
            assert wakeups is not None
            assert wakeups.value == client.power.counters.resumes
            assert wakeups.value > 0
            held = registry.get("repro_client_wakelock_held_seconds_total", labels)
            assert held.value == pytest.approx(client.wakelock.total_held_time())
            # The meter bills wakelock time at the active-idle power, so
            # the exported seconds must reproduce its E_wl term.
            expected_wakelock_j = (
                NEXUS_ONE.active_idle_power_w * held.value
            )
            assert metered.breakdown.wakelock_j == pytest.approx(expected_wakelock_j)

    def test_prometheus_export_renders_the_run(self, traced_run):
        result, _ = traced_run
        text = render_prometheus(result.collect_metrics(MetricsRegistry()))
        assert "repro_sim_events_processed_total" in text
        assert "repro_ap_algorithm1_runs_total" in text
        assert 'repro_medium_frames_total{kind="Beacon"}' in text
        assert "repro_client_wakeups_total" in text


class TestDesRunSanity:
    def test_clients_receive_and_filter(self, traced_run):
        result, _ = traced_run
        for client in result.clients:
            counters = client.counters
            assert counters.broadcast_frames_received > 0
            assert counters.useful_frames_received <= counters.broadcast_frames_received
        assert result.access_point.counters.broadcast_frames_sent > 0
