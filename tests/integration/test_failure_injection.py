"""Failure injection: the protocol under a lossy channel.

The UDP Port Message path is the part of HIDE with a hard safety
requirement: if the AP's Client UDP Port Table goes stale in the
*smaller* direction, a client misses useful traffic. The paper's answer
is the ACK + standard retransmission on the report; these tests verify
the retry machinery actually masks loss, and quantify what pure loss
does to delivery counts.
"""

import pytest

from repro.ap.access_point import AccessPoint, ApConfig
from repro.dot11.mac_address import MacAddress
from repro.errors import SimulationError
from repro.net.packet import build_broadcast_udp_packet
from repro.sim.engine import Simulator
from repro.sim.medium import Medium
from repro.station.client import Client, ClientConfig, ClientPolicy
from repro.station.power import PowerState

AP_MAC = MacAddress.from_string("02:aa:00:00:00:01")
WIRED_SRC = MacAddress.from_string("02:bb:00:00:00:99")


def build(loss, loss_seed=1, retries=7):
    sim = Simulator()
    medium = Medium(sim, loss_probability=loss, loss_seed=loss_seed)
    ap = AccessPoint(AP_MAC, medium, ApConfig())
    medium.attach(ap)
    client = Client(
        MacAddress.station(1), medium, AP_MAC,
        ClientConfig(
            policy=ClientPolicy.HIDE,
            wakelock_timeout_s=0.3,
            max_port_message_retries=retries,
        ),
    )
    medium.attach(client)
    record = ap.associate(client.mac, hide_capable=True)
    client.set_aid(record.aid)
    client.open_port(5353)
    return sim, medium, ap, client


class TestLossyMedium:
    def test_loss_probability_validated(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Medium(sim, loss_probability=1.0)
        with pytest.raises(SimulationError):
            Medium(sim, loss_probability=-0.1)

    def test_zero_loss_drops_nothing(self):
        sim, medium, ap, client = build(loss=0.0)
        sim.run(until=2.0)
        assert medium.frames_dropped == 0

    def test_drops_counted(self):
        sim, medium, ap, client = build(loss=0.5)
        for i in range(10):
            packet = build_broadcast_udp_packet(5353, b"x")
            sim.schedule(0.3 * (i + 1), lambda p=packet: ap.deliver_from_ds(p, WIRED_SRC))
        sim.run(until=10.0)
        assert medium.frames_dropped > 0

    def test_beacons_exempt_from_loss(self):
        sim, medium, ap, client = build(loss=0.9)
        sim.run(until=3.0)
        # Beacons every 102.4 ms arrive regardless of the loss rate.
        assert client.counters.beacons_received >= 25


class TestReportRetransmission:
    def test_retries_mask_moderate_loss(self):
        # 30% loss: the 7-retry budget makes report delivery ~certain.
        sim, medium, ap, client = build(loss=0.3, retries=7)
        sim.run(until=5.0)
        assert ap.port_table.ports_for_client(client.aid) == frozenset({5353})
        assert client.power.state is PowerState.SUSPENDED

    def test_retransmissions_happen_under_loss(self):
        sim, medium, ap, client = build(loss=0.5, loss_seed=7)
        sim.run(until=5.0)
        assert client.counters.port_message_retransmissions > 0

    def test_lossless_run_needs_no_retransmissions(self):
        sim, medium, ap, client = build(loss=0.0)
        sim.run(until=5.0)
        assert client.counters.port_message_retransmissions == 0

    def test_client_eventually_suspends_even_under_heavy_loss(self):
        # Even if every retry is eaten, the client gives up and
        # suspends rather than burning the battery waiting for ACKs.
        sim, medium, ap, client = build(loss=0.9, retries=3, loss_seed=3)
        sim.run(until=10.0)
        assert client.power.state is PowerState.SUSPENDED

    def test_useful_delivery_survives_loss(self):
        # With retries protecting the report path, useful frames still
        # reach the client unless the data frame itself is lost.
        sim, medium, ap, client = build(loss=0.2, loss_seed=11)
        sent = 15
        for i in range(sent):
            packet = build_broadcast_udp_packet(5353, b"x")
            sim.schedule(
                0.5 * (i + 1), lambda p=packet: ap.deliver_from_ds(p, WIRED_SRC)
            )
        sim.run(until=15.0)
        received = client.counters.useful_frames_received
        # Every non-dropped useful frame was received: the losses are
        # channel losses, not HIDE filtering mistakes.
        assert received + medium.frames_dropped >= sent
        assert received > 0
