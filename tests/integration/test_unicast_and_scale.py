"""The unicast PS-Poll path, and a larger mixed-population BSS."""

import pytest

from repro.ap.access_point import AccessPoint, ApConfig
from repro.dot11.data import DataFrame
from repro.dot11.llc import LlcSnapHeader
from repro.dot11.mac_address import MacAddress
from repro.net.packet import build_broadcast_udp_packet
from repro.sim.engine import Simulator
from repro.sim.medium import Medium
from repro.station.client import Client, ClientConfig, ClientPolicy
from repro.station.power import PowerState

AP_MAC = MacAddress.from_string("02:aa:00:00:00:01")
WIRED_SRC = MacAddress.from_string("02:bb:00:00:00:99")


def unicast_frame(dest: MacAddress, payload=b"push!") -> DataFrame:
    return DataFrame(
        destination=dest,
        bssid=AP_MAC,
        source=WIRED_SRC,
        llc_payload=LlcSnapHeader.wrap(0x0800, payload),
    )


class TestUnicastPsPoll:
    def build(self):
        sim = Simulator()
        medium = Medium(sim)
        ap = AccessPoint(AP_MAC, medium, ApConfig())
        medium.attach(ap)
        client = Client(
            MacAddress.station(1), medium, AP_MAC,
            ClientConfig(policy=ClientPolicy.HIDE, wakelock_timeout_s=0.3),
        )
        medium.attach(client)
        record = ap.associate(client.mac, hide_capable=True)
        client.set_aid(record.aid)
        return sim, medium, ap, client

    def test_buffered_unicast_retrieved_via_ps_poll(self):
        sim, medium, ap, client = self.build()
        frame = unicast_frame(client.mac)
        sim.schedule(0.5, lambda: ap.deliver_unicast_from_ds(frame))
        sim.run(until=3.0)
        assert client.counters.unicast_frames_received == 1
        assert client.counters.ps_polls_sent >= 1
        assert ap.counters.ps_polls_received == client.counters.ps_polls_sent
        assert ap.counters.unicast_frames_sent == 1

    def test_multiple_buffered_unicast_frames_drain(self):
        sim, medium, ap, client = self.build()
        for i in range(3):
            frame = unicast_frame(client.mac, payload=b"m%d" % i)
            sim.schedule(0.5, lambda f=frame: ap.deliver_unicast_from_ds(f))
        sim.run(until=5.0)
        assert client.counters.unicast_frames_received == 3
        assert not ap.unicast_buffer.has_frames_for(client.mac)

    def test_unicast_wakes_suspended_client(self):
        sim, medium, ap, client = self.build()
        frame = unicast_frame(client.mac)
        sim.schedule(2.0, lambda: ap.deliver_unicast_from_ds(frame))
        sim.run(until=1.9)
        assert client.power.state is PowerState.SUSPENDED
        sim.run(until=6.0)
        assert client.power.counters.resumes >= 1
        assert client.power.state is PowerState.SUSPENDED  # back asleep

    def test_unicast_and_broadcast_coexist(self):
        sim, medium, ap, client = self.build()
        client.open_port(5353)
        packet = build_broadcast_udp_packet(5353, b"b")
        sim.schedule(0.5, lambda: ap.deliver_from_ds(packet, WIRED_SRC))
        frame = unicast_frame(client.mac)
        sim.schedule(0.52, lambda: ap.deliver_unicast_from_ds(frame))
        sim.run(until=4.0)
        assert client.counters.useful_frames_received == 1
        assert client.counters.unicast_frames_received == 1


class TestScale:
    def test_twenty_client_bss(self):
        """A realistic BSS: 20 phones, 3 policies, 4 services."""
        sim = Simulator()
        medium = Medium(sim)
        ap = AccessPoint(AP_MAC, medium, ApConfig())
        medium.attach(ap)

        ports_by_group = {0: [5353], 1: [1900], 2: [17500], 3: []}
        policies = [
            ClientPolicy.HIDE, ClientPolicy.HIDE, ClientPolicy.HIDE,
            ClientPolicy.CLIENT_SIDE, ClientPolicy.RECEIVE_ALL,
        ]
        clients = []
        for index in range(20):
            mac = MacAddress.station(index + 1)
            policy = policies[index % len(policies)]
            client = Client(
                mac, medium, AP_MAC,
                ClientConfig(policy=policy, wakelock_timeout_s=0.3),
            )
            medium.attach(client)
            record = ap.associate(mac, hide_capable=policy is ClientPolicy.HIDE)
            client.set_aid(record.aid)
            for port in ports_by_group[index % 4]:
                client.open_port(port)
            clients.append(client)

        service_cycle = [5353, 1900, 137, 17500, 138]
        for i in range(60):
            packet = build_broadcast_udp_packet(
                service_cycle[i % len(service_cycle)], b"x" * 80
            )
            sim.schedule(
                0.4 * (i + 1), lambda p=packet: ap.deliver_from_ds(p, WIRED_SRC)
            )
        sim.run(until=30.0)

        # Every frame aired exactly once regardless of population.
        assert ap.counters.broadcast_frames_sent == 60

        hide_clients = [
            c for c in clients if c.config.policy is ClientPolicy.HIDE
        ]
        legacy_clients = [
            c for c in clients if c.config.policy is ClientPolicy.RECEIVE_ALL
        ]
        # Legacy clients all received everything.
        for client in legacy_clients:
            assert client.counters.broadcast_frames_received == 60
        # HIDE clients received at most what legacy did, and those with
        # no open ports received nothing.
        for client in hide_clients:
            assert client.counters.broadcast_frames_received <= 60
            if not client.sockets.reportable_ports():
                assert client.counters.broadcast_frames_received == 0
        # Every HIDE client got every frame for its service.
        per_service_counts = {5353: 12, 1900: 12, 17500: 12}
        for client in hide_clients:
            for port in client.sockets.reportable_ports():
                assert (
                    client.counters.useful_frames_received
                    == per_service_counts[port]
                )
        # The silent HIDE phones slept essentially the whole run.
        silent = [
            c for c in hide_clients if not c.sockets.reportable_ports()
        ]
        assert silent and all(c.suspend_fraction() > 0.9 for c in silent)
