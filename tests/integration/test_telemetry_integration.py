"""End-to-end streaming telemetry on a real HIDE DES run.

Exercises the full ``--serve-metrics``/``--timeseries-out`` stack: a
prepared run with per-DTIM windows and a live scrape endpoint, checked
for (1) determinism — the fingerprint is bit-identical with and without
telemetry attached, the PR's headline invariant; (2) correctness — the
windows tile the run and their final cumulative values agree with what
the components counted; (3) diffability — two same-seed timeseries
dumps compare clean at zero tolerance through ``repro obs diff``'s
loader, because the curated per-window series contain no wall-clock
families.
"""

import json
import urllib.request

import pytest

from repro.experiments.des_run import (
    DesRunConfig,
    TelemetryConfig,
    prepare_trace_des,
    run_trace_des,
)
from repro.obs.diff import diff_files
from repro.obs.timeseries import TIMESERIES_SCHEMA
from repro.traces import generate_trace

DURATION_S = 10.0


def _config(**kwargs) -> DesRunConfig:
    return DesRunConfig(client_count=3, duration_s=DURATION_S, **kwargs)


@pytest.fixture(scope="module")
def telemetry_run():
    trace = generate_trace("Classroom")
    prepared = prepare_trace_des(
        trace,
        _config(telemetry=TelemetryConfig(window="dtim", serve_port=0)),
    )
    url = prepared.metrics_server.url
    result = prepared.execute()
    # Scrape while the server is still up, before closing.
    with urllib.request.urlopen(url + "/metrics", timeout=5) as response:
        metrics_text = response.read().decode("utf-8")
    with urllib.request.urlopen(url + "/healthz", timeout=5) as response:
        health = json.loads(response.read())
    result.close()
    return trace, result, metrics_text, health


class TestDeterminism:
    def test_fingerprint_unchanged_by_telemetry_and_server(self, telemetry_run):
        trace, result, _, _ = telemetry_run
        plain = run_trace_des(trace, _config())
        assert (
            result.deterministic_fingerprint()
            == plain.deterministic_fingerprint()
        )

    def test_event_count_unchanged_by_telemetry(self, telemetry_run):
        trace, result, _, _ = telemetry_run
        plain = run_trace_des(trace, _config())
        assert (
            result.simulator.events_processed
            == plain.simulator.events_processed
        )


class TestWindows:
    def test_windows_tile_the_run(self, telemetry_run):
        _, result, _, _ = telemetry_run
        windows = result.timeseries.windows
        assert windows[0].t_start == 0.0
        assert windows[-1].t_end == pytest.approx(DURATION_S)
        for earlier, later in zip(windows, windows[1:]):
            assert later.t_start == pytest.approx(earlier.t_end)

    def test_window_width_is_one_dtim_interval(self, telemetry_run):
        _, result, _, _ = telemetry_run
        ap_config = result.access_point.config
        expected = ap_config.beacon_interval_s * ap_config.dtim_period
        # All but the trailing partial window span exactly one DTIM.
        for window in result.timeseries.windows[:-1]:
            assert window.width_s == pytest.approx(expected)

    def test_final_values_match_component_counters(self, telemetry_run):
        _, result, _, _ = telemetry_run
        final = result.timeseries.latest().values
        assert final["repro_sim_events_processed_total"] == float(
            result.simulator.events_processed
        )
        assert final["repro_ap_dtims_sent_total"] == float(
            result.access_point.counters.dtims_sent
        )
        assert final["repro_client_wakeups_total"] == float(
            sum(c.power.counters.resumes for c in result.clients)
        )

    def test_deltas_sum_to_final_cumulative(self, telemetry_run):
        _, result, _, _ = telemetry_run
        key = "repro_sim_events_processed_total"
        total = sum(w.deltas[key] for w in result.timeseries.windows)
        assert total == result.timeseries.latest().values[key]


class TestLiveScrape:
    def test_metrics_scrape_reflects_run(self, telemetry_run):
        _, result, metrics_text, _ = telemetry_run
        expected = (
            f"repro_sim_events_processed_total "
            f"{result.simulator.events_processed}"
        )
        assert expected in metrics_text

    def test_healthz_reports_final_sim_time(self, telemetry_run):
        _, _, _, health = telemetry_run
        assert health["status"] == "ok"
        assert health["sim_time"] == pytest.approx(DURATION_S)


class TestRunDiff:
    def test_same_seed_timeseries_diff_clean_at_zero_tolerance(
        self, telemetry_run, tmp_path
    ):
        trace, result, _, _ = telemetry_run
        repeat = run_trace_des(
            trace, _config(telemetry=TelemetryConfig(window="dtim"))
        )
        path_a = tmp_path / "a_ts.json"
        path_b = tmp_path / "b_ts.json"
        result.timeseries.write(str(path_a))
        repeat.timeseries.write(str(path_b))
        diff = diff_files(str(path_a), str(path_b))
        assert diff.ok()
        assert not diff.regressions
        assert json.loads(path_a.read_text())["schema"] == TIMESERIES_SCHEMA
