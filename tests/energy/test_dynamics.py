"""Tests of the Section IV state recursion (Eqs. 3-5, 14)."""

import pytest

from repro.energy.dynamics import FrameEvent, derive_frame_dynamics
from repro.errors import ConfigurationError
from repro.units import mbps

TAU = 1.0
TRM = 0.046
TSP = 0.086


def frame(time, length=125, rate=mbps(1), useful=True, more=False):
    return FrameEvent(
        time=time, length_bytes=length, rate_bps=rate, useful=useful, more_data=more
    )


def derive(frames, tau=TAU, wakelock_for_frame=None):
    return derive_frame_dynamics(
        frames,
        wakelock_timeout_s=tau,
        resume_duration_s=TRM,
        suspend_duration_s=TSP,
        wakelock_for_frame=wakelock_for_frame,
    )


AIRTIME = 0.001  # 125 bytes at 1 Mb/s


class TestSingleFrame:
    def test_first_frame_finds_system_suspended(self):
        (dyn,) = derive([frame(0.0)])
        assert dyn.suspended_on_arrival

    def test_wakelock_delayed_by_resume(self):
        # Eq. (3), first case: t_r = t + l/r + T_rm.
        (dyn,) = derive([frame(2.0)])
        assert dyn.wakelock_start == pytest.approx(2.0 + AIRTIME + TRM)

    def test_full_wakelock_duration(self):
        (dyn,) = derive([frame(0.0)])
        assert dyn.coverage_increment == pytest.approx(TAU)

    def test_no_aborted_suspend(self):
        (dyn,) = derive([frame(0.0)])
        assert dyn.aborted_suspend_fraction == 0.0


class TestRenewal:
    def test_second_frame_within_wakelock_renews(self):
        dynamics = derive([frame(0.0), frame(0.5)])
        assert not dynamics[1].suspended_on_arrival
        # Eq. (4): first frame's incremental hold is t_r(2) - t_r(1).
        gap = dynamics[1].wakelock_start - dynamics[0].wakelock_start
        assert dynamics[0].coverage_increment + dynamics[1].coverage_increment == (
            pytest.approx(gap + TAU)
        )

    def test_total_coverage_equals_union(self):
        dynamics = derive([frame(0.0), frame(0.4), frame(0.8)])
        total = sum(d.coverage_increment for d in dynamics)
        # One continuous hold from t_r(1) to t_r(3)+tau.
        expected = dynamics[2].wakelock_start + TAU - dynamics[0].wakelock_start
        assert total == pytest.approx(expected)

    def test_frame_during_resume_delays_wakelock(self):
        # Second frame lands while the first resume is in flight:
        # Eq. (3) second case with t_r(i-1) dominating.
        dynamics = derive([frame(0.0), frame(0.01)])
        assert not dynamics[1].suspended_on_arrival
        assert dynamics[1].wakelock_start == dynamics[0].wakelock_start


class TestSuspendCycle:
    def test_distant_frame_finds_system_suspended(self):
        # Eq. (5): gap beyond tau + Tsp -> s(i) = 0.
        dynamics = derive([frame(0.0), frame(5.0)])
        assert dynamics[1].suspended_on_arrival
        assert dynamics[1].aborted_suspend_fraction == 0.0

    def test_boundary_exactly_at_suspend_completion(self):
        first = frame(0.0)
        wl_end = first.rx_complete + TRM + TAU
        boundary_arrival = wl_end + TSP  # rx_complete == awake_until + Tsp
        second = FrameEvent(
            time=boundary_arrival - AIRTIME,
            length_bytes=125, rate_bps=mbps(1), useful=True,
        )
        dynamics = derive([first, second])
        assert dynamics[1].suspended_on_arrival  # >= comparison, Eq. (5)

    def test_frame_during_suspend_op_aborts(self):
        first = frame(0.0)
        wl_end = first.rx_complete + TRM + TAU
        # Arrives half-way through the suspend op.
        second_rx_complete = wl_end + TSP / 2
        second = FrameEvent(
            time=second_rx_complete - AIRTIME,
            length_bytes=125, rate_bps=mbps(1), useful=True,
        )
        dynamics = derive([first, second])
        assert not dynamics[1].suspended_on_arrival
        assert dynamics[1].aborted_suspend_fraction == pytest.approx(0.5)

    def test_aborted_fraction_capped_at_one(self):
        dynamics = derive([frame(0.0), frame(0.5), frame(5.0)])
        for dyn in dynamics:
            assert 0.0 <= dyn.aborted_suspend_fraction <= 1.0


class TestPerFrameTau:
    """The client-side baseline: τ_i = 0 for useless frames."""

    def tau_for(self, event):
        return TAU if event.useful else 0.0

    def test_useless_frame_holds_no_wakelock(self):
        dynamics = derive(
            [frame(0.0, useful=False)], wakelock_for_frame=self.tau_for
        )
        assert dynamics[0].coverage_increment == 0.0

    def test_useless_frame_does_not_truncate_held_lock(self):
        # A useless frame arriving under a useful frame's lock must not
        # shorten it (wakelocks extend, never shrink).
        dynamics = derive(
            [frame(0.0, useful=True), frame(0.3, useful=False)],
            wakelock_for_frame=self.tau_for,
        )
        total = sum(d.coverage_increment for d in dynamics)
        assert total == pytest.approx(TAU)

    def test_frame_during_resume_does_not_abort(self):
        # The second frame lands during the first frame's resume op: no
        # suspend was in progress, so nothing is aborted.
        dynamics = derive(
            [frame(0.0, useful=False), frame(0.04, useful=False)],
            wakelock_for_frame=self.tau_for,
        )
        assert dynamics[0].suspended_on_arrival
        assert not dynamics[1].suspended_on_arrival
        assert dynamics[1].aborted_suspend_fraction == 0.0

    def test_back_to_back_useless_frames_churn_suspends(self):
        # Frame 2 lands after frame 1's zero-length "processing" but
        # before its suspend op completes: a partial suspend is aborted.
        dynamics = derive(
            [frame(0.0, useful=False), frame(0.1, useful=False)],
            wakelock_for_frame=self.tau_for,
        )
        assert dynamics[0].suspended_on_arrival
        assert not dynamics[1].suspended_on_arrival
        assert 0.0 < dynamics[1].aborted_suspend_fraction < 1.0

    def test_spread_useless_frames_full_cycles(self):
        dynamics = derive(
            [frame(0.0, useful=False), frame(1.0, useful=False)],
            wakelock_for_frame=self.tau_for,
        )
        assert dynamics[1].suspended_on_arrival


class TestValidation:
    def test_unsorted_frames_rejected(self):
        with pytest.raises(ConfigurationError):
            derive([frame(1.0), frame(0.5)])

    def test_negative_constants_rejected(self):
        with pytest.raises(ConfigurationError):
            derive_frame_dynamics([frame(0.0)], -1.0, TRM, TSP)

    def test_negative_per_frame_tau_rejected(self):
        with pytest.raises(ConfigurationError):
            derive([frame(0.0)], wakelock_for_frame=lambda f: -1.0)

    def test_empty_input(self):
        assert derive([]) == []

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FrameEvent(time=-1.0, length_bytes=10, rate_bps=1e6, useful=True)
        with pytest.raises(ValueError):
            FrameEvent(time=0.0, length_bytes=0, rate_bps=1e6, useful=True)
        with pytest.raises(ValueError):
            FrameEvent(time=0.0, length_bytes=10, rate_bps=0, useful=True)
