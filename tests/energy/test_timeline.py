"""Timeline construction and its agreement with the closed form."""

import pytest

from repro.energy.dynamics import FrameEvent, derive_frame_dynamics
from repro.energy.model import EnergyModel
from repro.energy.profile import NEXUS_ONE
from repro.energy.timeline import PowerTimeline, build_timeline
from repro.errors import ConfigurationError
from repro.station.power import PowerState, StateSegment
from repro.units import mbps

TAU = NEXUS_ONE.wakelock_timeout_s
TRM = NEXUS_ONE.resume_duration_s
TSP = NEXUS_ONE.suspend_duration_s


def frame(time, useful=True):
    return FrameEvent(
        time=time, length_bytes=125, rate_bps=mbps(1), useful=useful
    )


def timeline_for(times, duration, wakelock_for_frame=None):
    dynamics = derive_frame_dynamics(
        [frame(t) for t in times], TAU, TRM, TSP, wakelock_for_frame
    )
    return build_timeline(dynamics, NEXUS_ONE, duration)


class TestStructure:
    def test_empty_trace_all_suspended(self):
        timeline = build_timeline([], NEXUS_ONE, 10.0)
        assert timeline.suspend_fraction == 1.0
        assert len(timeline.segments) == 1

    def test_segments_are_contiguous(self):
        timeline = timeline_for([0.5, 1.0, 5.0], 10.0)
        for earlier, later in zip(timeline.segments, timeline.segments[1:]):
            assert earlier.end == pytest.approx(later.start)
        assert timeline.segments[0].start == 0.0
        assert timeline.segments[-1].end == 10.0

    def test_single_frame_cycle(self):
        timeline = timeline_for([1.0], 10.0)
        states = [s.state for s in timeline.segments]
        assert states == [
            PowerState.SUSPENDED,
            PowerState.RESUMING,
            PowerState.ACTIVE,
            PowerState.SUSPENDING,
            PowerState.SUSPENDED,
        ]
        assert timeline.time_in_state(PowerState.RESUMING) == pytest.approx(TRM)
        assert timeline.time_in_state(PowerState.ACTIVE) == pytest.approx(TAU)
        assert timeline.time_in_state(PowerState.SUSPENDING) == pytest.approx(TSP)

    def test_renewed_wakelocks_merge_into_one_active(self):
        timeline = timeline_for([1.0, 1.3, 1.6], 10.0)
        assert timeline.count_segments(PowerState.ACTIVE) == 1
        # First lock starts at rx_complete + T_rm; renewals start at
        # their own rx_complete (the system is already active), so the
        # continuous hold runs from t_r(1) to t_r(3) + tau.
        airtime = 0.001
        tr1 = 1.0 + airtime + TRM
        tr3 = 1.6 + airtime
        assert timeline.time_in_state(PowerState.ACTIVE) == pytest.approx(
            tr3 + TAU - tr1
        )

    def test_duration_clamps_trailing_segments(self):
        timeline = timeline_for([1.0], 1.5)
        assert timeline.segments[-1].end == 1.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_timeline([], NEXUS_ONE, 0.0)
        with pytest.raises(ConfigurationError):
            PowerTimeline(
                segments=(
                    StateSegment(PowerState.SUSPENDED, 0.0, 1.0),
                    StateSegment(PowerState.ACTIVE, 2.0, 3.0),
                ),
                duration_s=3.0,
            )


class TestAgreementWithClosedForm:
    """The timeline and the closed form must describe the same physics."""

    def cross_check(self, times, duration, wakelock_for_frame=None):
        model = EnergyModel(NEXUS_ONE)
        events = [frame(t) for t in times]
        dynamics = model.derive_dynamics(events, wakelock_for_frame)
        timeline = build_timeline(dynamics, NEXUS_ONE, duration)

        # Wakelock time == ACTIVE time.
        closed_form_wl = sum(d.coverage_increment for d in dynamics)
        assert timeline.time_in_state(PowerState.ACTIVE) == pytest.approx(
            closed_form_wl, abs=1e-9
        )
        # Resume count == suspended arrivals.
        resumes = sum(1 for d in dynamics if d.suspended_on_arrival)
        assert timeline.count_segments(PowerState.RESUMING) == resumes
        assert timeline.time_in_state(PowerState.RESUMING) == pytest.approx(
            resumes * TRM
        )
        # Suspending time == completed suspends + aborted fractions.
        aborted = sum(d.aborted_suspend_fraction for d in dynamics)
        completed = resumes  # each suspended arrival implies a prior completed
        # (the trailing suspend is completed too but the first resume's
        # predecessor happened before t=0, balancing it out)
        expected_suspending = completed * TSP + aborted * TSP
        assert timeline.time_in_state(PowerState.SUSPENDING) == pytest.approx(
            expected_suspending, abs=1e-9
        )
        return timeline

    def test_sparse_frames(self):
        self.cross_check([1.0, 5.0, 9.0], 20.0)

    def test_dense_burst(self):
        self.cross_check([1.0 + 0.002 * i for i in range(20)], 20.0)

    def test_mixed_gaps(self):
        self.cross_check([0.5, 0.8, 1.95, 2.0, 7.0, 7.05, 15.0], 30.0)

    def test_client_side_tau(self):
        self.cross_check(
            [0.5, 3.0, 6.0],
            20.0,
            wakelock_for_frame=lambda e: 0.0,
        )

    def test_suspend_fraction_decreases_with_traffic(self):
        light = timeline_for([1.0], 20.0)
        heavy = timeline_for([float(t) for t in range(1, 15)], 20.0)
        assert heavy.suspend_fraction < light.suspend_fraction

    def test_baseline_energy(self):
        timeline = timeline_for([1.0], 10.0)
        expected = NEXUS_ONE.suspend_power_w * timeline.time_in_state(
            PowerState.SUSPENDED
        )
        assert timeline.baseline_energy_j(NEXUS_ONE) == pytest.approx(expected)
