import pytest

from repro.energy.battery import (
    Battery,
    GALAXY_S4_BATTERY,
    NEXUS_ONE_BATTERY,
    StandbyProjection,
    project_standby,
)
from repro.energy.components import EnergyBreakdown
from repro.energy.profile import NEXUS_ONE
from repro.errors import ConfigurationError


def breakdown(total_mw: float) -> EnergyBreakdown:
    return EnergyBreakdown(
        beacon_j=total_mw * 1e-3 * 100,
        receive_j=0.0,
        state_transfer_j=0.0,
        wakelock_j=0.0,
        overhead_j=0.0,
        duration_s=100.0,
    )


class TestBattery:
    def test_capacity_joules(self):
        # 1400 mAh * 3.7 V * 3600 s/h = 18648 J.
        assert NEXUS_ONE_BATTERY.capacity_j == pytest.approx(18648.0)

    def test_drain_hours(self):
        battery = Battery(capacity_mah=1000, voltage_v=3.6)
        # 13 kJ at 1 W -> 3.6 hours.
        assert battery.drain_hours(1.0) == pytest.approx(3.6)

    def test_fraction_per_day(self):
        battery = Battery(capacity_mah=1000, voltage_v=3.6)
        # 12.96 kJ capacity; 0.15 W * 86400 s = 12.96 kJ -> exactly 1/day.
        assert battery.fraction_per_day(0.15) == pytest.approx(1.0)

    def test_s4_bigger_than_n1(self):
        assert GALAXY_S4_BATTERY.capacity_j > NEXUS_ONE_BATTERY.capacity_j

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Battery(capacity_mah=0)
        with pytest.raises(ConfigurationError):
            Battery(capacity_mah=100, voltage_v=0)
        with pytest.raises(ConfigurationError):
            NEXUS_ONE_BATTERY.drain_hours(0.0)
        with pytest.raises(ConfigurationError):
            NEXUS_ONE_BATTERY.fraction_per_day(-1.0)


class TestProjection:
    def test_platform_floor_included(self):
        projection = project_standby(
            breakdown(50.0), NEXUS_ONE, NEXUS_ONE_BATTERY
        )
        assert projection.total_power_w == pytest.approx(
            0.050 + NEXUS_ONE.suspend_power_w
        )

    def test_standby_hours_sane(self):
        # Receive-all-ish 120 mW + 11 mW floor on a 1400 mAh battery:
        # about 1.6 days.
        projection = project_standby(
            breakdown(120.0), NEXUS_ONE, NEXUS_ONE_BATTERY
        )
        assert 30 < projection.standby_hours < 50

    def test_hide_extends_standby(self):
        stock = project_standby(breakdown(120.0), NEXUS_ONE, NEXUS_ONE_BATTERY)
        hide = project_standby(breakdown(30.0), NEXUS_ONE, NEXUS_ONE_BATTERY)
        assert hide.standby_hours > 2.5 * stock.standby_hours

    def test_broadcast_share(self):
        projection = StandbyProjection(
            battery=NEXUS_ONE_BATTERY,
            broadcast_power_w=0.030,
            platform_floor_w=0.010,
        )
        assert projection.broadcast_share == pytest.approx(0.75)

    def test_suspend_fraction_scales_floor(self):
        half = project_standby(
            breakdown(10.0), NEXUS_ONE, NEXUS_ONE_BATTERY, suspend_fraction=0.5
        )
        assert half.platform_floor_w == pytest.approx(
            NEXUS_ONE.suspend_power_w / 2
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            project_standby(
                breakdown(10.0), NEXUS_ONE, NEXUS_ONE_BATTERY,
                suspend_fraction=1.5,
            )
