import pytest

from repro.energy.components import COMPONENT_LABELS, EnergyBreakdown
from repro.energy.profile import ALL_PROFILES, GALAXY_S4, NEXUS_ONE
from repro.errors import ConfigurationError


class TestProfiles:
    def test_table1_nexus_one_values(self):
        p = NEXUS_ONE
        assert p.wakelock_timeout_s == 1.0
        assert p.resume_duration_s == pytest.approx(0.046)
        assert p.suspend_duration_s == pytest.approx(0.086)
        assert p.resume_energy_j == pytest.approx(18.26e-3)
        assert p.suspend_energy_j == pytest.approx(17.66e-3)
        assert p.beacon_rx_j == pytest.approx(1.25e-3)
        assert p.rx_power_w == pytest.approx(0.530)
        assert p.tx_power_w == pytest.approx(1.200)
        assert p.idle_power_w == pytest.approx(0.245)
        assert p.suspend_power_w == pytest.approx(0.011)
        assert p.active_idle_power_w == pytest.approx(0.125)

    def test_table1_galaxy_s4_values(self):
        p = GALAXY_S4
        assert p.resume_duration_s == pytest.approx(0.044)
        assert p.suspend_duration_s == pytest.approx(0.165)
        assert p.resume_energy_j == pytest.approx(58.3e-3)
        assert p.suspend_energy_j == pytest.approx(85.8e-3)
        assert p.beacon_rx_j == pytest.approx(1.71e-3)
        assert p.tx_power_w == pytest.approx(1.5)

    def test_both_profiles_exported(self):
        assert [p.name for p in ALL_PROFILES] == ["Nexus One", "Galaxy S4"]

    def test_overrides(self):
        modified = NEXUS_ONE.with_overrides(wakelock_timeout_s=0.5)
        assert modified.wakelock_timeout_s == 0.5
        assert modified.rx_power_w == NEXUS_ONE.rx_power_w
        assert NEXUS_ONE.wakelock_timeout_s == 1.0  # original untouched

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            NEXUS_ONE.with_overrides(rx_power_w=-1.0)


class TestBreakdown:
    def make(self, **kwargs):
        defaults = dict(
            beacon_j=1.0,
            receive_j=2.0,
            state_transfer_j=3.0,
            wakelock_j=4.0,
            overhead_j=0.5,
            duration_s=10.0,
        )
        defaults.update(kwargs)
        return EnergyBreakdown(**defaults)

    def test_total(self):
        assert self.make().total_j == pytest.approx(10.5)

    def test_average_power(self):
        assert self.make().average_power_w == pytest.approx(1.05)

    def test_component_power_labels(self):
        powers = self.make().component_power_w()
        assert tuple(powers) == COMPONENT_LABELS
        assert powers["Eb"] == pytest.approx(0.1)
        assert powers["Eo"] == pytest.approx(0.05)

    def test_savings(self):
        baseline = self.make()
        better = self.make(wakelock_j=0.0, state_transfer_j=0.0)
        assert better.savings_vs(baseline) == pytest.approx(7.0 / 10.5)

    def test_savings_requires_nonzero_baseline(self):
        baseline = self.make(
            beacon_j=0, receive_j=0, state_transfer_j=0, wakelock_j=0, overhead_j=0
        )
        with pytest.raises(ValueError):
            self.make().savings_vs(baseline)

    def test_scaled(self):
        scaled = self.make().scaled(2.0)
        assert scaled.total_j == pytest.approx(21.0)
        assert scaled.duration_s == 10.0

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            self.make(duration_s=0.0)
