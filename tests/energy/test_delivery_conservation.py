"""Energy-accrual conservation under the deferred (vectorized) lane.

The deferred accrual in :mod:`repro.sim.radio_array` trades per-frame
counter bumps for epoch arithmetic settled at sync points.  The failure
modes of that trade are all conservation bugs: a frame credited to no
one (lost), a frame credited twice (slot settled twice without
re-baselining), or a frame credited under the wrong membership (state
change applied before settling).  These tests pin conservation three
ways:

* full-DES runs at 25 and 1000 clients, where every attached client's
  ``received + ignored`` must equal the array's global frame epoch;
* a 5000-slot direct drive of :class:`RadioArray` against an eager
  per-frame reference model (5000 > MAX_AID, so only the array itself
  can be exercised at this scale);
* crash / ``force_suspend`` mid-window, where release must settle a
  slot exactly once.
"""

import random

import pytest

from repro.experiments.des_run import DesRunConfig, run_trace_des
from repro.faults import FaultPlan
from repro.sim.radio_array import RadioArray
from repro.station.client import ClientCounters
from repro.traces import generate_trace


class _StubRadio:
    """Duck-typed stand-in for a Client bound to the array."""

    _next_mac = 0

    def __init__(self, aid, ports, listening=False):
        _StubRadio._next_mac += 1
        self.mac = ("stub", _StubRadio._next_mac)
        self.aid = aid
        self.ports = frozenset(ports)
        self.listening = listening
        self.counters = ClientCounters()

    def radio_broadcast_state(self):
        return (self.listening, self.aid, self.ports)


class _StubFrame:
    """Broadcast frame double exposing only the memoized port accessor."""

    def __init__(self, port):
        self._port = port

    def udp_dst_port(self):
        return self._port


def _expected_accrual(stub, port):
    """Eager per-frame reference semantics for one dozing stub."""
    if stub.listening:
        return (0, 0)
    missed = int(
        stub.aid is not None and port is not None and port in stub.ports
    )
    return (1, missed)


class TestFullDesConservation:
    """received + ignored == frames fanned out, for every client."""

    def _assert_conserved(self, scenario, clients, duration, seed=5):
        trace = generate_trace(scenario, seed=seed)
        result = run_trace_des(
            trace,
            DesRunConfig(
                client_count=clients,
                duration_s=duration,
                check_invariants=True,
                delivery_backend="vectorized",
            ),
        )
        result.close()
        radios = result.medium.radio_array
        assert radios is not None
        assert len(radios) == clients
        total = radios.frames_total
        assert total > 0, "scenario delivered no broadcast traffic"
        for client in result.clients:
            c = client.counters
            assert c.broadcast_frames_received + c.broadcast_frames_ignored == total
            assert (
                c.useful_frames_received + c.useless_frames_received
                == c.broadcast_frames_received
            )
            # No faults injected: HIDE must not cause misses on its own.
            assert c.useful_frames_missed == 0

    def test_conserved_at_25_clients(self):
        self._assert_conserved("Classroom", 25, 10.0)

    @pytest.mark.slow
    def test_conserved_at_1000_clients(self):
        self._assert_conserved("DenseFleet", 1000, 8.0, seed=3)


class TestRadioArrayConservation5k:
    """5000 slots (beyond MAX_AID=2007) against an eager reference model."""

    PORTS = (137, 138, 1900, 5353, 17500)

    def test_randomized_drive_matches_eager_model(self):
        rng = random.Random(20260808)
        radios = RadioArray()
        stubs = []
        expected = {}  # stub -> [ignored, missed]
        for i in range(5000):
            stub = _StubRadio(
                aid=(i + 1) if rng.random() < 0.9 else None,
                ports=rng.sample(self.PORTS, rng.randint(0, 3)),
                listening=rng.random() < 0.1,
            )
            radios.allocate(stub)
            stubs.append(stub)
            expected[stub] = [0, 0]

        detached = []
        for _ in range(400):
            port = rng.choice(self.PORTS + (None,))
            radios.account_broadcast(_StubFrame(port))
            for stub in stubs:
                ignored, missed = _expected_accrual(stub, port)
                expected[stub][0] += ignored
                expected[stub][1] += missed
            action = rng.random()
            if action < 0.15:  # mutate a random slot's state
                stub = rng.choice(stubs)
                kind = rng.randint(0, 2)
                if kind == 0:
                    stub.listening = not stub.listening
                elif kind == 1:
                    stub.ports = frozenset(
                        rng.sample(self.PORTS, rng.randint(0, 3))
                    )
                else:
                    stub.aid = None if stub.aid is not None else 1 + rng.randint(0, 5000)
                radios.refresh(radios.slot_of[stub])
            elif action < 0.20:  # crash mid-window: settle exactly once
                idx = rng.randrange(len(stubs))
                stub = stubs.pop(idx)
                radios.release(stub)
                detached.append(stub)
            elif action < 0.23 and detached:  # rejoin on a recycled slot
                stub = detached.pop()
                radios.allocate(stub)
                stubs.append(stub)
            elif action < 0.30:  # probe boundary
                radios.flush()

        radios.flush()
        assert radios.frames_total == 400
        for stub in stubs + detached:
            assert stub.counters.broadcast_frames_ignored == expected[stub][0], stub.mac
            assert stub.counters.useful_frames_missed == expected[stub][1], stub.mac

        # Settling again without new frames must change nothing.
        before = [
            (s.counters.broadcast_frames_ignored, s.counters.useful_frames_missed)
            for s in stubs
        ]
        radios.flush()
        for stub in list(stubs):
            radios.release(stub)
        after = [
            (s.counters.broadcast_frames_ignored, s.counters.useful_frames_missed)
            for s in stubs
        ]
        assert before == after


class TestMidWindowRelease:
    """A slot released mid-window settles exactly once — never twice."""

    def test_release_settles_once(self):
        radios = RadioArray()
        stub = _StubRadio(aid=1, ports=(5353,))
        radios.allocate(stub)
        for port in (5353, 1900, 5353):
            radios.account_broadcast(_StubFrame(port))
        radios.release(stub)
        assert stub.counters.broadcast_frames_ignored == 3
        assert stub.counters.useful_frames_missed == 2
        # Flush after release: the freed slot must not re-settle.
        radios.flush()
        assert stub.counters.broadcast_frames_ignored == 3
        assert stub.counters.useful_frames_missed == 2

    def test_rejoin_rebaselines_against_current_epoch(self):
        radios = RadioArray()
        stub = _StubRadio(aid=1, ports=(5353,))
        radios.allocate(stub)
        radios.account_broadcast(_StubFrame(5353))
        radios.release(stub)
        # Frames aired while detached are nobody's to accrue.
        radios.account_broadcast(_StubFrame(5353))
        radios.account_broadcast(_StubFrame(5353))
        radios.allocate(stub)
        radios.account_broadcast(_StubFrame(5353))
        radios.flush()
        assert stub.counters.broadcast_frames_ignored == 2
        assert stub.counters.useful_frames_missed == 2

    def test_crash_mid_burst_full_des_matches_reference(self):
        """Fault-plan crash (detach + ``force_suspend``) conserves.

        The crash path releases the slot (settling it) and then clears
        the client's listen flags; a second settle through the clearing
        path would double-count the window.  Reference equality at the
        per-counter level catches exactly that.
        """
        plan = FaultPlan.parse("loss=0.05,seed=13,crash=2@2:4,crash=5@3:6")
        runs = {}
        for backend in ("reference", "vectorized"):
            trace = generate_trace("Classroom", seed=9)
            result = run_trace_des(
                trace,
                DesRunConfig(
                    client_count=8,
                    duration_s=8.0,
                    fault_plan=plan,
                    check_invariants=True,
                    delivery_backend=backend,
                ),
            )
            result.close()
            runs[backend] = result
        crashed = [c for c in runs["vectorized"].clients if c.counters.crashes]
        assert crashed, "fault plan produced no crash"
        for ref_client, vec_client in zip(
            runs["reference"].clients, runs["vectorized"].clients
        ):
            assert ref_client.counters == vec_client.counters
        assert (
            runs["reference"].deterministic_fingerprint()
            == runs["vectorized"].deterministic_fingerprint()
        )
