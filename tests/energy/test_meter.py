"""The DES energy meter, and its agreement with the closed-form model."""

import pytest

from repro.ap.access_point import AccessPoint, ApConfig
from repro.dot11.mac_address import MacAddress
from repro.energy.meter import ClientEnergyMeter
from repro.energy.profile import NEXUS_ONE
from repro.errors import SimulationError
from repro.net.packet import build_broadcast_udp_packet
from repro.sim.engine import Simulator
from repro.sim.medium import Medium
from repro.station.client import Client, ClientConfig, ClientPolicy

AP_MAC = MacAddress.from_string("02:aa:00:00:00:01")
WIRED_SRC = MacAddress.from_string("02:bb:00:00:00:99")


def run_scenario(policy, traffic, duration=20.0, open_ports=(5353,)):
    sim = Simulator()
    medium = Medium(sim)
    ap = AccessPoint(AP_MAC, medium, ApConfig())
    medium.attach(ap)
    client = Client(
        MacAddress.station(1), medium, AP_MAC,
        ClientConfig(
            policy=policy,
            wakelock_timeout_s=NEXUS_ONE.wakelock_timeout_s,
            resume_duration_s=NEXUS_ONE.resume_duration_s,
            suspend_duration_s=NEXUS_ONE.suspend_duration_s,
        ),
    )
    medium.attach(client)
    record = ap.associate(client.mac, hide_capable=True)
    client.set_aid(record.aid)
    for port in open_ports:
        client.open_port(port)
    for time, port in traffic:
        packet = build_broadcast_udp_packet(port, b"x" * 150)
        sim.schedule(time, lambda p=packet: ap.deliver_from_ds(p, WIRED_SRC))
    sim.run(until=duration)
    return client


TRAFFIC = [(1.0, 5353), (4.0, 137), (8.0, 5353), (8.01, 137), (14.0, 5353)]


class TestMeter:
    def test_components_non_negative(self):
        client = run_scenario(ClientPolicy.RECEIVE_ALL, TRAFFIC)
        metered = ClientEnergyMeter(client, NEXUS_ONE).measure(20.0)
        b = metered.breakdown
        assert b.beacon_j > 0
        assert b.receive_j > 0
        assert b.state_transfer_j > 0
        assert b.wakelock_j > 0
        assert b.overhead_j == 0.0  # receive-all sends no port messages

    def test_hide_pays_overhead(self):
        client = run_scenario(ClientPolicy.HIDE, TRAFFIC)
        metered = ClientEnergyMeter(client, NEXUS_ONE).measure(20.0)
        assert metered.breakdown.overhead_j > 0

    def test_hide_meters_below_receive_all(self):
        receive_all = run_scenario(ClientPolicy.RECEIVE_ALL, TRAFFIC)
        hide = run_scenario(ClientPolicy.HIDE, TRAFFIC)
        ra_energy = ClientEnergyMeter(receive_all, NEXUS_ONE).measure(20.0)
        hide_energy = ClientEnergyMeter(hide, NEXUS_ONE).measure(20.0)
        assert hide_energy.breakdown.total_j < ra_energy.breakdown.total_j

    def test_wakelock_energy_matches_hold_time(self):
        client = run_scenario(ClientPolicy.RECEIVE_ALL, TRAFFIC)
        metered = ClientEnergyMeter(client, NEXUS_ONE).measure(20.0)
        assert metered.breakdown.wakelock_j == pytest.approx(
            NEXUS_ONE.active_idle_power_w * client.wakelock.total_held_time()
        )

    def test_state_transfer_counts_aborts(self):
        # 8.0 and 8.01 are back-to-back: the second frame may abort the
        # first's suspend path depending on timing; either way the meter
        # must charge resumes * Erm + completed * Esp exactly.
        client = run_scenario(ClientPolicy.CLIENT_SIDE, TRAFFIC)
        metered = ClientEnergyMeter(client, NEXUS_ONE).measure(20.0)
        power = client.power.counters
        expected_minimum = (
            NEXUS_ONE.resume_energy_j * power.resumes
            + NEXUS_ONE.suspend_energy_j * power.suspends_completed
        )
        assert metered.breakdown.state_transfer_j >= expected_minimum

    def test_platform_baseline(self):
        client = run_scenario(ClientPolicy.HIDE, [])
        metered = ClientEnergyMeter(client, NEXUS_ONE).measure(20.0)
        # Nearly fully suspended: baseline ~ Pss * 20s.
        assert metered.platform_baseline_j == pytest.approx(
            NEXUS_ONE.suspend_power_w * 20.0, rel=0.1
        )
        assert metered.total_with_baseline_j > metered.breakdown.total_j
        assert metered.average_power_with_baseline_w > 0

    def test_agreement_with_closed_form_wakelock_and_transitions(self):
        """DES meter vs Section IV closed form on the same frame schedule."""
        from repro.energy.model import EnergyModel
        from repro.energy.dynamics import FrameEvent
        from repro.units import mbps

        client = run_scenario(ClientPolicy.RECEIVE_ALL, TRAFFIC)
        metered = ClientEnergyMeter(client, NEXUS_ONE).measure(20.0)

        # Reconstruct the model's view from the known on-air schedule:
        # frames land just after the DTIM following their offered time.
        model = EnergyModel(NEXUS_ONE)
        events = []
        for time, port in TRAFFIC:
            dtim = (int(time / 0.1024) + 1) * 0.1024
            events.append(
                FrameEvent(
                    time=dtim + 0.001, length_bytes=214, rate_bps=mbps(1),
                    useful=port == 5353,
                )
            )
        events.sort(key=lambda e: e.time)
        dynamics = model.derive_dynamics(events)
        model_wl = model.wakelock_energy(dynamics)
        model_st = model.state_transfer_energy(dynamics)
        assert metered.breakdown.wakelock_j == pytest.approx(model_wl, rel=0.05)
        assert metered.breakdown.state_transfer_j == pytest.approx(
            model_st, rel=0.15
        )

    def test_unattached_client_rejected(self):
        sim = Simulator()
        medium = Medium(sim)
        client = Client(MacAddress.station(1), medium, AP_MAC)
        with pytest.raises(SimulationError):
            ClientEnergyMeter(client, NEXUS_ONE).measure(10.0)

    def test_zero_duration_rejected(self):
        client = run_scenario(ClientPolicy.HIDE, [])
        with pytest.raises(SimulationError):
            ClientEnergyMeter(client, NEXUS_ONE).measure(0.0)
