"""Tests of the component energies (Eqs. 2, 6-19)."""

import pytest

from repro.energy.dynamics import FrameEvent
from repro.energy.model import EnergyModel, HideOverheadParams
from repro.energy.profile import GALAXY_S4, NEXUS_ONE
from repro.errors import ConfigurationError
from repro.units import BEACON_INTERVAL_S, mbps


def frame(time, length=125, rate=mbps(1), useful=True, more=False):
    return FrameEvent(
        time=time, length_bytes=length, rate_bps=rate, useful=useful, more_data=more
    )


@pytest.fixture
def model():
    return EnergyModel(NEXUS_ONE)


class TestBeaconEnergy:
    def test_one_beacon_per_interval(self, model):
        duration = 10 * BEACON_INTERVAL_S
        assert model.beacon_energy(duration) == pytest.approx(
            10 * NEXUS_ONE.beacon_rx_j
        )

    def test_partial_interval_rounds_up(self, model):
        assert model.beacon_energy(BEACON_INTERVAL_S * 1.5) == pytest.approx(
            2 * NEXUS_ONE.beacon_rx_j
        )

    def test_same_for_all_solutions(self, model):
        # E_b depends only on the window, not on the frames received.
        assert model.beacon_energy(100.0) == model.beacon_energy(100.0)

    def test_listen_dtim_only_divides_beacon_energy(self):
        every = EnergyModel(NEXUS_ONE, dtim_period=3)
        dtim_only = EnergyModel(NEXUS_ONE, dtim_period=3, listen_dtim_only=True)
        assert dtim_only.beacon_energy(102.4) == pytest.approx(
            every.beacon_energy(102.4) / 3, rel=0.01
        )

    def test_listen_dtim_only_noop_at_period_one(self):
        every = EnergyModel(NEXUS_ONE)
        dtim_only = EnergyModel(NEXUS_ONE, listen_dtim_only=True)
        assert dtim_only.beacon_energy(50.0) == every.beacon_energy(50.0)


class TestReceiveEnergy:
    def test_transmission_time_at_rx_power(self, model):
        events = [frame(0.01, length=125, rate=mbps(1))]  # 1 ms airtime
        energy = model.receive_energy(events, 1.0)
        # t_f: 0.01 s idle from beacon start to frame; t_t: 1 ms at P_r.
        expected = NEXUS_ONE.rx_power_w * 0.001 + NEXUS_ONE.idle_power_w * 0.01
        assert energy == pytest.approx(expected)

    def test_more_data_listen_until_next_frame(self, model):
        events = [
            frame(0.001, more=True),
            frame(0.02, more=False),
        ]
        energy = model.receive_energy(events, 1.0)
        rx = NEXUS_ONE.rx_power_w * 0.002
        # t_f = 0.001 (beacon to first frame), t_d = gap between rx end
        # of frame 1 and start of frame 2.
        idle = NEXUS_ONE.idle_power_w * (0.001 + (0.02 - 0.002))
        assert energy == pytest.approx(rx + idle)

    def test_more_data_listen_capped_at_interval_end(self, model):
        events = [frame(0.1, more=True)]  # more-data but nothing follows
        energy = model.receive_energy(events, 1.0)
        interval_end = BEACON_INTERVAL_S
        idle = NEXUS_ONE.idle_power_w * (0.1 + (interval_end - 0.1 - 0.001))
        assert energy == pytest.approx(NEXUS_ONE.rx_power_w * 0.001 + idle)

    def test_no_frames_no_receive_energy(self, model):
        assert model.receive_energy([], 10.0) == 0.0

    def test_more_frames_more_energy(self, model):
        one = model.receive_energy([frame(0.01)], 1.0)
        two = model.receive_energy([frame(0.01), frame(0.3)], 1.0)
        assert two > one


class TestWakelockEnergy:
    def test_single_frame(self, model):
        dynamics = model.derive_dynamics([frame(0.0)])
        assert model.wakelock_energy(dynamics) == pytest.approx(
            NEXUS_ONE.active_idle_power_w * NEXUS_ONE.wakelock_timeout_s
        )

    def test_renewal_extends_not_doubles(self, model):
        dynamics = model.derive_dynamics([frame(0.0), frame(0.5)])
        energy = model.wakelock_energy(dynamics)
        # Continuous hold: t_r(1) = 0.047, t_r(2) = 0.501, lock ends
        # t_r(2) + tau -> 1.454 s total, well under two full taus.
        held = dynamics[1].wakelock_start + 1.0 - dynamics[0].wakelock_start
        assert energy == pytest.approx(NEXUS_ONE.active_idle_power_w * held)
        assert held < 2.0


class TestStateTransferEnergy:
    def test_one_cycle_per_isolated_frame(self, model):
        dynamics = model.derive_dynamics([frame(0.0), frame(10.0)])
        expected = 2 * (NEXUS_ONE.resume_energy_j + NEXUS_ONE.suspend_energy_j)
        assert model.state_transfer_energy(dynamics) == pytest.approx(expected)

    def test_aborted_suspend_partial_cost(self, model):
        first = frame(0.0)
        abort_time = first.rx_complete + NEXUS_ONE.resume_duration_s + 1.0 + 0.043
        dynamics = model.derive_dynamics([first, frame(abort_time)])
        energy = model.state_transfer_energy(dynamics)
        full_cycle = NEXUS_ONE.resume_energy_j + NEXUS_ONE.suspend_energy_j
        assert energy > full_cycle
        assert energy < 2 * full_cycle

    def test_galaxy_s4_transitions_cost_more(self):
        events = [frame(float(i) * 3) for i in range(10)]
        n1 = EnergyModel(NEXUS_ONE)
        s4 = EnergyModel(GALAXY_S4)
        assert s4.state_transfer_energy(
            s4.derive_dynamics(events)
        ) > n1.state_transfer_energy(n1.derive_dynamics(events))


class TestOverheadEnergy:
    def test_none_means_zero(self, model):
        assert model.overhead_energy(None, 100.0) == 0.0

    def test_btim_plus_messages(self, model):
        overhead = HideOverheadParams(
            port_message_interval_s=10.0, ports_per_message=100
        )
        energy = model.overhead_energy(overhead, 100.0)
        messages = 10
        message_energy = (
            messages * NEXUS_ONE.tx_power_w * overhead.message_airtime_s
        )
        beacons = model.beacon_count(100.0)
        btim_energy = NEXUS_ONE.beacon_rx_j * (6 / 65) * beacons
        assert energy == pytest.approx(message_energy + btim_energy)

    def test_overhead_is_small(self, model):
        # The paper's observation: E_o is negligible even at heavy usage.
        overhead = HideOverheadParams()
        power = model.overhead_energy(overhead, 1000.0) / 1000.0
        assert power < 0.005  # < 5 mW

    def test_message_length_eq19(self):
        overhead = HideOverheadParams(ports_per_message=100)
        # MAC(24) + FCS(4) + 2 fixed + 200 port bytes.
        assert overhead.message_length_bytes == 230

    def test_dtim_period_reduces_btim_overhead(self):
        m1 = EnergyModel(NEXUS_ONE, dtim_period=1)
        m3 = EnergyModel(NEXUS_ONE, dtim_period=3)
        overhead = HideOverheadParams(port_message_interval_s=1e9)
        assert m3.overhead_energy(overhead, 100.0) < m1.overhead_energy(
            overhead, 100.0
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HideOverheadParams(port_message_interval_s=0)
        with pytest.raises(ConfigurationError):
            HideOverheadParams(ports_per_message=-1)
        with pytest.raises(ConfigurationError):
            HideOverheadParams(message_rate_bps=0)


class TestEvaluate:
    def test_total_is_sum_of_components(self, model):
        events = [frame(0.1), frame(2.0), frame(7.5)]
        breakdown = model.evaluate(events, 10.0, overhead=HideOverheadParams())
        assert breakdown.total_j == pytest.approx(
            breakdown.beacon_j
            + breakdown.receive_j
            + breakdown.state_transfer_j
            + breakdown.wakelock_j
            + breakdown.overhead_j
        )

    def test_empty_trace_still_pays_beacons(self, model):
        breakdown = model.evaluate([], 10.0)
        assert breakdown.beacon_j > 0
        assert breakdown.receive_j == 0
        assert breakdown.wakelock_j == 0

    def test_average_power(self, model):
        breakdown = model.evaluate([], 10.0)
        assert breakdown.average_power_w == pytest.approx(breakdown.total_j / 10.0)

    def test_duration_validation(self, model):
        with pytest.raises(ConfigurationError):
            model.evaluate([], 0.0)

    def test_model_validation(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(NEXUS_ONE, beacon_interval_s=0)
        with pytest.raises(ConfigurationError):
            EnergyModel(NEXUS_ONE, dtim_period=0)
