"""Windowed timeseries recording: windows, deltas, EWMA, ring buffer."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    TIMESERIES_SCHEMA,
    TimeseriesRecorder,
    WindowSample,
    dtim_window_s,
)
from repro.sim.engine import Simulator


class TestDtimWindow:
    def test_window_is_beacon_interval_times_period(self):
        assert dtim_window_s(0.1024, 3) == pytest.approx(0.3072)

    def test_period_one(self):
        assert dtim_window_s(0.1024, 1) == pytest.approx(0.1024)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            dtim_window_s(0.0, 1)
        with pytest.raises(ConfigurationError):
            dtim_window_s(0.1024, 0)


class TestWindowSample:
    def test_width_and_rate(self):
        window = WindowSample(0, 1.0, 3.0, {"x": 10.0}, {"x": 4.0})
        assert window.width_s == pytest.approx(2.0)
        assert window.rate("x") == pytest.approx(2.0)
        assert window.rate("missing") == 0.0

    def test_zero_width_rate_is_zero(self):
        window = WindowSample(0, 1.0, 1.0, {}, {"x": 4.0})
        assert window.rate("x") == 0.0

    def test_to_dict_round_trips_through_json(self):
        window = WindowSample(2, 0.0, 1.0, {"a": 1.0}, {"a": 1.0})
        loaded = json.loads(json.dumps(window.to_dict()))
        assert loaded["index"] == 2
        assert loaded["values"] == {"a": 1.0}


class TestRecorderSampling:
    def test_deltas_are_per_window_not_cumulative(self):
        reg = MetricsRegistry()
        counter = reg.counter("repro_x_total")
        rec = TimeseriesRecorder(reg, window_s=1.0)
        counter.set_total(5)
        rec.sample(1.0)
        counter.set_total(12)
        window = rec.sample(2.0)
        assert window.values["repro_x_total"] == 12.0
        assert window.deltas["repro_x_total"] == 7.0

    def test_gauge_delta_can_be_negative(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("repro_depth")
        rec = TimeseriesRecorder(reg, window_s=1.0)
        gauge.set(9)
        rec.sample(1.0)
        gauge.set(4)
        assert rec.sample(2.0).deltas["repro_depth"] == -5.0

    def test_histogram_flattens_to_count_and_sum(self):
        reg = MetricsRegistry()
        hist = reg.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        rec = TimeseriesRecorder(reg, window_s=1.0)
        window = rec.sample(1.0)
        assert window.values["repro_lat_seconds_count"] == 2.0
        assert window.values["repro_lat_seconds_sum"] == pytest.approx(0.55)

    def test_values_fn_bypasses_registry(self):
        reads = []

        def values_fn():
            reads.append(True)
            return {"repro_y_total": float(len(reads))}

        rec = TimeseriesRecorder(None, window_s=1.0, values_fn=values_fn)
        rec.sample(1.0)
        window = rec.sample(2.0)
        assert window.values == {"repro_y_total": 2.0}
        assert window.deltas == {"repro_y_total": 1.0}

    def test_collect_fn_called_before_each_sample(self):
        reg = MetricsRegistry()
        source = {"value": 0.0}

        def collect():
            reg.gauge("repro_g").set(source["value"])

        rec = TimeseriesRecorder(reg, window_s=1.0, collect_fn=collect)
        source["value"] = 3.0
        assert rec.sample(1.0).values["repro_g"] == 3.0

    def test_ewma_converges_toward_steady_rate(self):
        reg = MetricsRegistry()
        counter = reg.counter("repro_x_total")
        rec = TimeseriesRecorder(reg, window_s=1.0, ewma_alpha=0.5)
        for i in range(1, 11):
            counter.set_total(i * 10)
            rec.sample(float(i))
        assert rec.ewma_rates()["repro_x_total"] == pytest.approx(10.0, rel=0.05)

    def test_close_partial_only_when_time_advanced(self):
        reg = MetricsRegistry()
        rec = TimeseriesRecorder(reg, window_s=1.0)
        rec.sample(1.0)
        assert rec.close_partial(1.0) is None
        assert rec.close_partial(1.5) is not None
        assert rec.latest().width_s == pytest.approx(0.5)


class TestRingBuffer:
    def test_capacity_bounds_windows_but_counts_all_samples(self):
        reg = MetricsRegistry()
        rec = TimeseriesRecorder(reg, window_s=1.0, capacity=3)
        for i in range(1, 8):
            rec.sample(float(i))
        assert rec.samples_taken == 7
        assert len(rec.windows) == 3
        assert rec.dropped_windows == 4
        assert [w.index for w in rec.windows] == [4, 5, 6]


class TestAttach:
    def test_probe_driven_sampling_during_run(self):
        sim = Simulator()
        reg = MetricsRegistry()
        events = reg.counter("repro_sim_events_total")
        rec = TimeseriesRecorder(
            reg, window_s=1.0,
            collect_fn=lambda: events.set_total(sim.events_processed),
        )
        rec.attach(sim)
        for i in range(1, 6):
            sim.schedule(i * 0.5, lambda: None)
        sim.run(until=3.0)
        assert rec.samples_taken == 3
        # A probe due at t fires before events at t, so the window
        # closing at 1.0 sees only the strictly-earlier event at 0.5.
        assert rec.windows[0].values["repro_sim_events_total"] == 1.0

    def test_sampling_does_not_perturb_event_count(self):
        def run(attach):
            sim = Simulator()
            if attach:
                TimeseriesRecorder(
                    MetricsRegistry(), window_s=0.25,
                ).attach(sim)
            for i in range(1, 5):
                sim.schedule(i * 0.4, lambda: None)
            sim.run()
            return sim.events_processed

        assert run(False) == run(True)


class TestValidationAndSerialization:
    def test_rejects_bad_parameters(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            TimeseriesRecorder(reg, window_s=0.0)
        with pytest.raises(ConfigurationError):
            TimeseriesRecorder(reg, window_s=1.0, capacity=0)
        with pytest.raises(ConfigurationError):
            TimeseriesRecorder(reg, window_s=1.0, ewma_alpha=0.0)
        with pytest.raises(ConfigurationError):
            TimeseriesRecorder(None, window_s=1.0)

    def test_to_dict_carries_schema_and_windows(self):
        reg = MetricsRegistry()
        reg.counter("repro_x_total").set_total(1)
        rec = TimeseriesRecorder(reg, window_s=1.0)
        rec.sample(1.0)
        doc = rec.to_dict()
        assert doc["schema"] == TIMESERIES_SCHEMA
        assert doc["window_s"] == 1.0
        assert len(doc["windows"]) == 1

    def test_write_to_path(self, tmp_path):
        reg = MetricsRegistry()
        rec = TimeseriesRecorder(reg, window_s=1.0)
        rec.sample(1.0)
        path = tmp_path / "ts.json"
        rec.write(str(path))
        assert json.loads(path.read_text())["schema"] == TIMESERIES_SCHEMA
