"""The live scrape endpoint: /metrics, /timeseries, /healthz."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.server import MetricsServer
from repro.obs.timeseries import TIMESERIES_SCHEMA, TimeseriesRecorder


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers.get("Content-Type"), response.read()


@pytest.fixture()
def registry():
    reg = MetricsRegistry()
    reg.counter("repro_events_total", "Events").set_total(42)
    reg.gauge("repro_depth", "Depth", labels={"ap": "02:aa"}).set(7)
    return reg


class TestEndpoints:
    def test_metrics_scrape_is_prometheus_text(self, registry):
        with MetricsServer(registry, port=0) as server:
            status, content_type, body = _get(server.url + "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        text = body.decode("utf-8")
        assert "repro_events_total 42" in text
        assert 'repro_depth{ap="02:aa"} 7' in text

    def test_collect_fn_refreshes_before_scrape(self, registry):
        calls = []

        def collect():
            calls.append(True)
            registry.counter("repro_events_total").set_total(100)

        with MetricsServer(registry, collect_fn=collect, port=0) as server:
            _, _, body = _get(server.url + "/metrics")
        assert calls
        assert "repro_events_total 100" in body.decode("utf-8")

    def test_timeseries_endpoint_dumps_windows(self, registry):
        recorder = TimeseriesRecorder(registry, window_s=1.0)
        recorder.sample(1.0)
        with MetricsServer(registry, recorder=recorder, port=0) as server:
            status, content_type, body = _get(server.url + "/timeseries")
        assert status == 200
        assert content_type.startswith("application/json")
        doc = json.loads(body)
        assert doc["schema"] == TIMESERIES_SCHEMA
        assert len(doc["windows"]) == 1

    def test_healthz_reports_custom_fields(self, registry):
        server = MetricsServer(
            registry, health_fn=lambda: {"sim_time": 4.2}, port=0
        )
        server.start()
        try:
            status, _, body = _get(server.url + "/healthz")
        finally:
            server.stop()
        assert status == 200
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert doc["sim_time"] == 4.2

    def test_profile_endpoint_serves_the_attached_document(self, registry):
        document = {
            "schema": "repro-profile/v1",
            "events_total": 9,
            "sites": [{"owner": "AP", "method": "tick", "kind": "event"}],
        }
        with MetricsServer(
            registry, profile_fn=lambda: document, port=0
        ) as server:
            status, content_type, body = _get(server.url + "/profile")
        assert status == 200
        assert content_type.startswith("application/json")
        assert json.loads(body) == document

    def test_profile_endpoint_empty_without_profiler(self, registry):
        with MetricsServer(registry, port=0) as server:
            status, _, body = _get(server.url + "/profile")
        assert status == 200
        doc = json.loads(body)
        assert doc["schema"] == "repro-profile/v1"
        assert doc["sites"] == []

    def test_unknown_path_is_404_with_endpoint_list(self, registry):
        with MetricsServer(registry, port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/nope")
        assert excinfo.value.code == 404
        doc = json.loads(excinfo.value.read())
        assert "/metrics" in doc["endpoints"]
        assert "/profile" in doc["endpoints"]


class TestLifecycle:
    def test_ephemeral_port_assigned(self, registry):
        with MetricsServer(registry, port=0) as server:
            assert server.port > 0
            assert str(server.port) in server.url
            assert server.running

    def test_stop_is_idempotent_and_releases(self, registry):
        server = MetricsServer(registry, port=0)
        server.start()
        server.stop()
        server.stop()
        assert not server.running

    def test_scrapes_served_counts(self, registry):
        with MetricsServer(registry, port=0) as server:
            _get(server.url + "/metrics")
            _get(server.url + "/metrics")
            assert server.scrapes_served == 2
