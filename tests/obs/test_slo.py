"""SLO specs: bound expressions, evaluation verdicts, CLI exit codes."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.slo import (
    SLO_SCHEMA,
    _eval_bound,
    evaluate_slo,
    load_slo_spec,
    render_slo,
)


def _spec(objectives, variables=None, name="test"):
    return {
        "schema": SLO_SCHEMA,
        "name": name,
        "vars": variables or {},
        "objectives": objectives,
    }


class TestBoundExpressions:
    def test_literal_numbers_pass_through(self):
        assert _eval_bound(3, {}) == 3.0
        assert _eval_bound(0.25, {}) == 0.25

    def test_arithmetic_over_vars(self):
        variables = {"dtim": 0.1024, "n": 4.0}
        assert _eval_bound("3*dtim", variables) == pytest.approx(0.3072)
        assert _eval_bound("(n + 1) * dtim / 2", variables) == pytest.approx(
            2.5 * 0.1024
        )

    def test_scientific_notation_is_a_number_not_a_var(self):
        assert _eval_bound("1e-3 * 5", {}) == pytest.approx(5e-3)
        assert _eval_bound("2.5E2", {}) == 250.0

    def test_unknown_variable_rejected(self):
        with pytest.raises(ConfigurationError):
            _eval_bound("3*dtim", {})

    @pytest.mark.parametrize(
        "expression",
        [
            "__import__('os')",
            "dtim ** 2",
            "x[0]",
            "f(1)",  # call parens are allowed tokens but f is unknown
            "1; 2",
            "",
            "1 +",
        ],
    )
    def test_non_arithmetic_rejected(self, expression):
        with pytest.raises(ConfigurationError):
            _eval_bound(expression, {"dtim": 0.1})

    def test_division_by_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            _eval_bound("1/0", {})

    def test_bool_bound_rejected(self):
        with pytest.raises(ConfigurationError):
            _eval_bound(True, {})


class TestEvaluation:
    def test_max_and_min_objectives(self):
        spec = _spec(
            [
                {"name": "p99", "key": "delay_p99", "max": "2*dtim"},
                {"name": "delivered", "key": "delivered", "min": 10},
            ],
            variables={"dtim": 0.1},
        )
        report = evaluate_slo(spec, {"delay_p99": 0.15, "delivered": 50.0})
        assert report.ok()
        assert [r.ok for r in report.results] == [True, True]

    def test_burn_on_exceeded_max(self):
        spec = _spec([{"key": "delay_p99", "max": 0.1}])
        report = evaluate_slo(spec, {"delay_p99": 0.2})
        assert not report.ok()
        assert report.burns[0].note.startswith("burned")

    def test_missing_metric_burns(self):
        spec = _spec([{"key": "nope", "max": 1}])
        report = evaluate_slo(spec, {})
        assert not report.ok()
        assert report.burns[0].value is None
        assert "missing" in report.burns[0].note

    def test_non_numeric_metric_burns(self):
        spec = _spec([{"key": "deterministic_fingerprint", "max": 1}])
        report = evaluate_slo(spec, {"deterministic_fingerprint": "abc123"})
        assert not report.ok()

    def test_render_mentions_every_objective(self):
        spec = _spec(
            [
                {"name": "good", "key": "a", "max": 10},
                {"name": "bad", "key": "b", "max": 1},
            ]
        )
        text = render_slo(evaluate_slo(spec, {"a": 5.0, "b": 5.0}))
        assert "good" in text and "bad" in text
        assert "BURN" in text
        assert "burned" in text


class TestSpecLoading:
    def _write(self, tmp_path, payload):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(payload))
        return str(path)

    def test_valid_spec_loads(self, tmp_path):
        path = self._write(
            tmp_path, _spec([{"key": "x", "max": 1}], {"dtim": 0.1})
        )
        spec = load_slo_spec(path)
        assert spec["name"] == "test"

    def test_wrong_schema_rejected(self, tmp_path):
        path = self._write(tmp_path, {"schema": "nope", "objectives": []})
        with pytest.raises(ConfigurationError):
            load_slo_spec(path)

    def test_empty_objectives_rejected(self, tmp_path):
        path = self._write(tmp_path, _spec([]))
        with pytest.raises(ConfigurationError):
            load_slo_spec(path)

    def test_objective_needs_exactly_one_bound(self, tmp_path):
        for bad in (
            {"key": "x"},
            {"key": "x", "max": 1, "min": 0},
            {"max": 1},
        ):
            path = self._write(tmp_path, _spec([bad]))
            with pytest.raises(ConfigurationError):
                load_slo_spec(path)

    def test_unreadable_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_slo_spec(str(tmp_path / "missing.json"))


class TestCliGate:
    """The ``repro obs slo`` command is the CI gate: exit codes matter."""

    def _artifact(self, tmp_path, metrics):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(metrics))
        return str(path)

    def test_passing_spec_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "slo.json"
        spec_path.write_text(
            json.dumps(_spec([{"key": "delay_p99", "max": 1.0}]))
        )
        artifact = self._artifact(tmp_path, {"delay_p99": 0.5})
        assert main(["obs", "slo", "--spec", str(spec_path), artifact]) == 0
        assert "all objectives met" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        from repro.cli import main

        spec_path = tmp_path / "slo.json"
        spec_path.write_text(
            json.dumps(_spec([{"key": "delay_p99", "max": 1.0}]))
        )
        artifact = self._artifact(tmp_path, {"delay_p99": 5.0})
        assert main(["obs", "slo", "--spec", str(spec_path), artifact]) == 1
        assert "burned" in capsys.readouterr().out

    def test_bad_spec_exits_two(self, tmp_path):
        from repro.cli import main

        artifact = self._artifact(tmp_path, {"delay_p99": 0.5})
        assert (
            main(["obs", "slo", "--spec", str(tmp_path / "nope.json"), artifact])
            == 2
        )

    def test_later_artifacts_win_on_duplicate_keys(self, tmp_path):
        from repro.cli import main

        spec_path = tmp_path / "slo.json"
        spec_path.write_text(
            json.dumps(_spec([{"key": "delay_p99", "max": 1.0}]))
        )
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"delay_p99": 9.0}))
        good = tmp_path / "good.json"
        good.write_text(json.dumps({"delay_p99": 0.5}))
        assert (
            main(["obs", "slo", "--spec", str(spec_path), str(bad), str(good)])
            == 0
        )
