"""Trace summarization: grouping, statistics, rendering."""

import io

import pytest

from repro.obs.summarize import SpanStats, render_summary, summarize_trace
from repro.obs.tracing import tracer_to_string_buffer


def _sample_trace() -> io.StringIO:
    tracer, buffer = tracer_to_string_buffer()
    tracer.span_record("dtim_cycle", 0.002, sim_time=0.1)
    tracer.span_record("dtim_cycle", 0.004, sim_time=0.2)
    tracer.span_record("algorithm1", 0.0001, sim_time=0.1)
    tracer.event("btim", sim_time=0.1, bits_set=2)
    tracer.event("btim", sim_time=0.2, bits_set=0)
    tracer.event("wakeup", sim_time=0.15, aid=1)
    buffer.seek(0)
    return buffer


class TestSpanStats:
    def test_basic_statistics(self):
        stats = SpanStats("x", durations=[1.0, 3.0, 2.0])
        assert stats.count == 3
        assert stats.total_s == pytest.approx(6.0)
        assert stats.mean_s == pytest.approx(2.0)
        assert stats.max_s == pytest.approx(3.0)
        assert stats.percentile(50) == pytest.approx(2.0)
        assert stats.percentile(0) == pytest.approx(1.0)
        assert stats.percentile(100) == pytest.approx(3.0)

    def test_empty_and_singleton(self):
        assert SpanStats("x").percentile(95) == 0.0
        assert SpanStats("x", durations=[0.5]).percentile(95) == 0.5


class TestSummarizeTrace:
    def test_groups_spans_and_events(self):
        summary = summarize_trace(_sample_trace())
        assert summary.record_count == 6
        by_name = {s.name: s for s in summary.span_stats}
        assert by_name["dtim_cycle"].count == 2
        assert by_name["algorithm1"].count == 1
        assert summary.event_counts == {"btim": 2, "wakeup": 1}

    def test_spans_ordered_by_total_time(self):
        summary = summarize_trace(_sample_trace())
        totals = [s.total_s for s in summary.span_stats]
        assert totals == sorted(totals, reverse=True)

    def test_time_ranges(self):
        summary = summarize_trace(_sample_trace())
        assert summary.sim_time_range == (pytest.approx(0.1), pytest.approx(0.2))
        assert summary.wall_time_range is not None

    def test_empty_trace(self):
        summary = summarize_trace(io.StringIO(""))
        assert summary.record_count == 0
        assert summary.span_stats == ()
        assert summary.sim_time_range is None

    def test_reads_from_path(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(_sample_trace().getvalue())
        assert summarize_trace(str(path)).record_count == 6


class TestRenderSummary:
    def test_render_contains_tables(self):
        text = render_summary(summarize_trace(_sample_trace()))
        assert "trace log: 6 records" in text
        assert "Spans by total wall time" in text
        assert "dtim_cycle" in text
        assert "Events" in text
        assert "wakeup" in text

    def test_render_empty(self):
        text = render_summary(summarize_trace(io.StringIO("")))
        assert "0 records" in text


class TestLenientParsing:
    """Truncated or corrupt JSONL must not kill post-processing."""

    def test_truncated_last_line_skipped_with_count(self):
        buffer = _sample_trace()
        text = buffer.getvalue().rstrip("\n")
        truncated = io.StringIO(text[: len(text) - 10])
        summary = summarize_trace(truncated)
        assert summary.skipped_lines == 1
        assert summary.record_count > 0

    def test_blank_and_garbage_lines_skipped(self):
        buffer = _sample_trace()
        dirty = io.StringIO(
            "\n" + buffer.getvalue() + "not json at all\n[1, 2, 3]\n\n"
        )
        summary = summarize_trace(dirty)
        # Garbage line and non-dict record skipped; blanks don't count.
        assert summary.skipped_lines == 2

    def test_empty_file_summarizes_to_nothing(self):
        summary = summarize_trace(io.StringIO(""))
        assert summary.record_count == 0
        assert summary.skipped_lines == 0

    def test_strict_mode_still_raises(self):
        with pytest.raises(ValueError):
            summarize_trace(io.StringIO("{bad json\n"), strict=True)

    def test_render_warns_about_skips(self):
        buffer = _sample_trace()
        dirty = io.StringIO(buffer.getvalue() + "{truncat")
        text = render_summary(summarize_trace(dirty))
        assert "skipped 1 malformed line" in text

    def test_render_has_no_warning_when_clean(self):
        text = render_summary(summarize_trace(_sample_trace()))
        assert "skipped" not in text
