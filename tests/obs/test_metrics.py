"""Registry semantics: counters, gauges, histograms, isolation."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    series_key,
    set_default_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("repro_test_total")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        c = Counter("repro_test_total")
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 0.0

    def test_set_total_mirrors_external_counter(self):
        c = Counter("repro_test_total")
        c.set_total(41)
        c.set_total(42)
        assert c.value == 42.0
        with pytest.raises(ValueError):
            c.set_total(-1)

    def test_reset(self):
        c = Counter("repro_test_total")
        c.inc(7)
        c.reset()
        assert c.value == 0.0

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Counter("has spaces")
        with pytest.raises(ValueError):
            Counter("")


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("repro_depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7.0

    def test_function_gauge_reads_live(self):
        box = {"v": 1.0}
        g = Gauge("repro_depth")
        g.set_function(lambda: box["v"])
        assert g.value == 1.0
        box["v"] = 9.0
        assert g.value == 9.0
        g.set(3.0)  # explicit set clears the function
        assert g.value == 3.0


class TestHistogram:
    def test_observations_land_in_buckets(self):
        h = Histogram("repro_lat_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(55.55)
        assert h.min == pytest.approx(0.05)
        assert h.max == pytest.approx(50.0)
        cumulative = dict(h.cumulative_buckets())
        assert cumulative[0.1] == 1
        assert cumulative[1.0] == 2
        assert cumulative[10.0] == 3
        assert cumulative[math.inf] == 4

    def test_boundary_value_counts_in_its_le_bucket(self):
        h = Histogram("repro_lat_seconds", buckets=(1.0, 2.0))
        h.observe(1.0)
        cumulative = dict(h.cumulative_buckets())
        assert cumulative[1.0] == 1

    def test_percentile_interpolates(self):
        h = Histogram("repro_lat_seconds", buckets=(1.0, 2.0, 4.0))
        for _ in range(100):
            h.observe(1.5)
        # All mass in the (1, 2] bucket: every percentile interpolates
        # inside it (p0 degenerates to the bucket's lower edge).
        assert 1.0 < h.percentile(50) <= 2.0
        assert 1.0 <= h.percentile(0) <= 2.0

    def test_percentile_tail_falls_back_to_max(self):
        h = Histogram("repro_lat_seconds", buckets=(1.0,))
        h.observe(100.0)
        assert h.percentile(99) == pytest.approx(100.0)

    def test_percentile_empty_and_range_checks(self):
        h = Histogram("repro_lat_seconds")
        assert h.percentile(95) == 0.0
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("repro_lat_seconds", buckets=())
        with pytest.raises(ValueError):
            Histogram("repro_lat_seconds", buckets=(1.0, 1.0))

    def test_default_buckets_cover_microseconds_to_seconds(self):
        assert DEFAULT_BUCKETS[0] <= 1e-5
        assert DEFAULT_BUCKETS[-1] >= 10.0

    def test_timer_observes(self):
        h = Histogram("repro_lat_seconds")
        with h.time():
            pass
        assert h.count == 1
        assert h.sum >= 0.0


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_events_total", "help text")
        b = reg.counter("repro_events_total")
        assert a is b
        assert b.help == "help text"

    def test_label_sets_are_distinct_series(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_frames_total", labels={"kind": "Beacon"})
        b = reg.counter("repro_frames_total", labels={"kind": "DataFrame"})
        assert a is not b
        a.inc()
        assert b.value == 0.0
        assert len(reg) == 2

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.gauge("repro_g", labels={"a": "1", "b": "2"})
        b = reg.gauge("repro_g", labels={"b": "2", "a": "1"})
        assert a is b

    def test_type_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_thing")
        with pytest.raises(ValueError):
            reg.gauge("repro_thing")

    def test_collect_is_sorted(self):
        reg = MetricsRegistry()
        reg.counter("repro_b_total")
        reg.counter("repro_a_total")
        names = [m.name for m in reg.collect()]
        assert names == sorted(names)

    def test_reset_zeroes_but_keeps_series(self):
        reg = MetricsRegistry()
        reg.counter("repro_c").inc(5)
        reg.histogram("repro_h").observe(1.0)
        reg.reset()
        assert reg.get("repro_c").value == 0.0
        assert reg.get("repro_h").count == 0
        assert len(reg) == 2

    def test_clear_forgets_everything(self):
        reg = MetricsRegistry()
        reg.counter("repro_c")
        reg.clear()
        assert len(reg) == 0
        # Name is free again, even with a different type.
        reg.gauge("repro_c")

    def test_registries_are_isolated(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("repro_c").inc()
        assert b.get("repro_c") is None

    def test_snapshot_shapes(self):
        reg = MetricsRegistry()
        reg.counter("repro_c", labels={"x": "1"}).inc(2)
        reg.histogram("repro_h").observe(0.5)
        entries = {e["name"]: e for e in reg.snapshot()}
        assert entries["repro_c"]["value"] == 2.0
        assert entries["repro_c"]["labels"] == {"x": "1"}
        assert entries["repro_h"]["count"] == 1
        assert "p95" in entries["repro_h"]


class TestDefaultRegistry:
    def test_swap_and_restore(self):
        isolated = MetricsRegistry()
        previous = set_default_registry(isolated)
        try:
            assert default_registry() is isolated
            default_registry().counter("repro_swap_total").inc()
            assert previous.get("repro_swap_total") is None
        finally:
            assert set_default_registry(previous) is isolated
        assert default_registry() is previous


class TestNameValidation:
    """The exposition-format grammar is enforced at creation time."""

    def test_leading_digit_rejected(self):
        with pytest.raises(ValueError):
            Counter("9lives_total")

    def test_unicode_rejected(self):
        with pytest.raises(ValueError):
            Counter("repro_évents_total")

    def test_colons_allowed_in_metric_names(self):
        assert Counter("repro:events:total").name == "repro:events:total"

    def test_label_name_grammar_enforced(self):
        with pytest.raises(ValueError):
            Counter("repro_x_total", labels={"bad-label": "v"})
        with pytest.raises(ValueError):
            Counter("repro_x_total", labels={"1st": "v"})

    def test_colons_not_allowed_in_label_names(self):
        with pytest.raises(ValueError):
            Counter("repro_x_total", labels={"a:b": "v"})


class TestSeriesKey:
    def test_bare_name_without_labels(self):
        assert series_key("repro_x_total") == "repro_x_total"
        assert series_key("repro_x_total", {}) == "repro_x_total"

    def test_labels_sorted_for_canonical_identity(self):
        assert (
            series_key("m", {"b": "2", "a": "1"})
            == series_key("m", {"a": "1", "b": "2"})
            == 'm{a="1",b="2"}'
        )

    def test_label_values_escaped(self):
        assert series_key("m", {"p": 'a"b\\c\nd'}) == 'm{p="a\\"b\\\\c\\nd"}'

    def test_metric_series_id_matches_series_key(self):
        metric = Counter("repro_x_total", labels={"kind": "Beacon"})
        assert metric.series_id == series_key(
            "repro_x_total", {"kind": "Beacon"}
        )
