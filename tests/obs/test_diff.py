"""Run-diff tooling: artifact parsing, tolerances, verdict rendering."""

import json

import pytest

from repro.obs.diff import (
    diff_files,
    diff_metrics,
    filter_ignored,
    load_metrics_file,
    parse_metrics_text,
    render_diff,
)
from repro.obs.exporters import render_metrics_jsonl, render_prometheus
from repro.obs.metrics import MetricsRegistry


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("repro_events_total", "Events").set_total(42)
    reg.counter(
        "repro_frames_total", labels={"kind": "Beacon"}
    ).set_total(3)
    hist = reg.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
    hist.observe(0.05)
    return reg


class TestParsing:
    def test_prometheus_text(self):
        metrics = parse_metrics_text(
            "# HELP repro_x_total X\n"
            "# TYPE repro_x_total counter\n"
            "repro_x_total 5\n"
            'repro_y_total{kind="a"} 2.5\n'
        )
        assert metrics == {
            "repro_x_total": 5.0,
            'repro_y_total{kind="a"}': 2.5,
        }

    def test_prometheus_inf_and_nan(self):
        metrics = parse_metrics_text(
            "repro_a 12\nrepro_b +Inf\nrepro_c NaN\n"
        )
        assert metrics["repro_b"] == float("inf")
        assert "repro_c" not in metrics  # NaN never equals itself

    def test_snapshot_jsonl(self):
        text = render_metrics_jsonl(_sample_registry())
        metrics = parse_metrics_text(text)
        assert metrics["repro_events_total"] == 42.0
        assert metrics['repro_frames_total{kind="Beacon"}'] == 3.0
        assert metrics["repro_lat_seconds_count"] == 1.0

    def test_exported_prometheus_and_jsonl_key_identically(self):
        reg = _sample_registry()
        prom = parse_metrics_text(render_prometheus(reg))
        jsonl = parse_metrics_text(render_metrics_jsonl(reg))
        # Scalars share keys across formats; histograms expose _count
        # and _sum in both.
        for key in ("repro_events_total", 'repro_frames_total{kind="Beacon"}',
                    "repro_lat_seconds_count", "repro_lat_seconds_sum"):
            assert prom[key] == jsonl[key]

    def test_bench_document(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({
            "schema": "repro-bench/v1",
            "benchmarks": {"engine_events_per_second": {"value": 5e5}},
        }))
        assert load_metrics_file(str(path)) == {
            "engine_events_per_second": 5e5
        }

    def test_profile_document(self, tmp_path):
        path = tmp_path / "profile.json"
        path.write_text(json.dumps({
            "schema": "repro-profile/v1",
            "events_total": 100,
            "run_wall_s": 0.5,
            "attributed_wall_s": 0.4,
            "scheduler_overhead_s": 0.1,
            "sites": [
                {"owner": "AP", "method": "tick", "kind": "event",
                 "events": 100, "wall_s": 0.4},
            ],
        }))
        loaded = load_metrics_file(str(path))
        assert loaded["repro_profile_events_total"] == 100.0
        assert loaded["repro_profile_run_wall_s"] == 0.5
        assert (
            loaded[
                'repro_profile_site_wall_seconds_total'
                '{kind="event",site="AP.tick"}'
            ]
            == 0.4
        )

    def test_timeseries_document_uses_final_window(self, tmp_path):
        path = tmp_path / "ts.json"
        path.write_text(json.dumps({
            "schema": "repro-timeseries/v1",
            "windows": [
                {"values": {"repro_x_total": 1.0}},
                {"values": {"repro_x_total": 9.0}},
            ],
        }))
        assert load_metrics_file(str(path)) == {"repro_x_total": 9.0}

    def test_bare_fingerprint(self):
        fp = "ab" * 32
        assert parse_metrics_text(fp) == {"deterministic_fingerprint": fp}

    def test_plain_mapping(self):
        assert parse_metrics_text('{"a": 1, "b": 2.5}') == {"a": 1.0, "b": 2.5}

    def test_empty_text(self):
        assert parse_metrics_text("") == {}

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_metrics_text("not! a! metric! line!")


class TestTolerances:
    def test_exact_match_passes_at_zero_tolerance(self):
        result = diff_metrics({"a": 1.0}, {"a": 1.0})
        assert result.ok()
        assert result.deltas[0].status == "ok"

    def test_any_change_fails_at_zero_tolerance(self):
        result = diff_metrics({"a": 1.0}, {"a": 1.0001})
        assert not result.ok()
        assert result.regressions[0].key == "a"

    def test_abs_tolerance_admits_small_drift(self):
        assert diff_metrics({"a": 1.0}, {"a": 1.2}, abs_tol=0.25).ok()

    def test_rel_tolerance_admits_proportional_drift(self):
        assert diff_metrics({"a": 1000.0}, {"a": 1400.0}, rel_tol=0.5).ok()
        assert not diff_metrics({"a": 1000.0}, {"a": 1600.0}, rel_tol=0.5).ok()

    def test_either_tolerance_suffices(self):
        # 0 -> 0.1: infinite relative delta, but inside abs_tol.
        assert diff_metrics({"a": 0.0}, {"a": 0.1}, abs_tol=0.2).ok()

    def test_zero_baseline_change_is_infinite_relative(self):
        result = diff_metrics({"a": 0.0}, {"a": 5.0})
        assert result.deltas[0].rel_delta == float("inf")

    def test_string_values_compared_for_equality(self):
        same = diff_metrics({"f": "ab" * 32}, {"f": "ab" * 32})
        assert same.ok()
        other = diff_metrics({"f": "ab" * 32}, {"f": "cd" * 32})
        assert not other.ok()

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            diff_metrics({}, {}, rel_tol=-1)


class TestMissingSeries:
    def test_added_and_removed_classified(self):
        result = diff_metrics({"gone": 1.0}, {"new": 2.0})
        assert {d.status for d in result.deltas} == {"added", "removed"}

    def test_missing_passes_unless_fail_on_missing(self):
        result = diff_metrics({"gone": 1.0}, {"new": 2.0})
        assert result.ok()
        assert not result.ok(fail_on_missing=True)


class TestIgnore:
    def test_filter_ignored_drops_matching_keys(self):
        metrics = {"repro_sim_run_wall_seconds_total": 1.0, "repro_x": 2.0}
        assert filter_ignored(metrics, ("wall",)) == {"repro_x": 2.0}

    def test_diff_files_ignore_makes_wall_noise_invisible(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text('{"repro_wall_seconds": 1.0, "repro_x": 2.0}')
        b.write_text('{"repro_wall_seconds": 9.0, "repro_x": 2.0}')
        assert not diff_files(str(a), str(b)).ok()
        assert diff_files(str(a), str(b), ignore=("wall",)).ok()


class TestRoundTrip:
    def test_jsonl_export_diffs_clean_against_itself(self, tmp_path):
        reg = _sample_registry()
        path_a = tmp_path / "a.jsonl"
        path_b = tmp_path / "b.jsonl"
        path_a.write_text(render_metrics_jsonl(reg))
        path_b.write_text(render_metrics_jsonl(reg))
        result = diff_files(str(path_a), str(path_b))
        assert result.ok()
        assert len(result.deltas) > 0

    def test_prom_export_diffs_against_jsonl_export(self, tmp_path):
        reg = _sample_registry()
        path_a = tmp_path / "a.prom"
        path_b = tmp_path / "b.jsonl"
        path_a.write_text(render_prometheus(reg))
        path_b.write_text(render_metrics_jsonl(reg))
        result = diff_files(str(path_a), str(path_b))
        # Same run exported two ways: every shared series matches; the
        # formats expose some format-only series (buckets vs p50/p95),
        # which classify as added/removed, not regressions.
        assert result.ok()


class TestRendering:
    def test_verdict_line_counts(self):
        result = diff_metrics({"a": 1.0, "b": 2.0}, {"a": 1.0, "b": 3.0})
        text = render_diff(result)
        assert "2 series compared" in text
        assert "1 beyond" in text
        assert "b" in text

    def test_all_ok_renders_verdict_only(self):
        text = render_diff(diff_metrics({"a": 1.0}, {"a": 1.0}))
        assert "1 series compared" in text
        assert "\n" not in text

    def test_show_ok_includes_passing_rows(self):
        text = render_diff(
            diff_metrics({"a": 1.0}, {"a": 1.0}), show_ok=True
        )
        assert "ok" in text

    def test_row_cap(self):
        a = {f"m{i:03d}": 0.0 for i in range(60)}
        b = {f"m{i:03d}": 1.0 for i in range(60)}
        text = render_diff(diff_metrics(a, b), max_rows=10)
        assert "50 more row(s) suppressed" in text
