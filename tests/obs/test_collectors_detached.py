"""Collectors must tolerate components in any lifecycle state.

Regression pin for the crash/rejoin path: a client that crashed mid-run
detaches from the medium and loses its AID, but observability holds a
reference to it and keeps collecting. Before the fix, the collection
forked a second label set (client without ``aid``), leaving the
pre-crash series silently stale.
"""

from repro.dot11.mac_address import MacAddress
from repro.experiments.des_run import DesRunConfig, run_trace_des
from repro.faults import ClientCrashEvent, FaultPlan
from repro.obs.collectors import collect_all, collect_client
from repro.obs.metrics import MetricsRegistry
from repro.sim.medium import Medium
from repro.sim.engine import Simulator
from repro.station.client import Client
from repro.traces.generators import generate_trace


def _crash_run():
    return run_trace_des(
        generate_trace("Starbucks", seed=3),
        DesRunConfig(
            duration_s=10.0,
            client_count=2,
            fault_plan=FaultPlan(
                seed=5, crashes=(ClientCrashEvent(0, crash_at_s=4.0),)
            ),
        ),
    )


class TestCrashedClientCollection:
    def test_crashed_client_keeps_its_series(self):
        result = _crash_run()
        crashed = result.clients[0]
        assert crashed.aid is None and crashed.last_aid == 1
        registry = result.collect_metrics(MetricsRegistry())
        labels = {"client": str(crashed.mac), "aid": "1"}
        # Same labelled series as before the crash — not a fork.
        assert registry.get("repro_client_crashes_total", labels).value == 1
        assert (
            registry.get("repro_client_forced_suspends_total", labels).value == 1
        )
        # No aid-less duplicate was created.
        assert (
            registry.get(
                "repro_client_crashes_total", {"client": str(crashed.mac)}
            )
            is None
        )

    def test_recollection_into_same_registry_is_stable(self):
        """Collect before and after the crash into one registry: the
        same series refreshes instead of a stale pre-crash copy
        surviving next to a new one."""
        result = _crash_run()
        registry = result.collect_metrics(MetricsRegistry())
        series_before = {
            (m.name, tuple(sorted(m.labels.items()))) for m in registry.collect()
            if m.name.startswith("repro_client_")
        }
        result.collect_metrics(registry)
        series_after = {
            (m.name, tuple(sorted(m.labels.items()))) for m in registry.collect()
            if m.name.startswith("repro_client_")
        }
        assert series_before == series_after

    def test_never_attached_client_collects_without_power(self):
        """A constructed-but-never-attached client has no power machine
        or wakelock; collection must cope, not crash."""
        simulator = Simulator()
        medium = Medium(simulator)
        ghost = Client(
            MacAddress.station(9), medium, MacAddress.from_string("02:aa:00:00:00:01")
        )
        registry = collect_client(ghost, MetricsRegistry())
        labels = {"client": str(ghost.mac)}
        assert registry.get("repro_client_beacons_received_total", labels) is not None
        assert registry.get("repro_client_wakeups_total", labels) is None

    def test_injected_drop_series_exported(self):
        result = run_trace_des(
            generate_trace("Starbucks", seed=3),
            DesRunConfig(
                duration_s=10.0,
                client_count=2,
                fault_plan=FaultPlan.uniform(0.2, seed=42),
            ),
        )
        registry = result.collect_metrics(MetricsRegistry())
        injector = result.fault_injector
        assert injector.injected_drops > 0
        for kind, count in injector.drops_by_kind.items():
            series = registry.get(
                "repro_medium_injected_drops_total", {"kind": kind}
            )
            assert series is not None and series.value == count

    def test_port_table_expirations_exported(self):
        result = run_trace_des(
            generate_trace("Starbucks", seed=3),
            DesRunConfig(
                duration_s=10.0,
                client_count=2,
                port_entry_ttl_s=2.0,
                port_refresh_interval_s=0.9,
                fault_plan=FaultPlan(
                    seed=5, crashes=(ClientCrashEvent(0, crash_at_s=3.0),)
                ),
            ),
        )
        registry = result.collect_metrics(MetricsRegistry())
        ap_labels = {"ap": str(result.access_point.mac)}
        expired = registry.get("repro_ap_port_entries_expired_total", ap_labels)
        assert expired is not None and expired.value >= 1
        ops = registry.get(
            "repro_ap_port_table_ops_total",
            {"ap": str(result.access_point.mac), "op": "expirations"},
        )
        assert ops is not None and ops.value >= 1
