"""FrameLedger unit behavior: spans, conservation, schema, flatten."""

import json

from repro.dot11.data import DataFrame
from repro.dot11.mac_address import MacAddress
from repro.net.packet import build_broadcast_udp_packet
from repro.obs.ledger import (
    DECISION_CLASSES,
    LEDGER_SCHEMA,
    FrameLedger,
    flatten_ledger_document,
    render_ledger,
)

_BSSID = MacAddress.from_string("02:aa:00:00:00:01")
_SRC = MacAddress.from_string("02:bb:00:00:00:99")


def _frame(port=5353):
    return DataFrame.broadcast_udp(
        bssid=_BSSID,
        source=_SRC,
        ip_packet=build_broadcast_udp_packet(port, b"x" * 64),
    )


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class _Table:
    """Minimal port-table stand-in: one subscribed port."""

    def __init__(self, subscribed=(5353,)):
        self._subscribed = set(subscribed)

    def has_subscribers(self, port):
        return port in self._subscribed


class _Transmission:
    def __init__(self, frame):
        self.frame = frame


def test_spans_accrue_buffer_and_delivery_delay():
    clock = _Clock()
    ledger = FrameLedger(clock=clock)
    frame = _frame(port=5353)
    ledger.frame_enqueued()
    clock.now = 0.1
    ledger.frame_drained(frame, _Table())
    clock.now = 0.103
    ledger.on_delivery(_Transmission(frame), dropped=False)
    assert ledger.frames_enqueued == 1
    assert ledger.frames_flagged == 1
    assert ledger.frames_delivered == 1
    assert ledger.frames_outstanding == 0
    assert ledger.buffer_delay_s.max == 0.1
    assert ledger.delivery_delay_s["flagged"].count == 1
    assert ledger.delivery_delay_s["flagged"].max == 0.103


def test_unsubscribed_port_classifies_hidden():
    ledger = FrameLedger(clock=_Clock())
    frame = _frame(port=9999)
    ledger.frame_enqueued()
    ledger.frame_drained(frame, _Table(subscribed=(5353,)))
    assert ledger.frames_hidden == 1
    assert ledger.frames_flagged == 0


def test_untracked_deliveries_are_ignored():
    ledger = FrameLedger(clock=_Clock())
    ledger.on_delivery(_Transmission(_frame()), dropped=False)
    assert ledger.frames_delivered == 0
    assert ledger.merged_delivery_delay().count == 0


def test_conservation_with_drops_and_outstanding():
    clock = _Clock()
    ledger = FrameLedger(clock=clock)
    frames = [_frame() for _ in range(4)]
    for _ in frames:
        ledger.frame_enqueued()
    ledger.frame_buffer_dropped()  # a fifth frame refused at capacity
    table = _Table()
    for frame in frames[:3]:
        ledger.frame_drained(frame, table)
    ledger.on_delivery(_Transmission(frames[0]), dropped=False)
    ledger.on_delivery(_Transmission(frames[1]), dropped=True)
    # frames[2] still on the air, frames[3] still buffered.
    immediate = _frame()
    ledger.frame_immediate(immediate)
    ledger.on_delivery(_Transmission(immediate), dropped=False)
    assert ledger.frames_outstanding == 2
    assert ledger.frames_buffer_dropped == 1
    assert (
        ledger.frames_enqueued + ledger.frames_immediate
        == ledger.frames_delivered
        + ledger.frames_dropped_on_air
        + ledger.frames_outstanding
    )
    counts = ledger.to_document()["counts"]
    assert counts["frames_dropped_on_air"] == 1
    assert counts["frames_outstanding"] == 2


def test_document_schema_and_flatten():
    clock = _Clock()
    ledger = FrameLedger(clock=clock)
    frame = _frame()
    ledger.frame_enqueued()
    clock.now = 0.05
    ledger.frame_drained(frame, _Table())
    clock.now = 0.051
    ledger.on_delivery(_Transmission(frame), dropped=False)
    document = ledger.to_document()
    assert document["schema"] == LEDGER_SCHEMA
    for decision in DECISION_CLASSES:
        assert f"delivery_delay_{decision}_s" in document["histograms"]
    json.dumps(document)  # must be JSON-serializable as-is

    flat = flatten_ledger_document(document)
    assert flat["ledger_frames_enqueued"] == 1.0
    assert flat["ledger_buffer_delay_s_count"] == 1.0
    assert "ledger_delivery_delay_s_p99" in flat
    assert any(key.startswith("ledger_buffer_delay_s_bucket{le=") for key in flat)
    # Bucket series are cumulative: the last one equals the count.
    buckets = [
        value for key, value in sorted(flat.items())
        if key.startswith("ledger_buffer_delay_s_bucket")
    ]
    assert buckets[-1] == flat["ledger_buffer_delay_s_count"]

    rendered = render_ledger(document)
    assert "frame ledger" in rendered
    assert "buffer delay (s)" in rendered


def test_detached_is_the_default_on_ap_and_result(tmp_path):
    from repro.experiments.des_run import DesRunConfig, run_trace_des
    from repro.traces import generate_trace, scenario_by_name

    trace = generate_trace(scenario_by_name("Starbucks"))
    result = run_trace_des(
        trace, DesRunConfig(client_count=2, duration_s=2.0)
    )
    result.close()
    assert result.access_point.ledger is None
    assert result.ledger is None
    assert result.ledger_document() is None
