"""Attribution profiler: site resolution, accounting, reports, merges."""

import functools
import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.profiler import (
    PROFILE_SCHEMA,
    AttributionProfiler,
    ProfilerConfig,
    collapsed_from_sites,
    merge_profiles,
    render_profile_table,
    write_profile_json,
)
from repro.errors import SimulationError
from repro.sim.engine import Simulator


class Widget:
    def __init__(self):
        self.calls = 0

    def tick(self):
        self.calls += 1

    def tock(self):
        self.calls += 1


class TestConfig:
    def test_defaults_are_sampling_mode(self):
        config = ProfilerConfig()
        assert config.mode == "sampling"
        assert config.stride == 16

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            ProfilerConfig(mode="statistical")

    def test_bad_stride_rejected(self):
        with pytest.raises(ConfigurationError):
            ProfilerConfig(stride=0)

    def test_exact_mode_forces_stride_one(self):
        profiler = AttributionProfiler(ProfilerConfig(mode="exact", stride=8))
        assert profiler.stride == 1

    def test_config_pickles(self):
        import pickle

        config = ProfilerConfig(mode="exact", stride=4)
        assert pickle.loads(pickle.dumps(config)) == config


class TestSiteResolution:
    def test_bound_methods_share_one_site_per_class_method(self):
        profiler = AttributionProfiler(ProfilerConfig(mode="exact"))
        a, b = Widget(), Widget()
        # Distinct bound-method objects, distinct instances — one site.
        s1 = profiler._resolve(a.tick, None)
        s2 = profiler._resolve(b.tick, None)
        s3 = profiler._resolve(a.tick, None)
        assert s1 is s2 is s3
        assert (s1[0], s1[1], s1[2]) == ("Widget", "tick", "event")

    def test_different_methods_get_different_sites(self):
        profiler = AttributionProfiler(ProfilerConfig(mode="exact"))
        assert profiler._resolve(Widget().tick, None) is not profiler._resolve(
            Widget().tock, None
        )

    def test_partial_unwraps_to_the_underlying_method(self):
        profiler = AttributionProfiler(ProfilerConfig(mode="exact"))
        widget = Widget()
        wrapped = functools.partial(functools.partial(widget.tick))
        assert profiler._resolve(wrapped, None) is profiler._resolve(
            widget.tick, None
        )

    def test_recurring_and_oneshot_are_distinct_sites(self):
        profiler = AttributionProfiler(ProfilerConfig(mode="exact"))
        widget = Widget()
        once = profiler._resolve(widget.tick, None)
        timer = profiler._resolve(widget.tick, 0.5)
        assert once is not timer
        assert once[2] == "event"
        assert timer[2] == "recurring"

    def test_lambdas_from_one_line_share_a_site(self):
        profiler = AttributionProfiler(ProfilerConfig(mode="exact"))
        make = lambda: (lambda: None)  # noqa: E731
        s1 = profiler._resolve(make(), None)
        s2 = profiler._resolve(make(), None)
        assert s1 is s2


class TestAccounting:
    def test_exact_mode_counts_every_event(self):
        profiler = AttributionProfiler(ProfilerConfig(mode="exact"))
        widget = Widget()
        record = [0.0, 0, 0, widget.tick, False, None]
        for _ in range(10):
            profiler.profiled_call(record)
        assert widget.calls == 10
        assert profiler.events_seen == 10
        (site,) = profiler.sites
        assert site[3] == 10  # events
        assert site[4] == 10  # sampled
        assert site[5] > 0.0  # wall

    def test_sampling_mode_times_every_stride_th_event(self):
        profiler = AttributionProfiler(ProfilerConfig(mode="sampling", stride=4))
        widget = Widget()
        record = [0.0, 0, 0, widget.tick, False, None]
        for _ in range(12):
            profiler.profiled_call(record)
        assert widget.calls == 12  # every event still executes
        assert profiler.events_seen == 12
        (site,) = profiler.sites
        assert site[4] == 3  # 12 events / stride 4 samples
        # Report scales the estimate back up to the full event count.
        (row,) = profiler.site_rows()
        assert row["events"] == 12
        assert row["sampled_events"] == 3

    def test_report_shape_and_attribution_split(self):
        profiler = AttributionProfiler(ProfilerConfig(mode="exact"))
        widget = Widget()
        record = [0.0, 0, 0, widget.tick, False, None]
        for _ in range(5):
            profiler.profiled_call(record)
        document = profiler.report(run_wall_s=1.0)
        assert document["schema"] == PROFILE_SCHEMA
        assert document["mode"] == "exact"
        assert document["events_total"] == 5
        assert document["events_attributed"] == 5
        assert document["attributed_wall_s"] == pytest.approx(
            sum(s["wall_s"] for s in document["sites"])
        )
        assert document["scheduler_overhead_s"] == pytest.approx(
            1.0 - document["attributed_wall_s"]
        )

    def test_write_json_roundtrips(self, tmp_path):
        profiler = AttributionProfiler(ProfilerConfig(mode="exact"))
        profiler.profiled_call([0.0, 0, 0, Widget().tick, False, None])
        path = tmp_path / "profile.json"
        write_profile_json(profiler.report(run_wall_s=0.5), str(path))
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == PROFILE_SCHEMA
        assert loaded["sites"][0]["owner"] == "Widget"


class TestCollapsedStacks:
    def test_lines_are_owner_method_kind_usec(self, tmp_path):
        sites = [
            {"owner": "AP", "method": "tick", "kind": "event",
             "wall_s": 0.0025, "events": 10},
            {"owner": "Client", "method": "wake", "kind": "recurring",
             "wall_s": 0.001, "events": 4},
        ]
        assert collapsed_from_sites(sites) == [
            "AP;tick;event 2500",
            "Client;wake;recurring 1000",
        ]

    def test_zero_sites_are_skipped(self):
        assert collapsed_from_sites(
            [{"owner": "X", "method": "y", "kind": "event",
              "wall_s": 0.0, "events": 0}]
        ) == []

    def test_write_collapsed(self, tmp_path):
        profiler = AttributionProfiler(ProfilerConfig(mode="exact"))
        profiler.profiled_call([0.0, 0, 0, Widget().tick, False, None])
        path = tmp_path / "stacks.folded"
        profiler.write_collapsed(str(path))
        (line,) = path.read_text().splitlines()
        name, _, usec = line.rpartition(" ")
        assert name == "Widget;tick;event"
        assert int(usec) >= 0


class TestMerge:
    def _doc(self, wall, events, owner="AP"):
        return {
            "schema": PROFILE_SCHEMA,
            "mode": "exact",
            "stride": 1,
            "events_total": events,
            "run_wall_s": wall * 2,
            "attributed_wall_s": wall,
            "scheduler_overhead_s": wall,
            "sites": [
                {"owner": owner, "method": "tick", "kind": "event",
                 "events": events, "sampled_events": events, "wall_s": wall}
            ],
        }

    def test_empty_input_merges_to_none(self):
        assert merge_profiles([]) is None

    def test_sites_merge_by_identity(self):
        merged = merge_profiles([self._doc(0.1, 10), self._doc(0.3, 30)])
        assert merged["runs_merged"] == 2
        assert merged["events_total"] == 40
        (site,) = merged["sites"]
        assert site["events"] == 40
        assert site["wall_s"] == pytest.approx(0.4)
        assert site["wall_fraction"] == pytest.approx(1.0)

    def test_distinct_sites_stay_distinct_and_sort_hottest_first(self):
        merged = merge_profiles(
            [self._doc(0.1, 10, owner="AP"), self._doc(0.3, 30, owner="Client")]
        )
        assert [s["owner"] for s in merged["sites"]] == ["Client", "AP"]

    def test_mixed_modes_are_flagged(self):
        doc_a = self._doc(0.1, 10)
        doc_b = dict(self._doc(0.1, 10), mode="sampling", stride=8)
        merged = merge_profiles([doc_a, doc_b])
        assert merged["mode"] == "mixed"
        assert merged["stride"] == 0


class TestRenderTable:
    def test_table_mentions_hottest_site_and_split(self):
        profiler = AttributionProfiler(ProfilerConfig(mode="exact"))
        for _ in range(3):
            profiler.profiled_call([0.0, 0, 0, Widget().tick, False, None])
        text = render_profile_table(profiler.report(run_wall_s=1.0))
        assert "Widget.tick" in text
        assert "scheduler" in text

    def test_top_limits_rows(self):
        profiler = AttributionProfiler(ProfilerConfig(mode="exact"))
        widget = Widget()
        profiler.profiled_call([0.0, 0, 0, widget.tick, False, None])
        profiler.profiled_call([0.0, 0, 0, widget.tock, False, None])
        text = render_profile_table(profiler.report(run_wall_s=1.0), top=1)
        assert "top 1/2 sites" in text


class TestEngineHooks:
    def test_attach_detach_lifecycle(self):
        sim = Simulator()
        profiler = AttributionProfiler()
        assert sim.profiler is None
        sim.attach_profiler(profiler)
        assert sim.profiler is profiler
        sim.detach_profiler()
        assert sim.profiler is None

    def test_double_attach_rejected(self):
        sim = Simulator()
        sim.attach_profiler(AttributionProfiler())
        with pytest.raises(SimulationError):
            sim.attach_profiler(AttributionProfiler())

    def test_step_routes_through_profiler(self):
        sim = Simulator()
        profiler = AttributionProfiler(ProfilerConfig(mode="exact"))
        sim.attach_profiler(profiler)
        widget = Widget()
        sim.post(0.0, widget.tick)
        sim.step()
        assert widget.calls == 1
        assert profiler.events_seen == 1
        (site,) = profiler.sites
        assert (site[0], site[1]) == ("Widget", "tick")

    def test_run_attributes_recurring_timers(self):
        sim = Simulator()
        profiler = AttributionProfiler(ProfilerConfig(mode="exact"))
        sim.attach_profiler(profiler)
        widget = Widget()
        sim.every(0.1, widget.tick)
        sim.post(0.05, widget.tock)
        sim.run(until=1.0)
        rows = {(r["owner"], r["method"], r["kind"]) for r in profiler.site_rows()}
        assert ("Widget", "tick", "recurring") in rows
        assert ("Widget", "tock", "event") in rows
        assert profiler.events_seen == sim.events_processed
        assert profiler.run_wall_s > 0.0

    def test_sampling_run_estimates_full_event_count(self):
        sim = Simulator()
        profiler = AttributionProfiler(ProfilerConfig(mode="sampling", stride=5))
        sim.attach_profiler(profiler)
        widget = Widget()
        sim.every(0.01, widget.tick)
        sim.run(until=1.0)
        assert profiler.events_seen == sim.events_processed
        report = profiler.report()
        # The scaled estimate lands within one stride of the truth.
        assert abs(report["events_attributed"] - profiler.events_seen) <= 5
