"""Exporter formats: Prometheus text, JSONL, human table."""

import io
import json

import pytest

from repro.obs.exporters import (
    format_for_path,
    render_metrics_jsonl,
    render_metrics_table,
    render_prometheus,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry


def _sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("repro_events_total", "Events processed").inc(42)
    reg.gauge("repro_depth", "Heap depth").set(7)
    reg.counter(
        "repro_frames_total", "Frames by kind", labels={"kind": "Beacon"}
    ).inc(3)
    hist = reg.histogram("repro_lat_seconds", "Latency", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    return reg


class TestPrometheus:
    def test_help_type_and_values(self):
        text = render_prometheus(_sample_registry())
        assert "# HELP repro_events_total Events processed" in text
        assert "# TYPE repro_events_total counter" in text
        assert "repro_events_total 42" in text
        assert "# TYPE repro_depth gauge" in text
        assert "repro_depth 7" in text

    def test_labels_rendered_and_escaped(self):
        reg = MetricsRegistry()
        reg.counter("repro_c", labels={"path": 'a"b\\c'}).inc()
        text = render_prometheus(reg)
        assert 'repro_c{path="a\\"b\\\\c"} 1' in text

    def test_histogram_exposition(self):
        text = render_prometheus(_sample_registry())
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 2' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_lat_seconds_sum 0.55" in text
        assert "repro_lat_seconds_count 2" in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_ends_with_newline(self):
        assert render_prometheus(_sample_registry()).endswith("\n")


class TestJsonl:
    def test_one_object_per_series(self):
        text = render_metrics_jsonl(_sample_registry())
        entries = [json.loads(line) for line in text.strip().splitlines()]
        by_name = {(e["name"], tuple(sorted(e["labels"].items()))): e for e in entries}
        assert by_name[("repro_events_total", ())]["value"] == 42.0
        assert by_name[("repro_frames_total", (("kind", "Beacon"),))]["value"] == 3.0
        hist = by_name[("repro_lat_seconds", ())]
        assert hist["count"] == 2


class TestTable:
    def test_table_lists_every_series(self):
        text = render_metrics_table(_sample_registry())
        assert "repro_events_total" in text
        assert "kind=Beacon" in text
        assert "n=2" in text  # histogram summary cell

    def test_empty_registry_message(self):
        assert "no metrics recorded" in render_metrics_table(MetricsRegistry())


class TestWriteMetrics:
    def test_writes_path_with_explicit_format(self, tmp_path):
        path = tmp_path / "out.prom"
        write_metrics(_sample_registry(), str(path), format="prometheus")
        assert "repro_events_total 42" in path.read_text()

    def test_writes_stream(self):
        buffer = io.StringIO()
        write_metrics(_sample_registry(), buffer, format="jsonl")
        assert json.loads(buffer.getvalue().splitlines()[0])

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError):
            write_metrics(MetricsRegistry(), io.StringIO(), format="xml")

    def test_format_for_path(self):
        assert format_for_path("a.prom") == "prometheus"
        assert format_for_path("a.txt") == "prometheus"
        assert format_for_path("a.jsonl") == "jsonl"
        assert format_for_path("a.JSON") == "jsonl"
        assert format_for_path("a.tbl") == "table"


class TestExporterEdgeCases:
    def test_help_text_escaped(self):
        reg = MetricsRegistry()
        reg.counter("repro_c", help="line one\nline two \\ backslash")
        text = render_prometheus(reg)
        assert "# HELP repro_c line one\\nline two \\\\ backslash" in text
        assert "\nline two" not in text  # no raw newline inside HELP

    def test_zero_observation_histogram_exposes_zero_series(self):
        reg = MetricsRegistry()
        reg.histogram("repro_lat_seconds", "Latency", buckets=(0.1, 1.0))
        text = render_prometheus(reg)
        assert 'repro_lat_seconds_bucket{le="0.1"} 0' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 0' in text
        assert "repro_lat_seconds_count 0" in text
        assert "repro_lat_seconds_sum 0" in text

    def test_zero_observation_histogram_jsonl(self):
        reg = MetricsRegistry()
        reg.histogram("repro_lat_seconds", buckets=(0.1,))
        entry = json.loads(render_metrics_jsonl(reg).strip())
        assert entry["count"] == 0
        assert entry["sum"] == 0.0
        assert entry["p50"] == 0.0

    def test_empty_registry_jsonl_is_empty(self):
        assert render_metrics_jsonl(MetricsRegistry()) == ""
