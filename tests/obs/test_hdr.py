"""HdrHistogram: relative-error bound, merge, serialization, memory."""

import json
import math
import random

import pytest

from repro.obs.hdr import HdrHistogram, QUANTILE_LABELS


def _reference_quantile(values, q):
    """Nearest-rank quantile on the exact sorted values."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class TestIndexing:
    def test_tiny_values_land_in_bucket_zero(self):
        histogram = HdrHistogram(min_value=1e-6)
        histogram.record(0.0)
        histogram.record(1e-9)
        histogram.record(1e-6)
        assert histogram.count == 3
        assert histogram.nonzero_buckets() == [(0, 3)]

    def test_values_above_max_clamp_but_keep_exact_max(self):
        histogram = HdrHistogram(min_value=1e-6, max_value=1.0)
        histogram.record(123.0)
        assert histogram.max == 123.0
        # The quantile clamps to the observed max, not the bucket edge.
        assert histogram.quantile(1.0) == 123.0

    def test_bucket_upper_bounds_are_monotone(self):
        histogram = HdrHistogram(min_value=1e-6, max_value=1e4, sub_count=32)
        bounds = [
            histogram.bucket_upper_bound(i)
            for i in range(len(histogram._counts))
        ]
        assert bounds == sorted(bounds)
        assert len(set(bounds)) == len(bounds)

    def test_every_value_lands_at_or_below_its_bucket_bound(self):
        histogram = HdrHistogram(min_value=1e-6, max_value=1e4, sub_count=32)
        rng = random.Random(7)
        for _ in range(2_000):
            value = 10 ** rng.uniform(-6.5, 3.9)  # within [min, max)
            index = histogram._index(value)
            assert value <= histogram.bucket_upper_bound(index) * (1 + 1e-12)
            if index > 0:
                lower = histogram.bucket_upper_bound(index - 1)
                assert value >= lower * (1 - 1e-12)

    def test_overflow_values_clamp_into_the_top_bucket(self):
        histogram = HdrHistogram(min_value=1e-6, max_value=1e4, sub_count=32)
        top = len(histogram._counts) - 1
        assert histogram._index(1e5) == top
        assert histogram._index(1e9) == top


class TestQuantiles:
    def test_empty_histogram_reads_zero(self):
        histogram = HdrHistogram()
        assert histogram.quantile(0.99) == 0.0
        assert histogram.quantiles() == {
            label: 0.0 for label, _ in QUANTILE_LABELS
        } | {"max": 0.0}
        assert histogram.mean == 0.0
        assert histogram.min is None and histogram.max is None

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99, 0.999])
    def test_relative_error_within_sub_count_bound(self, q):
        sub_count = 32
        histogram = HdrHistogram(
            min_value=1e-6, max_value=1e4, sub_count=sub_count
        )
        rng = random.Random(13)
        values = [10 ** rng.uniform(-4, 2) for _ in range(5_000)]
        for value in values:
            histogram.record(value)
        exact = _reference_quantile(values, q)
        approx = histogram.quantile(q)
        # The reported quantile is the winning bucket's upper bound, so
        # it sits within one sub-bucket (1/sub_count relative) above the
        # exact nearest-rank value.
        assert exact <= approx * (1 + 1e-12)
        assert approx <= exact * (1 + 1.0 / sub_count) * (1 + 1e-9)

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            HdrHistogram().quantile(1.5)

    def test_stats_track_exactly(self):
        histogram = HdrHistogram()
        values = [0.5, 2.0, 8.0, 0.125]
        for value in values:
            histogram.record(value)
        assert histogram.count == len(values)
        assert histogram.sum == pytest.approx(sum(values))
        assert histogram.mean == pytest.approx(sum(values) / len(values))
        assert histogram.min == min(values)
        assert histogram.max == max(values)


class TestMerge:
    def test_merged_equals_recording_everything_in_one(self):
        rng = random.Random(5)
        one, two, combined = (HdrHistogram() for _ in range(3))
        for _ in range(500):
            value = 10 ** rng.uniform(-5, 3)
            target = one if rng.random() < 0.5 else two
            target.record(value)
            combined.record(value)
        merged = HdrHistogram.merged([one, two])
        assert merged.nonzero_buckets() == combined.nonzero_buckets()
        assert merged.count == combined.count
        assert merged.sum == pytest.approx(combined.sum)
        assert merged.min == combined.min
        assert merged.max == combined.max
        assert merged.quantiles() == combined.quantiles()

    def test_merge_rejects_different_geometry(self):
        with pytest.raises(ValueError):
            HdrHistogram(sub_count=32).merge(HdrHistogram(sub_count=16))

    def test_merged_of_nothing_is_empty(self):
        assert HdrHistogram.merged([]).count == 0


class TestSerialization:
    def test_roundtrip_preserves_buckets_and_quantiles(self):
        histogram = HdrHistogram(min_value=1e-3, max_value=6e4, sub_count=32)
        rng = random.Random(3)
        for _ in range(1_000):
            histogram.record(10 ** rng.uniform(-3, 4))
        payload = json.loads(json.dumps(histogram.to_dict()))
        rebuilt = HdrHistogram.from_dict(payload)
        assert rebuilt.nonzero_buckets() == histogram.nonzero_buckets()
        assert rebuilt.quantiles() == histogram.quantiles()
        assert rebuilt.count == histogram.count
        assert rebuilt.min == histogram.min
        assert rebuilt.max == histogram.max

    def test_to_dict_is_deterministic(self):
        one, two = HdrHistogram(), HdrHistogram()
        for value in (0.01, 0.5, 3.25, 77.0):
            one.record(value)
            two.record(value)
        assert json.dumps(one.to_dict(), sort_keys=True) == json.dumps(
            two.to_dict(), sort_keys=True
        )


class TestMemoryBound:
    def test_footprint_fixed_regardless_of_record_count(self):
        histogram = HdrHistogram(min_value=1e-6, max_value=1e4, sub_count=32)
        buckets_before = len(histogram._counts)
        rng = random.Random(1)
        for _ in range(50_000):
            histogram.record(10 ** rng.uniform(-7, 5))
        assert len(histogram._counts) == buckets_before

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            HdrHistogram(min_value=0.0)
        with pytest.raises(ValueError):
            HdrHistogram(min_value=2.0, max_value=1.0)
        with pytest.raises(ValueError):
            HdrHistogram(sub_count=0)
