"""Pin the simulator gauge series names across queue backends.

``repro_sim_queue_depth`` is the canonical depth series;
``repro_sim_heap_depth`` must survive as an alias with the same value,
because committed ``.prom`` baselines and dashboards reference it.
Both must report the depth of whichever backend is active.
"""

import pytest

from repro.obs.collectors import collect_simulator
from repro.obs.exporters import render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Simulator


@pytest.mark.parametrize("backend", ["heap", "calendar"])
class TestQueueDepthGauge:
    def test_depth_gauges_agree_and_count_tombstones(self, backend):
        sim = Simulator(queue=backend)
        sim.schedule(0.5, lambda: None)
        sim.schedule(500.0, lambda: None).cancel()  # far-future tombstone
        sim.schedule(9000.0, lambda: None)  # overflow territory
        registry = collect_simulator(sim, MetricsRegistry())
        queue_depth = registry.get("repro_sim_queue_depth", {})
        heap_depth = registry.get("repro_sim_heap_depth", {})
        assert queue_depth is not None and heap_depth is not None
        assert queue_depth.value == heap_depth.value == 3
        assert sim.queue_depth == 3
        assert sim.pending_events == 2  # the tombstone is not live

    def test_series_names_render_in_prometheus_text(self, backend):
        sim = Simulator(queue=backend)
        registry = collect_simulator(sim, MetricsRegistry())
        text = render_prometheus(registry)
        assert "repro_sim_queue_depth 0" in text
        assert "repro_sim_heap_depth 0" in text
