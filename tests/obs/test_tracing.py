"""Tracer behaviour: null no-ops, JSONL round-trips, span semantics."""

import json

import pytest

from repro.obs.tracing import (
    NULL_TRACER,
    JsonlTracer,
    NullSpan,
    read_trace_jsonl,
    tracer_to_string_buffer,
)


class TestNullTracer:
    def test_disabled_flag_is_the_hot_path_guard(self):
        assert NULL_TRACER.enabled is False

    def test_every_method_is_a_silent_noop(self):
        assert NULL_TRACER.event("x", sim_time=1.0, foo=1) is None
        assert NULL_TRACER.span_record("x", 0.1) is None
        NULL_TRACER.flush()
        NULL_TRACER.close()

    def test_span_context_manager_absorbs_everything(self):
        with NULL_TRACER.span("x", sim_time=2.0, a=1) as span:
            assert isinstance(span, NullSpan)
            span.add(b=2)

    def test_null_objects_carry_no_state(self):
        # __slots__ = () keeps the disabled path allocation-free.
        with pytest.raises(AttributeError):
            NULL_TRACER.anything = 1


class TestJsonlTracer:
    def test_event_round_trip(self):
        tracer, buffer = tracer_to_string_buffer()
        tracer.event("wakeup", sim_time=4.5, client="02:00:00:00:00:01", aid=3)
        buffer.seek(0)
        records = read_trace_jsonl(buffer)
        assert len(records) == 1
        record = records[0]
        assert record["type"] == "event"
        assert record["name"] == "wakeup"
        assert record["sim_time"] == 4.5
        assert record["aid"] == 3
        assert record["wall_time"] >= 0.0

    def test_event_without_sim_time_omits_the_key(self):
        tracer, buffer = tracer_to_string_buffer()
        tracer.event("tick")
        buffer.seek(0)
        assert "sim_time" not in read_trace_jsonl(buffer)[0]

    def test_span_records_duration_and_added_fields(self):
        tracer, buffer = tracer_to_string_buffer()
        with tracer.span("dtim_cycle", sim_time=1.0, clients=2) as span:
            span.add(btim_bits=1)
        buffer.seek(0)
        record = read_trace_jsonl(buffer)[0]
        assert record["type"] == "span"
        assert record["name"] == "dtim_cycle"
        assert record["clients"] == 2
        assert record["btim_bits"] == 1
        assert record["wall_duration_s"] >= 0.0
        assert record["wall_time"] >= 0.0

    def test_span_tags_exceptions(self):
        tracer, buffer = tracer_to_string_buffer()
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                raise RuntimeError("boom")
        buffer.seek(0)
        assert read_trace_jsonl(buffer)[0]["error"] == "RuntimeError"

    def test_span_record_direct(self):
        tracer, buffer = tracer_to_string_buffer()
        tracer.span_record("algorithm1", 0.0025, sim_time=3.0, btim_bits=4)
        buffer.seek(0)
        record = read_trace_jsonl(buffer)[0]
        assert record["wall_duration_s"] == 0.0025
        assert record["btim_bits"] == 4

    def test_frozensets_serialize_as_sorted_lists(self):
        tracer, buffer = tracer_to_string_buffer()
        tracer.event("btim", aids=frozenset({3, 1, 2}))
        buffer.seek(0)
        assert read_trace_jsonl(buffer)[0]["aids"] == [1, 2, 3]

    def test_records_written_counts(self):
        tracer, buffer = tracer_to_string_buffer()
        tracer.event("a")
        tracer.span_record("b", 0.1)
        assert tracer.records_written == 2

    def test_path_sink_owns_its_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTracer(str(path)) as tracer:
            tracer.event("hello", n=1)
        records = read_trace_jsonl(str(path))
        assert len(records) == 1
        assert records[0]["name"] == "hello"

    def test_output_is_one_json_object_per_line(self):
        tracer, buffer = tracer_to_string_buffer()
        tracer.event("a")
        tracer.event("b")
        lines = buffer.getvalue().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)

    def test_wall_times_are_monotone(self):
        tracer, buffer = tracer_to_string_buffer()
        tracer.event("first")
        tracer.event("second")
        buffer.seek(0)
        first, second = read_trace_jsonl(buffer)
        assert second["wall_time"] >= first["wall_time"]
