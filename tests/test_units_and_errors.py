import pytest

from repro import errors, units


class TestUnits:
    def test_conversions(self):
        assert units.ms(46) == pytest.approx(0.046)
        assert units.us(20) == pytest.approx(20e-6)
        assert units.mj(18.26) == pytest.approx(0.01826)
        assert units.mw(530) == pytest.approx(0.530)
        assert units.mbps(11) == pytest.approx(11e6)
        assert units.to_mw(0.125) == pytest.approx(125.0)
        assert units.tu(100) == pytest.approx(0.1024)

    def test_beacon_interval_is_100_tus(self):
        assert units.BEACON_INTERVAL_S == pytest.approx(units.tu(100))

    def test_airtime(self):
        assert units.airtime(125, units.mbps(1)) == pytest.approx(0.001)
        assert units.airtime(0, units.mbps(1)) == 0.0

    def test_airtime_validation(self):
        with pytest.raises(ValueError):
            units.airtime(100, 0)
        with pytest.raises(ValueError):
            units.airtime(-1, units.mbps(1))


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "FrameError",
            "FrameDecodeError",
            "FrameEncodeError",
            "SimulationError",
            "ConfigurationError",
            "AssociationError",
            "TraceFormatError",
        ):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_decode_and_encode_are_frame_errors(self):
        assert issubclass(errors.FrameDecodeError, errors.FrameError)
        assert issubclass(errors.FrameEncodeError, errors.FrameError)

    def test_one_except_catches_library_failures(self):
        from repro.traces.scenarios import scenario_by_name

        with pytest.raises(errors.ReproError):
            scenario_by_name("not-a-scenario")

    def test_public_api_surface(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists missing name {name}"

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"
