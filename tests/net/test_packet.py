import pytest

from repro.dot11.llc import ETHERTYPE_ARP, LlcSnapHeader
from repro.errors import FrameDecodeError
from repro.net.ipv4 import Ipv4Address, Ipv4Header, IPPROTO_TCP, IP_BROADCAST
from repro.net.packet import (
    build_broadcast_udp_packet,
    extract_udp_dst_port,
    extract_udp_dst_port_from_dot11_body,
)
from repro.net.ports import (
    WELL_KNOWN_BROADCAST_SERVICES,
    ServicePort,
    service_for_port,
)


class TestBroadcastPacket:
    def test_port_extraction(self):
        packet = build_broadcast_udp_packet(1900, b"ssdp alive")
        assert extract_udp_dst_port(packet) == 1900

    def test_destination_is_limited_broadcast(self):
        packet = build_broadcast_udp_packet(137, b"x")
        header, _ = Ipv4Header.from_bytes(packet)
        assert header.destination == IP_BROADCAST

    def test_ttl_one(self):
        packet = build_broadcast_udp_packet(137, b"x")
        header, _ = Ipv4Header.from_bytes(packet)
        assert header.ttl == 1

    def test_non_udp_returns_none(self):
        header = Ipv4Header(
            source=Ipv4Address.from_string("10.0.0.1"),
            destination=IP_BROADCAST,
            protocol=IPPROTO_TCP,
        )
        packet = header.to_bytes(4) + b"\x00" * 4
        assert extract_udp_dst_port(packet) is None

    def test_malformed_raises(self):
        with pytest.raises(FrameDecodeError):
            extract_udp_dst_port(b"\x00" * 30)

    def test_from_dot11_body(self):
        packet = build_broadcast_udp_packet(5353, b"q")
        body = LlcSnapHeader.wrap(0x0800, packet)
        assert extract_udp_dst_port_from_dot11_body(body) == 5353

    def test_from_dot11_body_non_ip(self):
        body = LlcSnapHeader.wrap(ETHERTYPE_ARP, b"\x00" * 28)
        assert extract_udp_dst_port_from_dot11_body(body) is None

    def test_with_ip_options_still_parses(self):
        # An IHL > 5 packet: the parser must honour the IHL, not assume 20.
        src = Ipv4Address.from_string("10.1.1.1")
        from repro.net.udp import UdpHeader, build_udp_datagram

        udp = build_udp_datagram(UdpHeader(1111, 67), b"dhcp", src, IP_BROADCAST)
        header = Ipv4Header(
            source=src, destination=IP_BROADCAST, options=b"\x01\x01\x01\x01"
        )
        packet = header.to_bytes(len(udp)) + udp
        assert extract_udp_dst_port(packet) == 67


class TestServiceRegistry:
    def test_well_known_ports_present(self):
        for port in (137, 138, 1900, 5353, 67, 68, 17500):
            assert service_for_port(port) is not None

    def test_unknown_port(self):
        assert service_for_port(9999) is None

    def test_registry_keyed_consistently(self):
        for port, service in WELL_KNOWN_BROADCAST_SERVICES.items():
            assert service.port == port

    def test_service_validation(self):
        with pytest.raises(ValueError):
            ServicePort(0, "bad", 10, 1.0)
        with pytest.raises(ValueError):
            ServicePort(53, "bad", 0, 1.0)
        with pytest.raises(ValueError):
            ServicePort(53, "bad", 10, 0.0)
