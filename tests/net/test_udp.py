import pytest

from repro.errors import FrameDecodeError, FrameEncodeError
from repro.net.ipv4 import IP_BROADCAST, Ipv4Address
from repro.net.udp import UdpHeader, build_udp_datagram, parse_udp_datagram

SRC = Ipv4Address.from_string("192.168.1.10")


class TestUdp:
    def test_round_trip(self):
        datagram = build_udp_datagram(
            UdpHeader(src_port=40000, dst_port=5353), b"mdns!", SRC, IP_BROADCAST
        )
        header, payload = parse_udp_datagram(datagram, SRC, IP_BROADCAST)
        assert header.dst_port == 5353
        assert header.src_port == 40000
        assert payload == b"mdns!"

    def test_checksum_verified(self):
        datagram = bytearray(
            build_udp_datagram(UdpHeader(1234, 137), b"hello", SRC, IP_BROADCAST)
        )
        datagram[9] ^= 0xFF
        with pytest.raises(FrameDecodeError):
            parse_udp_datagram(bytes(datagram), SRC, IP_BROADCAST)

    def test_checksum_skippable(self):
        datagram = bytearray(
            build_udp_datagram(UdpHeader(1234, 137), b"hello", SRC, IP_BROADCAST)
        )
        datagram[10] ^= 0xFF  # corrupt payload
        header, _ = parse_udp_datagram(
            bytes(datagram), SRC, IP_BROADCAST, verify_checksum=False
        )
        assert header.dst_port == 137

    def test_zero_checksum_means_unverified(self):
        datagram = bytearray(
            build_udp_datagram(UdpHeader(1, 2), b"x", SRC, IP_BROADCAST)
        )
        datagram[6:8] = b"\x00\x00"
        header, _ = parse_udp_datagram(bytes(datagram), SRC, IP_BROADCAST)
        assert header.dst_port == 2

    def test_empty_payload(self):
        datagram = build_udp_datagram(UdpHeader(1, 2), b"", SRC, IP_BROADCAST)
        header, payload = parse_udp_datagram(datagram, SRC, IP_BROADCAST)
        assert payload == b""

    def test_length_field_honoured(self):
        datagram = build_udp_datagram(UdpHeader(1, 2), b"abc", SRC, IP_BROADCAST)
        # Extra trailing bytes (ethernet padding) must be ignored.
        header, payload = parse_udp_datagram(
            datagram + b"\x00\x00", SRC, IP_BROADCAST
        )
        assert payload == b"abc"

    def test_truncated(self):
        with pytest.raises(FrameDecodeError):
            parse_udp_datagram(b"\x00" * 7, SRC, IP_BROADCAST)

    def test_bad_length_field(self):
        datagram = bytearray(
            build_udp_datagram(UdpHeader(1, 2), b"abc", SRC, IP_BROADCAST)
        )
        datagram[4:6] = (100).to_bytes(2, "big")
        with pytest.raises(FrameDecodeError):
            parse_udp_datagram(bytes(datagram), SRC, IP_BROADCAST)

    def test_port_validation(self):
        with pytest.raises(ValueError):
            UdpHeader(src_port=-1, dst_port=1)
        with pytest.raises(ValueError):
            UdpHeader(src_port=1, dst_port=65536)

    def test_oversized_payload(self):
        with pytest.raises(FrameEncodeError):
            build_udp_datagram(UdpHeader(1, 2), b"x" * 65529, SRC, IP_BROADCAST)
