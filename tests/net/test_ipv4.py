import pytest

from repro.errors import FrameDecodeError, FrameEncodeError
from repro.net.ipv4 import (
    IP_BROADCAST,
    IPPROTO_TCP,
    IPPROTO_UDP,
    Ipv4Address,
    Ipv4Header,
    internet_checksum,
)


class TestChecksum:
    def test_known_vector(self):
        # Classic RFC 1071 example.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_verifies_to_zero(self):
        header = Ipv4Header(
            source=Ipv4Address.from_string("10.0.0.1"),
            destination=IP_BROADCAST,
        )
        assert internet_checksum(header.to_bytes(0)) == 0


class TestAddress:
    def test_string_round_trip(self):
        addr = Ipv4Address.from_string("192.168.1.42")
        assert str(addr) == "192.168.1.42"

    def test_bytes_round_trip(self):
        addr = Ipv4Address.from_string("8.8.4.4")
        assert Ipv4Address.from_bytes(addr.to_bytes()) == addr

    def test_broadcast(self):
        assert IP_BROADCAST.is_broadcast
        assert str(IP_BROADCAST) == "255.255.255.255"

    def test_malformed(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", ""):
            with pytest.raises(FrameDecodeError):
                Ipv4Address.from_string(bad)

    def test_range(self):
        with pytest.raises(ValueError):
            Ipv4Address(-1)
        with pytest.raises(ValueError):
            Ipv4Address(2**32)

    def test_ordering(self):
        assert Ipv4Address(1) < Ipv4Address(2)


class TestHeader:
    def make(self, **kwargs):
        defaults = dict(
            source=Ipv4Address.from_string("192.168.1.5"),
            destination=IP_BROADCAST,
            protocol=IPPROTO_UDP,
        )
        defaults.update(kwargs)
        return Ipv4Header(**defaults)

    def test_round_trip(self):
        header = self.make(ttl=1, identification=555)
        encoded = header.to_bytes(12) + b"x" * 12
        decoded, payload = Ipv4Header.from_bytes(encoded)
        assert decoded == header
        assert payload == b"x" * 12

    def test_options_honoured(self):
        header = self.make(options=b"\x01" * 8)
        assert header.header_length == 28
        decoded, payload = Ipv4Header.from_bytes(header.to_bytes(4) + b"abcd")
        assert decoded.options == b"\x01" * 8
        assert payload == b"abcd"

    def test_checksum_mismatch_detected(self):
        data = bytearray(self.make().to_bytes(0))
        data[15] ^= 0x01
        with pytest.raises(FrameDecodeError):
            Ipv4Header.from_bytes(bytes(data))

    def test_wrong_version(self):
        data = bytearray(self.make().to_bytes(0))
        data[0] = (6 << 4) | 5
        with pytest.raises(FrameDecodeError):
            Ipv4Header.from_bytes(bytes(data))

    def test_bad_ihl(self):
        data = bytearray(self.make().to_bytes(0))
        data[0] = (4 << 4) | 4  # IHL 16 bytes < 20
        with pytest.raises(FrameDecodeError):
            Ipv4Header.from_bytes(bytes(data))

    def test_truncated(self):
        with pytest.raises(FrameDecodeError):
            Ipv4Header.from_bytes(b"\x45\x00" * 5)

    def test_total_length_validated(self):
        header = self.make()
        encoded = bytearray(header.to_bytes(10) + b"y" * 10)
        # Claim more bytes than present (and fix the checksum so the
        # length check, not the checksum, fires).
        with pytest.raises(FrameDecodeError):
            Ipv4Header.from_bytes(bytes(encoded[:25]))

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(protocol=300)
        with pytest.raises(ValueError):
            self.make(ttl=-1)
        with pytest.raises(ValueError):
            self.make(options=b"\x01")  # not 32-bit padded
        with pytest.raises(ValueError):
            self.make(options=b"\x00" * 44)

    def test_payload_too_long(self):
        with pytest.raises(FrameEncodeError):
            self.make().to_bytes(70000)

    def test_protocol_preserved(self):
        header = self.make(protocol=IPPROTO_TCP)
        decoded, _ = Ipv4Header.from_bytes(header.to_bytes(0))
        assert decoded.protocol == IPPROTO_TCP
