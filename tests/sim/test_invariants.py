"""InvariantSuite: each checker catches its corruption, clean runs pass."""

import pytest

from repro.ap.access_point import AccessPoint, ApConfig
from repro.dot11.mac_address import MacAddress
from repro.sim.engine import Simulator
from repro.sim.invariants import InvariantSuite, InvariantViolation, Violation
from repro.sim.medium import Medium
from repro.station.client import Client

AP_MAC = MacAddress.from_string("02:aa:00:00:00:01")


def _rig(client_count: int = 2, check_interval_s: float = 1.0, seed=7):
    simulator = Simulator()
    medium = Medium(simulator)
    ap = AccessPoint(AP_MAC, medium, ApConfig())
    medium.attach(ap)
    clients = []
    for index in range(client_count):
        client = Client(MacAddress.station(index + 1), medium, AP_MAC)
        medium.attach(client)
        record = ap.associate(client.mac, hide_capable=True)
        client.set_aid(record.aid)
        clients.append(client)
    suite = InvariantSuite(
        simulator, medium, ap, clients, seed=seed, check_interval_s=check_interval_s
    )
    return simulator, medium, ap, clients, suite


class TestCleanRun:
    def test_clean_run_has_no_violations(self):
        simulator, _, _, _, suite = _rig()
        simulator.run(until=5.0)
        suite.check_final()
        assert suite.checks_run > 0
        assert suite.violations() == []

    def test_periodic_checks_fire_on_schedule(self):
        simulator, _, _, _, suite = _rig(check_interval_s=0.5)
        simulator.run(until=5.0)
        # One tick every 0.5 s over 5 s (minus the final boundary tie).
        assert suite.checks_run >= 9

    def test_rejects_nonpositive_interval(self):
        simulator = Simulator()
        medium = Medium(simulator)
        ap = AccessPoint(AP_MAC, medium, ApConfig())
        with pytest.raises(ValueError):
            InvariantSuite(simulator, medium, ap, [], check_interval_s=0.0)


class TestUsefulFrameMiss:
    def test_fires_on_missed_useful_frame(self):
        simulator, _, _, clients, suite = _rig()
        simulator.run(until=1.0)
        clients[0].counters.useful_frames_missed += 1
        found = suite.violations()
        assert len(found) == 1
        assert found[0].invariant == "useful-frame-miss"
        with pytest.raises(InvariantViolation) as excinfo:
            suite.check_now()
        assert excinfo.value.seed == 7
        assert "seed=7" in str(excinfo.value)


class TestEnergyConservation:
    def test_fires_on_timeline_gap(self):
        simulator, _, _, clients, suite = _rig()
        simulator.run(until=2.0)
        power = clients[0].power
        # Forge a gap: pretend the current state started later than the
        # previous segment ended.
        power._state_since += 0.5
        names = {v.invariant for v in suite.violations()}
        assert "energy-conservation" in names

    def test_fires_on_lost_segment(self):
        simulator, _, _, clients, suite = _rig()
        simulator.run(until=2.0)
        power = clients[0].power
        assert power._segments, "expected recorded transitions by t=2"
        power._segments.pop(0)
        names = {v.invariant for v in suite.violations()}
        assert "energy-conservation" in names

    def test_unattached_client_is_skipped(self):
        simulator, medium, ap, clients, suite = _rig()
        ghost = Client(MacAddress.station(99), medium, AP_MAC)
        suite._clients.append(ghost)  # never attached: power is None
        simulator.run(until=1.0)
        assert suite.violations() == []


class TestPortTableConsistency:
    def test_fires_on_unassociated_port_entry(self):
        simulator, _, ap, _, suite = _rig()
        simulator.run(until=1.0)
        ap.port_table.update_client(1500, {5353}, now=simulator.now)
        found = [v for v in suite.violations()
                 if v.invariant == "port-table-consistency"]
        assert any("unassociated" in v.detail for v in found)

    def test_fires_on_internal_map_divergence(self):
        simulator, _, ap, _, suite = _rig()
        simulator.run(until=1.0)
        ap.port_table.update_client(1, {5353}, now=simulator.now)
        ap.port_table._clients_by_port[5353].add(2007)
        found = [v for v in suite.violations()
                 if v.invariant == "port-table-consistency"]
        assert found

    def test_fires_on_ghost_btim_bit(self):
        simulator, _, ap, _, suite = _rig()
        simulator.run(until=1.0)
        ap.last_btim_aids = frozenset({1999})
        found = [v for v in suite.violations()
                 if v.invariant == "port-table-consistency"]
        assert any("BTIM" in v.detail for v in found)


class TestDeliveryAccounting:
    def test_counts_broadcast_deliveries(self):
        from repro.net.packet import build_broadcast_udp_packet

        simulator, _, ap, _, suite = _rig()
        packet = build_broadcast_udp_packet(5353, b"hello")
        source = MacAddress.from_string("02:bb:00:00:00:99")
        for at in (0.05, 0.15, 0.25):
            simulator.schedule_at(at, lambda: ap.deliver_from_ds(packet, source))
        simulator.run(until=2.0)
        assert suite.broadcast_frames_aired == 3
        assert suite.broadcast_frames_dropped == 0
        assert suite.broadcast_frames_delivered == 3


class TestViolationRendering:
    def test_violation_string_carries_context(self):
        violation = Violation("useful-frame-miss", 1.25, "client X missed 2")
        text = str(violation)
        assert "useful-frame-miss" in text and "1.25" in text

    def test_error_without_seed_omits_seed_note(self):
        error = InvariantViolation([Violation("x", 0.0, "d")])
        assert "seed" not in str(error)
