import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        fired = []
        for label in "abc":
            sim.schedule(1.0, lambda l=label: fired.append(l))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_priority_beats_insertion(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("low"), priority=1)
        sim.schedule(1.0, lambda: fired.append("high"), priority=0)
        sim.run()
        assert fired == ["high", "low"]

    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(0.5, lambda: times.append(sim.now))
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [0.5, 1.5]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                sim.schedule(1.0, lambda: chain(depth + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_non_finite_time_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_at(float("inf"), lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_at(float("nan"), lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_from_within_event(self):
        sim = Simulator()
        fired = []
        later = sim.schedule(2.0, lambda: fired.append("later"))
        sim.schedule(1.0, lambda: later.cancel())
        sim.run()
        assert fired == []

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending_events == 1


class TestRun:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 5]

    def test_run_until_advances_clock_with_no_events(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert not sim.step()

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 4

    def test_runaway_guard(self):
        sim = Simulator()

        def rearm():
            sim.schedule(0.001, rearm)

        sim.schedule(0.0, rearm)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_not_reentrant(self):
        sim = Simulator()
        errors = []

        def nested():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)

        sim.schedule(1.0, nested)
        sim.run()
        assert len(errors) == 1

class TestObservability:
    def test_pending_count_is_maintained_not_scanned(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        assert sim.pending_events == 5
        handles[0].cancel()
        handles[1].cancel()
        assert sim.pending_events == 3
        sim.step()  # fires t=3 (the first live event)
        assert sim.pending_events == 2
        sim.run()
        assert sim.pending_events == 0

    def test_double_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending_events == 1
        assert sim.events_cancelled == 1

    def test_heap_depth_includes_tombstones(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.heap_depth == 2  # tombstone still buried in the heap
        assert sim.pending_events == 1

    def test_run_wall_time_accumulates(self):
        sim = Simulator()
        assert sim.run_wall_time_s == 0.0
        sim.schedule(1.0, lambda: None)
        sim.run()
        first = sim.run_wall_time_s
        assert first > 0.0
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.run_wall_time_s >= first

    def test_pending_events_after_chained_scheduling(self):
        sim = Simulator()

        def chain(depth):
            if depth < 3:
                sim.schedule(1.0, lambda: chain(depth + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert sim.pending_events == 0
        assert sim.events_processed == 4


class TestProbes:
    """Observer probes: periodic callbacks that never touch the heap."""

    def test_probe_fires_at_every_interval(self):
        sim = Simulator()
        fired = []
        sim.add_probe(1.0, lambda: fired.append(sim.now))
        sim.schedule(5.0, lambda: None)
        sim.run()
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_probe_does_not_count_as_an_event(self):
        sim = Simulator()
        sim.add_probe(0.5, lambda: None)
        sim.schedule(3.0, lambda: None)
        sim.run()
        assert sim.events_processed == 1
        assert sim.probes_fired == 6

    def test_probe_fires_before_events_at_or_after_its_due_time(self):
        sim = Simulator()
        order = []
        sim.add_probe(1.0, lambda: order.append(("probe", sim.now)))
        sim.schedule(0.5, lambda: order.append(("event", sim.now)))
        sim.schedule(1.0, lambda: order.append(("event", sim.now)))
        sim.run()
        assert order == [
            ("event", 0.5),
            ("probe", 1.0),
            ("event", 1.0),
        ]

    def test_run_until_fires_trailing_probes_past_last_event(self):
        sim = Simulator()
        fired = []
        sim.add_probe(1.0, lambda: fired.append(sim.now))
        sim.schedule(0.5, lambda: None)
        sim.run(until=3.0)
        assert fired == [1.0, 2.0, 3.0]
        assert sim.now == 3.0

    def test_first_at_overrides_phase(self):
        sim = Simulator()
        fired = []
        sim.add_probe(1.0, lambda: fired.append(sim.now), first_at_s=0.25)
        sim.run(until=2.5)
        assert fired == [0.25, 1.25, 2.25]

    def test_cancelled_probe_stops_firing(self):
        sim = Simulator()
        fired = []
        handle = sim.add_probe(1.0, lambda: fired.append(sim.now))
        sim.run(until=2.0)
        handle.cancel()
        sim.run(until=5.0)
        assert fired == [1.0, 2.0]

    def test_probe_interval_must_be_positive(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.add_probe(0.0, lambda: None)

    def test_probe_cannot_start_in_the_past(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.add_probe(1.0, lambda: None, first_at_s=1.0)

    def test_probe_sees_clock_at_its_due_time(self):
        sim = Simulator()
        seen = []
        sim.add_probe(1.0, lambda: seen.append(sim.now))
        sim.schedule(10.0, lambda: None)
        sim.run()
        assert seen == [float(i) for i in range(1, 11)]

    def test_same_seed_runs_identical_with_and_without_probe(self):
        def run(with_probe):
            sim = Simulator()
            order = []

            def tick(depth):
                order.append((sim.now, depth))
                if depth < 20:
                    sim.schedule(0.3, lambda: tick(depth + 1))

            if with_probe:
                sim.add_probe(0.7, lambda: None)
            sim.schedule(0.0, lambda: tick(0))
            sim.run()
            return order, sim.events_processed

        assert run(False) == run(True)
