"""Detach from inside a delivery callback, with frames still in flight.

A crash handler runs *as* a delivery callback: the client detaches from
the medium while the drain loop is mid-batch and later frames are still
sitting in the in-flight heap.  The contract (documented on
:meth:`Medium.detach`) is backend-independent:

* the frame whose fan-out is currently being iterated still reaches
  every recipient in its snapshot — including the departing one;
* every *later* frame recomputes recipients and skips it;
* on the vectorized backend the slot is settled and freed immediately,
  and the in-flight ``(deliver_at, sequence, transmission)`` tuples are
  never perturbed.
"""

from repro.dot11.data import DataFrame
from repro.dot11.mac_address import MacAddress
from repro.net.packet import build_broadcast_udp_packet
from repro.sim.engine import Simulator
from repro.sim.entity import Entity
from repro.sim.medium import Medium
from repro.station.client import ClientCounters
from repro.units import mbps

_BSSID = MacAddress(b"\x02\x00\x00\x00\x00\xaa")
_SRC = MacAddress(b"\x02\x00\x00\x00\x00\xbb")


def _mac(last):
    return MacAddress(b"\x02\x00\x00\x00\x00" + bytes([last]))


class FakeClient(Entity):
    """Vector-bindable entity mirroring Client's broadcast semantics.

    Dozing behaviour matches ``Client._handle_broadcast`` exactly
    (ignored + missed-if-useful), so the reference per-frame loop and
    the vectorized deferred accrual must land on identical counters.
    """

    def __init__(self, name, mac, listening, aid=1, ports=frozenset()):
        super().__init__(name)
        self.mac = mac
        self.listening = listening
        self.aid = aid
        self.ports = ports
        self.counters = ClientCounters()
        self.received = []
        self.on_broadcast = None

    def radio_broadcast_state(self):
        return (self.listening, self.aid, self.ports)

    def bind_radio(self, radios, slot):
        self._radio, self._slot = radios, slot

    def unbind_radio(self):
        self._radio, self._slot = None, -1

    def on_receive(self, transmission):
        frame = transmission.frame
        if not (isinstance(frame, DataFrame) and frame.is_broadcast):
            return
        if not self.listening:
            self.counters.broadcast_frames_ignored += 1
            port = frame.udp_dst_port()
            if self.aid is not None and port is not None and port in self.ports:
                self.counters.useful_frames_missed += 1
            return
        self.counters.broadcast_frames_received += 1
        self.received.append(frame.sequence)
        if self.on_broadcast is not None:
            self.on_broadcast()


def _broadcast(sequence):
    return DataFrame.broadcast_udp(
        _BSSID,
        _SRC,
        build_broadcast_udp_packet(5353, b"announce"),
        sequence=sequence,
    )


def _run(backend):
    sim = Simulator()
    medium = Medium(sim, delivery_backend=backend)
    sender = Entity("upstream")
    medium.attach(sender)
    v1 = FakeClient("v1", _mac(1), listening=True)
    v2 = FakeClient("v2", _mac(2), listening=True)
    dozer = FakeClient("dozer", _mac(3), listening=False, ports=frozenset({5353}))
    for entity in (v1, v2, dozer):
        medium.attach(entity)

    def crash_v2():
        if medium.is_attached(v2):
            medium.detach(v2)

    # v1 sits *before* v2 in attach order, so the detach fires while
    # the current frame's fan-out snapshot still holds v2.
    v1.on_broadcast = crash_v2
    for sequence in (1, 2):
        frame = _broadcast(sequence)
        medium.transmit(sender, frame, frame.to_bytes(), mbps(1))
    sim.run()
    medium.sync_accounting()
    return medium, v1, v2, dozer


class TestDetachDuringInflightDrain:
    def test_semantics_identical_on_both_backends(self):
        for backend in ("reference", "vectorized"):
            medium, v1, v2, dozer = _run(backend)
            # The frame mid-delivery still reached v2; the next one
            # recomputed recipients and skipped it.
            assert v1.received == [1, 2], backend
            assert v2.received == [1], backend
            assert not medium.is_attached(v2)
            # The dozing client accrued both frames (useful on 5353)
            # regardless of the same-tick detach next to it.
            assert dozer.counters.broadcast_frames_ignored == 2, backend
            assert dozer.counters.useful_frames_missed == 2, backend

    def test_vectorized_frees_slot_and_settles_once(self):
        medium, _, v2, dozer = _run("vectorized")
        radios = medium.radio_array
        assert radios is not None
        assert v2 not in radios.slot_of
        assert v2.mac not in radios.by_mac
        assert len(radios) == 2  # v1 + dozer keep their slots
        # Settling again after the detach must not re-credit anyone.
        before = (
            dozer.counters.broadcast_frames_ignored,
            dozer.counters.useful_frames_missed,
            v2.counters.broadcast_frames_received,
        )
        medium.sync_accounting()
        after = (
            dozer.counters.broadcast_frames_ignored,
            dozer.counters.useful_frames_missed,
            v2.counters.broadcast_frames_received,
        )
        assert before == after

    def test_detached_slot_is_recycled(self):
        medium, _, v2, _ = _run("vectorized")
        radios = medium.radio_array
        late = FakeClient("late", _mac(9), listening=False, ports=frozenset({5353}))
        medium.attach(late)
        assert len(radios) == 3
        assert radios.slot_of[late] is not None
        # The recycled slot baselines at the current epoch: frames that
        # aired before this attach are not owed to the newcomer.
        medium.sync_accounting()
        assert late.counters.broadcast_frames_ignored == 0
        assert late.counters.useful_frames_missed == 0
