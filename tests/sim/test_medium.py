import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.entity import Entity
from repro.sim.medium import DIFS_S, Medium, PHY_OVERHEAD_S, SIFS_S, Transmission
from repro.units import mbps


class Recorder(Entity):
    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def on_receive(self, transmission):
        self.received.append((self.now, transmission.frame))


def make_network(entity_count=2):
    sim = Simulator()
    medium = Medium(sim)
    entities = [Recorder(f"e{i}") for i in range(entity_count)]
    for entity in entities:
        medium.attach(entity)
    return sim, medium, entities


class TestDelivery:
    def test_broadcast_to_all_but_sender(self):
        sim, medium, (a, b) = make_network()
        c = Recorder("c")
        medium.attach(c)
        medium.transmit(a, "frame", b"x" * 100, mbps(1))
        sim.run()
        assert [f for _, f in b.received] == ["frame"]
        assert [f for _, f in c.received] == ["frame"]
        assert a.received == []

    def test_airtime_includes_phy_overhead(self):
        sim, medium, (a, b) = make_network()
        assert medium.airtime_of(125, mbps(1)) == pytest.approx(
            PHY_OVERHEAD_S + 0.001
        )

    def test_delivery_time(self):
        sim, medium, (a, b) = make_network()
        medium.transmit(a, "f", b"x" * 125, mbps(1), gap_s=DIFS_S)
        sim.run()
        expected = DIFS_S + PHY_OVERHEAD_S + 0.001 + 1e-6  # + propagation
        assert b.received[0][0] == pytest.approx(expected)

    def test_busy_channel_serializes(self):
        sim, medium, (a, b) = make_network()
        medium.transmit(a, "f1", b"x" * 125, mbps(1))
        medium.transmit(a, "f2", b"x" * 125, mbps(1))
        sim.run()
        t1, t2 = (t for t, _ in b.received)
        frame_time = PHY_OVERHEAD_S + 0.001
        assert t2 - t1 == pytest.approx(frame_time + DIFS_S)

    def test_sifs_gap_for_responses(self):
        sim, medium, (a, b) = make_network()
        medium.transmit(a, "ack", b"x" * 14, mbps(1), gap_s=SIFS_S)
        sim.run()
        assert b.received[0][0] == pytest.approx(
            SIFS_S + PHY_OVERHEAD_S + 14 * 8 / 1e6 + 1e-6
        )

    def test_on_complete_callback(self):
        sim, medium, (a, b) = make_network()
        completed = []
        medium.transmit(a, "f", b"x", mbps(1), on_complete=completed.append)
        sim.run()
        assert len(completed) == 1
        assert isinstance(completed[0], Transmission)
        assert completed[0].length_bytes == 1

    def test_busy_time_accumulates(self):
        sim, medium, (a, b) = make_network()
        medium.transmit(a, "f", b"x" * 125, mbps(1))
        sim.run()
        assert medium.busy_time == pytest.approx(PHY_OVERHEAD_S + 0.001)

    def test_transmissions_counted(self):
        sim, medium, (a, b) = make_network()
        for i in range(3):
            medium.transmit(a, i, b"x", mbps(1))
        sim.run()
        assert medium.transmissions_completed == 3


class TestValidation:
    def test_double_attach_rejected(self):
        sim = Simulator()
        medium = Medium(sim)
        entity = Recorder("e")
        medium.attach(entity)
        with pytest.raises(SimulationError):
            medium.attach(entity)

    def test_bad_rate_rejected(self):
        sim, medium, (a, b) = make_network()
        with pytest.raises(SimulationError):
            medium.airtime_of(10, 0)

    def test_entity_requires_attachment(self):
        entity = Recorder("lonely")
        with pytest.raises(SimulationError):
            _ = entity.simulator

    def test_entity_double_attach(self):
        sim = Simulator()
        entity = Recorder("e")
        entity.attach(sim)
        with pytest.raises(SimulationError):
            entity.attach(sim)

    def test_transmission_end_time(self):
        t = Transmission(
            sender=Recorder("s"),
            frame="f",
            frame_bytes=b"x",
            rate_bps=mbps(1),
            start_time=1.0,
            airtime=0.5,
        )
        assert t.end_time == 1.5
