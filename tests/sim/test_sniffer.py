import pytest

from repro.ap.access_point import AccessPoint, ApConfig
from repro.dot11.control import Ack
from repro.dot11.data import DataFrame
from repro.dot11.management import Beacon, UdpPortMessage
from repro.dot11.mac_address import MacAddress
from repro.net.packet import build_broadcast_udp_packet
from repro.sim.engine import Simulator
from repro.sim.medium import Medium
from repro.sim.sniffer import ProtocolSniffer
from repro.station.client import Client, ClientConfig, ClientPolicy

AP_MAC = MacAddress.from_string("02:aa:00:00:00:01")
WIRED = MacAddress.from_string("02:bb:00:00:00:99")


def run_network(sniffer, duration=1.0):
    sim = Simulator()
    medium = Medium(sim)
    ap = AccessPoint(AP_MAC, medium, ApConfig())
    medium.attach(ap)
    client = Client(
        MacAddress.station(1), medium, AP_MAC,
        ClientConfig(policy=ClientPolicy.HIDE),
    )
    medium.attach(client)
    record = ap.associate(client.mac, hide_capable=True)
    client.set_aid(record.aid)
    client.open_port(5353)
    medium.attach(sniffer)
    packet = build_broadcast_udp_packet(5353, b"x")
    sim.schedule(0.3, lambda: ap.deliver_from_ds(packet, WIRED))
    sim.run(until=duration)
    return sim


class TestSniffer:
    def test_captures_all_frame_kinds(self):
        sniffer = ProtocolSniffer()
        run_network(sniffer)
        kinds = {c.kind for c in sniffer.captures}
        assert {"Beacon", "UdpPortMessage", "Ack", "DataFrame"} <= kinds

    def test_filter_restricts_capture(self):
        sniffer = ProtocolSniffer(frame_filter=(Beacon,))
        run_network(sniffer)
        assert sniffer.captures
        assert all(isinstance(c.frame, Beacon) for c in sniffer.captures)

    def test_of_type(self):
        sniffer = ProtocolSniffer()
        run_network(sniffer)
        assert all(
            isinstance(c.frame, DataFrame) for c in sniffer.of_type(DataFrame)
        )
        assert len(sniffer.of_type(Ack)) >= 1

    def test_live_callback(self):
        seen = []
        sniffer = ProtocolSniffer(on_capture=seen.append)
        run_network(sniffer)
        assert len(seen) == len(sniffer.captures)

    def test_capacity_drops_counted(self):
        sniffer = ProtocolSniffer(capacity=3)
        run_network(sniffer)
        assert len(sniffer.captures) == 3
        assert sniffer.dropped > 0

    def test_timestamps_nondecreasing(self):
        sniffer = ProtocolSniffer()
        run_network(sniffer)
        times = [c.time for c in sniffer.captures]
        assert times == sorted(times)

    def test_transcript_describes_hide_details(self):
        sniffer = ProtocolSniffer()
        run_network(sniffer)
        transcript = sniffer.transcript()
        assert "btim=" in transcript
        assert "ports=[5353]" in transcript
        assert "udp-port=5353" in transcript

    def test_transcript_can_skip_beacons(self):
        sniffer = ProtocolSniffer()
        run_network(sniffer)
        assert "Beacon" not in sniffer.transcript(skip_beacons=True)

    def test_describe_every_kind_is_stringy(self):
        sniffer = ProtocolSniffer()
        run_network(sniffer)
        for captured in sniffer.captures:
            line = captured.describe()
            assert captured.kind in line
            assert "ms" in line

class TestDescribeManagementFrames:
    """describe() detail for the probe/association/disassociation frames."""

    @staticmethod
    def _line(frame) -> str:
        from repro.sim.sniffer import CapturedFrame

        return CapturedFrame(
            time=0.5, frame=frame, length_bytes=64, rate_bps=1e6
        ).describe()

    def test_probe_request_wildcard(self):
        from repro.dot11.probe_frames import ProbeRequest

        line = self._line(ProbeRequest(source=MacAddress.station(1)))
        assert "ProbeRequest" in line
        assert "ssid=*" in line

    def test_probe_request_directed(self):
        from repro.dot11.probe_frames import ProbeRequest

        line = self._line(
            ProbeRequest(source=MacAddress.station(1), ssid="hide-net")
        )
        assert "ssid=hide-net" in line

    def test_probe_response(self):
        from repro.dot11.probe_frames import ProbeResponse

        line = self._line(
            ProbeResponse(
                destination=MacAddress.station(1),
                bssid=AP_MAC,
                ssid="hide-net",
                channel=11,
                hide_supported=True,
            )
        )
        assert "ssid=hide-net" in line
        assert "channel=11" in line
        assert "hide=yes" in line

    def test_association_request_with_ports(self):
        from repro.dot11.association_frames import AssociationRequest

        line = self._line(
            AssociationRequest(
                source=MacAddress.station(1),
                bssid=AP_MAC,
                ssid="hide-net",
                hide_capable=True,
                initial_ports=frozenset({5353, 137}),
            )
        )
        assert "hide=yes" in line
        assert "ports=[137, 5353]" in line

    def test_association_response_status(self):
        from repro.dot11.association_frames import (
            STATUS_DENIED,
            AssociationResponse,
        )

        denied = self._line(
            AssociationResponse(
                destination=MacAddress.station(1),
                bssid=AP_MAC,
                status=STATUS_DENIED,
                aid=0,
            )
        )
        assert "status=denied" in denied

    def test_disassociation_reason(self):
        from repro.dot11.disassociation import Disassociation

        line = self._line(
            Disassociation(
                source=MacAddress.station(1),
                destination=AP_MAC,
                bssid=AP_MAC,
                reason=8,
            )
        )
        assert "Disassociation" in line
        assert "reason=8" in line
