import pytest

from repro.dot11.mac_address import MacAddress
from repro.dot11.probe_frames import ProbeRequest, ProbeResponse
from repro.errors import FrameDecodeError

AP = MacAddress.from_string("02:aa:00:00:00:01")
STA = MacAddress.station(4)


class TestProbeRequest:
    def test_round_trip(self):
        request = ProbeRequest(source=STA, ssid="campus")
        decoded = ProbeRequest.from_bytes(request.to_bytes())
        assert decoded == request
        assert not decoded.is_wildcard

    def test_wildcard(self):
        request = ProbeRequest(source=STA)
        assert request.is_wildcard
        assert ProbeRequest.from_bytes(request.to_bytes()).is_wildcard

    def test_not_a_probe_request(self):
        response = ProbeResponse(destination=STA, bssid=AP, ssid="x")
        with pytest.raises(FrameDecodeError):
            ProbeRequest.from_bytes(response.to_bytes())

    def test_length(self):
        request = ProbeRequest(source=STA, ssid="net")
        assert request.length_bytes == len(request.to_bytes())


class TestProbeResponse:
    def test_round_trip_plain(self):
        response = ProbeResponse(
            destination=STA, bssid=AP, ssid="campus", channel=11
        )
        decoded = ProbeResponse.from_bytes(response.to_bytes())
        assert decoded == response
        assert not decoded.hide_supported

    def test_hide_capability_advertised(self):
        response = ProbeResponse(
            destination=STA, bssid=AP, ssid="campus", hide_supported=True
        )
        decoded = ProbeResponse.from_bytes(response.to_bytes())
        assert decoded.hide_supported

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbeResponse(destination=STA, bssid=AP, ssid="x",
                          beacon_interval_tu=0)

    def test_truncated(self):
        with pytest.raises(FrameDecodeError):
            ProbeResponse.from_bytes(b"\x50\x00" + b"\x00" * 20)


class TestScanning:
    def build(self, hide_enabled=True):
        from repro.ap.access_point import AccessPoint, ApConfig
        from repro.sim.engine import Simulator
        from repro.sim.medium import Medium
        from repro.station.client import Client, ClientConfig, ClientPolicy

        sim = Simulator()
        medium = Medium(sim)
        ap = AccessPoint(
            AP, medium, ApConfig(ssid="campus", hide_enabled=hide_enabled)
        )
        medium.attach(ap)
        client = Client(
            MacAddress.station(1), medium, AP,
            ClientConfig(policy=ClientPolicy.HIDE),
        )
        medium.attach(client)
        return sim, ap, client

    def test_scan_discovers_hide_ap(self):
        sim, ap, client = self.build(hide_enabled=True)
        found = []
        sim.schedule(0.01, lambda: client.scan(found.extend))
        sim.run(until=0.5)
        assert len(found) == 1
        assert found[0].ssid == "campus"
        assert found[0].bssid == AP
        assert found[0].hide_supported
        assert ap.counters.probe_requests_answered == 1

    def test_scan_sees_legacy_ap_without_hide(self):
        sim, ap, client = self.build(hide_enabled=False)
        found = []
        sim.schedule(0.01, lambda: client.scan(found.extend))
        sim.run(until=0.5)
        assert len(found) == 1
        assert not found[0].hide_supported

    def test_directed_probe_filters_by_ssid(self):
        sim, ap, client = self.build()
        found = []
        sim.schedule(0.01, lambda: client.scan(found.extend, ssid="other-net"))
        sim.run(until=0.5)
        assert found == []
        assert ap.counters.probe_requests_answered == 0

    def test_scan_then_associate_flow(self):
        sim, ap, client = self.build()

        def on_scan(results):
            assert results and results[0].hide_supported
            client.request_association(ssid=results[0].ssid)

        sim.schedule(0.01, lambda: client.scan(on_scan))
        sim.run(until=1.0)
        assert client.aid is not None
        assert ap.associations.by_mac(client.mac).hide_capable

    def test_responses_after_dwell_ignored(self):
        sim, ap, client = self.build()
        found = []
        # Tiny dwell: the response (SIFS + airtime later) may still make
        # it; use a zero-ish dwell to force the miss.
        sim.schedule(0.01, lambda: client.scan(found.extend, dwell_s=1e-6))
        sim.run(until=0.5)
        assert found == []
        # The late response was counted but not collected.
        assert client.counters.probe_responses_received == 1
