import pytest

from repro.dot11.elements.btim import BtimElement
from repro.dot11.elements.tim import TimElement
from repro.dot11.information_element import (
    ELEMENT_ID_BTIM,
    ELEMENT_ID_TIM,
    parse_elements,
)
from repro.errors import FrameDecodeError


class TestTim:
    def test_round_trip_with_aids(self):
        tim = TimElement(0, 1, True, frozenset({1, 5, 200}))
        parsed = TimElement.from_payload(tim.payload_bytes())
        assert parsed == tim

    def test_dtim_detection(self):
        assert TimElement(0, 3).is_dtim
        assert not TimElement(1, 3).is_dtim

    def test_group_traffic_bit(self):
        tim = TimElement(0, 1, group_traffic_buffered=True)
        assert tim.payload_bytes()[2] & 0x01
        assert TimElement.from_payload(tim.payload_bytes()).group_traffic_buffered

    def test_unicast_indication(self):
        tim = TimElement(0, 1, aids_with_traffic=frozenset({7}))
        assert tim.indicates_unicast_for(7)
        assert not tim.indicates_unicast_for(8)

    def test_empty_tim_is_four_bytes(self):
        # count, period, control, one zero bitmap octet.
        assert len(TimElement(0, 1).payload_bytes()) == 4

    def test_offset_encoded_in_bitmap_control(self):
        tim = TimElement(0, 1, aids_with_traffic=frozenset({100}))
        control = tim.payload_bytes()[2]
        offset = ((control >> 1) & 0x7F) * 2
        assert offset == (100 // 8) - (100 // 8) % 2

    def test_validation(self):
        with pytest.raises(ValueError):
            TimElement(dtim_count=1, dtim_period=1)  # count must be < period
        with pytest.raises(ValueError):
            TimElement(dtim_count=0, dtim_period=0)
        with pytest.raises(ValueError):
            TimElement(0, 1, aids_with_traffic=frozenset({0}))

    def test_truncated_payload(self):
        with pytest.raises(FrameDecodeError):
            TimElement.from_payload(b"\x00\x01\x00")

    def test_registered_element_id(self):
        parsed = parse_elements(TimElement(0, 1).to_bytes())
        assert isinstance(parsed[0], TimElement)
        assert parsed[0].element_id == ELEMENT_ID_TIM


class TestBtim:
    def test_round_trip(self):
        btim = BtimElement(frozenset({3, 17, 64, 1500}))
        assert BtimElement.from_payload(btim.payload_bytes()) == btim

    def test_per_client_indication(self):
        btim = BtimElement.from_aids([4])
        assert btim.indicates_useful_broadcast_for(4)
        assert not btim.indicates_useful_broadcast_for(5)

    def test_empty_btim(self):
        btim = BtimElement()
        assert btim.payload_bytes() == b"\x00\x00"
        assert BtimElement.from_payload(btim.payload_bytes()) == btim

    def test_compression_matches_figure5(self):
        # AIDs only in high octets: leading zeros are elided via offset.
        btim = BtimElement(frozenset({80, 81}))  # octet 10
        payload = btim.payload_bytes()
        assert payload[0] == 10  # even offset
        assert len(payload) == 2  # offset + one bitmap octet

    def test_element_id_201(self):
        assert BtimElement().element_id == ELEMENT_ID_BTIM
        parsed = parse_elements(BtimElement(frozenset({9})).to_bytes())
        assert isinstance(parsed[0], BtimElement)

    def test_odd_offset_rejected(self):
        with pytest.raises(FrameDecodeError):
            BtimElement.from_payload(bytes([3, 0xFF]))

    def test_truncated(self):
        with pytest.raises(FrameDecodeError):
            BtimElement.from_payload(b"\x00")

    def test_aid_range_validated(self):
        with pytest.raises(ValueError):
            BtimElement(frozenset({0}))
        with pytest.raises(ValueError):
            BtimElement(frozenset({2008}))
