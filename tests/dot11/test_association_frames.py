import pytest

from repro.dot11.association_frames import (
    STATUS_DENIED,
    STATUS_SUCCESS,
    AssociationRequest,
    AssociationResponse,
)
from repro.dot11.mac_address import MacAddress
from repro.errors import FrameDecodeError

AP = MacAddress.from_string("02:aa:00:00:00:01")
STA = MacAddress.station(3)


class TestAssociationRequest:
    def test_round_trip_legacy(self):
        request = AssociationRequest(source=STA, bssid=AP, ssid="net")
        decoded = AssociationRequest.from_bytes(request.to_bytes())
        assert decoded == request
        assert not decoded.hide_capable

    def test_round_trip_hide_with_ports(self):
        request = AssociationRequest(
            source=STA, bssid=AP, ssid="net",
            hide_capable=True, initial_ports=frozenset({5353, 1900}),
        )
        decoded = AssociationRequest.from_bytes(request.to_bytes())
        assert decoded.hide_capable
        assert decoded.initial_ports == frozenset({5353, 1900})

    def test_hide_capability_is_element_presence(self):
        # Even an empty port set marks the station as HIDE-capable.
        request = AssociationRequest(
            source=STA, bssid=AP, ssid="net", hide_capable=True
        )
        decoded = AssociationRequest.from_bytes(request.to_bytes())
        assert decoded.hide_capable
        assert decoded.initial_ports == frozenset()

    def test_not_a_request(self):
        response = AssociationResponse(
            destination=STA, bssid=AP, status=STATUS_SUCCESS, aid=1
        )
        with pytest.raises(FrameDecodeError):
            AssociationRequest.from_bytes(response.to_bytes())

    def test_length(self):
        request = AssociationRequest(source=STA, bssid=AP, ssid="net")
        assert request.length_bytes == len(request.to_bytes())

    def test_validation(self):
        with pytest.raises(ValueError):
            AssociationRequest(
                source=STA, bssid=AP, ssid="net", listen_interval=-1
            )


class TestAssociationResponse:
    def test_round_trip_success(self):
        response = AssociationResponse(
            destination=STA, bssid=AP, status=STATUS_SUCCESS, aid=77
        )
        decoded = AssociationResponse.from_bytes(response.to_bytes())
        assert decoded == response
        assert decoded.success
        assert decoded.aid == 77

    def test_round_trip_denied(self):
        response = AssociationResponse(
            destination=STA, bssid=AP, status=STATUS_DENIED, aid=0
        )
        decoded = AssociationResponse.from_bytes(response.to_bytes())
        assert not decoded.success
        assert decoded.aid == 0

    def test_aid_top_bits_on_air(self):
        response = AssociationResponse(
            destination=STA, bssid=AP, status=STATUS_SUCCESS, aid=1
        )
        body = response.to_bytes()[24:-4]
        aid_field = int.from_bytes(body[4:6], "little")
        assert aid_field & 0xC000 == 0xC000

    def test_validation(self):
        with pytest.raises(ValueError):
            AssociationResponse(
                destination=STA, bssid=AP, status=STATUS_SUCCESS, aid=0
            )
        with pytest.raises(ValueError):
            AssociationResponse(
                destination=STA, bssid=AP, status=STATUS_DENIED, aid=5
            )

    def test_not_a_response(self):
        request = AssociationRequest(source=STA, bssid=AP, ssid="net")
        with pytest.raises(FrameDecodeError):
            AssociationResponse.from_bytes(request.to_bytes())


class TestOverTheAirHandshake:
    def test_full_handshake(self):
        from repro.ap.access_point import AccessPoint, ApConfig
        from repro.sim.engine import Simulator
        from repro.sim.medium import Medium
        from repro.station.client import Client, ClientConfig, ClientPolicy

        sim = Simulator()
        medium = Medium(sim)
        ap = AccessPoint(AP, medium, ApConfig())
        medium.attach(ap)
        client = Client(
            MacAddress.station(1), medium, AP,
            ClientConfig(policy=ClientPolicy.HIDE),
        )
        medium.attach(client)
        client.open_port(5353)
        sim.schedule(0.01, client.request_association)
        sim.run(until=1.0)

        assert client.aid is not None
        assert client.counters.associations_completed == 1
        record = ap.associations.by_mac(client.mac)
        assert record.aid == client.aid
        assert record.hide_capable
        # Initial ports pre-loaded into the Client UDP Port Table.
        assert ap.port_table.ports_for_client(client.aid) == frozenset({5353})

    def test_handshake_retries_under_loss(self):
        from repro.ap.access_point import AccessPoint, ApConfig
        from repro.sim.engine import Simulator
        from repro.sim.medium import Medium
        from repro.station.client import Client, ClientConfig, ClientPolicy

        sim = Simulator()
        medium = Medium(sim, loss_probability=0.5, loss_seed=5)
        ap = AccessPoint(AP, medium, ApConfig())
        medium.attach(ap)
        client = Client(
            MacAddress.station(1), medium, AP,
            ClientConfig(policy=ClientPolicy.HIDE),
        )
        medium.attach(client)
        sim.schedule(0.01, client.request_association)
        sim.run(until=5.0)
        assert client.aid is not None
        assert client.counters.association_requests_sent >= 1

    def test_legacy_station_not_marked_hide(self):
        from repro.ap.access_point import AccessPoint, ApConfig
        from repro.sim.engine import Simulator
        from repro.sim.medium import Medium
        from repro.station.client import Client, ClientConfig, ClientPolicy

        sim = Simulator()
        medium = Medium(sim)
        ap = AccessPoint(AP, medium, ApConfig())
        medium.attach(ap)
        client = Client(
            MacAddress.station(1), medium, AP,
            ClientConfig(policy=ClientPolicy.RECEIVE_ALL),
        )
        medium.attach(client)
        sim.schedule(0.01, client.request_association)
        sim.run(until=1.0)
        assert client.aid is not None
        assert not ap.associations.by_mac(client.mac).hide_capable
