import pytest

from repro.dot11.mac_address import BROADCAST, MacAddress
from repro.errors import FrameDecodeError


class TestConstruction:
    def test_from_bytes(self):
        mac = MacAddress(bytes(range(6)))
        assert mac.octets == bytes([0, 1, 2, 3, 4, 5])

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            MacAddress(b"\x00" * 5)
        with pytest.raises(ValueError):
            MacAddress(b"\x00" * 7)

    def test_rejects_non_bytes(self):
        with pytest.raises(TypeError):
            MacAddress("aabbccddeeff")  # type: ignore[arg-type]

    def test_bytearray_normalized_to_bytes(self):
        mac = MacAddress(bytearray(6))
        assert isinstance(mac.octets, bytes)

    def test_from_string_colon(self):
        mac = MacAddress.from_string("aa:bb:cc:dd:ee:ff")
        assert mac.octets == bytes([0xAA, 0xBB, 0xCC, 0xDD, 0xEE, 0xFF])

    def test_from_string_dash(self):
        mac = MacAddress.from_string("aa-bb-cc-dd-ee-ff")
        assert str(mac) == "aa:bb:cc:dd:ee:ff"

    def test_from_string_malformed(self):
        for bad in ("aa:bb:cc:dd:ee", "zz:bb:cc:dd:ee:ff", "", "aa:bb:cc:dd:ee:ff:00"):
            with pytest.raises(FrameDecodeError):
                MacAddress.from_string(bad)

    def test_station_deterministic(self):
        assert MacAddress.station(0) == MacAddress.station(0)
        assert MacAddress.station(0) != MacAddress.station(1)

    def test_station_locally_administered(self):
        assert MacAddress.station(42).octets[0] == 0x02

    def test_station_index_range(self):
        with pytest.raises(ValueError):
            MacAddress.station(-1)
        with pytest.raises(ValueError):
            MacAddress.station(2**32)


class TestProperties:
    def test_broadcast(self):
        assert BROADCAST.is_broadcast
        assert BROADCAST.is_multicast
        assert not MacAddress.station(1).is_broadcast

    def test_multicast_bit(self):
        assert MacAddress.from_string("01:00:5e:00:00:01").is_multicast
        assert not MacAddress.from_string("02:00:00:00:00:01").is_multicast

    def test_hashable_and_ordered(self):
        macs = {MacAddress.station(i) for i in range(3)}
        assert len(macs) == 3
        assert MacAddress.station(1) < MacAddress.station(2)

    def test_str_roundtrip(self):
        mac = MacAddress.station(77)
        assert MacAddress.from_string(str(mac)) == mac

    def test_repr(self):
        assert "MacAddress" in repr(MacAddress.station(1))
