import pytest

from repro.dot11.elements.btim import BtimElement
from repro.dot11.elements.tim import TimElement
from repro.dot11.frame_control import FrameType, ManagementSubtype
from repro.dot11.mac_address import BROADCAST, MacAddress
from repro.dot11.management import Beacon, CapabilityInfo, UdpPortMessage
from repro.dot11.sizes import standard_beacon_length
from repro.errors import FrameDecodeError


@pytest.fixture
def bssid():
    return MacAddress.from_string("02:aa:00:00:00:01")


def make_beacon(bssid, **kwargs):
    defaults = dict(
        bssid=bssid,
        timestamp_us=1_000_000,
        beacon_interval_tu=100,
        tim=TimElement(0, 1, True, frozenset({5})),
    )
    defaults.update(kwargs)
    return Beacon(**defaults)


class TestBeacon:
    def test_round_trip_plain(self, bssid):
        beacon = make_beacon(bssid)
        decoded = Beacon.from_bytes(beacon.to_bytes())
        assert decoded == beacon

    def test_round_trip_with_btim(self, bssid):
        beacon = make_beacon(bssid, btim=BtimElement(frozenset({2, 9})))
        decoded = Beacon.from_bytes(beacon.to_bytes())
        assert decoded.btim == BtimElement(frozenset({2, 9}))
        assert decoded.btim.indicates_useful_broadcast_for(9)

    def test_destination_is_broadcast(self, bssid):
        data = make_beacon(bssid).to_bytes()
        assert data[4:10] == BROADCAST.octets

    def test_length_property_matches_bytes(self, bssid):
        beacon = make_beacon(bssid, btim=BtimElement(frozenset({1})))
        assert beacon.length_bytes == len(beacon.to_bytes())

    def test_btim_length_zero_without_btim(self, bssid):
        assert make_beacon(bssid).btim_length_bytes == 0

    def test_btim_length_counted(self, bssid):
        beacon = make_beacon(bssid, btim=BtimElement(frozenset({3})))
        plain = make_beacon(bssid)
        assert beacon.length_bytes - plain.length_bytes == beacon.btim_length_bytes

    def test_fcs_validated(self, bssid):
        data = bytearray(make_beacon(bssid).to_bytes())
        data[-1] ^= 0xFF
        with pytest.raises(FrameDecodeError):
            Beacon.from_bytes(bytes(data))

    def test_corrupted_body_detected(self, bssid):
        data = bytearray(make_beacon(bssid).to_bytes())
        data[30] ^= 0x55
        with pytest.raises(FrameDecodeError):
            Beacon.from_bytes(bytes(data))

    def test_requires_tim(self, bssid):
        # Hand-build a beacon body without a TIM element.
        beacon = make_beacon(bssid)
        import zlib
        body = beacon.body_bytes()
        tim_bytes = beacon.tim.to_bytes()
        body = body.replace(tim_bytes, b"")
        header = beacon.to_bytes()[:24]
        frame = header + body
        frame += zlib.crc32(frame).to_bytes(4, "little")
        with pytest.raises(FrameDecodeError):
            Beacon.from_bytes(frame)

    def test_not_a_beacon(self, bssid):
        message = UdpPortMessage(
            source=MacAddress.station(1), bssid=bssid, ports=frozenset()
        )
        with pytest.raises(FrameDecodeError):
            Beacon.from_bytes(message.to_bytes())

    def test_validation(self, bssid):
        with pytest.raises(ValueError):
            make_beacon(bssid, timestamp_us=-1)
        with pytest.raises(ValueError):
            make_beacon(bssid, beacon_interval_tu=0)

    def test_frame_control_type(self, bssid):
        fc = make_beacon(bssid).frame_control
        assert fc.ftype is FrameType.MANAGEMENT
        assert fc.subtype == int(ManagementSubtype.BEACON)


class TestUdpPortMessage:
    def test_round_trip(self, bssid):
        message = UdpPortMessage(
            source=MacAddress.station(3),
            bssid=bssid,
            ports=frozenset({5353, 1900, 17500}),
            report_sequence=7,
        )
        decoded = UdpPortMessage.from_bytes(message.to_bytes())
        assert decoded.ports == message.ports
        assert decoded.report_sequence == 7
        assert decoded.source == message.source
        assert decoded.bssid == bssid

    def test_empty_ports(self, bssid):
        message = UdpPortMessage(
            source=MacAddress.station(1), bssid=bssid, ports=frozenset()
        )
        assert UdpPortMessage.from_bytes(message.to_bytes()).ports == frozenset()

    def test_many_ports_split_across_elements(self, bssid):
        ports = frozenset(range(1000, 1300))  # 300 ports > 127/element
        message = UdpPortMessage(
            source=MacAddress.station(1), bssid=bssid, ports=ports
        )
        assert len(message.elements()) == 3
        assert UdpPortMessage.from_bytes(message.to_bytes()).ports == ports

    def test_subtype_1111(self, bssid):
        message = UdpPortMessage(
            source=MacAddress.station(1), bssid=bssid, ports=frozenset({53})
        )
        fc = message.frame_control
        assert fc.ftype is FrameType.MANAGEMENT
        assert fc.subtype == 0b1111

    def test_length_matches_paper_eq19_plus_overheads(self, bssid):
        # Eq. (19): body is 2 fixed bytes + 2 per port (+ TLV headers,
        # which the paper's approximation folds into the fixed bytes).
        ports = frozenset(range(2000, 2050))
        message = UdpPortMessage(
            source=MacAddress.station(1), bssid=bssid, ports=ports
        )
        body = message.body_bytes()
        assert len(body) == 2 + 2 + 2 * 50  # fixed + element header + ports

    def test_length_property(self, bssid):
        message = UdpPortMessage(
            source=MacAddress.station(1), bssid=bssid, ports=frozenset({1, 2})
        )
        assert message.length_bytes == len(message.to_bytes())

    def test_validation(self, bssid):
        with pytest.raises(ValueError):
            UdpPortMessage(
                source=MacAddress.station(1), bssid=bssid,
                ports=frozenset({0}),
            )
        with pytest.raises(ValueError):
            UdpPortMessage(
                source=MacAddress.station(1), bssid=bssid,
                ports=frozenset(), report_sequence=70000,
            )


class TestCapabilityInfo:
    def test_round_trip(self):
        cap = CapabilityInfo(ess=True, privacy=True)
        assert CapabilityInfo.from_bytes(cap.to_bytes()) == cap

    def test_truncated(self):
        with pytest.raises(FrameDecodeError):
            CapabilityInfo.from_bytes(b"\x01")


class TestStandardBeaconLength:
    def test_reasonable_size(self):
        length = standard_beacon_length()
        assert 50 <= length <= 120

    def test_grows_with_stations(self):
        assert standard_beacon_length(station_count=100) > standard_beacon_length()
