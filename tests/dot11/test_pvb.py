import pytest

from repro.dot11 import pvb
from repro.errors import FrameEncodeError


class TestBuildBitmap:
    def test_empty(self):
        bitmap = pvb.build_virtual_bitmap([])
        assert all(b == 0 for b in bitmap)
        assert len(bitmap) == pvb.FULL_BITMAP_OCTETS

    def test_aid_one_is_bit_one_of_octet_zero(self):
        bitmap = pvb.build_virtual_bitmap([1])
        assert bitmap[0] == 0b10

    def test_aid_eight_starts_octet_one(self):
        bitmap = pvb.build_virtual_bitmap([8])
        assert bitmap[0] == 0 and bitmap[1] == 0b1

    def test_max_aid(self):
        bitmap = pvb.build_virtual_bitmap([pvb.MAX_AID])
        assert bitmap[pvb.MAX_AID // 8] == 1 << (pvb.MAX_AID % 8)

    def test_aid_out_of_range(self):
        for bad in (0, -1, pvb.MAX_AID + 1):
            with pytest.raises(ValueError):
                pvb.build_virtual_bitmap([bad])


class TestCompression:
    def test_all_zero_compresses_to_single_octet(self):
        offset, partial = pvb.compress_bitmap(bytes(pvb.FULL_BITMAP_OCTETS))
        assert offset == 0
        assert partial == b"\x00"

    def test_offset_is_even(self):
        # First set bit in octet 5 -> offset rounds down to 4.
        bitmap = bytearray(pvb.FULL_BITMAP_OCTETS)
        bitmap[5] = 0xFF
        offset, partial = pvb.compress_bitmap(bytes(bitmap))
        assert offset == 4
        assert partial == b"\x00\xff"

    def test_trailing_zeros_dropped(self):
        bitmap = bytearray(pvb.FULL_BITMAP_OCTETS)
        bitmap[2] = 0x01
        bitmap[4] = 0x80
        offset, partial = pvb.compress_bitmap(bytes(bitmap))
        assert offset == 2
        assert partial == bytes([0x01, 0x00, 0x80])

    def test_too_long_rejected(self):
        with pytest.raises(FrameEncodeError):
            pvb.compress_bitmap(bytes(pvb.FULL_BITMAP_OCTETS + 1))

    def test_expand_is_inverse(self):
        bitmap = bytearray(pvb.FULL_BITMAP_OCTETS)
        bitmap[6] = 0xAB
        bitmap[9] = 0x11
        offset, partial = pvb.compress_bitmap(bytes(bitmap))
        assert pvb.expand_bitmap(offset, partial) == bytes(bitmap)

    def test_expand_rejects_odd_offset(self):
        with pytest.raises(FrameEncodeError):
            pvb.expand_bitmap(1, b"\x00")

    def test_expand_rejects_overrun(self):
        with pytest.raises(FrameEncodeError):
            pvb.expand_bitmap(pvb.FULL_BITMAP_OCTETS - 1 + 1, b"\x00\x00\x00")


class TestQueries:
    def test_aid_is_set_round_trip(self):
        aids = {1, 7, 8, 63, 64, 100, pvb.MAX_AID}
        bitmap = pvb.build_virtual_bitmap(aids)
        offset, partial = pvb.compress_bitmap(bytes(bitmap))
        for aid in range(1, 200):
            assert pvb.aid_is_set(offset, partial, aid) == (aid in aids)

    def test_aids_in_bitmap_inverse_of_build(self):
        aids = {2, 31, 32, 33, 500, 1999}
        offset, partial = pvb.compress_bitmap(
            bytes(pvb.build_virtual_bitmap(aids))
        )
        assert pvb.aids_in_bitmap(offset, partial) == aids

    def test_aid_is_set_outside_partial_is_false(self):
        assert not pvb.aid_is_set(10, b"\xff", aid=1)

    def test_aid_zero_rejected(self):
        with pytest.raises(ValueError):
            pvb.aid_is_set(0, b"\xff", 0)
