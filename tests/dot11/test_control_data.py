import pytest

from repro.dot11.control import Ack, PsPoll
from repro.dot11.data import DataFrame
from repro.dot11.llc import ETHERTYPE_ARP, ETHERTYPE_IPV4, LlcSnapHeader
from repro.dot11.mac_address import BROADCAST, MacAddress
from repro.dot11.sizes import ACK_BYTES, PS_POLL_BYTES
from repro.errors import FrameDecodeError
from repro.net.packet import build_broadcast_udp_packet


@pytest.fixture
def bssid():
    return MacAddress.from_string("02:aa:00:00:00:01")


class TestAck:
    def test_round_trip(self):
        ack = Ack(receiver=MacAddress.station(5))
        assert Ack.from_bytes(ack.to_bytes()) == ack

    def test_on_air_size(self):
        ack = Ack(receiver=MacAddress.station(5))
        assert len(ack.to_bytes()) == ACK_BYTES == ack.length_bytes

    def test_wrong_size_rejected(self):
        with pytest.raises(FrameDecodeError):
            Ack.from_bytes(b"\x00" * 13)

    def test_corruption_detected(self):
        data = bytearray(Ack(receiver=MacAddress.station(5)).to_bytes())
        data[5] ^= 1
        with pytest.raises(FrameDecodeError):
            Ack.from_bytes(bytes(data))


class TestPsPoll:
    def test_round_trip(self, bssid):
        poll = PsPoll(aid=77, bssid=bssid, transmitter=MacAddress.station(2))
        assert PsPoll.from_bytes(poll.to_bytes()) == poll

    def test_on_air_size(self, bssid):
        poll = PsPoll(aid=1, bssid=bssid, transmitter=MacAddress.station(2))
        assert len(poll.to_bytes()) == PS_POLL_BYTES

    def test_aid_top_bits_set(self, bssid):
        poll = PsPoll(aid=1, bssid=bssid, transmitter=MacAddress.station(2))
        aid_field = int.from_bytes(poll.to_bytes()[2:4], "little")
        assert aid_field & 0xC000 == 0xC000

    def test_aid_validation(self, bssid):
        with pytest.raises(ValueError):
            PsPoll(aid=0, bssid=bssid, transmitter=MacAddress.station(2))
        with pytest.raises(ValueError):
            PsPoll(aid=2008, bssid=bssid, transmitter=MacAddress.station(2))

    def test_not_a_ps_poll(self, bssid):
        ack_sized = PsPoll(aid=5, bssid=bssid, transmitter=MacAddress.station(2))
        data = bytearray(ack_sized.to_bytes())
        with pytest.raises(FrameDecodeError):
            Ack.from_bytes(bytes(data[:14]))


class TestLlcSnap:
    def test_round_trip(self):
        header = LlcSnapHeader(ETHERTYPE_IPV4)
        assert LlcSnapHeader.from_bytes(header.to_bytes()) == header

    def test_wrap_unwrap(self):
        header, payload = LlcSnapHeader.unwrap(
            LlcSnapHeader.wrap(ETHERTYPE_ARP, b"arp-body")
        )
        assert header.ethertype == ETHERTYPE_ARP
        assert payload == b"arp-body"

    def test_bad_prefix(self):
        with pytest.raises(FrameDecodeError):
            LlcSnapHeader.from_bytes(b"\x00" * 8)

    def test_truncated(self):
        with pytest.raises(FrameDecodeError):
            LlcSnapHeader.from_bytes(b"\xaa\xaa\x03")


class TestDataFrame:
    def test_broadcast_round_trip(self, bssid):
        ip_packet = build_broadcast_udp_packet(5353, b"announce")
        frame = DataFrame.broadcast_udp(
            bssid=bssid, source=MacAddress.station(9), ip_packet=ip_packet
        )
        decoded = DataFrame.from_bytes(frame.to_bytes())
        assert decoded == frame
        assert decoded.is_broadcast
        assert decoded.destination == BROADCAST

    def test_more_data_bit_round_trip(self, bssid):
        frame = DataFrame.broadcast_udp(
            bssid=bssid,
            source=MacAddress.station(9),
            ip_packet=build_broadcast_udp_packet(137, b"x"),
            more_data=True,
        )
        assert DataFrame.from_bytes(frame.to_bytes()).more_data

    def test_with_more_data(self, bssid):
        frame = DataFrame.broadcast_udp(
            bssid=bssid,
            source=MacAddress.station(9),
            ip_packet=build_broadcast_udp_packet(137, b"x"),
        )
        tagged = frame.with_more_data(True)
        assert tagged.more_data and not frame.more_data
        assert tagged.llc_payload == frame.llc_payload

    def test_length_property(self, bssid):
        frame = DataFrame.broadcast_udp(
            bssid=bssid,
            source=MacAddress.station(9),
            ip_packet=build_broadcast_udp_packet(137, b"payload"),
        )
        assert frame.length_bytes == len(frame.to_bytes())

    def test_corruption_detected(self, bssid):
        frame = DataFrame.broadcast_udp(
            bssid=bssid,
            source=MacAddress.station(9),
            ip_packet=build_broadcast_udp_packet(137, b"x"),
        )
        data = bytearray(frame.to_bytes())
        data[40] ^= 0x10
        with pytest.raises(FrameDecodeError):
            DataFrame.from_bytes(bytes(data))

    def test_too_short(self):
        with pytest.raises(FrameDecodeError):
            DataFrame.from_bytes(b"\x08\x02" + b"\x00" * 10)
