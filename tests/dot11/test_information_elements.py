import pytest

from repro.dot11.elements.dsss import DsssParameterElement
from repro.dot11.elements.ssid import SsidElement
from repro.dot11.elements.supported_rates import (
    DOT11B_RATES_MBPS,
    SupportedRatesElement,
)
from repro.dot11.information_element import (
    RawInformationElement,
    find_element,
    parse_elements,
    serialize_elements,
)
from repro.errors import FrameDecodeError


class TestSsid:
    def test_round_trip(self):
        element = SsidElement("coffee-shop")
        parsed = parse_elements(element.to_bytes())
        assert parsed == [element]

    def test_utf8(self):
        element = SsidElement("café")
        assert SsidElement.from_payload(element.payload_bytes()) == element

    def test_too_long(self):
        with pytest.raises(ValueError):
            SsidElement("x" * 33)

    def test_empty_allowed(self):
        assert SsidElement("").payload_bytes() == b""


class TestSupportedRates:
    def test_default_is_dot11b(self):
        assert SupportedRatesElement().rates_mbps == DOT11B_RATES_MBPS

    def test_round_trip(self):
        element = SupportedRatesElement((1.0, 5.5, 11.0))
        assert SupportedRatesElement.from_payload(element.payload_bytes()) == element

    def test_basic_rate_bit_set(self):
        assert all(b & 0x80 for b in SupportedRatesElement().payload_bytes())

    def test_validation(self):
        with pytest.raises(ValueError):
            SupportedRatesElement(())
        with pytest.raises(ValueError):
            SupportedRatesElement((1.0,) * 9)
        with pytest.raises(ValueError):
            SupportedRatesElement((0.25,))
        with pytest.raises(ValueError):
            SupportedRatesElement((1.3,))

    def test_empty_payload_rejected(self):
        with pytest.raises(FrameDecodeError):
            SupportedRatesElement.from_payload(b"")


class TestDsss:
    def test_round_trip(self):
        element = DsssParameterElement(11)
        assert DsssParameterElement.from_payload(element.payload_bytes()) == element

    def test_channel_range(self):
        for bad in (0, 15):
            with pytest.raises(ValueError):
                DsssParameterElement(bad)

    def test_bad_payload_length(self):
        with pytest.raises(FrameDecodeError):
            DsssParameterElement.from_payload(b"\x06\x06")


class TestParsing:
    def test_multiple_elements(self):
        elements = [SsidElement("a"), SupportedRatesElement(), DsssParameterElement(6)]
        parsed = parse_elements(serialize_elements(elements))
        assert parsed == elements

    def test_unknown_element_preserved_raw(self):
        raw = RawInformationElement(222, b"\x01\x02\x03")
        parsed = parse_elements(raw.to_bytes())
        assert parsed == [raw]
        assert parsed[0].element_id == 222

    def test_truncated_header(self):
        with pytest.raises(FrameDecodeError):
            parse_elements(b"\x00")

    def test_truncated_payload(self):
        with pytest.raises(FrameDecodeError):
            parse_elements(bytes([0, 5]) + b"abc")

    def test_find_element(self):
        elements = [SsidElement("a"), DsssParameterElement(6)]
        assert find_element(elements, 0) == SsidElement("a")
        assert find_element(elements, 5) is None

    def test_empty_input(self):
        assert parse_elements(b"") == []

    def test_encoded_length(self):
        element = SsidElement("abcd")
        assert element.encoded_length == 2 + 4
        assert len(element.to_bytes()) == element.encoded_length
