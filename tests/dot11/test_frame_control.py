import pytest

from repro.dot11.frame_control import (
    ControlSubtype,
    DataSubtype,
    FrameControl,
    FrameType,
    ManagementSubtype,
)
from repro.errors import FrameDecodeError


class TestEncoding:
    def test_beacon_frame_control(self):
        fc = FrameControl(FrameType.MANAGEMENT, int(ManagementSubtype.BEACON))
        assert fc.to_bytes() == bytes([0x80, 0x00])

    def test_ack_frame_control(self):
        fc = FrameControl(FrameType.CONTROL, int(ControlSubtype.ACK))
        assert fc.to_bytes() == bytes([0xD4, 0x00])

    def test_udp_port_message_subtype(self):
        fc = FrameControl(FrameType.MANAGEMENT, int(ManagementSubtype.UDP_PORT_MESSAGE))
        # type 00, subtype 1111 per the paper's Figure 3.
        assert fc.to_bytes()[0] == 0xF0

    def test_more_data_bit(self):
        fc = FrameControl(FrameType.DATA, int(DataSubtype.DATA), more_data=True)
        assert fc.to_bytes()[1] & 0x20

    def test_from_ds_bit(self):
        fc = FrameControl(FrameType.DATA, 0, from_ds=True)
        assert fc.to_bytes()[1] == 0x02


class TestRoundTrip:
    @pytest.mark.parametrize("ftype,subtype", [
        (FrameType.MANAGEMENT, 0b1000),
        (FrameType.MANAGEMENT, 0b1111),
        (FrameType.CONTROL, 0b1101),
        (FrameType.CONTROL, 0b1010),
        (FrameType.DATA, 0b0000),
    ])
    def test_type_subtype(self, ftype, subtype):
        fc = FrameControl(ftype, subtype)
        decoded = FrameControl.from_bytes(fc.to_bytes())
        assert decoded.ftype is ftype
        assert decoded.subtype == subtype

    def test_all_flag_combinations(self):
        for flags in range(256):
            fc = FrameControl(
                FrameType.DATA,
                0,
                to_ds=bool(flags & 1),
                from_ds=bool(flags & 2),
                more_fragments=bool(flags & 4),
                retry=bool(flags & 8),
                power_management=bool(flags & 16),
                more_data=bool(flags & 32),
                protected=bool(flags & 64),
                order=bool(flags & 128),
            )
            assert FrameControl.from_bytes(fc.to_bytes()) == fc


class TestValidation:
    def test_subtype_range(self):
        with pytest.raises(ValueError):
            FrameControl(FrameType.DATA, 16)

    def test_version_must_be_zero(self):
        with pytest.raises(ValueError):
            FrameControl(FrameType.DATA, 0, protocol_version=1)

    def test_decode_truncated(self):
        with pytest.raises(FrameDecodeError):
            FrameControl.from_bytes(b"\x80")

    def test_decode_bad_version(self):
        with pytest.raises(FrameDecodeError):
            FrameControl.from_bytes(bytes([0x81, 0x00]))

    def test_decode_reserved_type(self):
        # frame type 0b11 is reserved
        with pytest.raises(FrameDecodeError):
            FrameControl.from_bytes(bytes([0x0C, 0x00]))
