import pytest

from repro.dot11.elements.open_udp_ports import (
    MAX_PORTS_PER_ELEMENT,
    OpenUdpPortsElement,
)
from repro.dot11.information_element import ELEMENT_ID_OPEN_UDP_PORTS, parse_elements
from repro.errors import FrameDecodeError


class TestOpenUdpPorts:
    def test_round_trip(self):
        element = OpenUdpPortsElement(frozenset({5353, 1900, 137}))
        assert OpenUdpPortsElement.from_payload(element.payload_bytes()) == element

    def test_element_id_200(self):
        assert OpenUdpPortsElement().element_id == ELEMENT_ID_OPEN_UDP_PORTS
        parsed = parse_elements(OpenUdpPortsElement(frozenset({53})).to_bytes())
        assert isinstance(parsed[0], OpenUdpPortsElement)

    def test_two_bytes_per_port(self):
        element = OpenUdpPortsElement(frozenset({1, 2, 3}))
        assert len(element.payload_bytes()) == 6

    def test_serialization_deterministic(self):
        a = OpenUdpPortsElement(frozenset({100, 200, 300}))
        b = OpenUdpPortsElement(frozenset({300, 100, 200}))
        assert a.payload_bytes() == b.payload_bytes()

    def test_ports_sorted_big_endian(self):
        element = OpenUdpPortsElement(frozenset({0x1234, 0x0001}))
        assert element.payload_bytes() == b"\x00\x01\x12\x34"

    def test_empty_set(self):
        element = OpenUdpPortsElement()
        assert element.payload_bytes() == b""
        assert OpenUdpPortsElement.from_payload(b"") == element

    def test_capacity_limit(self):
        ports = frozenset(range(1, MAX_PORTS_PER_ELEMENT + 2))
        with pytest.raises(ValueError):
            OpenUdpPortsElement(ports)

    def test_port_range_validated(self):
        with pytest.raises(ValueError):
            OpenUdpPortsElement(frozenset({0}))
        with pytest.raises(ValueError):
            OpenUdpPortsElement(frozenset({70000}))

    def test_odd_payload_rejected(self):
        with pytest.raises(FrameDecodeError):
            OpenUdpPortsElement.from_payload(b"\x00\x01\x02")

    def test_port_zero_in_payload_rejected(self):
        with pytest.raises(FrameDecodeError):
            OpenUdpPortsElement.from_payload(b"\x00\x00")
