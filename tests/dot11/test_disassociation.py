import pytest

from repro.dot11.disassociation import (
    Disassociation,
    REASON_INACTIVITY,
    REASON_LEAVING,
)
from repro.dot11.mac_address import MacAddress
from repro.errors import FrameDecodeError

AP = MacAddress.from_string("02:aa:00:00:00:01")
STA = MacAddress.station(2)


class TestFrame:
    def test_round_trip(self):
        frame = Disassociation(
            source=STA, destination=AP, bssid=AP, reason=REASON_LEAVING
        )
        decoded = Disassociation.from_bytes(frame.to_bytes())
        assert decoded == frame
        assert decoded.reason == 8

    def test_ap_initiated(self):
        frame = Disassociation(
            source=AP, destination=STA, bssid=AP, reason=REASON_INACTIVITY
        )
        assert Disassociation.from_bytes(frame.to_bytes()).reason == 4

    def test_reason_validated(self):
        with pytest.raises(ValueError):
            Disassociation(source=STA, destination=AP, bssid=AP, reason=-1)

    def test_not_a_disassociation(self):
        from repro.dot11.probe_frames import ProbeRequest

        with pytest.raises(FrameDecodeError):
            Disassociation.from_bytes(ProbeRequest(source=STA).to_bytes())

    def test_length(self):
        frame = Disassociation(source=STA, destination=AP, bssid=AP)
        assert frame.length_bytes == len(frame.to_bytes())


class TestLifecycle:
    def build(self):
        from repro.ap.access_point import AccessPoint, ApConfig
        from repro.sim.engine import Simulator
        from repro.sim.medium import Medium
        from repro.station.client import Client, ClientConfig, ClientPolicy

        sim = Simulator()
        medium = Medium(sim)
        ap = AccessPoint(AP, medium, ApConfig())
        medium.attach(ap)
        client = Client(
            MacAddress.station(1), medium, AP,
            ClientConfig(policy=ClientPolicy.HIDE),
        )
        medium.attach(client)
        client.open_port(5353)
        return sim, ap, client

    def test_leave_clears_ap_state(self):
        sim, ap, client = self.build()
        sim.schedule(0.01, client.request_association)
        sim.run(until=2.0)
        aid = client.aid
        assert ap.port_table.ports_for_client(aid) == frozenset({5353})

        sim.schedule(0.0, client.leave_bss)
        sim.run(until=3.0)
        assert client.aid is None
        assert ap.counters.disassociations_received == 1
        assert ap.port_table.ports_for_client(aid) == frozenset()
        assert ap.associations.get_by_mac(client.mac) is None

    def test_aid_reusable_after_leave(self):
        sim, ap, client = self.build()
        sim.schedule(0.01, client.request_association)
        sim.run(until=2.0)
        old_aid = client.aid
        sim.schedule(0.0, client.leave_bss)
        sim.run(until=2.5)
        newcomer = ap.associate(MacAddress.station(9))
        assert newcomer.aid == old_aid

    def test_leave_without_association_is_noop(self):
        sim, ap, client = self.build()
        client.leave_bss()
        sim.run(until=0.5)
        assert ap.counters.disassociations_received == 0

    def test_disassociation_from_stranger_ignored(self):
        from repro.sim.entity import Entity

        sim, ap, client = self.build()

        class Stranger(Entity):
            def on_attach(self):
                frame = Disassociation(
                    source=MacAddress.station(50), destination=AP, bssid=AP
                )
                self.simulator.schedule(
                    0.01,
                    lambda: self._medium.transmit(
                        self, frame, frame.to_bytes(), 1e6
                    ),
                )

        stranger = Stranger("stranger")
        stranger._medium = None
        from repro.sim.medium import Medium  # reuse the same medium

        # Attach the stranger to the same medium as the AP.
        medium = ap._medium
        stranger._medium = medium
        medium.attach(stranger)
        sim.run(until=1.0)
        assert ap.counters.disassociations_received == 0
