"""Application churn driving the port-report machinery (§III-B)."""

import pytest

from repro.ap.access_point import AccessPoint, ApConfig
from repro.dot11.mac_address import MacAddress
from repro.errors import ConfigurationError
from repro.net.packet import build_broadcast_udp_packet
from repro.sim.engine import Simulator
from repro.sim.medium import Medium
from repro.station.app_model import COMMON_APPS, AppProfile, AppScheduler
from repro.station.client import Client, ClientConfig, ClientPolicy
from repro.station.power import PowerState

AP_MAC = MacAddress.from_string("02:aa:00:00:00:01")
WIRED = MacAddress.from_string("02:bb:00:00:00:99")

CHROMECAST = AppProfile("chromecast", frozenset({5353}))
DLNA = AppProfile("dlna", frozenset({1900}))
SPOTIFY = AppProfile("spotify", frozenset({57621, 5353}))


def build_network():
    sim = Simulator()
    medium = Medium(sim)
    ap = AccessPoint(AP_MAC, medium, ApConfig())
    medium.attach(ap)
    client = Client(
        MacAddress.station(1), medium, AP_MAC,
        ClientConfig(policy=ClientPolicy.HIDE, wakelock_timeout_s=0.2),
    )
    medium.attach(client)
    record = ap.associate(client.mac, hide_capable=True)
    client.set_aid(record.aid)
    return sim, medium, ap, client


class TestSchedulerBasics:
    def test_start_opens_ports(self):
        sim, medium, ap, client = build_network()
        scheduler = AppScheduler(client)
        scheduler.start_app(CHROMECAST)
        assert client.sockets.reportable_ports() == frozenset({5353})
        assert scheduler.running_apps == frozenset({"chromecast"})

    def test_stop_closes_ports(self):
        sim, medium, ap, client = build_network()
        scheduler = AppScheduler(client)
        scheduler.start_app(CHROMECAST)
        scheduler.stop_app("chromecast")
        assert client.sockets.reportable_ports() == frozenset()

    def test_shared_port_reference_counted(self):
        sim, medium, ap, client = build_network()
        scheduler = AppScheduler(client)
        scheduler.start_app(CHROMECAST)  # 5353
        scheduler.start_app(SPOTIFY)     # 57621 + 5353
        scheduler.stop_app("chromecast")
        # Spotify still needs 5353.
        assert client.sockets.reportable_ports() == frozenset({5353, 57621})
        scheduler.stop_app("spotify")
        assert client.sockets.reportable_ports() == frozenset()

    def test_double_start_rejected(self):
        sim, medium, ap, client = build_network()
        scheduler = AppScheduler(client)
        scheduler.start_app(CHROMECAST)
        with pytest.raises(ConfigurationError):
            scheduler.start_app(CHROMECAST)

    def test_stop_unknown_rejected(self):
        sim, medium, ap, client = build_network()
        with pytest.raises(ConfigurationError):
            AppScheduler(client).stop_app("nope")

    def test_common_apps_valid(self):
        assert len(COMMON_APPS) >= 5
        names = {app.name for app in COMMON_APPS}
        assert len(names) == len(COMMON_APPS)

    def test_profile_validation(self):
        with pytest.raises(ConfigurationError):
            AppProfile("", frozenset({1}))
        with pytest.raises(ConfigurationError):
            AppProfile("x", frozenset({0}))


class TestEndToEndChurn:
    def test_ap_table_follows_app_lifecycle(self):
        sim, medium, ap, client = build_network()
        scheduler = AppScheduler(client)
        scheduler.schedule(1.0, "start", CHROMECAST)
        scheduler.schedule(5.0, "start", DLNA)
        scheduler.schedule(10.0, "stop", CHROMECAST)
        sim.run(until=15.0)
        # After all the churn settles, the AP has exactly DLNA's port.
        assert ap.port_table.ports_for_client(client.aid) == frozenset({1900})
        assert client.power.state is PowerState.SUSPENDED

    def test_new_app_changes_filtering(self):
        sim, medium, ap, client = build_network()
        scheduler = AppScheduler(client)
        # Phase 1: no apps -> mDNS is useless, client sleeps through it.
        packet1 = build_broadcast_udp_packet(5353, b"a")
        sim.schedule(2.0, lambda: ap.deliver_from_ds(packet1, WIRED))
        # Phase 2: chromecast starts at t=4 -> mDNS becomes useful.
        scheduler.schedule(4.0, "start", CHROMECAST)
        packet2 = build_broadcast_udp_packet(5353, b"b")
        sim.schedule(6.0, lambda: ap.deliver_from_ds(packet2, WIRED))
        sim.run(until=10.0)
        assert client.counters.useful_frames_received == 1
        assert client.counters.broadcast_frames_ignored >= 1

    def test_stopping_app_stops_wakeups(self):
        sim, medium, ap, client = build_network()
        scheduler = AppScheduler(client)
        scheduler.start_app(CHROMECAST)
        scheduler.schedule(3.0, "stop", CHROMECAST)
        for i in range(8):
            packet = build_broadcast_udp_packet(5353, b"x")
            sim.schedule(5.0 + i, lambda p=packet: ap.deliver_from_ds(p, WIRED))
        sim.run(until=15.0)
        # All post-stop mDNS ignored: no useful frames at all.
        assert client.counters.useful_frames_received == 0
        assert client.counters.broadcast_frames_ignored >= 8

    def test_events_logged_with_times(self):
        sim, medium, ap, client = build_network()
        scheduler = AppScheduler(client)
        scheduler.schedule(1.0, "start", CHROMECAST)
        scheduler.schedule(2.0, "stop", CHROMECAST)
        sim.run(until=5.0)
        actions = [(action, name) for _, action, name in scheduler.events]
        assert actions == [("start", "chromecast"), ("stop", "chromecast")]
        times = [t for t, _, _ in scheduler.events]
        assert times[0] >= 1.0 and times[1] >= 2.0  # after wake-up latency
