"""DES client behaviour under the three policies."""

import pytest

from repro.ap.access_point import AccessPoint, ApConfig
from repro.dot11.mac_address import MacAddress
from repro.net.packet import build_broadcast_udp_packet
from repro.sim.engine import Simulator
from repro.sim.medium import Medium
from repro.station.client import Client, ClientConfig, ClientPolicy
from repro.station.power import PowerState

AP_MAC = MacAddress.from_string("02:aa:00:00:00:01")
WIRED_SRC = MacAddress.from_string("02:bb:00:00:00:99")


def make_network(policies, open_ports=(5353,), hide_ap=True, tau=0.3):
    """AP + one client per policy; clients listen on ``open_ports``."""
    sim = Simulator()
    medium = Medium(sim)
    ap = AccessPoint(AP_MAC, medium, ApConfig(hide_enabled=hide_ap))
    medium.attach(ap)
    clients = []
    for index, policy in enumerate(policies):
        mac = MacAddress.station(index + 1)
        client = Client(
            mac, medium, AP_MAC,
            ClientConfig(policy=policy, wakelock_timeout_s=tau),
        )
        medium.attach(client)
        record = ap.associate(mac, hide_capable=policy is ClientPolicy.HIDE)
        client.set_aid(record.aid)
        for port in open_ports:
            client.open_port(port)
        clients.append(client)
    return sim, medium, ap, clients


def inject(sim, ap, time, port):
    packet = build_broadcast_udp_packet(port, b"payload")
    sim.schedule(time, lambda: ap.deliver_from_ds(packet, WIRED_SRC))


class TestSuspendEntry:
    def test_hide_client_sends_port_message_before_suspend(self):
        sim, medium, ap, (client,) = make_network([ClientPolicy.HIDE])
        sim.run(until=1.0)
        assert client.counters.port_messages_sent >= 1
        assert client.counters.acks_received >= 1
        assert client.power.state is PowerState.SUSPENDED
        aid = client.aid
        assert ap.port_table.ports_for_client(aid) == frozenset({5353})

    def test_legacy_client_suspends_without_port_message(self):
        sim, medium, ap, (client,) = make_network([ClientPolicy.RECEIVE_ALL])
        sim.run(until=1.0)
        assert client.counters.port_messages_sent == 0
        assert client.power.state is PowerState.SUSPENDED

    def test_port_message_retransmitted_without_ack(self):
        # Client attached to a dead medium: AP never ACKs.
        sim = Simulator()
        medium = Medium(sim)
        client = Client(
            MacAddress.station(1), medium, AP_MAC,
            ClientConfig(policy=ClientPolicy.HIDE, max_port_message_retries=3),
        )
        medium.attach(client)
        client.set_aid(1)
        sim.run(until=2.0)
        assert client.counters.port_message_retransmissions == 3
        # Gives up and suspends anyway.
        assert client.power.state is PowerState.SUSPENDED


class TestHidePolicy:
    def test_sleeps_through_useless_broadcast(self):
        sim, medium, ap, (client,) = make_network([ClientPolicy.HIDE])
        inject(sim, ap, 0.5, port=1900)  # client listens on 5353 only
        sim.run(until=2.0)
        assert client.counters.broadcast_frames_ignored == 1
        assert client.counters.broadcast_frames_received == 0
        assert client.power.counters.resumes == 0

    def test_wakes_for_useful_broadcast(self):
        sim, medium, ap, (client,) = make_network([ClientPolicy.HIDE])
        inject(sim, ap, 0.5, port=5353)
        sim.run(until=2.0)
        assert client.counters.broadcast_frames_received == 1
        assert client.counters.useful_frames_received == 1
        assert client.counters.frames_delivered_to_apps == 1
        assert client.power.counters.resumes == 1

    def test_returns_to_suspend_after_processing(self):
        sim, medium, ap, (client,) = make_network([ClientPolicy.HIDE])
        inject(sim, ap, 0.5, port=5353)
        sim.run(until=5.0)
        assert client.power.state is PowerState.SUSPENDED
        # Re-reported ports on the second suspend entry.
        assert client.counters.port_messages_sent >= 2

    def test_receives_burst_companions(self):
        # A useful frame shares a DTIM burst with a useless one: the
        # radio is up for the whole burst, so both are received.
        sim, medium, ap, (client,) = make_network([ClientPolicy.HIDE])
        inject(sim, ap, 0.05, port=5353)
        inject(sim, ap, 0.06, port=1900)
        sim.run(until=2.0)
        assert client.counters.broadcast_frames_received == 2
        assert client.counters.useful_frames_received == 1
        assert client.counters.useless_frames_received == 1

    def test_hide_client_under_legacy_ap_follows_tim(self):
        sim, medium, ap, (client,) = make_network(
            [ClientPolicy.HIDE], hide_ap=False
        )
        inject(sim, ap, 0.5, port=1900)  # useless
        sim.run(until=2.0)
        # No BTIM: the client falls back to the TIM group bit and wakes.
        assert client.counters.broadcast_frames_received == 1
        assert client.power.counters.resumes == 1


class TestReceiveAllPolicy:
    def test_wakes_for_everything(self):
        sim, medium, ap, (client,) = make_network([ClientPolicy.RECEIVE_ALL])
        inject(sim, ap, 0.3, port=1900)
        inject(sim, ap, 0.9, port=5353)
        sim.run(until=3.0)
        assert client.counters.broadcast_frames_received == 2
        assert client.power.counters.resumes == 2

    def test_wakelock_held_for_useless_frames(self):
        sim, medium, ap, (client,) = make_network(
            [ClientPolicy.RECEIVE_ALL], tau=0.5
        )
        inject(sim, ap, 0.3, port=1900)
        sim.run(until=3.0)
        assert client.wakelock.total_held_time() == pytest.approx(0.5, abs=1e-6)


class TestClientSidePolicy:
    def test_no_wakelock_for_useless_frames(self):
        sim, medium, ap, (client,) = make_network(
            [ClientPolicy.CLIENT_SIDE], tau=0.5
        )
        inject(sim, ap, 0.3, port=1900)
        sim.run(until=3.0)
        assert client.counters.broadcast_frames_received == 1
        assert client.wakelock.total_held_time() == 0.0
        assert client.power.counters.resumes == 1
        assert client.power.state is PowerState.SUSPENDED

    def test_wakelock_for_useful_frames(self):
        sim, medium, ap, (client,) = make_network(
            [ClientPolicy.CLIENT_SIDE], tau=0.5
        )
        inject(sim, ap, 0.3, port=5353)
        sim.run(until=3.0)
        assert client.wakelock.total_held_time() == pytest.approx(0.5, abs=1e-6)


class TestMixedNetwork:
    def test_hide_sleeps_while_legacy_wakes(self):
        sim, medium, ap, (hide, legacy) = make_network(
            [ClientPolicy.HIDE, ClientPolicy.RECEIVE_ALL]
        )
        # Port useless to the HIDE client but legacy receives everything.
        inject(sim, ap, 0.5, port=1900)
        sim.run(until=2.5)
        assert hide.counters.broadcast_frames_received == 0
        assert legacy.counters.broadcast_frames_received == 1
        assert hide.suspend_fraction() > legacy.suspend_fraction()

    def test_open_port_changes_next_report(self):
        sim, medium, ap, (client,) = make_network([ClientPolicy.HIDE])
        inject(sim, ap, 0.5, port=5353)  # wake it so it can re-report

        def add_port():
            client.open_port(17500)

        sim.schedule(0.7, add_port)
        sim.run(until=5.0)
        assert ap.port_table.ports_for_client(client.aid) == frozenset(
            {5353, 17500}
        )
