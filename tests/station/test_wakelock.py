import pytest

from repro.sim.engine import Simulator
from repro.station.wakelock import WakelockManager

TAU = 1.0


def make_lock(on_expire=None):
    sim = Simulator()
    lock = WakelockManager(sim, TAU, on_expire=on_expire)
    return sim, lock


class TestAcquisition:
    def test_acquire_holds_for_tau(self):
        expired = []
        sim, lock = make_lock(lambda: expired.append(sim.now))
        lock.acquire()
        assert lock.held
        sim.run()
        assert not lock.held
        assert expired == [pytest.approx(TAU)]

    def test_renewal_resets_expiry(self):
        expired = []
        sim, lock = make_lock(lambda: expired.append(sim.now))
        lock.acquire()
        sim.schedule(0.5, lock.acquire)
        sim.run()
        assert expired == [pytest.approx(1.5)]
        assert lock.acquisitions == 1
        assert lock.renewals == 1

    def test_total_held_time_counts_renewals_once(self):
        sim, lock = make_lock()
        lock.acquire()
        sim.schedule(0.5, lock.acquire)
        sim.run()
        assert lock.total_held_time() == pytest.approx(1.5)

    def test_separate_holds_accumulate(self):
        sim, lock = make_lock()
        lock.acquire()
        sim.schedule(5.0, lock.acquire)
        sim.run()
        assert lock.total_held_time() == pytest.approx(2 * TAU)
        assert lock.acquisitions == 2
        assert len(lock.hold_periods()) == 2

    def test_custom_timeout(self):
        expired = []
        sim, lock = make_lock(lambda: expired.append(sim.now))
        lock.acquire(timeout_s=0.25)
        sim.run()
        assert expired == [pytest.approx(0.25)]

    def test_release_now(self):
        expired = []
        sim, lock = make_lock(lambda: expired.append(sim.now))
        lock.acquire()
        lock.release_now()
        assert not lock.held
        assert expired == [0.0]
        sim.run()
        assert expired == [0.0]  # no double expiry

    def test_expires_at(self):
        sim, lock = make_lock()
        assert lock.expires_at is None
        lock.acquire()
        assert lock.expires_at == pytest.approx(TAU)

    def test_open_hold_counted_to_now(self):
        sim, lock = make_lock()
        lock.acquire()
        sim.schedule(0.3, lambda: None)
        sim.run(until=0.3)
        assert lock.total_held_time() == pytest.approx(0.3)

    def test_renewal_never_shortens(self):
        expired = []
        sim, lock = make_lock(lambda: expired.append(sim.now))
        lock.acquire()  # expires at 1.0
        sim.schedule(0.2, lambda: lock.acquire(timeout_s=0.0))
        sim.run()
        assert expired == [pytest.approx(TAU)]

    def test_zero_acquire_on_idle_lock_expires_via_queue(self):
        order = []
        sim, lock = make_lock(lambda: order.append("expired"))

        def same_instant():
            lock.acquire(timeout_s=0.0)
            lock.acquire(timeout_s=0.5)  # same batch: extends before expiry
            order.append("acquired")

        sim.schedule(1.0, same_instant)
        sim.run()
        assert order == ["acquired", "expired"]
        assert sim.now == pytest.approx(1.5)

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            WakelockManager(sim, -1.0)
        lock = WakelockManager(sim, 1.0)
        with pytest.raises(ValueError):
            lock.acquire(timeout_s=-0.5)
