import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.station.power import PowerState, PowerStateMachine, StateSegment

TRM = 0.046
TSP = 0.086


def make_machine(initial=PowerState.SUSPENDED):
    sim = Simulator()
    machine = PowerStateMachine(sim, TRM, TSP, initial_state=initial)
    return sim, machine


class TestTransitions:
    def test_wake_from_suspended_takes_trm(self):
        sim, machine = make_machine()
        machine.request_wake()
        assert machine.state is PowerState.RESUMING
        sim.run()
        assert machine.state is PowerState.ACTIVE
        assert sim.now == pytest.approx(TRM)
        assert machine.counters.resumes == 1

    def test_suspend_takes_tsp(self):
        sim, machine = make_machine(PowerState.ACTIVE)
        machine.request_suspend()
        assert machine.state is PowerState.SUSPENDING
        sim.run()
        assert machine.state is PowerState.SUSPENDED
        assert sim.now == pytest.approx(TSP)
        assert machine.counters.suspends_completed == 1

    def test_wake_during_suspend_aborts(self):
        sim, machine = make_machine(PowerState.ACTIVE)
        machine.request_suspend()
        sim.schedule(TSP / 2, machine.request_wake)
        sim.run()
        assert machine.state is PowerState.ACTIVE
        assert machine.counters.suspends_aborted == 1
        assert machine.counters.suspends_completed == 0
        assert machine.counters.aborted_suspend_time == pytest.approx(TSP / 2)

    def test_wake_while_active_is_noop(self):
        sim, machine = make_machine(PowerState.ACTIVE)
        machine.request_wake()
        assert machine.state is PowerState.ACTIVE
        assert machine.counters.resumes == 0

    def test_wake_while_resuming_is_noop(self):
        sim, machine = make_machine()
        machine.request_wake()
        machine.request_wake()
        sim.run()
        assert machine.counters.resumes == 1

    def test_suspend_only_from_active(self):
        sim, machine = make_machine()
        with pytest.raises(SimulationError):
            machine.request_suspend()

    def test_is_awake(self):
        sim, machine = make_machine()
        assert not machine.is_awake
        machine.request_wake()
        assert machine.is_awake  # resuming counts as awake (paper s(i)=1)


class TestCallbacks:
    def test_when_active_fires_immediately_if_active(self):
        sim, machine = make_machine(PowerState.ACTIVE)
        fired = []
        machine.when_active(lambda: fired.append(sim.now))
        assert fired == [0.0]

    def test_when_active_deferred_until_resume_completes(self):
        sim, machine = make_machine()
        fired = []
        machine.request_wake()
        machine.when_active(lambda: fired.append(sim.now))
        sim.run()
        assert fired == [pytest.approx(TRM)]

    def test_when_active_fires_after_abort(self):
        sim, machine = make_machine(PowerState.ACTIVE)
        machine.request_suspend()
        fired = []
        machine.when_active(lambda: fired.append(True))
        sim.schedule(0.01, machine.request_wake)
        sim.run()
        assert fired == [True]


class TestHistory:
    def test_segments_cover_timeline(self):
        sim, machine = make_machine()
        machine.request_wake()
        sim.run()
        machine.request_suspend()
        sim.run()
        segments = machine.segments()
        assert segments[0].state is PowerState.SUSPENDED
        for earlier, later in zip(segments, segments[1:]):
            assert earlier.end == later.start

    def test_time_in_state(self):
        sim, machine = make_machine()
        sim.schedule(1.0, machine.request_wake)
        sim.run()
        # 1.0s suspended + TRM resuming.
        assert machine.time_in_state(PowerState.SUSPENDED) == pytest.approx(1.0)
        assert machine.time_in_state(PowerState.RESUMING) == pytest.approx(TRM)

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            StateSegment(PowerState.ACTIVE, 2.0, 1.0)

    def test_negative_durations_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PowerStateMachine(sim, -0.1, 0.1)
