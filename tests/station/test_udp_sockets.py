import pytest

from repro.errors import ConfigurationError
from repro.station.udp_sockets import UdpSocketTable


class TestSocketTable:
    def test_open_and_report(self):
        table = UdpSocketTable()
        table.open_port(5353)
        table.open_port(1900)
        assert table.reportable_ports() == frozenset({5353, 1900})

    def test_specific_binding_not_reported(self):
        # Paper §III-B: only INADDR_ANY sockets go in the UDP Port Message.
        table = UdpSocketTable()
        table.open_port(5353, inaddr_any=True)
        table.open_port(8080, inaddr_any=False)
        assert table.reportable_ports() == frozenset({5353})
        assert table.open_ports() == frozenset({5353, 8080})

    def test_broadcast_delivery(self):
        table = UdpSocketTable()
        table.open_port(5353, inaddr_any=True)
        table.open_port(8080, inaddr_any=False)
        assert table.delivers_broadcast_on(5353)
        assert not table.delivers_broadcast_on(8080)
        assert not table.delivers_broadcast_on(9999)

    def test_close(self):
        table = UdpSocketTable()
        table.open_port(5353)
        table.close_port(5353)
        assert not table.is_open(5353)
        assert table.opens == 1
        assert table.closes == 1

    def test_double_open_rejected(self):
        table = UdpSocketTable()
        table.open_port(5353)
        with pytest.raises(ConfigurationError):
            table.open_port(5353)

    def test_close_unopened_rejected(self):
        table = UdpSocketTable()
        with pytest.raises(ConfigurationError):
            table.close_port(5353)

    def test_port_range(self):
        table = UdpSocketTable()
        with pytest.raises(ConfigurationError):
            table.open_port(0)
        with pytest.raises(ConfigurationError):
            table.open_port(65536)

    def test_len(self):
        table = UdpSocketTable()
        assert len(table) == 0
        table.open_port(1)
        table.open_port(2)
        assert len(table) == 2
