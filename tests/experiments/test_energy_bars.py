import pytest

from repro.energy import COMPONENT_LABELS, NEXUS_ONE
from repro.experiments.context import EvaluationContext
from repro.experiments.energy_bars import (
    EnergyBar,
    EnergyBarGrid,
    compute_grid,
    render_grid,
)
from repro.traces.scenarios import ScenarioSpec

FAST = (ScenarioSpec("Tiny", 90.0, 0.5, 15.0, 8.0, 2.0, 71),)


@pytest.fixture(scope="module")
def grid():
    return compute_grid(NEXUS_ONE, EvaluationContext(scenarios=FAST))


class TestEnergyBar:
    def test_total_is_component_sum(self):
        bar = EnergyBar(label="x", components_mw=(1.0, 2.0, 3.0, 4.0, 0.5))
        assert bar.total_mw == pytest.approx(10.5)


class TestGrid:
    def test_components_ordered_like_labels(self, grid):
        for bars in grid.bars.values():
            for bar in bars:
                assert len(bar.components_mw) == len(COMPONENT_LABELS)

    def test_total_lookup(self, grid):
        total = grid.total_mw("Tiny", "receive-all")
        assert total > 0

    def test_unknown_bar_raises(self, grid):
        with pytest.raises(KeyError):
            grid.total_mw("Tiny", "no-such-solution")

    def test_hide_savings_positive(self, grid):
        assert grid.hide_savings("Tiny", "HIDE:2%") > 0

    def test_render_contains_all_bars(self, grid):
        text = render_grid(grid, "Figure X")
        for label in grid.bar_labels:
            assert label in text
        assert "Figure X" in text
        assert "HIDE energy savings" in text


class TestCliInspectStructure:
    def test_structure_line_printed(self, capsys):
        from repro.cli import main

        assert main(["trace", "inspect", "WRL"]) == 0
        out = capsys.readouterr().out
        assert "structure:" in out
        assert "dispersion index" in out
        assert "long enough to suspend" in out
