import pytest

from repro.reporting.chart import render_bar_chart, render_cdf, render_series_table
from repro.reporting.table import render_table


class TestTable:
    def test_basic_layout(self):
        text = render_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "bb" in lines[3]

    def test_title(self):
        text = render_table(["x"], [["1"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_numeric_right_aligned(self):
        text = render_table(["col"], [["5"], ["500"]])
        lines = text.splitlines()
        assert lines[2] == "  5"
        assert lines[3] == "500"

    def test_text_left_aligned(self):
        text = render_table(["col"], [["ab"], ["abcd"]])
        assert text.splitlines()[2] == "ab"

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_percent_cells_numeric(self):
        text = render_table(["p"], [["5.0%"], ["50.0%"]])
        assert text.splitlines()[2] == " 5.0%"


class TestBarChart:
    def test_bars_scale(self):
        text = render_bar_chart(["a", "b"], [50.0, 100.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_unit_and_title(self):
        text = render_bar_chart(["x"], [3.0], title="T", unit="mW")
        assert text.startswith("T\n")
        assert "3.0mW" in text

    def test_max_value_override(self):
        text = render_bar_chart(["x"], [50.0], width=10, max_value=100.0)
        assert text.count("#") == 5

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            render_bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert render_bar_chart([], [], title="t") == "t"

    def test_zero_values(self):
        text = render_bar_chart(["a"], [0.0])
        assert "#" not in text


class TestSeriesTable:
    def test_layout(self):
        text = render_series_table(
            "n", [1, 2], {"s1": [0.1, 0.2], "s2": [0.3, 0.4]}
        )
        lines = text.splitlines()
        assert lines[0].split() == ["n", "s1", "s2"]
        assert "0.100" in lines[2]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series_table("n", [1, 2], {"s": [0.1]})


class TestCdfPlot:
    def test_shape(self):
        points = [(float(i), i / 10) for i in range(1, 11)]
        text = render_cdf(points, height=5, width=20)
        lines = text.splitlines()
        assert len(lines) == 7  # 5 rows + axis + label
        assert "*" in lines[0]

    def test_title(self):
        text = render_cdf([(1.0, 1.0)], title="CDF")
        assert text.startswith("CDF")

    def test_empty(self):
        assert render_cdf([], title="t") == "t"
