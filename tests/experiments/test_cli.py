"""CLI behaviour, exercised in-process through repro.cli.main."""

import pytest

from repro.cli import main


class TestTraceCommands:
    def test_generate_and_inspect(self, tmp_path, capsys):
        out = tmp_path / "starbucks.jsonl"
        csv = tmp_path / "starbucks.csv"
        assert main(
            ["trace", "generate", "Starbucks", "--out", str(out), "--csv", str(csv)]
        ) == 0
        captured = capsys.readouterr().out
        assert "wrote" in captured
        assert out.exists() and csv.exists()

        assert main(["trace", "inspect", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "Starbucks" in captured
        assert "frames/s CDF" in captured

    def test_inspect_by_scenario_name(self, capsys):
        assert main(["trace", "inspect", "WRL"]) == 0
        assert "WRL" in capsys.readouterr().out

    def test_unknown_scenario_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["trace", "generate", "Mars_Base", "--out", str(tmp_path / "x.jsonl")]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_missing_file_fails_cleanly(self, capsys):
        assert main(["trace", "inspect", "/nonexistent/trace.jsonl"]) == 2


class TestEnergyCompare:
    def test_compare_runs(self, capsys):
        assert main(
            ["energy", "compare", "WRL", "--device", "galaxy-s4",
             "--fraction", "0.05"]
        ) == 0
        out = capsys.readouterr().out
        assert "receive-all" in out
        assert "hide" in out
        assert "Galaxy S4" in out

    def test_compare_strategies(self, capsys):
        for strategy in ("clustered", "random", "spread"):
            assert main(
                ["energy", "compare", "WRL", "--strategy", strategy]
            ) == 0
            assert strategy in capsys.readouterr().out


class TestOverheadCommands:
    def test_capacity(self, capsys):
        assert main(["overhead", "capacity", "--nodes", "50",
                     "--adoption", "0.75"]) == 0
        out = capsys.readouterr().out
        assert "decrease" in out
        assert "0.12" in out  # ~0.125%

    def test_delay(self, capsys):
        assert main(["overhead", "delay", "--nodes", "50",
                     "--interval", "10"]) == 0
        out = capsys.readouterr().out
        assert "RTT increase" in out
        assert "2.3" in out


class TestExperimentsCommands:
    def test_run_only_fast_figures(self, capsys):
        assert main(["experiments", "run", "--only", "figure10,figure11"]) == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out
        assert "Figure 11" in out

    def test_run_only_tables(self, capsys):
        assert main(["experiments", "run", "--only", "table1,table2"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table II" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main(["trace"])
