"""Unit tests for the sharded sweep runner and its merge function."""

import json

import pytest

from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.experiments.des_run import DesRunConfig
from repro.experiments.sweep import (
    SWEEP_SCHEMA,
    SweepSpec,
    SweepTelemetry,
    merge_results,
    render_progress_line,
    render_sweep,
    run_sweep,
    write_sweep_json,
)

_QUICK = DesRunConfig(client_count=2, duration_s=2.0)


def _spec(**kwargs):
    defaults = dict(scenarios=("Starbucks",), seeds=(0, 1), config=_QUICK)
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestSweepSpec:
    def test_cells_cross_product_in_order(self):
        spec = _spec(scenarios=("Starbucks", "Classroom"), seeds=(3, 1))
        assert spec.cells() == [
            ("Starbucks", 3),
            ("Starbucks", 1),
            ("Classroom", 3),
            ("Classroom", 1),
        ]

    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ConfigurationError):
            _spec(scenarios=())
        with pytest.raises(ConfigurationError):
            _spec(seeds=())
        with pytest.raises(ConfigurationError):
            _spec(seeds=(1, 1))

    def test_rejects_bad_scenario_and_fault_spec_eagerly(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            _spec(scenarios=("Atlantis",))
        with pytest.raises((ConfigurationError, ValueError)):
            _spec(fault_spec="loss=banana")


class TestMergeResults:
    def test_merge_is_order_invariant(self):
        spec = _spec()
        results = [
            {"scenario": "Starbucks", "seed": 1, "fingerprint": "b",
             "events": 10, "transmissions": 4, "frames_dropped": 1},
            {"scenario": "Starbucks", "seed": 0, "fingerprint": "a",
             "events": 7, "transmissions": 3, "frames_dropped": 0},
        ]
        forward = merge_results(spec, results, workers=1)
        reversed_ = merge_results(spec, list(reversed(results)), workers=1)
        assert forward["merged_fingerprint"] == reversed_["merged_fingerprint"]
        assert forward["runs"] == reversed_["runs"]
        assert [r["seed"] for r in forward["runs"]] == [0, 1]
        assert forward["totals"] == {
            "cells": 2, "succeeded": 2, "failed": 0,
            "events": 17, "transmissions": 7, "frames_dropped": 1,
        }

    def test_merge_isolates_failures(self):
        spec = _spec()
        results = [
            {"scenario": "Starbucks", "seed": 0, "fingerprint": "a",
             "events": 7, "transmissions": 3, "frames_dropped": 0},
            {"scenario": "Starbucks", "seed": 1,
             "error": "invariant violation: lost frame"},
        ]
        merged = merge_results(spec, results, workers=2)
        assert merged["totals"]["failed"] == 1
        assert merged["failures"] == [
            {"scenario": "Starbucks", "seed": 1,
             "error": "invariant violation: lost frame"},
        ]
        # A failed cell contributes nothing to the merged fingerprint …
        only_good = merge_results(spec, results[:1], workers=1)
        assert merged["merged_fingerprint"] == only_good["merged_fingerprint"]
        # … and the failure is visible in the human rendering.
        rendered = render_sweep(merged)
        assert "FAILED Starbucks seed 1" in rendered


class TestRunSweep:
    def test_report_shape_and_determinism(self, tmp_path):
        spec = _spec()
        document = run_sweep(spec, workers=1)
        assert document["schema"] == SWEEP_SCHEMA
        assert document["totals"] == {
            "cells": 2, "succeeded": 2, "failed": 0,
            "events": document["totals"]["events"],
            "transmissions": document["totals"]["transmissions"],
            "frames_dropped": 0,
        }
        again = run_sweep(spec, workers=1)
        assert document["merged_fingerprint"] == again["merged_fingerprint"]
        out = tmp_path / "sweep.json"
        write_sweep_json(document, str(out))
        assert json.loads(out.read_text())["schema"] == SWEEP_SCHEMA

    def test_invariant_failure_becomes_failing_cell(self):
        # No-recovery under loss trips the invariant suite for some
        # seeds; either way the sweep must complete and classify every
        # cell rather than abort.
        spec = _spec(
            seeds=(0, 1, 2),
            config=DesRunConfig(
                client_count=2,
                duration_s=4.0,
                check_invariants=True,
                recovery=False,
            ),
            fault_spec="loss=0.4",
        )
        document = run_sweep(spec, workers=1)
        assert document["totals"]["cells"] == 3
        assert (
            document["totals"]["succeeded"] + document["totals"]["failed"] == 3
        )
        for failure in document["failures"]:
            assert "invariant" in failure["error"]

    def test_timeseries_dir_gets_one_dump_per_cell(self, tmp_path):
        spec = _spec(timeseries_dir=str(tmp_path / "ts"))
        document = run_sweep(spec, workers=1)
        dumps = sorted((tmp_path / "ts").iterdir())
        assert [d.name for d in dumps] == [
            "Starbucks_seed0.json",
            "Starbucks_seed1.json",
        ]
        for run in document["runs"]:
            windows = json.loads(
                (tmp_path / "ts" / f"Starbucks_seed{run['seed']}.json").read_text()
            )
            assert windows["windows"]

    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            run_sweep(_spec(), workers=0)

    def test_progress_callback_sees_every_cell(self):
        seen = []
        document = run_sweep(
            _spec(),
            workers=1,
            progress=lambda entry, done, total: seen.append(
                (entry["scenario"], entry["seed"], done, total)
            ),
        )
        assert len(seen) == 2
        assert {s[:2] for s in seen} == {("Starbucks", 0), ("Starbucks", 1)}
        assert [s[2] for s in seen] == [1, 2]
        assert all(s[3] == 2 for s in seen)
        assert document["totals"]["succeeded"] == 2

    def test_runs_are_free_of_host_clock_data(self):
        document = run_sweep(_spec(), workers=1)
        for run in document["runs"]:
            assert "telemetry" not in run
        cells = document["telemetry"]["cells"]
        assert len(cells) == 2
        for cell in cells:
            assert cell["wall_s"] > 0
            assert cell["events_per_second"] > 0
            assert "worker" in cell
        assert document["telemetry"]["wall_s"] == pytest.approx(
            sum(c["wall_s"] for c in cells)
        )
        assert "profile" not in document  # profiling was off

    def test_profiled_sweep_merges_a_profile_section(self):
        from dataclasses import replace

        from repro.obs.profiler import PROFILE_SCHEMA, ProfilerConfig

        spec = _spec(
            config=replace(
                _QUICK, profiler=ProfilerConfig(mode="sampling", stride=4)
            )
        )
        document = run_sweep(spec, workers=1)
        profile = document["profile"]
        assert profile["schema"] == PROFILE_SCHEMA
        assert profile["runs_merged"] == 2
        assert profile["sites"], "merged profile saw no sites"
        # Per-run profiles ride in telemetry, never in runs.
        for run in document["runs"]:
            assert "profile" not in run

    def test_worker_identity_holds_under_profiling(self):
        from dataclasses import replace

        from repro.obs.profiler import ProfilerConfig

        spec = _spec(
            config=replace(_QUICK, profiler=ProfilerConfig(mode="sampling"))
        )
        serial = run_sweep(spec, workers=1)
        sharded = run_sweep(spec, workers=2)
        assert serial["merged_fingerprint"] == sharded["merged_fingerprint"]
        assert serial["runs"] == sharded["runs"]
        assert serial["totals"] == sharded["totals"]


class TestSweepTelemetry:
    def test_in_process_sweep_feeds_the_aggregator(self):
        telemetry = SweepTelemetry()
        spec = _spec(heartbeat_every_s=0.5)
        run_sweep(spec, workers=1, telemetry=telemetry)
        health = telemetry.health()
        assert health["cells_total"] == 2
        assert health["cells_started"] == 2
        assert health["cells_done"] == 2
        assert health["cells_failed"] == 0
        assert health["heartbeats"] > 0

    def test_sharded_sweep_streams_records_over_the_pipe(self):
        telemetry = SweepTelemetry()
        run_sweep(_spec(), workers=2, telemetry=telemetry)
        health = telemetry.health()
        assert health["cells_done"] == 2
        assert health["workers"] >= 1  # forked worker pids

    def test_collect_into_renders_fleet_gauges(self):
        from repro.obs.metrics import MetricsRegistry

        telemetry = SweepTelemetry(cells_total=2)
        telemetry.handle(
            {"type": "cell_start", "worker": 11}
        )
        telemetry.handle(
            {
                "type": "heartbeat", "worker": 11, "sim_time": 1.5,
                "events": 300, "wall_s": 0.1,
            }
        )
        telemetry.handle(
            {
                "type": "cell_done", "worker": 11, "ok": True,
                "wall_s": 0.2, "events": 600,
                "hot_sites": [("AP.tick", "event", 0.05, 400.0)],
            }
        )
        registry = telemetry.collect_into(MetricsRegistry())
        assert registry.get("repro_sweep_cells_done").value == 1
        assert registry.get("repro_sweep_cells_failed").value == 0
        assert registry.get("repro_sweep_cells_running").value == 0
        assert (
            registry.get(
                "repro_sweep_worker_events_per_second", {"worker": "11"}
            ).value
            == pytest.approx(3000.0)
        )
        assert (
            registry.get(
                "repro_sweep_worker_sim_time_seconds", {"worker": "11"}
            ).value
            == 1.5
        )
        assert (
            registry.get(
                "repro_sweep_profile_wall_seconds_total",
                {"site": "AP.tick", "kind": "event"},
            ).value
            == pytest.approx(0.05)
        )

    def test_failed_cell_counts_as_failed(self):
        telemetry = SweepTelemetry()
        telemetry.handle(
            {"type": "cell_done", "worker": 1, "ok": False,
             "wall_s": 0.1, "events": 0}
        )
        health = telemetry.health()
        assert health["cells_failed"] == 1

    def test_server_scrapes_live_while_a_sweep_feeds_it(self):
        import threading
        import urllib.request

        from repro.obs.metrics import MetricsRegistry
        from repro.obs.server import MetricsServer

        telemetry = SweepTelemetry()
        registry = MetricsRegistry()
        scraped: list = []
        errors: list = []
        with MetricsServer(
            registry=registry,
            collect_fn=lambda: telemetry.collect_into(registry),
            health_fn=telemetry.health,
            port=0,
        ) as server:

            def scraper():
                try:
                    for _ in range(8):
                        with urllib.request.urlopen(
                            server.url + "/metrics", timeout=5
                        ) as response:
                            scraped.append(response.read().decode())
                        with urllib.request.urlopen(
                            server.url + "/healthz", timeout=5
                        ) as response:
                            scraped.append(response.read().decode())
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=scraper) for _ in range(3)]
            for thread in threads:
                thread.start()
            document = run_sweep(
                _spec(heartbeat_every_s=0.5), workers=1, telemetry=telemetry
            )
            for thread in threads:
                thread.join(timeout=30)
        assert not errors
        assert document["totals"]["succeeded"] == 2
        assert telemetry.health()["cells_done"] == 2
        # At least one late scrape saw the fleet gauges.
        assert any("repro_sweep_cells_done" in body for body in scraped)


class TestProgressLine:
    def test_ok_line_mentions_rate_and_worker(self):
        line = render_progress_line(
            {
                "scenario": "Starbucks", "seed": 3, "events": 500,
                "telemetry": {
                    "worker": 42, "wall_s": 0.5, "events_per_second": 1000.0
                },
            },
            done=2, total=10,
        )
        assert line.startswith("[ 2/10] Starbucks seed 3: ok")
        assert "1,000 ev/s" in line
        assert "worker 42" in line

    def test_failed_line_carries_the_error(self):
        line = render_progress_line(
            {"scenario": "WML", "seed": 1, "error": "boom", "telemetry": {}},
            done=1, total=1,
        )
        assert "FAIL (boom)" in line


class TestSweepCli:
    def test_cli_reports_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = cli_main(
            [
                "sweep", "Starbucks",
                "--seeds", "2", "--clients", "2", "--duration", "2",
                "--workers", "2", "--out", str(out),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "merged fingerprint:" in captured.out
        assert json.loads(out.read_text())["totals"]["failed"] == 0

    def test_cli_seed_list_and_failing_exit(self, capsys):
        code = cli_main(
            [
                "sweep", "Starbucks",
                "--seed-list", "0,1,2",
                "--clients", "2", "--duration", "4",
                "--fault-plan", "loss=0.4",
                "--check-invariants", "--no-recovery",
            ]
        )
        captured = capsys.readouterr()
        document_failed = "FAILED" in captured.out
        assert code == (1 if document_failed else 0)
        if document_failed:
            assert "failing cells:" in captured.err
