"""Unit tests for the sharded sweep runner and its merge function."""

import json

import pytest

from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.experiments.des_run import DesRunConfig
from repro.experiments.sweep import (
    SWEEP_SCHEMA,
    SweepSpec,
    merge_results,
    render_sweep,
    run_sweep,
    write_sweep_json,
)

_QUICK = DesRunConfig(client_count=2, duration_s=2.0)


def _spec(**kwargs):
    defaults = dict(scenarios=("Starbucks",), seeds=(0, 1), config=_QUICK)
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestSweepSpec:
    def test_cells_cross_product_in_order(self):
        spec = _spec(scenarios=("Starbucks", "Classroom"), seeds=(3, 1))
        assert spec.cells() == [
            ("Starbucks", 3),
            ("Starbucks", 1),
            ("Classroom", 3),
            ("Classroom", 1),
        ]

    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ConfigurationError):
            _spec(scenarios=())
        with pytest.raises(ConfigurationError):
            _spec(seeds=())
        with pytest.raises(ConfigurationError):
            _spec(seeds=(1, 1))

    def test_rejects_bad_scenario_and_fault_spec_eagerly(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            _spec(scenarios=("Atlantis",))
        with pytest.raises((ConfigurationError, ValueError)):
            _spec(fault_spec="loss=banana")


class TestMergeResults:
    def test_merge_is_order_invariant(self):
        spec = _spec()
        results = [
            {"scenario": "Starbucks", "seed": 1, "fingerprint": "b",
             "events": 10, "transmissions": 4, "frames_dropped": 1},
            {"scenario": "Starbucks", "seed": 0, "fingerprint": "a",
             "events": 7, "transmissions": 3, "frames_dropped": 0},
        ]
        forward = merge_results(spec, results, workers=1)
        reversed_ = merge_results(spec, list(reversed(results)), workers=1)
        assert forward["merged_fingerprint"] == reversed_["merged_fingerprint"]
        assert forward["runs"] == reversed_["runs"]
        assert [r["seed"] for r in forward["runs"]] == [0, 1]
        assert forward["totals"] == {
            "cells": 2, "succeeded": 2, "failed": 0,
            "events": 17, "transmissions": 7, "frames_dropped": 1,
        }

    def test_merge_isolates_failures(self):
        spec = _spec()
        results = [
            {"scenario": "Starbucks", "seed": 0, "fingerprint": "a",
             "events": 7, "transmissions": 3, "frames_dropped": 0},
            {"scenario": "Starbucks", "seed": 1,
             "error": "invariant violation: lost frame"},
        ]
        merged = merge_results(spec, results, workers=2)
        assert merged["totals"]["failed"] == 1
        assert merged["failures"] == [
            {"scenario": "Starbucks", "seed": 1,
             "error": "invariant violation: lost frame"},
        ]
        # A failed cell contributes nothing to the merged fingerprint …
        only_good = merge_results(spec, results[:1], workers=1)
        assert merged["merged_fingerprint"] == only_good["merged_fingerprint"]
        # … and the failure is visible in the human rendering.
        rendered = render_sweep(merged)
        assert "FAILED Starbucks seed 1" in rendered


class TestRunSweep:
    def test_report_shape_and_determinism(self, tmp_path):
        spec = _spec()
        document = run_sweep(spec, workers=1)
        assert document["schema"] == SWEEP_SCHEMA
        assert document["totals"] == {
            "cells": 2, "succeeded": 2, "failed": 0,
            "events": document["totals"]["events"],
            "transmissions": document["totals"]["transmissions"],
            "frames_dropped": 0,
        }
        again = run_sweep(spec, workers=1)
        assert document["merged_fingerprint"] == again["merged_fingerprint"]
        out = tmp_path / "sweep.json"
        write_sweep_json(document, str(out))
        assert json.loads(out.read_text())["schema"] == SWEEP_SCHEMA

    def test_invariant_failure_becomes_failing_cell(self):
        # No-recovery under loss trips the invariant suite for some
        # seeds; either way the sweep must complete and classify every
        # cell rather than abort.
        spec = _spec(
            seeds=(0, 1, 2),
            config=DesRunConfig(
                client_count=2,
                duration_s=4.0,
                check_invariants=True,
                recovery=False,
            ),
            fault_spec="loss=0.4",
        )
        document = run_sweep(spec, workers=1)
        assert document["totals"]["cells"] == 3
        assert (
            document["totals"]["succeeded"] + document["totals"]["failed"] == 3
        )
        for failure in document["failures"]:
            assert "invariant" in failure["error"]

    def test_timeseries_dir_gets_one_dump_per_cell(self, tmp_path):
        spec = _spec(timeseries_dir=str(tmp_path / "ts"))
        document = run_sweep(spec, workers=1)
        dumps = sorted((tmp_path / "ts").iterdir())
        assert [d.name for d in dumps] == [
            "Starbucks_seed0.json",
            "Starbucks_seed1.json",
        ]
        for run in document["runs"]:
            windows = json.loads(
                (tmp_path / "ts" / f"Starbucks_seed{run['seed']}.json").read_text()
            )
            assert windows["windows"]

    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            run_sweep(_spec(), workers=0)


class TestSweepCli:
    def test_cli_reports_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = cli_main(
            [
                "sweep", "Starbucks",
                "--seeds", "2", "--clients", "2", "--duration", "2",
                "--workers", "2", "--out", str(out),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "merged fingerprint:" in captured.out
        assert json.loads(out.read_text())["totals"]["failed"] == 0

    def test_cli_seed_list_and_failing_exit(self, capsys):
        code = cli_main(
            [
                "sweep", "Starbucks",
                "--seed-list", "0,1,2",
                "--clients", "2", "--duration", "4",
                "--fault-plan", "loss=0.4",
                "--check-invariants", "--no-recovery",
            ]
        )
        captured = capsys.readouterr()
        document_failed = "FAILED" in captured.out
        assert code == (1 if document_failed else 0)
        if document_failed:
            assert "failing cells:" in captured.err
