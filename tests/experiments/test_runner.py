"""Smoke test: the full experiment runner produces every section."""

import pytest

from repro.experiments.runner import run_all
from repro.traces.scenarios import ScenarioSpec
from repro.experiments.context import EvaluationContext

FAST = (
    ScenarioSpec("Heavy", 120.0, 0.20, 160.0, 1.15, 0.10, 61),
    ScenarioSpec("Light", 120.0, 0.60, 4.0, 40.0, 6.0, 62),
)


@pytest.fixture(scope="module")
def report():
    return run_all(EvaluationContext(scenarios=FAST))


class TestRunner:
    def test_all_sections_present(self, report):
        for marker in (
            "Table I",
            "Table II",
            "Figure 6",
            "Figure 7",
            "Figure 8",
            "Figure 9",
            "Figure 10",
            "Figure 11",
            "Figure 12",
            "Headline claims",
            "Sensitivity analyses",
        ):
            assert marker in report, f"missing section: {marker}"

    def test_scenario_names_flow_through(self, report):
        assert "Heavy" in report
        assert "Light" in report

    def test_report_is_substantial(self, report):
        assert len(report.splitlines()) > 150
