import pytest

from repro.errors import ConfigurationError
from repro.experiments import adoption


@pytest.fixture(scope="module")
def result():
    # Small/short sweep: the behaviour, not the magnitude, is under test.
    return adoption.compute(
        fractions=(0.0, 0.5, 1.0), total_clients=4, duration_s=40.0
    )


class TestAdoptionSweep:
    def test_fleet_power_decreases_with_adoption(self, result):
        powers = [p.mean_power_mw for p in result.points]
        assert powers == sorted(powers, reverse=True)

    def test_legacy_phones_unaffected_by_neighbours_adopting(self, result):
        legacy = [
            p.mean_legacy_power_mw
            for p in result.points
            if p.mean_legacy_power_mw > 0
        ]
        assert max(legacy) - min(legacy) < 1e-6

    def test_hide_phones_cheaper_than_legacy(self, result):
        mixed = result.points[1]  # 50% adoption has both kinds
        assert mixed.mean_hide_power_mw < mixed.mean_legacy_power_mw

    def test_suspend_fraction_rises_with_adoption(self, result):
        fractions = [p.mean_suspend_fraction for p in result.points]
        assert fractions == sorted(fractions)

    def test_endpoints_have_single_population(self, result):
        assert result.points[0].mean_hide_power_mw == 0.0
        assert result.points[-1].mean_legacy_power_mw == 0.0

    def test_render(self, result):
        text = adoption.render(result)
        assert "adoption" in text
        assert "fleet mW" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            adoption.compute(fractions=(1.5,), total_clients=2, duration_s=10.0)
        with pytest.raises(ConfigurationError):
            adoption.compute(total_clients=0)
        with pytest.raises(ConfigurationError):
            adoption.compute(duration_s=0.0)

    def test_deterministic(self):
        a = adoption.compute(fractions=(0.5,), total_clients=4, duration_s=20.0)
        b = adoption.compute(fractions=(0.5,), total_clients=4, duration_s=20.0)
        assert a.points[0].mean_power_mw == b.points[0].mean_power_mw
