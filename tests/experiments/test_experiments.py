"""Experiment modules produce the paper's shapes on a reduced context."""

import pytest

from repro.experiments import (
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    table1,
    table2,
)
from repro.experiments.context import EvaluationContext
from repro.traces.scenarios import ScenarioSpec

#: Short scenarios with the same two traffic characters as the real
#: ones, so experiment tests run in seconds.
FAST_SCENARIOS = (
    ScenarioSpec("Heavy", 180.0, 0.20, 160.0, 1.15, 0.10, 31),
    ScenarioSpec("Light", 180.0, 0.60, 4.0, 40.0, 6.0, 32),
)


@pytest.fixture(scope="module")
def context():
    return EvaluationContext(scenarios=FAST_SCENARIOS)


class TestTables:
    def test_table1_contains_both_devices(self):
        text = table1.render()
        assert "Nexus One" in text
        assert "Galaxy S4" in text
        assert "18.26 mJ" in text
        assert "1500 mW" in text

    def test_table2_contains_dot11b_settings(self):
        text = table2.render()
        assert "32" in text and "1024" in text
        assert "11 Mbits/s" in text
        assert "224 bits" in text


class TestFigure6:
    def test_cdfs_reach_one(self, context):
        result = figure6.compute(context)
        for name, points in result.cdf_points.items():
            assert points[-1][1] == pytest.approx(1.0)

    def test_means_ordering(self, context):
        result = figure6.compute(context)
        assert result.means["Heavy"] > result.means["Light"]

    def test_render_includes_all_scenarios(self, context):
        text = figure6.render(figure6.compute(context))
        assert "Heavy" in text and "Light" in text


class TestFigures7And8:
    def test_bar_structure(self, context):
        grid = figure7.compute(context)
        assert grid.device == "Nexus One"
        assert grid.bar_labels == (
            "receive-all", "client-side",
            "HIDE:10%", "HIDE:8%", "HIDE:6%", "HIDE:4%", "HIDE:2%",
        )
        for scenario in grid.scenarios:
            assert len(grid.bars[scenario]) == 7

    def test_hide_monotone_in_fraction(self, context):
        grid = figure7.compute(context)
        for scenario in grid.scenarios:
            totals = [
                grid.total_mw(scenario, f"HIDE:{f}%") for f in (10, 8, 6, 4, 2)
            ]
            assert totals == sorted(totals, reverse=True)

    def test_hide_always_beats_receive_all(self, context):
        for grid in (figure7.compute(context), figure8.compute(context)):
            for scenario in grid.scenarios:
                assert grid.hide_savings(scenario, "HIDE:10%") > 0

    def test_s4_client_side_worse_than_n1(self, context):
        n1 = figure7.compute(context)
        s4 = figure8.compute(context)
        for scenario in n1.scenarios:
            n1_ratio = n1.total_mw(scenario, "client-side") / n1.total_mw(
                scenario, "receive-all"
            )
            s4_ratio = s4.total_mw(scenario, "client-side") / s4.total_mw(
                scenario, "receive-all"
            )
            assert s4_ratio > n1_ratio

    def test_render(self, context):
        text = figure7.render(figure7.compute(context))
        assert "Figure 7" in text
        assert "HIDE energy savings" in text


class TestFigure9:
    def test_hide_sleeps_most(self, context):
        result = figure9.compute(context)
        for scenario in result.scenarios:
            ra, cs, h10, h2 = result.suspend_fractions[scenario]
            assert h2 >= h10 >= ra
            assert cs >= ra

    def test_fractions_valid(self, context):
        result = figure9.compute(context)
        for values in result.suspend_fractions.values():
            assert all(0.0 <= v <= 1.0 for v in values)

    def test_render(self, context):
        text = figure9.render(figure9.compute(context))
        assert "Figure 9" in text
        assert "receive-all" in text


class TestOverheadFigures:
    def test_figure10_worst_case_below_half_percent(self):
        result = figure10.compute()
        worst = max(d for row in result.decreases.values() for d in row)
        assert worst < 0.005

    def test_figure10_monotone_in_p(self):
        result = figure10.compute()
        for index in range(len(result.station_counts)):
            column = [result.decreases[p][index] for p in result.hide_fractions]
            assert column == sorted(column)

    def test_figure11_max_at_fastest_interval(self):
        result = figure11.compute()
        assert max(result.increases[10.0]) == pytest.approx(0.023, abs=0.001)
        assert max(result.increases[600.0]) < 0.002

    def test_figure12_no100_under_1_6_percent(self):
        result = figure12.compute()
        assert max(result.increases[100]) < 0.016

    def test_renders(self):
        assert "Figure 10" in figure10.render()
        assert "Figure 11" in figure11.render()
        assert "Figure 12" in figure12.render()
