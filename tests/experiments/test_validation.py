import pytest

from repro.errors import ConfigurationError
from repro.experiments import validation


@pytest.fixture(scope="module")
def result():
    return validation.compute(duration_s=40.0)


class TestValidation:
    def test_covers_three_policies(self, result):
        policies = {row.policy for row in result.rows}
        assert policies == {"receive-all", "client-side", "hide"}

    def test_resume_counts_exact(self, result):
        assert result.max_relative_error("resumes") == 0.0

    def test_wakelock_time_tight(self, result):
        assert result.max_relative_error("wakelock_s") < 0.02

    def test_suspend_fraction_tight(self, result):
        assert result.max_relative_error("suspend_fraction") < 0.02

    def test_render(self, result):
        text = validation.render(result)
        assert "DES" in text and "closed form" in text

    def test_validation_of_inputs(self):
        with pytest.raises(ConfigurationError):
            validation.compute(duration_s=5.0)
