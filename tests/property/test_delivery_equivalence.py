"""Bit-identity of the vectorized delivery backend against the reference.

The struct-of-arrays fast lane (``repro.sim.radio_array`` +
``Medium._drain_deliveries_vector``) is the default delivery backend,
so this suite is the contract that lets it be: for every scenario,
seed, event-queue backend, fault plan, and observer combination we can
afford to run, the two backends must agree on the deterministic
fingerprint, every per-client counter, the Prometheus export, the
windowed timeseries, and the full JSONL trace-event sequence. Energy
accrual is *deferred* in the fast lane (settled at probe boundaries
via the engine's sync hooks), which is exactly the kind of change that
silently skews counters if a settle point is missed — hence the
property-based cross product rather than a single golden run.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.experiments.des_run import (
    DesRunConfig,
    ProfilerConfig,
    TelemetryConfig,
    run_trace_des,
)
from repro.faults import FaultPlan
from repro.obs import format_for_path, write_metrics
from repro.obs.diff import diff_files
from repro.obs.tracing import JsonlTracer
from repro.traces import generate_trace

_PLAN = FaultPlan.parse("loss=0.08,beacon=0.01,seed=11,crash=0@2:5")

#: Wall-clock fields in trace records measure the host, not the
#: protocol; everything else in a record is simulation-determined.
_WALL_FIELDS = ("wall_time", "wall_duration_s")


def _run(
    delivery_backend,
    scenario="Starbucks",
    seed=7,
    queue_backend=None,
    fault_plan=None,
    telemetry=False,
    profiler=False,
    tracer=None,
):
    trace = generate_trace(scenario, seed=seed)
    config = DesRunConfig(
        client_count=3,
        duration_s=6.0,
        fault_plan=fault_plan,
        check_invariants=True,
        telemetry=TelemetryConfig(window="dtim") if telemetry else None,
        profiler=ProfilerConfig() if profiler else None,
        queue_backend=queue_backend,
        delivery_backend=delivery_backend,
    )
    if tracer is None:
        result = run_trace_des(trace, config)
    else:
        result = run_trace_des(trace, config, tracer=tracer)
    result.close()
    return result


def _assert_identical(ref, vec):
    """Full-depth agreement: hash, then the pieces behind the hash."""
    assert ref.medium.delivery_kind == "reference"
    assert vec.medium.delivery_kind == "vectorized"
    assert ref.deterministic_fingerprint() == vec.deterministic_fingerprint()
    assert ref.simulator.events_processed == vec.simulator.events_processed
    assert ref.medium.frames_dropped == vec.medium.frames_dropped
    for r_client, v_client in zip(ref.clients, vec.clients):
        assert r_client.counters == v_client.counters


def _trace_sequence(path):
    """Parsed JSONL trace records with host-clock fields stripped."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            record = json.loads(line)
            for field in _WALL_FIELDS:
                record.pop(field, None)
            records.append(record)
    return records


class TestDeliveryEquivalenceProperty:
    """Hypothesis cross product over scenario x seed x queue backend."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        scenario=st.sampled_from(["Starbucks", "Classroom", "WRL"]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        queue_backend=st.sampled_from([None, "heap", "calendar"]),
    )
    def test_fingerprints_identical(self, scenario, seed, queue_backend):
        ref = _run("reference", scenario, seed, queue_backend)
        vec = _run("vectorized", scenario, seed, queue_backend)
        _assert_identical(ref, vec)

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        loss=st.sampled_from([0.02, 0.08, 0.15]),
        fault_seed=st.integers(min_value=0, max_value=999),
    )
    def test_identical_under_random_fault_plans(self, seed, loss, fault_seed):
        """Loss + beacon loss + crash/rejoin perturb both lanes alike.

        Fault injection exercises the paths deferred accrual gets wrong
        first: drops (the dropped frame must still accrue for no one),
        crash mid-window (detach must settle exactly once), rejoin
        (fresh slot must re-baseline against current epoch totals).
        """
        plan = FaultPlan.parse(
            f"loss={loss},beacon=0.01,seed={fault_seed},crash=0@2:4"
        )
        ref = _run("reference", seed=seed, fault_plan=plan)
        vec = _run("vectorized", seed=seed, fault_plan=plan)
        _assert_identical(ref, vec)


class TestDeliveryEquivalenceObservers:
    """Attached observers must neither diverge nor perturb either lane."""

    def test_prom_and_timeseries_identical(self, tmp_path):
        outputs = {}
        for backend in ("reference", "vectorized"):
            result = _run(backend, fault_plan=_PLAN, telemetry=True)
            prom = tmp_path / f"{backend}.prom"
            write_metrics(
                result.collect_metrics(), str(prom), format_for_path(str(prom))
            )
            series = tmp_path / f"{backend}_timeseries.json"
            assert result.timeseries is not None
            result.timeseries.write(str(series))
            outputs[backend] = (prom, series)

        diff = diff_files(
            str(outputs["reference"][0]),
            str(outputs["vectorized"][0]),
            ignore=("wall",),
        )
        assert diff.ok(), [c for c in diff.changed]
        assert (
            outputs["reference"][1].read_text()
            == outputs["vectorized"][1].read_text()
        )

    def test_trace_event_sequences_identical(self, tmp_path):
        """Same events, same order, same fields — wall clock aside.

        The JSONL tracer sees every wakeup, suspend, and recovery event
        as it happens, so sequence equality is a much stronger claim
        than end-of-run counter equality: the two lanes walk the same
        path, not just reach the same destination.
        """
        sequences = {}
        for backend in ("reference", "vectorized"):
            log = tmp_path / f"{backend}.jsonl"
            tracer = JsonlTracer(str(log))
            try:
                _run(backend, fault_plan=_PLAN, tracer=tracer)
            finally:
                tracer.close()
            sequences[backend] = _trace_sequence(log)
        assert sequences["reference"] == sequences["vectorized"]
        assert sequences["reference"], "tracer captured no events"

    def test_profiler_does_not_perturb_either_backend(self):
        for backend in ("reference", "vectorized"):
            profiled = _run(backend, fault_plan=_PLAN, profiler=True)
            plain = _run(backend, fault_plan=_PLAN, profiler=False)
            assert (
                profiled.deterministic_fingerprint()
                == plain.deterministic_fingerprint()
            )
            report = profiled.profile_report()
            assert report is not None
            sites = {
                f"{site['owner']}.{site['method']}"
                for site in report["sites"]
            }
            drain = (
                "Medium._drain_deliveries_vector"
                if backend == "vectorized"
                else "Medium._drain_deliveries"
            )
            assert drain in sites

    def test_telemetry_does_not_perturb_either_backend(self):
        for backend in ("reference", "vectorized"):
            with_t = _run(backend, fault_plan=_PLAN, telemetry=True)
            without = _run(backend, fault_plan=_PLAN, telemetry=False)
            assert (
                with_t.deterministic_fingerprint()
                == without.deterministic_fingerprint()
            )


class TestDeliveryBackendConfig:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            DesRunConfig(delivery_backend="simd")

    def test_default_is_vectorized(self):
        result = _run(None)
        assert result.medium.delivery_kind == "vectorized"
        assert result.medium.radio_array is not None

    def test_reference_lane_has_no_radio_array(self):
        result = _run("reference")
        assert result.medium.radio_array is None
