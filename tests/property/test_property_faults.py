"""Seed-sweep property: invariants hold under injected loss, always.

50 seeds x loss rates {0, 0.01, 0.1}, each replayed through the full
DES with the invariant suite armed. Two properties must hold for every
single (seed, rate) cell:

* zero invariant violations — recovery keeps the protocol correct under
  loss, it only pays energy;
* delivery degrades no faster than the injected loss — every broadcast
  frame that failed to arrive is accounted to the injector, so the
  protocol itself loses nothing.

A failing cell reports its seed so the exact run can be replayed with
``FaultPlan.uniform(rate, seed=seed)``.
"""

import pytest

from repro.experiments.des_run import DesRunConfig, run_trace_des
from repro.faults import FaultPlan
from repro.sim.invariants import InvariantViolation
from repro.traces.generators import generate_trace

SEEDS = range(50)
LOSS_RATES = (0.0, 0.01, 0.10)

#: Short but non-trivial: enough DTIM cycles for reports, bursts, and
#: retransmissions to interleave, small enough that the full 150-cell
#: sweep stays in CI budget.
SWEEP_DURATION_S = 4.0


def _sweep_run(seed: int, rate: float):
    trace = generate_trace("Starbucks", seed=seed)
    plan = FaultPlan.uniform(rate, seed=seed)
    return run_trace_des(
        trace,
        DesRunConfig(
            duration_s=SWEEP_DURATION_S,
            client_count=2,
            check_invariants=True,
            fault_plan=plan,
        ),
    )


@pytest.mark.sweep
@pytest.mark.parametrize("rate", LOSS_RATES)
def test_seed_sweep_invariants_hold(rate):
    failing = []
    for seed in SEEDS:
        try:
            result = _sweep_run(seed, rate)
        except InvariantViolation as exc:
            failing.append((seed, str(exc)))
            continue
        suite = result.invariants
        leftover = suite.violations()
        if leftover:
            failing.append((seed, [str(v) for v in leftover]))
            continue
        # Conservation: the only undelivered broadcast frames are the
        # injector's, so the delivery ratio cannot degrade faster than
        # the injected loss itself.
        injected = (
            result.fault_injector.injected_drops
            if result.fault_injector is not None
            else 0
        )
        if suite.broadcast_frames_dropped > injected:
            failing.append(
                (seed, f"{suite.broadcast_frames_dropped} broadcast drops "
                       f"but only {injected} injected")
            )
            continue
        if rate == 0.0:
            assert result.fault_injector is None  # null plan is identity
            if suite.broadcast_frames_dropped != 0:
                failing.append((seed, "drops without any injected loss"))
                continue
        missed = sum(c.counters.useful_frames_missed for c in result.clients)
        if missed:
            failing.append((seed, f"{missed} useful frames missed"))
    assert not failing, (
        f"loss={rate}: {len(failing)} failing seed(s): {failing[:5]}"
    )


def test_sweep_actually_injects_at_ten_percent():
    """Guard against the sweep silently testing a lossless channel."""
    drops = sum(
        _sweep_run(seed, 0.10).fault_injector.injected_drops
        for seed in range(10)
    )
    assert drops > 0
