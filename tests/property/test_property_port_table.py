"""Model-based testing: the Client UDP Port Table vs a reference model.

Hypothesis drives random sequences of update/remove operations against
both the real table and a trivially-correct dict-of-sets reference; all
queries must agree at every step. This is the strongest guarantee
available that Algorithm 1's lookups always see exactly the reported
state.
"""

from typing import Dict, FrozenSet, Set

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ap.port_table import ClientUdpPortTable

AIDS = st.integers(min_value=1, max_value=8)
# The table rejects zero-length port sets (a typed PortTableError), so
# updates always carry at least one port; removal is its own operation.
PORTS = st.sets(st.integers(min_value=1, max_value=30), min_size=1, max_size=6)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("update"), AIDS, PORTS),
        st.tuples(st.just("remove"), AIDS, st.just(frozenset())),
    ),
    max_size=40,
)


class ReferenceModel:
    """The obviously-correct implementation."""

    def __init__(self) -> None:
        self.ports_by_aid: Dict[int, FrozenSet[int]] = {}

    def update(self, aid: int, ports: FrozenSet[int]) -> None:
        if ports:
            self.ports_by_aid[aid] = frozenset(ports)
        else:
            self.ports_by_aid.pop(aid, None)

    def remove(self, aid: int) -> None:
        self.ports_by_aid.pop(aid, None)

    def clients_for_port(self, port: int) -> FrozenSet[int]:
        return frozenset(
            aid for aid, ports in self.ports_by_aid.items() if port in ports
        )

    def pair_count(self) -> int:
        return sum(len(ports) for ports in self.ports_by_aid.values())


class TestAgainstReference:
    @given(operations)
    @settings(max_examples=120)
    def test_every_query_agrees(self, ops):
        table = ClientUdpPortTable()
        model = ReferenceModel()
        for action, aid, ports in ops:
            if action == "update":
                table.update_client(aid, ports)
                model.update(aid, frozenset(ports))
            else:
                table.remove_client(aid)
                model.remove(aid)
            # Full-state agreement after every operation.
            for port in range(1, 31):
                assert table.clients_for_port(port) == model.clients_for_port(
                    port
                ), f"port {port} disagrees after {action}({aid})"
            for check_aid in range(1, 9):
                assert table.ports_for_client(check_aid) == model.ports_by_aid.get(
                    check_aid, frozenset()
                )
            assert len(table) == model.pair_count()
            assert table.client_count == len(model.ports_by_aid)

    @given(operations)
    @settings(max_examples=60)
    def test_algorithm1_consistency(self, ops):
        """compute_broadcast_flags over synthetic frames must equal the
        union of the reference's per-port listeners."""
        from repro.ap.flags import compute_broadcast_flags
        from repro.dot11.data import DataFrame
        from repro.dot11.mac_address import MacAddress
        from repro.net.packet import build_broadcast_udp_packet

        table = ClientUdpPortTable()
        model = ReferenceModel()
        for action, aid, ports in ops:
            if action == "update":
                table.update_client(aid, ports)
                model.update(aid, frozenset(ports))
            else:
                table.remove_client(aid)
                model.remove(aid)

        bssid = MacAddress.from_string("02:aa:00:00:00:01")
        src = MacAddress.from_string("02:bb:00:00:00:99")
        buffered_ports = [1, 5, 12, 30]
        frames = [
            DataFrame.broadcast_udp(
                bssid=bssid, source=src,
                ip_packet=build_broadcast_udp_packet(port, b"x"),
            )
            for port in buffered_ports
        ]
        flags = compute_broadcast_flags(frames, table)
        expected: Set[int] = set()
        for port in buffered_ports:
            expected |= model.clients_for_port(port)
        assert flags == frozenset(expected)
