"""Property tests of the DES kernel's ordering guarantees."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator


class TestEventOrdering:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=60)
    def test_events_fire_in_time_order(self, delays):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append((sim.now, d)))
        sim.run()
        times = [t for t, _ in fired]
        assert times == sorted(times)
        assert len(fired) == len(delays)
        for fire_time, delay in fired:
            assert fire_time == delay

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                st.integers(min_value=-3, max_value=3),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60)
    def test_priority_order_within_equal_times(self, events):
        sim = Simulator()
        fired = []
        for index, (time, priority) in enumerate(events):
            sim.schedule(
                time,
                lambda t=time, p=priority, i=index: fired.append((t, p, i)),
                priority=priority,
            )
        sim.run()
        # Within one timestamp, events fire by (priority, insertion).
        for a, b in zip(fired, fired[1:]):
            if a[0] == b[0]:
                assert (a[1], a[2]) <= (b[1], b[2])

    @given(
        st.lists(
            st.floats(min_value=0.001, max_value=5.0, allow_nan=False),
            min_size=1,
            max_size=20,
        ),
        st.sets(st.integers(min_value=0, max_value=19)),
    )
    @settings(max_examples=60)
    def test_cancelled_events_never_fire(self, delays, cancel_indices):
        sim = Simulator()
        fired = []
        handles = [
            sim.schedule(delay, lambda i=i: fired.append(i))
            for i, delay in enumerate(delays)
        ]
        for index in cancel_indices:
            if index < len(handles):
                handles[index].cancel()
        sim.run()
        cancelled = {i for i in cancel_indices if i < len(delays)}
        assert set(fired) == set(range(len(delays))) - cancelled

    @given(st.lists(st.floats(min_value=0.0, max_value=10.0), max_size=20))
    @settings(max_examples=40)
    def test_clock_never_goes_backwards(self, delays):
        sim = Simulator()
        observed = []
        for delay in delays:
            sim.schedule(delay, lambda: observed.append(sim.now))
        sim.run()
        assert observed == sorted(observed)
