"""Bit-identity and fault-robustness of the frame-lifecycle ledger.

The ledger rides the same observer seams as the rest of the
observability stack, so it inherits the same two contracts: it must
report *bit-identical* documents whichever delivery lane or event-queue
backend ran the simulation (the quantiles are pure functions of bucket
counts, so `json.dumps` equality is achievable, not just approximate),
and attaching it must not perturb the deterministic fingerprint at all.
Fault plans then probe the accounting itself: beacon loss starves
clients of BTIMs but the AP still airs every buffered frame at DTIM, so
the ledger must show zero frames lost; bounded clock jitter only ever
*adds* to a delivery time, so delay tails may lengthen but never
shrink.
"""

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments.des_run import DesRunConfig, run_trace_des
from repro.faults import FaultPlan
from repro.traces import generate_trace

_PLAN = FaultPlan.parse("loss=0.08,beacon=0.01,seed=11,crash=0@2:5")


def _run(
    delivery_backend,
    scenario="Starbucks",
    seed=7,
    queue_backend=None,
    fault_plan=None,
    ledger=True,
):
    trace = generate_trace(scenario, seed=seed)
    config = DesRunConfig(
        client_count=3,
        duration_s=6.0,
        fault_plan=fault_plan,
        check_invariants=True,
        queue_backend=queue_backend,
        delivery_backend=delivery_backend,
        ledger=ledger,
    )
    result = run_trace_des(trace, config)
    result.close()
    return result


def _document_bytes(result):
    return json.dumps(result.ledger_document(), sort_keys=True)


class TestLedgerLaneEquivalence:
    """Hypothesis cross product over scenario x seed x queue backend."""

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        scenario=st.sampled_from(["Starbucks", "Classroom", "WRL"]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        queue_backend=st.sampled_from([None, "heap", "calendar"]),
    )
    def test_documents_bit_identical_across_lanes(
        self, scenario, seed, queue_backend
    ):
        ref = _run("reference", scenario, seed, queue_backend)
        vec = _run("vectorized", scenario, seed, queue_backend)
        assert ref.medium.delivery_kind == "reference"
        assert vec.medium.delivery_kind == "vectorized"
        assert _document_bytes(ref) == _document_bytes(vec)
        assert ref.deterministic_fingerprint() == vec.deterministic_fingerprint()

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        backend=st.sampled_from(["reference", "vectorized"]),
    )
    def test_ledger_never_perturbs_the_fingerprint(self, seed, backend):
        with_ledger = _run(backend, seed=seed, ledger=True)
        without = _run(backend, seed=seed, ledger=False)
        assert (
            with_ledger.deterministic_fingerprint()
            == without.deterministic_fingerprint()
        )
        assert without.ledger is None

    def test_documents_identical_under_a_mixed_fault_plan(self):
        """Loss + beacon loss + crash/rejoin perturb both lanes alike."""
        ref = _run("reference", fault_plan=_PLAN)
        vec = _run("vectorized", fault_plan=_PLAN)
        assert _document_bytes(ref) == _document_bytes(vec)


class TestLedgerUnderFaults:
    """Fault plans stress the accounting, not just the equivalence."""

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        beacon_loss=st.sampled_from([0.1, 0.3, 0.6]),
        fault_seed=st.integers(min_value=0, max_value=999),
    )
    def test_beacon_loss_never_loses_frames(
        self, seed, beacon_loss, fault_seed
    ):
        """The AP airs every buffered frame at DTIM whether or not any
        client heard the beacon: beacon loss shifts client wake energy,
        but the frame ledger must balance with zero drops."""
        plan = FaultPlan.parse(f"beacon={beacon_loss},seed={fault_seed}")
        result = _run(None, scenario="Classroom", seed=seed, fault_plan=plan)
        ledger = result.ledger
        assert ledger.frames_dropped_on_air == 0
        assert ledger.frames_buffer_dropped == 0
        assert (
            ledger.frames_enqueued + ledger.frames_immediate
            == ledger.frames_delivered + ledger.frames_outstanding
        )

    def test_beacon_loss_leaves_delivery_delays_untouched(self):
        """Delivery timing is AP-side (enqueue -> DTIM drain -> air), so
        a client missing the beacon cannot change it."""
        plan = FaultPlan.parse("beacon=0.3,seed=5")
        base = _run(None, scenario="Classroom").ledger
        lossy = _run(None, scenario="Classroom", fault_plan=plan).ledger
        assert (
            lossy.merged_delivery_delay().sum
            == base.merged_delivery_delay().sum
        )
        assert lossy.frames_delivered == base.frames_delivered

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        fault_seed=st.integers(min_value=0, max_value=999),
    )
    def test_jitter_only_ever_lengthens_delay_tails(self, seed, fault_seed):
        """delivery_jitter_s() is uniform over [0, jitter]: it can only
        push a delivery later, so the sum and max of the delay
        distribution are monotone in the plan — and no frame is lost."""
        plan = FaultPlan.parse(f"jitter=1e-4,seed={fault_seed}")
        base = _run(None, scenario="Classroom", seed=seed).ledger
        jittered = _run(
            None, scenario="Classroom", seed=seed, fault_plan=plan
        ).ledger
        base_delay = base.merged_delivery_delay()
        jit_delay = jittered.merged_delivery_delay()
        assert jit_delay.count == base_delay.count
        assert jit_delay.sum >= base_delay.sum
        if base_delay.count:
            assert jit_delay.max >= base_delay.max
        assert jittered.frames_dropped_on_air == 0

    def test_jitter_strictly_lengthens_for_a_busy_seed(self):
        plan = FaultPlan.parse("jitter=1e-4,seed=5")
        base = _run(None, scenario="Classroom", seed=7).ledger
        jittered = _run(
            None, scenario="Classroom", seed=7, fault_plan=plan
        ).ledger
        assert (
            jittered.merged_delivery_delay().sum
            > base.merged_delivery_delay().sum
        )
