"""Property-based tests of the energy model's core invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.dynamics import FrameEvent, derive_frame_dynamics
from repro.energy.model import EnergyModel
from repro.energy.profile import GALAXY_S4, NEXUS_ONE
from repro.energy.timeline import build_timeline
from repro.station.power import PowerState
from repro.units import mbps

TAU = NEXUS_ONE.wakelock_timeout_s
TRM = NEXUS_ONE.resume_duration_s
TSP = NEXUS_ONE.suspend_duration_s


@st.composite
def frame_sequences(draw, max_frames=30):
    """Sorted frame arrival sequences with mixed gaps and usefulness."""
    gaps = draw(
        st.lists(
            st.floats(min_value=1e-4, max_value=5.0, allow_nan=False),
            min_size=1,
            max_size=max_frames,
        )
    )
    useful = draw(
        st.lists(st.booleans(), min_size=len(gaps), max_size=len(gaps))
    )
    frames = []
    time = 0.0
    for gap, is_useful in zip(gaps, useful):
        time += gap
        frames.append(
            FrameEvent(
                time=time,
                length_bytes=draw(st.integers(min_value=64, max_value=1500)),
                rate_bps=draw(st.sampled_from([mbps(1), mbps(2), mbps(5.5)])),
                useful=is_useful,
                more_data=draw(st.booleans()),
            )
        )
    return frames


def derive(frames, wakelock_for_frame=None):
    return derive_frame_dynamics(frames, TAU, TRM, TSP, wakelock_for_frame)


class TestDynamicsInvariants:
    @given(frame_sequences())
    @settings(max_examples=80)
    def test_wakelock_starts_nondecreasing(self, frames):
        dynamics = derive(frames)
        starts = [d.wakelock_start for d in dynamics]
        assert starts == sorted(starts)

    @given(frame_sequences())
    @settings(max_examples=80)
    def test_coverage_bounded_by_per_frame_tau(self, frames):
        dynamics = derive(frames)
        for dyn in dynamics:
            assert 0.0 <= dyn.coverage_increment <= dyn.wakelock_timeout + 1e-12

    @given(frame_sequences())
    @settings(max_examples=80)
    def test_aborted_fraction_in_unit_interval(self, frames):
        for dyn in derive(frames):
            assert 0.0 <= dyn.aborted_suspend_fraction <= 1.0

    @given(frame_sequences())
    @settings(max_examples=80)
    def test_first_frame_always_suspended(self, frames):
        assert derive(frames)[0].suspended_on_arrival

    @given(frame_sequences())
    @settings(max_examples=80)
    def test_suspended_arrivals_never_abort(self, frames):
        for dyn in derive(frames):
            if dyn.suspended_on_arrival:
                assert dyn.aborted_suspend_fraction == 0.0

    @given(frame_sequences())
    @settings(max_examples=60)
    def test_client_side_coverage_never_exceeds_uniform(self, frames):
        uniform = sum(d.coverage_increment for d in derive(frames))
        filtered = sum(
            d.coverage_increment
            for d in derive(
                frames, wakelock_for_frame=lambda e: TAU if e.useful else 0.0
            )
        )
        assert filtered <= uniform + 1e-9


class TestTimelineInvariants:
    @given(frame_sequences())
    @settings(max_examples=60)
    def test_timeline_covers_window_exactly(self, frames):
        duration = frames[-1].time + 10.0
        timeline = build_timeline(derive(frames), NEXUS_ONE, duration)
        total = sum(s.duration for s in timeline.segments)
        assert total == pytest.approx(duration, abs=1e-6)

    @given(frame_sequences())
    @settings(max_examples=60)
    def test_active_time_equals_closed_form_wakelock(self, frames):
        duration = frames[-1].time + 10.0
        dynamics = derive(frames)
        timeline = build_timeline(dynamics, NEXUS_ONE, duration)
        assert timeline.time_in_state(PowerState.ACTIVE) == pytest.approx(
            sum(d.coverage_increment for d in dynamics), abs=1e-9
        )

    @given(frame_sequences())
    @settings(max_examples=60)
    def test_resume_segments_equal_suspended_arrivals(self, frames):
        duration = frames[-1].time + 10.0
        dynamics = derive(frames)
        timeline = build_timeline(dynamics, NEXUS_ONE, duration)
        assert timeline.count_segments(PowerState.RESUMING) == sum(
            1 for d in dynamics if d.suspended_on_arrival
        )

    @given(frame_sequences())
    @settings(max_examples=60)
    def test_suspend_fraction_in_unit_interval(self, frames):
        duration = frames[-1].time + 10.0
        timeline = build_timeline(derive(frames), NEXUS_ONE, duration)
        assert 0.0 <= timeline.suspend_fraction <= 1.0


class TestModelInvariants:
    @given(frame_sequences())
    @settings(max_examples=40)
    def test_all_components_non_negative(self, frames):
        model = EnergyModel(NEXUS_ONE)
        duration = frames[-1].time + 5.0
        breakdown = model.evaluate(frames, duration)
        assert breakdown.beacon_j >= 0
        assert breakdown.receive_j >= 0
        assert breakdown.state_transfer_j >= 0
        assert breakdown.wakelock_j >= 0
        assert breakdown.overhead_j == 0

    @given(frame_sequences())
    @settings(max_examples=40)
    def test_filtering_monotone(self, frames):
        """Receiving a subsequence never costs more than the full set
        (with uniform tau) — HIDE's fundamental premise.

        Holds exactly for the activity-driven terms (receive, state
        transfer, wakelock). The Eq. 9 idle-listening term is excluded
        by zeroing P_idle: it bills the beacon-to-first-frame wait, and
        removing an early useless frame can lengthen that wait, so the
        full total is not strictly monotone under subsequence removal.
        """
        model = EnergyModel(NEXUS_ONE.with_overrides(idle_power_w=0.0))
        duration = frames[-1].time + 5.0
        useful_only = [f for f in frames if f.useful]
        full = model.evaluate(frames, duration)
        filtered = model.evaluate(useful_only, duration)
        assert filtered.total_j <= full.total_j + 1e-9

    @given(frame_sequences())
    @settings(max_examples=40)
    def test_s4_never_cheaper_than_n1_on_transitions(self, frames):
        n1 = EnergyModel(NEXUS_ONE)
        s4 = EnergyModel(GALAXY_S4)
        n1_est = n1.state_transfer_energy(n1.derive_dynamics(frames))
        s4_est = s4.state_transfer_energy(s4.derive_dynamics(frames))
        assert s4_est >= n1_est
