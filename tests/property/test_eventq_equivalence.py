"""Differential tests: heap and calendar queues are observably identical.

Two layers:

* queue level — random push/cancel mixes drained through the run-loop
  contract (``near`` + ``advance``) must pop in identical order on both
  backends, including exact ties, bucket-edge times, and far-future
  overflow timers;
* simulator level — random command tapes (schedule / schedule_at /
  cancel / recurring / run-in-segments) replayed on a heap-backed and a
  calendar-backed :class:`~repro.sim.engine.Simulator` must produce
  identical firing logs, clocks, and counter quadruples.

These are the proofs-by-adversary behind swapping the default backend:
any schedule the two queues disagree on is a shrunken counterexample,
not a flaky fleet run.
"""

import math
from heapq import heappop

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.eventq import (
    DEFAULT_BUCKET_WIDTH_S,
    CalendarEventQueue,
    HeapEventQueue,
    make_queue,
)

_INF = float("inf")

#: Times that live exactly on calendar-queue seams: bucket edges, the
#: first window, one rotation out, and far-future overflow territory.
_SEAM_TIMES = [
    0.0,
    DEFAULT_BUCKET_WIDTH_S,
    DEFAULT_BUCKET_WIDTH_S * 0.999999,
    DEFAULT_BUCKET_WIDTH_S * 255,
    DEFAULT_BUCKET_WIDTH_S * 256,
    DEFAULT_BUCKET_WIDTH_S * 257,
    math.nextafter(DEFAULT_BUCKET_WIDTH_S * 256, 0.0),
    1_000.0,
    86_400.0,
]

_time_strategy = st.one_of(
    st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
    st.sampled_from(_SEAM_TIMES),
    # DTIM-periodic mix: multiples of the beacon interval.
    st.integers(min_value=0, max_value=600).map(lambda k: k * 0.1024),
)


def _drain(queue, records):
    """Pop every live record through the run-loop contract."""
    for record in records:
        queue.push(record)
    order = []
    near = queue.near
    while True:
        while near:
            record = heappop(near)
            if record[4]:
                continue
            order.append(tuple(record[:3]))
        if queue.advance(_INF) is None:
            return order


class TestQueueDifferential:
    @given(
        st.lists(
            st.tuples(
                _time_strategy,
                st.integers(min_value=-2, max_value=2),
                st.booleans(),
            ),
            max_size=80,
        )
    )
    @settings(max_examples=120)
    def test_pop_order_identical(self, entries):
        def build(cancelled_flags_shared):
            return [
                [time, priority, seq, None, cancelled, None]
                for seq, (time, priority, cancelled) in enumerate(entries)
            ]

        heap_order = _drain(HeapEventQueue(), build(entries))
        calendar_order = _drain(CalendarEventQueue(), build(entries))
        assert heap_order == calendar_order
        live = sum(1 for _, _, cancelled in entries if not cancelled)
        assert len(heap_order) == live
        times = [time for time, _, _ in heap_order]
        assert times == sorted(times)

    @given(
        st.lists(_time_strategy, max_size=60),
        st.integers(min_value=2, max_value=32),
        st.floats(min_value=1e-4, max_value=2.0, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_tuned_calendar_matches_heap(self, times, buckets, width):
        records = [[t, 0, seq, None, False, None] for seq, t in enumerate(times)]
        clones = [list(r) for r in records]
        heap_order = _drain(HeapEventQueue(), records)
        tuned = CalendarEventQueue(bucket_width_s=width, num_buckets=buckets)
        assert _drain(tuned, clones) == heap_order

    def test_depth_counts_tombstones(self):
        for queue in (HeapEventQueue(), CalendarEventQueue()):
            queue.push([0.5, 0, 0, None, False, None])
            queue.push([990.0, 0, 1, None, True, None])
            assert queue.depth() == 2

    def test_non_finite_times_rejected(self):
        for queue in (HeapEventQueue(), CalendarEventQueue()):
            for bad in (_INF, float("nan")):
                with pytest.raises(SimulationError):
                    queue.push([bad, 0, 0, None, False, None])

    def test_make_queue_round_trip(self):
        assert make_queue("heap").kind == "heap"
        assert make_queue("calendar").kind == "calendar"
        assert make_queue(None).kind in ("heap", "calendar")
        tuned = CalendarEventQueue(num_buckets=8)
        assert make_queue(tuned) is tuned
        with pytest.raises(SimulationError):
            make_queue("fibonacci")


# Simulator-level command tapes. Each command is interpreted the same
# way on both simulators; handles are tracked by index so cancels hit
# the same event on each side.
_command_strategy = st.one_of(
    st.tuples(
        st.just("schedule"),
        st.floats(min_value=0.0, max_value=25.0, allow_nan=False),
        st.integers(min_value=-2, max_value=2),
    ),
    st.tuples(st.just("schedule_seam"), st.sampled_from(_SEAM_TIMES), st.just(0)),
    st.tuples(
        st.just("every"),
        st.floats(min_value=0.05, max_value=3.0, allow_nan=False),
        st.integers(min_value=-1, max_value=1),
    ),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=200), st.just(0)),
    st.tuples(
        st.just("run_until"),
        st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
        st.just(0),
    ),
)


def _replay(kind, commands):
    sim = Simulator(queue=kind)
    fired = []
    handles = []

    def make_callback(tag):
        def callback():
            fired.append((tag, sim.now))

        return callback

    horizon = 0.0
    for index, (op, value, priority) in enumerate(commands):
        if op == "schedule":
            handles.append(sim.schedule(value, make_callback(index), priority))
        elif op == "schedule_seam":
            target = sim.now + value
            handles.append(sim.schedule_at(target, make_callback(index), priority))
        elif op == "every":
            handles.append(sim.every(value, make_callback(index), priority))
        elif op == "cancel":
            if handles:
                handles[value % len(handles)].cancel()
        elif op == "run_until":
            horizon += value
            sim.run(until=horizon, max_events=50_000)
    sim.run(until=horizon + 40.0, max_events=50_000)
    for handle in handles:
        handle.cancel()
    sim.run(until=horizon + 41.0, max_events=50_000)
    return fired, (
        sim.now,
        sim.events_processed,
        sim.events_cancelled,
        sim.pending_events,
        sim.queue_depth,
    )


class TestSimulatorDifferential:
    @given(st.lists(_command_strategy, max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_command_tapes_equivalent(self, commands):
        heap_fired, heap_state = _replay("heap", commands)
        calendar_fired, calendar_state = _replay("calendar", commands)
        assert heap_fired == calendar_fired
        assert heap_state == calendar_state

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=30, deadline=None)
    def test_dtim_periodic_mix(self, dtim_period, timers):
        """Beacon/DTIM periodic timers plus far-future TTLs, segmented."""

        def replay(kind):
            sim = Simulator(queue=kind)
            fired = []
            for k in range(timers):
                sim.every(
                    0.1024 * (1 + k % dtim_period),
                    lambda k=k: fired.append((k, sim.now)),
                    first_delay_s=0.0512 * k,
                )
            for k in range(timers):
                sim.post(3600.0 + k, lambda k=k: fired.append(("ttl", k)))
            for segment in range(1, 5):
                sim.run(until=segment * 1.5)
            return fired, sim.pending_events, sim.queue_depth

        assert replay("heap") == replay("calendar")
