"""BTIM (ID 201) partial-virtual-bitmap round-trip over the full AID
space.

Hypothesis drives random AID sets across 1..2007 (including adversarial
shapes: empty, a single maximal AID, dense low ranges) through
encode -> decode; the set must survive exactly. The bitmap offset
compression is the part most likely to corrupt sparse high-AID sets,
so the strategies bias toward the extremes.
"""

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.dot11 import pvb
from repro.dot11.elements.btim import BtimElement

aid_sets = st.sets(
    st.integers(min_value=1, max_value=pvb.MAX_AID), max_size=64
)

# Sparse-high sets: few AIDs clustered at the top of the space, where
# the offset compression does the most work.
high_aid_sets = st.sets(
    st.integers(min_value=pvb.MAX_AID - 32, max_value=pvb.MAX_AID), max_size=8
)


class TestBtimRoundTrip:
    @given(aid_sets)
    @settings(max_examples=200)
    @example(set())                      # all-zero bitmap
    @example({pvb.MAX_AID})              # single highest AID
    @example({1})                        # single lowest AID
    @example({1, pvb.MAX_AID})           # both extremes at once
    @example(set(range(1, 65)))          # dense low block
    def test_payload_round_trip(self, aids):
        element = BtimElement.from_aids(aids)
        decoded = BtimElement.from_payload(element.payload_bytes())
        assert decoded.aids_with_useful_broadcast == frozenset(aids)

    @given(high_aid_sets)
    @settings(max_examples=100)
    def test_sparse_high_aids_round_trip(self, aids):
        element = BtimElement.from_aids(aids)
        decoded = BtimElement.from_payload(element.payload_bytes())
        assert decoded.aids_with_useful_broadcast == frozenset(aids)

    @given(aid_sets)
    @settings(max_examples=100)
    def test_membership_queries_survive_the_wire(self, aids):
        decoded = BtimElement.from_payload(
            BtimElement.from_aids(aids).payload_bytes()
        )
        for aid in aids:
            assert decoded.indicates_useful_broadcast_for(aid)
        for probe in (1, pvb.MAX_AID // 2, pvb.MAX_AID):
            assert decoded.indicates_useful_broadcast_for(probe) == (
                probe in aids
            )

    @given(high_aid_sets)
    @settings(max_examples=50)
    def test_offset_compression_shrinks_high_sets(self, aids):
        """Sanity on the mechanism itself: a set clustered at the top
        must not serialize the ~250 leading zero bytes."""
        payload = BtimElement.from_aids(aids).payload_bytes()
        if aids:
            assert len(payload) < 40
