"""Property tests: trace generation and solution-level invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.profile import NEXUS_ONE
from repro.solutions import (
    ClientSideSolution,
    HideRealisticSolution,
    HideSolution,
    ReceiveAllSolution,
)
from repro.traces.generators import TraceGenerator
from repro.traces.scenarios import ScenarioSpec
from repro.traces.usefulness import (
    clustered_fraction_mask,
    random_fraction_mask,
    spread_fraction_mask,
)


@st.composite
def scenario_specs(draw):
    return ScenarioSpec(
        name="prop",
        duration_s=draw(st.floats(min_value=30.0, max_value=120.0)),
        quiet_rate_fps=draw(st.floats(min_value=0.0, max_value=3.0)),
        burst_rate_fps=draw(st.floats(min_value=1.0, max_value=60.0)),
        quiet_dwell_s=draw(st.floats(min_value=0.5, max_value=30.0)),
        burst_dwell_s=draw(st.floats(min_value=0.1, max_value=8.0)),
        seed=draw(st.integers(min_value=0, max_value=10_000)),
    )


class TestGeneratorInvariants:
    @given(scenario_specs())
    @settings(max_examples=25, deadline=None)
    def test_records_sorted_and_bounded(self, spec):
        trace = TraceGenerator(spec).generate()
        times = [r.time for r in trace]
        assert times == sorted(times)
        assert all(0 <= t < spec.duration_s for t in times)

    @given(scenario_specs())
    @settings(max_examples=25, deadline=None)
    def test_burst_more_data_structure(self, spec):
        # Within a back-to-back burst every frame except the last has
        # more_data set; a frame with more_data=False is a burst end.
        trace = TraceGenerator(spec).generate()
        records = list(trace)
        for earlier, later in zip(records, records[1:]):
            if earlier.more_data:
                # Next frame follows within the same service window
                # (burst frames are SIFS-separated, far below 50 ms).
                assert later.time - earlier.time < 0.05

    @given(scenario_specs())
    @settings(max_examples=25, deadline=None)
    def test_offered_time_never_after_air_time(self, spec):
        trace = TraceGenerator(spec).generate()
        for record in trace:
            assert record.offered_time is not None
            assert record.offered_time <= record.time

    @given(scenario_specs())
    @settings(max_examples=10, deadline=None)
    def test_same_seed_same_trace(self, spec):
        a = TraceGenerator(spec).generate()
        b = TraceGenerator(spec).generate()
        assert a.records == b.records


class TestMaskInvariants:
    @given(
        scenario_specs(),
        st.floats(min_value=0.0, max_value=0.5),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=20, deadline=None)
    def test_masks_have_trace_length(self, spec, fraction, seed):
        trace = TraceGenerator(spec).generate()
        for strategy in (
            lambda: spread_fraction_mask(trace, fraction),
            lambda: random_fraction_mask(trace, fraction, seed=seed),
            lambda: clustered_fraction_mask(trace, fraction, seed=seed),
        ):
            assignment = strategy()
            assert len(assignment.mask) == len(trace)
            assert 0.0 <= assignment.achieved_fraction <= 1.0

    @given(
        scenario_specs(),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=15, deadline=None)
    def test_clustered_masks_nested_across_fractions(self, spec, seed):
        trace = TraceGenerator(spec).generate()
        small = clustered_fraction_mask(trace, 0.02, seed=seed).mask
        large = clustered_fraction_mask(trace, 0.10, seed=seed).mask
        assert all(not s or l for s, l in zip(small, large))


class TestSolutionInvariants:
    @given(
        scenario_specs(),
        st.floats(min_value=0.01, max_value=0.3),
        st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=15, deadline=None)
    def test_hide_never_worse_than_receive_all(self, spec, fraction, seed):
        # With self-consistent more-data bits, HIDE's premise is an
        # invariant at ANY useful fraction. (The paper-faithful
        # "original" mode carries an Eq. 10 idle-listening artifact that
        # can break this above ~15% useful — see HideSolution's
        # docstring and bench_ablation_more_data.py.)
        trace = TraceGenerator(spec).generate()
        if len(trace) == 0:
            return
        mask = random_fraction_mask(trace, fraction, seed=seed)
        receive_all = ReceiveAllSolution().evaluate(trace, mask, NEXUS_ONE)
        hide = HideSolution(more_data_mode="recomputed").evaluate(
            trace, mask, NEXUS_ONE
        )
        # Allow the tiny E_o overhead margin on near-empty traces.
        assert hide.breakdown.total_j <= receive_all.breakdown.total_j + 0.5

    @given(
        scenario_specs(),
        st.floats(min_value=0.01, max_value=0.3),
    )
    @settings(max_examples=15, deadline=None)
    def test_client_side_wakelock_never_exceeds_receive_all(self, spec, fraction):
        trace = TraceGenerator(spec).generate()
        if len(trace) == 0:
            return
        mask = random_fraction_mask(trace, fraction, seed=3)
        receive_all = ReceiveAllSolution().evaluate(trace, mask, NEXUS_ONE)
        client_side = ClientSideSolution().evaluate(trace, mask, NEXUS_ONE)
        assert (
            client_side.breakdown.wakelock_j
            <= receive_all.breakdown.wakelock_j + 1e-9
        )

    @given(scenario_specs())
    @settings(max_examples=10, deadline=None)
    def test_realistic_reception_bounded(self, spec):
        trace = TraceGenerator(spec).generate()
        if len(trace) == 0:
            return
        mask = random_fraction_mask(trace, 0.1, seed=5)
        ideal = HideSolution().evaluate(trace, mask, NEXUS_ONE)
        realistic = HideRealisticSolution().evaluate(trace, mask, NEXUS_ONE)
        assert (
            ideal.received_frames
            <= realistic.received_frames
            <= len(trace)
        )
