"""Fuzz robustness: parsers must reject garbage, never crash.

Every ``from_bytes`` in the frame substrate is fed random bytes and
mutated/truncated valid frames. The contract: return a valid frame or
raise :class:`FrameDecodeError` — no other exception may escape.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dot11.association_frames import AssociationRequest, AssociationResponse
from repro.dot11.control import Ack, PsPoll
from repro.dot11.data import DataFrame
from repro.dot11.elements.btim import BtimElement
from repro.dot11.elements.open_udp_ports import OpenUdpPortsElement
from repro.dot11.elements.tim import TimElement
from repro.dot11.information_element import parse_elements
from repro.dot11.management import Beacon, UdpPortMessage
from repro.dot11.mac_address import MacAddress
from repro.errors import FrameDecodeError
from repro.net.ipv4 import Ipv4Header
from repro.net.packet import build_broadcast_udp_packet, extract_udp_dst_port

PARSERS = (
    Beacon.from_bytes,
    UdpPortMessage.from_bytes,
    Ack.from_bytes,
    PsPoll.from_bytes,
    DataFrame.from_bytes,
    AssociationRequest.from_bytes,
    AssociationResponse.from_bytes,
)

ELEMENT_PARSERS = (
    TimElement.from_payload,
    BtimElement.from_payload,
    OpenUdpPortsElement.from_payload,
)


def make_valid_beacon() -> bytes:
    return Beacon(
        bssid=MacAddress.station(0),
        timestamp_us=100,
        beacon_interval_tu=100,
        tim=TimElement(0, 1, True, frozenset({3})),
        btim=BtimElement(frozenset({3})),
    ).to_bytes()


class TestRandomBytes:
    @given(st.binary(max_size=300))
    @settings(max_examples=150)
    def test_frame_parsers_raise_cleanly(self, data):
        for parser in PARSERS:
            try:
                parser(data)
            except FrameDecodeError:
                pass  # the only acceptable failure

    @given(st.binary(max_size=260))
    @settings(max_examples=150)
    def test_element_parsers_raise_cleanly(self, data):
        for parser in ELEMENT_PARSERS:
            try:
                parser(data)
            except FrameDecodeError:
                pass

    @given(st.binary(max_size=300))
    @settings(max_examples=100)
    def test_element_stream_parser(self, data):
        try:
            parse_elements(data)
        except FrameDecodeError:
            pass

    @given(st.binary(max_size=100))
    @settings(max_examples=100)
    def test_ip_parsers(self, data):
        try:
            Ipv4Header.from_bytes(data)
        except FrameDecodeError:
            pass
        try:
            extract_udp_dst_port(data)
        except FrameDecodeError:
            pass


class TestMutatedFrames:
    @given(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=150)
    def test_bit_flips_detected_by_fcs(self, position, mask):
        data = bytearray(make_valid_beacon())
        position %= len(data)
        data[position] ^= mask
        with pytest.raises(FrameDecodeError):
            Beacon.from_bytes(bytes(data))

    @given(st.integers(min_value=0, max_value=120))
    @settings(max_examples=80)
    def test_truncations_rejected(self, keep):
        data = make_valid_beacon()
        keep = min(keep, len(data) - 1)
        with pytest.raises(FrameDecodeError):
            Beacon.from_bytes(data[:keep])

    @given(st.binary(min_size=1, max_size=30))
    @settings(max_examples=80)
    def test_trailing_garbage_rejected(self, garbage):
        # Appending bytes breaks the FCS position -> decode error.
        with pytest.raises(FrameDecodeError):
            Beacon.from_bytes(make_valid_beacon() + garbage)

    @given(
        st.integers(min_value=1, max_value=0xFFFF),
        st.binary(max_size=64),
        st.integers(min_value=0, max_value=60),
        st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=100)
    def test_ip_packet_mutations(self, port, payload, position, mask):
        packet = bytearray(build_broadcast_udp_packet(port, payload))
        position %= len(packet)
        packet[position] ^= mask
        try:
            result = extract_udp_dst_port(bytes(packet))
        except FrameDecodeError:
            return
        # Mutations that dodge the IP header checksum (e.g. in the UDP
        # payload, whose checksum Algorithm 1 skips) may still parse —
        # but must return a port-shaped value or None.
        assert result is None or 0 <= result <= 0xFFFF
