"""Property-based tests: frame/packet encodings round-trip for all inputs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dot11 import pvb
from repro.dot11.elements.btim import BtimElement
from repro.dot11.elements.open_udp_ports import OpenUdpPortsElement
from repro.dot11.elements.tim import TimElement
from repro.dot11.management import Beacon, UdpPortMessage
from repro.dot11.mac_address import MacAddress
from repro.net.ipv4 import IP_BROADCAST, Ipv4Address, Ipv4Header
from repro.net.packet import build_broadcast_udp_packet, extract_udp_dst_port
from repro.net.udp import UdpHeader, build_udp_datagram, parse_udp_datagram

aids = st.sets(st.integers(min_value=1, max_value=pvb.MAX_AID), max_size=40)
ports = st.sets(st.integers(min_value=1, max_value=0xFFFF), max_size=300)
macs = st.binary(min_size=6, max_size=6).map(MacAddress)


class TestPvbProperties:
    @given(aids)
    def test_compress_expand_inverse(self, aid_set):
        bitmap = bytes(pvb.build_virtual_bitmap(aid_set))
        offset, partial = pvb.compress_bitmap(bitmap)
        assert pvb.expand_bitmap(offset, partial) == bitmap

    @given(aids)
    def test_aids_recovered_exactly(self, aid_set):
        offset, partial = pvb.compress_bitmap(
            bytes(pvb.build_virtual_bitmap(aid_set))
        )
        assert pvb.aids_in_bitmap(offset, partial) == aid_set

    @given(aids)
    def test_compression_never_longer_than_full(self, aid_set):
        offset, partial = pvb.compress_bitmap(
            bytes(pvb.build_virtual_bitmap(aid_set))
        )
        assert len(partial) <= pvb.FULL_BITMAP_OCTETS
        assert offset % 2 == 0

    @given(aids, st.integers(min_value=1, max_value=pvb.MAX_AID))
    def test_membership_query_consistent(self, aid_set, probe):
        offset, partial = pvb.compress_bitmap(
            bytes(pvb.build_virtual_bitmap(aid_set))
        )
        assert pvb.aid_is_set(offset, partial, probe) == (probe in aid_set)


class TestElementProperties:
    @given(aids)
    def test_btim_round_trip(self, aid_set):
        element = BtimElement(frozenset(aid_set))
        assert BtimElement.from_payload(element.payload_bytes()) == element

    @given(
        st.integers(min_value=1, max_value=255),
        aids,
        st.booleans(),
    )
    def test_tim_round_trip(self, period, aid_set, group):
        element = TimElement(
            dtim_count=0,
            dtim_period=period,
            group_traffic_buffered=group,
            aids_with_traffic=frozenset(aid_set),
        )
        assert TimElement.from_payload(element.payload_bytes()) == element

    @given(st.sets(st.integers(min_value=1, max_value=0xFFFF), max_size=127))
    def test_open_ports_round_trip(self, port_set):
        element = OpenUdpPortsElement(frozenset(port_set))
        assert OpenUdpPortsElement.from_payload(element.payload_bytes()) == element


class TestFrameProperties:
    @given(macs, ports, st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=50)
    def test_udp_port_message_round_trip(self, source, port_set, sequence):
        message = UdpPortMessage(
            source=source,
            bssid=MacAddress.station(0),
            ports=frozenset(port_set),
            report_sequence=sequence,
        )
        decoded = UdpPortMessage.from_bytes(message.to_bytes())
        assert decoded.ports == message.ports
        assert decoded.report_sequence == sequence

    @given(aids, aids, st.booleans())
    @settings(max_examples=50)
    def test_beacon_round_trip(self, tim_aids, btim_aids, group):
        beacon = Beacon(
            bssid=MacAddress.station(0),
            timestamp_us=123456,
            beacon_interval_tu=100,
            tim=TimElement(0, 1, group, frozenset(tim_aids)),
            btim=BtimElement(frozenset(btim_aids)),
        )
        assert Beacon.from_bytes(beacon.to_bytes()) == beacon


class TestPacketProperties:
    @given(
        st.integers(min_value=1, max_value=0xFFFF),
        st.binary(max_size=400),
    )
    def test_broadcast_packet_port_always_recoverable(self, port, payload):
        packet = build_broadcast_udp_packet(port, payload)
        assert extract_udp_dst_port(packet) == port

    @given(
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=0xFFFF),
        st.binary(max_size=200),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_udp_datagram_round_trip(self, src_port, dst_port, payload, src_ip):
        source = Ipv4Address(src_ip)
        datagram = build_udp_datagram(
            UdpHeader(src_port, dst_port), payload, source, IP_BROADCAST
        )
        header, decoded = parse_udp_datagram(datagram, source, IP_BROADCAST)
        assert (header.src_port, header.dst_port) == (src_port, dst_port)
        assert decoded == payload

    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.integers(min_value=0, max_value=255),
        st.binary(max_size=100),
    )
    def test_ipv4_header_round_trip(self, src, dst, ttl, payload):
        header = Ipv4Header(
            source=Ipv4Address(src), destination=Ipv4Address(dst), ttl=ttl
        )
        decoded, decoded_payload = Ipv4Header.from_bytes(
            header.to_bytes(len(payload)) + payload
        )
        assert decoded == header
        assert decoded_payload == payload
