import pytest

from repro.errors import ConfigurationError
from repro.traces.generators import FRAME_OVERHEAD_BYTES, TraceGenerator, generate_trace
from repro.traces.release import apply_dtim_release
from repro.traces.scenarios import PAPER_SCENARIOS, ScenarioSpec, scenario_by_name
from repro.units import BEACON_INTERVAL_S, mbps


@pytest.fixture(scope="module")
def small_spec():
    return ScenarioSpec(
        name="small", duration_s=120.0, quiet_rate_fps=1.0, burst_rate_fps=20.0,
        quiet_dwell_s=8.0, burst_dwell_s=2.0, seed=3,
    )


@pytest.fixture(scope="module")
def small_trace(small_spec):
    return generate_trace(small_spec)


class TestScenarios:
    def test_five_paper_scenarios(self):
        assert [s.name for s in PAPER_SCENARIOS] == [
            "Classroom", "CS_Dept", "WML", "Starbucks", "WRL",
        ]

    def test_durations_30_to_60_minutes(self):
        for spec in PAPER_SCENARIOS:
            assert 30 * 60 <= spec.duration_s <= 60 * 60

    def test_lookup_case_insensitive(self):
        assert scenario_by_name("wml").name == "WML"
        with pytest.raises(ConfigurationError):
            scenario_by_name("nope")

    def test_mean_rate(self):
        spec = ScenarioSpec("x", 10, 1.0, 10.0, 5.0, 5.0, 1)
        assert spec.mean_rate_fps == pytest.approx(5.5)

    def test_volume_ordering_matches_paper(self):
        # Figure 6: WML and Classroom heavy, Starbucks/WRL light.
        means = {
            spec.name: spec.mean_rate_fps for spec in PAPER_SCENARIOS
        }
        assert means["WML"] > means["Classroom"] > means["CS_Dept"]
        assert means["CS_Dept"] > means["Starbucks"] > means["WRL"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioSpec("x", 0, 1, 1, 1, 1, 1)
        with pytest.raises(ConfigurationError):
            ScenarioSpec("x", 10, -1, 1, 1, 1, 1)
        with pytest.raises(ConfigurationError):
            ScenarioSpec("x", 10, 1, 1, 0, 1, 1)


class TestGeneration:
    def test_deterministic_with_seed(self, small_spec):
        a = generate_trace(small_spec)
        b = generate_trace(small_spec)
        assert len(a) == len(b)
        assert all(
            ra.time == rb.time and ra.udp_port == rb.udp_port
            for ra, rb in zip(a, b)
        )

    def test_different_seeds_differ(self, small_spec):
        a = generate_trace(small_spec, seed=1)
        b = generate_trace(small_spec, seed=2)
        assert [r.time for r in a] != [r.time for r in b]

    def test_mean_rate_near_spec(self, small_spec, small_trace):
        # Wide tolerance: 2 minutes of an MMPP is noisy.
        assert small_trace.mean_frames_per_second == pytest.approx(
            small_spec.mean_rate_fps, rel=0.6
        )

    def test_ports_from_registry(self, small_trace):
        from repro.net.ports import WELL_KNOWN_BROADCAST_SERVICES

        assert set(small_trace.port_histogram()) <= set(
            WELL_KNOWN_BROADCAST_SERVICES
        )

    def test_lengths_include_overhead(self, small_trace):
        assert all(r.length_bytes > FRAME_OVERHEAD_BYTES for r in small_trace)

    def test_rates_are_basic(self, small_trace):
        assert set(r.rate_bps for r in small_trace) <= {mbps(1), mbps(2), mbps(5.5)}

    def test_generate_by_name(self):
        trace = generate_trace("Starbucks")
        assert trace.name == "Starbucks"

    def test_port_weight_overrides_respected(self):
        base = ScenarioSpec("b", 300, 2.0, 10.0, 10.0, 2.0, 5)
        skewed = ScenarioSpec(
            "s", 300, 2.0, 10.0, 10.0, 2.0, 5,
            port_weight_overrides=((5353, 50.0),),
        )
        base_hist = generate_trace(base).port_histogram()
        skewed_hist = generate_trace(skewed).port_histogram()
        base_share = base_hist.get(5353, 0) / sum(base_hist.values())
        skewed_share = skewed_hist.get(5353, 0) / sum(skewed_hist.values())
        assert skewed_share > base_share * 2


class TestDtimRelease:
    def test_frames_air_after_dtim_boundaries(self):
        offered = [(0.01, 137, 100, mbps(1)), (0.05, 138, 100, mbps(1))]
        records = apply_dtim_release(offered, duration_s=1.0)
        assert all(r.time >= BEACON_INTERVAL_S for r in records)
        # Both offered in interval 0 -> both air right after beacon 1.
        assert records[0].time == pytest.approx(BEACON_INTERVAL_S + 0.9e-3)

    def test_burst_serialized_back_to_back(self):
        offered = [(0.01 * i, 137, 125, mbps(1)) for i in range(3)]
        records = apply_dtim_release(offered, duration_s=1.0)
        gaps = [b.time - a.time for a, b in zip(records, records[1:])]
        assert all(0.001 < gap < 0.002 for gap in gaps)  # airtime + SIFS

    def test_more_data_bits(self):
        offered = [(0.01 * i, 137, 100, mbps(1)) for i in range(3)]
        records = apply_dtim_release(offered, duration_s=1.0)
        assert [r.more_data for r in records] == [True, True, False]

    def test_offered_time_preserved(self):
        offered = [(0.033, 137, 100, mbps(1))]
        (record,) = apply_dtim_release(offered, duration_s=1.0)
        assert record.offered_time == pytest.approx(0.033)
        assert record.buffering_delay_s > 0

    def test_dtim_period_delays_release(self):
        offered = [(0.01, 137, 100, mbps(1))]
        (period1,) = apply_dtim_release(offered, duration_s=2.0, dtim_period=1)
        (period3,) = apply_dtim_release(offered, duration_s=2.0, dtim_period=3)
        assert period3.time > period1.time

    def test_records_sorted_and_within_duration(self):
        offered = [(0.9 * i % 5, 137, 100, mbps(1)) for i in range(50)]
        records = apply_dtim_release(offered, duration_s=6.0)
        times = [r.time for r in records]
        assert times == sorted(times)
        assert all(t < 6.0 for t in times)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            apply_dtim_release([], duration_s=0)
        with pytest.raises(ConfigurationError):
            apply_dtim_release([], duration_s=1.0, dtim_period=0)
