import pytest

from repro.errors import ConfigurationError
from repro.traces.usefulness import (
    clustered_fraction_mask,
    port_subset_mask,
    ports_for_target_fraction,
    random_fraction_mask,
    spread_fraction_mask,
)

from tests.conftest import make_record, make_trace


@pytest.fixture
def trace():
    return make_trace([float(i) * 0.1 for i in range(1000)], duration=200.0)


class TestSpreadMask:
    def test_exact_fraction(self, trace):
        assignment = spread_fraction_mask(trace, 0.10)
        assert assignment.useful_count == 100
        assert assignment.achieved_fraction == pytest.approx(0.10)

    def test_evenly_spread(self, trace):
        mask = spread_fraction_mask(trace, 0.10).mask
        positions = [i for i, useful in enumerate(mask) if useful]
        gaps = [b - a for a, b in zip(positions, positions[1:])]
        assert max(gaps) - min(gaps) <= 1

    def test_zero_and_one(self, trace):
        assert spread_fraction_mask(trace, 0.0).useful_count == 0
        assert spread_fraction_mask(trace, 1.0).useful_count == len(trace)

    def test_fraction_validated(self, trace):
        with pytest.raises(ConfigurationError):
            spread_fraction_mask(trace, 1.5)


class TestRandomMask:
    def test_deterministic_per_seed(self, trace):
        a = random_fraction_mask(trace, 0.1, seed=5)
        b = random_fraction_mask(trace, 0.1, seed=5)
        assert a.mask == b.mask
        assert a.mask != random_fraction_mask(trace, 0.1, seed=6).mask

    def test_fraction_approximate(self, trace):
        assignment = random_fraction_mask(trace, 0.10, seed=1)
        assert assignment.achieved_fraction == pytest.approx(0.10, abs=0.03)


class TestClusteredMask:
    def test_fraction_approximate(self, trace):
        assignment = clustered_fraction_mask(trace, 0.10, seed=1)
        assert assignment.achieved_fraction == pytest.approx(0.10, abs=0.04)

    def test_clusters_exist(self, trace):
        mask = clustered_fraction_mask(trace, 0.10, mean_run_length=3.0, seed=1).mask
        runs = []
        current = 0
        for useful in mask:
            if useful:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        if current:
            runs.append(current)
        assert any(run >= 2 for run in runs)

    def test_fewer_wake_events_than_random(self, trace):
        def events(mask):
            return sum(
                1 for i, u in enumerate(mask) if u and (i == 0 or not mask[i - 1])
            )

        clustered = clustered_fraction_mask(trace, 0.10, seed=1).mask
        random_mask = random_fraction_mask(trace, 0.10, seed=1).mask
        assert events(clustered) < events(random_mask)

    def test_run_length_validated(self, trace):
        with pytest.raises(ConfigurationError):
            clustered_fraction_mask(trace, 0.1, mean_run_length=0.5)

    def test_strategy_recorded(self, trace):
        assignment = clustered_fraction_mask(trace, 0.1, mean_run_length=2.0)
        assert "clustered" in assignment.strategy
        assert assignment.target_fraction == 0.1


class TestPortSubset:
    def make_port_trace(self):
        records = []
        time = 0.0
        # 70% port 137, 20% port 1900, 10% port 5353.
        for i in range(100):
            port = 137 if i % 10 < 7 else (1900 if i % 10 < 9 else 5353)
            records.append(make_record(time, port=port))
            time += 0.1
        return make_trace([], duration=20.0).__class__(
            name="ports", duration_s=20.0, records=tuple(records)
        )

    def test_mask_matches_ports(self):
        trace = self.make_port_trace()
        assignment = port_subset_mask(trace, frozenset({5353}))
        assert assignment.useful_count == 10
        assert all(
            useful == (record.udp_port == 5353)
            for useful, record in zip(assignment.mask, trace)
        )

    def test_greedy_selection_close_to_target(self):
        trace = self.make_port_trace()
        ports = ports_for_target_fraction(trace, 0.10)
        assignment = port_subset_mask(trace, ports)
        assert assignment.achieved_fraction == pytest.approx(0.10, abs=0.05)

    def test_target_one_selects_everything(self):
        trace = self.make_port_trace()
        ports = ports_for_target_fraction(trace, 1.0)
        assert port_subset_mask(trace, ports).achieved_fraction == 1.0

    def test_empty_trace(self):
        trace = make_trace([], duration=5.0)
        assert ports_for_target_fraction(trace, 0.5) == frozenset()
