import json

import pytest

from repro.errors import TraceFormatError
from repro.traces.frame_record import BroadcastFrameRecord
from repro.traces.io import load_trace_jsonl, save_trace_jsonl, trace_to_csv
from repro.traces.trace import BroadcastTrace
from repro.units import mbps

from tests.conftest import make_trace


@pytest.fixture
def trace():
    records = (
        BroadcastFrameRecord(
            time=0.5, udp_port=5353, length_bytes=180, rate_bps=mbps(1),
            more_data=True, offered_time=0.4,
        ),
        BroadcastFrameRecord(
            time=0.6, udp_port=1900, length_bytes=300, rate_bps=mbps(2),
        ),
    )
    return BroadcastTrace(name="io-test", duration_s=10.0, records=records)


class TestJsonl:
    def test_round_trip(self, trace, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_trace_jsonl(trace, path)
        loaded = load_trace_jsonl(path)
        assert loaded.name == trace.name
        assert loaded.duration_s == trace.duration_s
        assert loaded.records == trace.records

    def test_empty_trace(self, tmp_path):
        trace = make_trace([], duration=5.0)
        path = tmp_path / "empty.jsonl"
        save_trace_jsonl(trace, path)
        assert len(load_trace_jsonl(path)) == 0

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TraceFormatError):
            load_trace_jsonl(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(TraceFormatError):
            load_trace_jsonl(path)

    def test_wrong_version_rejected(self, trace, tmp_path):
        path = tmp_path / "v9.jsonl"
        save_trace_jsonl(trace, path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["version"] = 99
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(TraceFormatError):
            load_trace_jsonl(path)

    def test_malformed_record_rejected(self, trace, tmp_path):
        path = tmp_path / "bad-record.jsonl"
        save_trace_jsonl(trace, path)
        with path.open("a") as handle:
            handle.write('{"t": 1.0}\n')
        with pytest.raises(TraceFormatError):
            load_trace_jsonl(path)

    def test_frame_count_mismatch_rejected(self, trace, tmp_path):
        path = tmp_path / "count.jsonl"
        save_trace_jsonl(trace, path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop one record
        with pytest.raises(TraceFormatError):
            load_trace_jsonl(path)

    def test_generated_trace_round_trip(self, tmp_path):
        from repro.traces.generators import generate_trace
        from repro.traces.scenarios import ScenarioSpec

        spec = ScenarioSpec("rt", 60.0, 1.0, 10.0, 5.0, 1.0, 11)
        trace = generate_trace(spec)
        path = tmp_path / "gen.jsonl"
        save_trace_jsonl(trace, path)
        assert load_trace_jsonl(path).records == trace.records


class TestCsvImport:
    def test_round_trip(self, trace, tmp_path):
        from repro.traces.io import load_trace_csv

        path = tmp_path / "trace.csv"
        trace_to_csv(trace, path)
        loaded = load_trace_csv(path, name=trace.name, duration_s=trace.duration_s)
        assert loaded.name == trace.name
        assert len(loaded) == len(trace)
        for original, reloaded in zip(trace, loaded):
            assert reloaded.time == pytest.approx(original.time)
            assert reloaded.udp_port == original.udp_port
            assert reloaded.length_bytes == original.length_bytes
            assert reloaded.more_data == original.more_data

    def test_default_name_and_duration(self, trace, tmp_path):
        from repro.traces.io import load_trace_csv

        path = tmp_path / "capture.csv"
        trace_to_csv(trace, path)
        loaded = load_trace_csv(path)
        assert loaded.name == "capture"
        assert loaded.duration_s == pytest.approx(trace.records[-1].time + 1.0)

    def test_unsorted_rows_sorted_on_import(self, tmp_path):
        from repro.traces.io import load_trace_csv

        path = tmp_path / "messy.csv"
        path.write_text(
            "time_s,udp_port,length_bytes,rate_bps,more_data\n"
            "2.0,137,100,1000000,0\n"
            "1.0,5353,100,1000000,0\n"
        )
        loaded = load_trace_csv(path)
        assert [r.time for r in loaded] == [1.0, 2.0]

    def test_missing_columns_rejected(self, tmp_path):
        from repro.traces.io import load_trace_csv

        path = tmp_path / "bad.csv"
        path.write_text("time_s,udp_port\n1.0,137\n")
        with pytest.raises(TraceFormatError):
            load_trace_csv(path)

    def test_bad_row_rejected(self, tmp_path):
        from repro.traces.io import load_trace_csv

        path = tmp_path / "bad.csv"
        path.write_text(
            "time_s,udp_port,length_bytes,rate_bps\n"
            "abc,137,100,1000000\n"
        )
        with pytest.raises(TraceFormatError):
            load_trace_csv(path)

    def test_empty_csv(self, tmp_path):
        from repro.traces.io import load_trace_csv

        path = tmp_path / "empty.csv"
        path.write_text("time_s,udp_port,length_bytes,rate_bps,more_data\n")
        loaded = load_trace_csv(path)
        assert len(loaded) == 0


class TestCsv:
    def test_export(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        trace_to_csv(trace, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3  # header + 2 records
        assert lines[0].startswith("time_s,udp_port")
        assert "5353" in lines[1]
        # Missing offered_time renders as empty field.
        assert lines[2].endswith(",")
