import pytest

from repro.errors import TraceFormatError
from repro.traces.frame_record import BroadcastFrameRecord
from repro.traces.trace import BroadcastTrace
from repro.units import mbps

from tests.conftest import make_record, make_trace


class TestRecord:
    def test_airtime(self):
        record = make_record(0.0, length=125, rate=mbps(1))
        assert record.airtime_s == pytest.approx(0.001)

    def test_buffering_delay(self):
        record = BroadcastFrameRecord(
            time=1.0, udp_port=137, length_bytes=100, rate_bps=mbps(1),
            offered_time=0.9,
        )
        assert record.buffering_delay_s == pytest.approx(0.1)
        assert make_record(1.0).buffering_delay_s is None

    def test_airing_before_offered_rejected(self):
        with pytest.raises(ValueError):
            BroadcastFrameRecord(
                time=1.0, udp_port=137, length_bytes=100, rate_bps=mbps(1),
                offered_time=2.0,
            )

    def test_to_event(self):
        record = make_record(1.0, port=5353, more=True)
        event = record.to_event(useful=True)
        assert event.time == 1.0
        assert event.useful
        assert event.more_data
        assert event.udp_port == 5353

    def test_shifted(self):
        record = BroadcastFrameRecord(
            time=1.0, udp_port=137, length_bytes=100, rate_bps=mbps(1),
            offered_time=0.5,
        )
        shifted = record.shifted(2.0)
        assert shifted.time == 3.0
        assert shifted.offered_time == 2.5

    def test_validation(self):
        with pytest.raises(ValueError):
            make_record(-1.0)
        with pytest.raises(ValueError):
            make_record(0.0, port=0)
        with pytest.raises(ValueError):
            make_record(0.0, length=0)
        with pytest.raises(ValueError):
            make_record(0.0, rate=0)


class TestTrace:
    def test_sorted_enforced(self):
        with pytest.raises(TraceFormatError):
            make_trace([2.0, 1.0])

    def test_records_within_duration(self):
        with pytest.raises(TraceFormatError):
            BroadcastTrace("t", 1.0, (make_record(2.0),))

    def test_mean_rate(self):
        trace = make_trace([1.0, 2.0, 3.0, 4.0], duration=10.0)
        assert trace.mean_frames_per_second == pytest.approx(0.4)

    def test_frames_per_second_series(self):
        trace = make_trace([0.1, 0.2, 1.5, 5.9], duration=6.0)
        series = trace.frames_per_second_series()
        assert series == [2, 1, 0, 0, 0, 1]

    def test_volume_cdf(self):
        trace = make_trace([0.1, 0.2, 1.5], duration=3.0)
        cdf = trace.volume_cdf()
        assert cdf.evaluate(0) == pytest.approx(1 / 3)
        assert cdf.evaluate(2) == 1.0

    def test_port_histogram(self):
        trace = make_trace([1.0, 2.0], port=137)
        assert trace.port_histogram() == {137: 2}

    def test_to_events_mask_length_checked(self):
        trace = make_trace([1.0, 2.0])
        with pytest.raises(TraceFormatError):
            trace.to_events([True])

    def test_to_events(self):
        trace = make_trace([1.0, 2.0])
        events = trace.to_events([True, False])
        assert [e.useful for e in events] == [True, False]

    def test_slice_rebases(self):
        trace = make_trace([1.0, 2.0, 3.0], duration=5.0)
        sliced = trace.slice(1.5, 3.5)
        assert len(sliced) == 2
        assert sliced.records[0].time == pytest.approx(0.5)
        assert sliced.duration_s == pytest.approx(2.0)

    def test_slice_validation(self):
        trace = make_trace([1.0], duration=5.0)
        with pytest.raises(TraceFormatError):
            trace.slice(3.0, 2.0)
        with pytest.raises(TraceFormatError):
            trace.slice(0.0, 6.0)

    def test_iteration_and_len(self):
        trace = make_trace([1.0, 2.0])
        assert len(trace) == 2
        assert len(list(trace)) == 2
