import pytest

from repro.traces.cdf import EmpiricalCdf


class TestCdf:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCdf([])

    def test_evaluate(self):
        cdf = EmpiricalCdf([1, 2, 3, 4])
        assert cdf.evaluate(0) == 0.0
        assert cdf.evaluate(1) == 0.25
        assert cdf.evaluate(2.5) == 0.5
        assert cdf.evaluate(4) == 1.0
        assert cdf.evaluate(100) == 1.0

    def test_monotone(self):
        cdf = EmpiricalCdf([5, 1, 3, 3, 2])
        values = [cdf.evaluate(x / 2) for x in range(0, 14)]
        assert values == sorted(values)

    def test_stats(self):
        cdf = EmpiricalCdf([1, 2, 3])
        assert cdf.mean == pytest.approx(2.0)
        assert cdf.min == 1
        assert cdf.max == 3
        assert len(cdf) == 3

    def test_quantile(self):
        cdf = EmpiricalCdf(range(100))
        assert cdf.quantile(0.0) == 0
        assert cdf.quantile(0.5) == 50
        assert cdf.quantile(1.0) == 99
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_points_deduplicated(self):
        cdf = EmpiricalCdf([1, 1, 2])
        assert cdf.points() == [(1.0, pytest.approx(2 / 3)), (2.0, 1.0)]

    def test_points_reach_one(self):
        cdf = EmpiricalCdf([7, 8, 9, 9])
        assert cdf.points()[-1][1] == 1.0
