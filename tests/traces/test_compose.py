import pytest

from repro.errors import ConfigurationError
from repro.traces.compose import (
    concat_traces,
    merge_traces,
    repeat_trace,
    scale_rate,
)

from tests.conftest import make_trace


class TestMerge:
    def test_overlay_sorted(self):
        a = make_trace([1.0, 3.0], duration=10.0, port=137)
        b = make_trace([2.0, 4.0], duration=8.0, port=5353)
        merged = merge_traces("both", [a, b])
        assert [r.time for r in merged] == [1.0, 2.0, 3.0, 4.0]
        assert merged.duration_s == 10.0
        assert merged.name == "both"

    def test_rates_add(self):
        a = make_trace([float(i) for i in range(10)], duration=10.0)
        b = make_trace([float(i) + 0.5 for i in range(10)], duration=10.0)
        merged = merge_traces("m", [a, b])
        assert merged.mean_frames_per_second == pytest.approx(
            a.mean_frames_per_second + b.mean_frames_per_second
        )

    def test_single_input_identity(self):
        a = make_trace([1.0], duration=5.0)
        assert merge_traces("m", [a]).records == a.records

    def test_empty_list_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_traces("m", [])


class TestConcat:
    def test_sequential_shift(self):
        a = make_trace([1.0], duration=5.0)
        b = make_trace([2.0], duration=5.0)
        joined = concat_traces("j", [a, b])
        assert [r.time for r in joined] == [1.0, 7.0]
        assert joined.duration_s == 10.0

    def test_three_way(self):
        a = make_trace([0.5], duration=2.0)
        joined = concat_traces("j", [a, a, a])
        assert [r.time for r in joined] == [0.5, 2.5, 4.5]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            concat_traces("j", [])


class TestScale:
    def test_double_rate(self):
        trace = make_trace([2.0, 4.0], duration=10.0)
        scaled = scale_rate(trace, 2.0)
        assert [r.time for r in scaled] == [1.0, 2.0]
        assert scaled.duration_s == 5.0
        assert scaled.mean_frames_per_second == pytest.approx(
            2 * trace.mean_frames_per_second
        )

    def test_half_rate(self):
        trace = make_trace([2.0], duration=10.0)
        scaled = scale_rate(trace, 0.5)
        assert scaled.records[0].time == 4.0
        assert scaled.duration_s == 20.0

    def test_burst_structure_preserved(self):
        trace = make_trace([1.0, 1.01, 5.0], duration=10.0)
        scaled = scale_rate(trace, 2.0)
        gap_ratio = (scaled.records[1].time - scaled.records[0].time) / (
            trace.records[1].time - trace.records[0].time
        )
        assert gap_ratio == pytest.approx(0.5)

    def test_default_name(self):
        trace = make_trace([1.0], duration=5.0, name="base")
        assert scale_rate(trace, 2.0).name == "basex2"

    def test_validation(self):
        trace = make_trace([1.0], duration=5.0)
        with pytest.raises(ConfigurationError):
            scale_rate(trace, 0.0)


class TestRepeat:
    def test_repeat(self):
        trace = make_trace([1.0], duration=3.0)
        repeated = repeat_trace(trace, 3)
        assert [r.time for r in repeated] == [1.0, 4.0, 7.0]
        assert repeated.duration_s == 9.0

    def test_repeat_once_identity_times(self):
        trace = make_trace([1.0, 2.0], duration=3.0)
        assert [r.time for r in repeat_trace(trace, 1)] == [1.0, 2.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            repeat_trace(make_trace([1.0], duration=3.0), 0)


class TestComposedEnergy:
    def test_scaled_trace_costs_more(self):
        """Densifying a trace raises receive-all power (sanity that
        composition plugs into the whole pipeline)."""
        from repro.energy.profile import NEXUS_ONE
        from repro.solutions import ReceiveAllSolution
        from repro.traces.generators import generate_trace
        from repro.traces.scenarios import ScenarioSpec
        from repro.traces.usefulness import random_fraction_mask

        spec = ScenarioSpec("c", 120.0, 0.5, 8.0, 15.0, 3.0, 9)
        base = generate_trace(spec)
        dense = scale_rate(base, 3.0)
        base_result = ReceiveAllSolution().evaluate(
            base, random_fraction_mask(base, 0.1, seed=1), NEXUS_ONE
        )
        dense_result = ReceiveAllSolution().evaluate(
            dense, random_fraction_mask(dense, 0.1, seed=1), NEXUS_ONE
        )
        assert (
            dense_result.breakdown.average_power_w
            > base_result.breakdown.average_power_w
        )
