import pytest

from repro.errors import ConfigurationError
from repro.traces.stats import (
    SLEEPABLE_GAP_S,
    compute_stats,
    detect_bursts,
    index_of_dispersion,
)

from tests.conftest import make_trace


class TestBurstDetection:
    def test_single_burst(self):
        trace = make_trace([1.0, 1.05, 1.1], duration=10.0)
        bursts = detect_bursts(trace)
        assert len(bursts) == 1
        assert bursts[0].frames == 3
        assert bursts[0].duration == pytest.approx(0.1)

    def test_gap_splits_bursts(self):
        trace = make_trace([1.0, 1.05, 5.0, 5.01], duration=10.0)
        bursts = detect_bursts(trace)
        assert [b.frames for b in bursts] == [2, 2]

    def test_singleton_frames_are_bursts_of_one(self):
        trace = make_trace([1.0, 3.0, 5.0], duration=10.0)
        bursts = detect_bursts(trace)
        assert [b.frames for b in bursts] == [1, 1, 1]
        assert all(b.duration == 0.0 for b in bursts)

    def test_empty_trace(self):
        assert detect_bursts(make_trace([], duration=10.0)) == []

    def test_threshold_validated(self):
        with pytest.raises(ConfigurationError):
            detect_bursts(make_trace([1.0], duration=5.0), max_gap_s=0)

    def test_custom_threshold(self):
        trace = make_trace([1.0, 1.5, 2.0], duration=10.0)
        assert len(detect_bursts(trace, max_gap_s=0.6)) == 1
        assert len(detect_bursts(trace, max_gap_s=0.4)) == 3


class TestDispersion:
    def test_uniform_counts_have_zero_dispersion(self):
        # One frame per second exactly: variance 0.
        trace = make_trace([float(i) + 0.5 for i in range(10)], duration=10.0)
        assert index_of_dispersion(trace) == pytest.approx(0.0)

    def test_bursty_trace_is_overdispersed(self):
        # All frames in one second out of ten.
        trace = make_trace([0.1 * i / 10 for i in range(20)], duration=10.0)
        assert index_of_dispersion(trace) > 1.0

    def test_empty_trace(self):
        assert index_of_dispersion(make_trace([], duration=5.0)) == 0.0


class TestComputeStats:
    def test_fields_consistent(self):
        trace = make_trace([1.0, 1.01, 1.02, 4.0, 8.0], duration=20.0)
        stats = compute_stats(trace)
        assert stats.frame_count == 5
        assert stats.burst_count == 3
        assert stats.mean_burst_frames == pytest.approx(5 / 3)
        assert stats.mean_rate_fps == pytest.approx(0.25)

    def test_sleepable_gap_fraction(self):
        # Gaps: 0.01, 0.01 (not sleepable), 2.98, 4.0 (sleepable).
        trace = make_trace([1.0, 1.01, 1.02, 4.0, 8.0], duration=20.0)
        stats = compute_stats(trace)
        assert stats.sleepable_gap_fraction == pytest.approx(0.5)

    def test_empty_trace(self):
        stats = compute_stats(make_trace([], duration=10.0))
        assert stats.frame_count == 0
        assert stats.burst_count == 0
        assert stats.sleepable_gap_fraction == 0.0

    def test_scenario_characters_distinguishable(self):
        # The calibrated scenario shapes: storm traces (Classroom) have
        # far lower sleepable-gap fractions than spread traces (WRL).
        from repro.traces.generators import generate_trace

        classroom = compute_stats(generate_trace("Classroom"))
        wrl = compute_stats(generate_trace("WRL"))
        assert classroom.index_of_dispersion > wrl.index_of_dispersion
        assert classroom.sleepable_gap_fraction < wrl.sleepable_gap_fraction
        assert classroom.mean_rate_fps > wrl.mean_rate_fps
