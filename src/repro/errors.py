"""Exception hierarchy for the HIDE reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish encoding problems from simulation or
configuration problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class FrameError(ReproError):
    """A frame or packet could not be encoded or decoded."""


class FrameDecodeError(FrameError):
    """Raised when parsing bytes into a frame/packet fails."""


class FrameEncodeError(FrameError):
    """Raised when a frame/packet cannot be serialized to bytes."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ConfigurationError(ReproError):
    """A model, generator, or experiment received invalid parameters."""


class AssociationError(ReproError):
    """A station operation required an association that does not exist."""


class PortTableError(ReproError, ValueError):
    """A port report was rejected at the Client UDP Port Table boundary.

    Raised for out-of-range AIDs (valid range 1..2007, the 802.11
    association-ID space), out-of-range UDP ports, and zero-length port
    sets. Subclasses :class:`ValueError` so callers that predate the
    typed hierarchy keep working.
    """


class ServiceError(ReproError):
    """The stand-alone AP port-service hit a runtime/configuration problem."""


class TraceFormatError(ReproError):
    """A trace file is malformed or has an unsupported version."""
