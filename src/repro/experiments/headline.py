"""The paper's headline claims, checked against this reproduction.

Claims (abstract + §VI + §VIII):

1. HIDE saves 34-75 % energy on the Nexus One when 10 % of broadcast
   frames are useful; 18-78 % on the Galaxy S4.
2. At 2 % useful: 71-82 % (Nexus One), 62-83 % (Galaxy S4).
3. HIDE:10 % saves on average 23 % (N1) / 35 % (S4) more energy than
   the client-side solution; HIDE:2 % saves 62 % (N1) / 45 % (S4) more.
4. Network capacity impact < 0.2 % (0.13 % at 50 nodes, p = 75 %).
5. RTT impact <= 2.3 % (at 1/f = 10 s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis import CapacityAnalysis, DelayAnalysis
from repro.energy import GALAXY_S4, NEXUS_ONE
from repro.experiments.context import EvaluationContext, default_context
from repro.experiments import figure7, figure8
from repro.reporting import render_table


@dataclass(frozen=True)
class Claim:
    """One paper claim with its reproduced value."""

    name: str
    paper: str
    reproduced: str
    #: True when the reproduced value is inside (or adjacent to) the
    #: paper's band — the "shape holds" criterion.
    matches: bool


@dataclass(frozen=True)
class HeadlineResult:
    claims: Tuple[Claim, ...]

    @property
    def all_match(self) -> bool:
        return all(claim.matches for claim in self.claims)


def _band(values: List[float]) -> Tuple[float, float]:
    return min(values), max(values)


def _band_overlaps(ours: Tuple[float, float], paper: Tuple[float, float],
                   slack: float = 0.08) -> bool:
    """Bands match if each endpoint is within ``slack`` of the paper's."""
    return (
        abs(ours[0] - paper[0]) <= slack and abs(ours[1] - paper[1]) <= slack
    )


def compute(context: Optional[EvaluationContext] = None) -> HeadlineResult:
    context = context or default_context()
    claims: List[Claim] = []

    grids = {
        "Nexus One": figure7.compute(context),
        "Galaxy S4": figure8.compute(context),
    }
    paper_bands_10 = {"Nexus One": (0.34, 0.75), "Galaxy S4": (0.18, 0.78)}
    paper_bands_2 = {"Nexus One": (0.71, 0.82), "Galaxy S4": (0.62, 0.83)}

    for device, grid in grids.items():
        savings10 = [grid.hide_savings(s, "HIDE:10%") for s in grid.scenarios]
        savings2 = [grid.hide_savings(s, "HIDE:2%") for s in grid.scenarios]
        band10, band2 = _band(savings10), _band(savings2)
        claims.append(
            Claim(
                name=f"{device}: HIDE savings at 10% useful",
                paper=f"{paper_bands_10[device][0]:.0%}-{paper_bands_10[device][1]:.0%}",
                reproduced=f"{band10[0]:.0%}-{band10[1]:.0%}",
                matches=_band_overlaps(band10, paper_bands_10[device]),
            )
        )
        claims.append(
            Claim(
                name=f"{device}: HIDE savings at 2% useful",
                paper=f"{paper_bands_2[device][0]:.0%}-{paper_bands_2[device][1]:.0%}",
                reproduced=f"{band2[0]:.0%}-{band2[1]:.0%}",
                matches=_band_overlaps(band2, paper_bands_2[device]),
            )
        )
        # HIDE vs client-side average advantage.
        advantage10 = sum(
            1 - grid.total_mw(s, "HIDE:10%") / grid.total_mw(s, "client-side")
            for s in grid.scenarios
        ) / len(grid.scenarios)
        paper_advantage = {"Nexus One": 0.23, "Galaxy S4": 0.35}[device]
        # Wider tolerance: the paper compares against the client-side
        # *lower bound* derived in [6], which is not public; our
        # client-side model (zero wakelock for useless frames, full
        # state-transfer costs) is an approximation of it, so only the
        # direction and rough magnitude are checkable.
        claims.append(
            Claim(
                name=f"{device}: HIDE:10% average saving vs client-side",
                paper=f"{paper_advantage:.0%}",
                reproduced=f"{advantage10:.0%}",
                matches=abs(advantage10 - paper_advantage) <= 0.20,
            )
        )

    capacity = CapacityAnalysis().evaluate(50, 0.75, 10.0, 50).capacity_decrease
    claims.append(
        Claim(
            name="Network capacity decrease (50 nodes, p=75%)",
            paper="0.13% (< 0.2%)",
            reproduced=f"{capacity * 100:.3f}%",
            matches=capacity < 0.002,
        )
    )
    delay = DelayAnalysis().evaluate(50, 0.5, 10.0, 50, 10).delay_increase
    claims.append(
        Claim(
            name="RTT increase (1/f = 10 s, 50 nodes)",
            paper="2.3%",
            reproduced=f"{delay * 100:.2f}%",
            matches=abs(delay - 0.023) < 0.005,
        )
    )
    return HeadlineResult(claims=tuple(claims))


def render(result: Optional[HeadlineResult] = None) -> str:
    if result is None:
        result = compute()
    rows = [
        [claim.name, claim.paper, claim.reproduced, "OK" if claim.matches else "DIFFERS"]
        for claim in result.claims
    ]
    table = render_table(
        ["claim", "paper", "reproduced", "verdict"],
        rows,
        title="Headline claims: paper vs this reproduction",
    )
    summary = (
        "All headline claims reproduced within tolerance."
        if result.all_match
        else "Some claims differ — see EXPERIMENTS.md for discussion."
    )
    return table + "\n" + summary


def main() -> None:
    print(render())


if __name__ == "__main__":
    main()
