"""Sensitivity report: the design-space neighbourhood of the paper's
fixed operating points (not a paper figure; an extension)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.analysis.sensitivity import (
    DtimSweepPoint,
    ReportIntervalPoint,
    TauSweepPoint,
    sweep_dtim_period,
    sweep_report_interval,
    sweep_wakelock_timeout,
)
from repro.energy.profile import NEXUS_ONE
from repro.experiments.context import EvaluationContext, default_context
from repro.reporting import render_table
from repro.traces.scenarios import scenario_by_name

TAU_SWEEP_S: Tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0)
DTIM_SWEEP: Tuple[int, ...] = (1, 2, 3)
INTERVAL_SWEEP_S: Tuple[float, ...] = (5.0, 10.0, 30.0, 60.0, 300.0, 600.0)


@dataclass(frozen=True)
class SensitivityResult:
    tau_points: Tuple[TauSweepPoint, ...]
    dtim_points: Tuple[DtimSweepPoint, ...]
    interval_points: Tuple[ReportIntervalPoint, ...]


def compute(context: Optional[EvaluationContext] = None) -> SensitivityResult:
    context = context or default_context()
    scenario = scenario_by_name("CS_Dept")
    trace = context.trace(scenario)
    mask = context.mask(scenario, 0.10)
    return SensitivityResult(
        tau_points=tuple(
            sweep_wakelock_timeout(trace, mask, NEXUS_ONE, TAU_SWEEP_S)
        ),
        dtim_points=tuple(
            sweep_dtim_period(
                scenario_by_name("Starbucks"), NEXUS_ONE, 0.10, DTIM_SWEEP
            )
        ),
        interval_points=tuple(
            sweep_report_interval(NEXUS_ONE, INTERVAL_SWEEP_S)
        ),
    )


def render(result: Optional[SensitivityResult] = None) -> str:
    if result is None:
        result = compute()
    blocks: List[str] = ["Sensitivity analyses (extension; not a paper figure)"]
    blocks.append(
        render_table(
            ["tau (s)", "receive-all mW", "HIDE mW", "saving"],
            [
                [
                    f"{p.wakelock_timeout_s:g}",
                    f"{p.receive_all.average_power_mw:.1f}",
                    f"{p.hide.average_power_mw:.1f}",
                    f"{p.saving:.1%}",
                ]
                for p in result.tau_points
            ],
            title="Wakelock timeout sweep (CS_Dept @ 10% useful, Nexus One)",
        )
    )
    blocks.append(
        render_table(
            ["DTIM period", "receive-all mW", "HIDE mW", "saving"],
            [
                [
                    str(p.dtim_period),
                    f"{p.receive_all.average_power_mw:.1f}",
                    f"{p.hide.average_power_mw:.1f}",
                    f"{p.saving:.1%}",
                ]
                for p in result.dtim_points
            ],
            title="DTIM period sweep (Starbucks @ 10% useful, Nexus One)",
        )
    )
    blocks.append(
        render_table(
            ["1/f (s)", "client overhead (mW)", "RTT increase"],
            [
                [
                    f"{p.interval_s:g}",
                    f"{p.overhead_power_w * 1e3:.3f}",
                    f"{p.delay_increase:.2%}",
                ]
                for p in result.interval_points
            ],
            title="UDP Port Message interval trade-off",
        )
    )
    return "\n\n".join(blocks)


def main() -> None:
    print(render())


if __name__ == "__main__":
    main()
