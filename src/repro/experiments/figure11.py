"""Figure 11: RTT increase vs UDP Port Message sending interval."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis import DelayAnalysis
from repro.reporting import render_series_table

STATION_COUNTS: Tuple[int, ...] = (5, 10, 20, 30, 40, 50)
INTERVALS_S: Tuple[float, ...] = (10.0, 30.0, 60.0, 150.0, 300.0, 600.0)

#: Paper settings for this sweep.
OPEN_PORTS = 50
HIDE_FRACTION = 0.5
BUFFERED_FRAMES_PER_DTIM = 10.0


@dataclass(frozen=True)
class Figure11Result:
    station_counts: Tuple[int, ...]
    intervals_s: Tuple[float, ...]
    #: interval -> delay increase per station count (fractions).
    increases: Dict[float, Tuple[float, ...]]


def compute(analysis: Optional[DelayAnalysis] = None) -> Figure11Result:
    analysis = analysis or DelayAnalysis()
    increases: Dict[float, Tuple[float, ...]] = {}
    for interval in INTERVALS_S:
        increases[interval] = tuple(
            analysis.evaluate(
                stations,
                hide_fraction=HIDE_FRACTION,
                port_message_interval_s=interval,
                open_ports_per_client=OPEN_PORTS,
                buffered_frames_per_dtim=BUFFERED_FRAMES_PER_DTIM,
            ).delay_increase
            for stations in STATION_COUNTS
        )
    return Figure11Result(
        station_counts=STATION_COUNTS, intervals_s=INTERVALS_S, increases=increases
    )


def render(result: Optional[Figure11Result] = None) -> str:
    if result is None:
        result = compute()
    table = render_series_table(
        "nodes",
        list(result.station_counts),
        {
            f"1/f = {interval:.0f}s": [d * 100 for d in result.increases[interval]]
            for interval in result.intervals_s
        },
        value_format="{:.3f}",
        title=(
            "Figure 11: increase in network delay (%) with different sending "
            "intervals of UDP Port Messages"
        ),
    )
    worst = max(result.increases[10.0])
    note = f"At 1/f = 10 s, 50 nodes: {worst * 100:.2f}% (paper: 2.3%)."
    return table + "\n" + note


def main() -> None:
    print(render())


if __name__ == "__main__":
    main()
