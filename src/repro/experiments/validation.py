"""Extension experiment: closed-form model vs discrete-event simulation.

The paper evaluates through the Section IV closed form; this repository
also implements the protocol event by event. Running both on the *same*
on-air frame schedule and comparing what they say about the client is
the strongest internal-validity check available: two independent
implementations of the physics must agree on wake-up counts, wakelock
time, and suspend fractions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.ap.access_point import AccessPoint, ApConfig
from repro.ap.flags import frame_udp_port
from repro.dot11.data import DataFrame
from repro.dot11.mac_address import MacAddress
from repro.energy.dynamics import FrameEvent
from repro.energy.model import EnergyModel
from repro.energy.profile import DeviceEnergyProfile, NEXUS_ONE
from repro.energy.timeline import build_timeline
from repro.errors import ConfigurationError
from repro.net.packet import build_broadcast_udp_packet
from repro.reporting import render_table
from repro.sim.engine import Simulator
from repro.sim.medium import Medium
from repro.sim.sniffer import ProtocolSniffer
from repro.station.client import Client, ClientConfig, ClientPolicy

AP_MAC = MacAddress.from_string("02:aa:00:00:00:01")
WIRED = MacAddress.from_string("02:bb:00:00:00:99")

USEFUL_PORT = 5353
USELESS_PORT = 137


@dataclass(frozen=True)
class AgreementRow:
    """One compared quantity for one policy."""

    policy: str
    quantity: str
    des_value: float
    model_value: float

    @property
    def absolute_error(self) -> float:
        return abs(self.des_value - self.model_value)

    @property
    def relative_error(self) -> float:
        scale = max(abs(self.model_value), 1e-12)
        return self.absolute_error / scale


@dataclass(frozen=True)
class ValidationResult:
    device: str
    duration_s: float
    rows: Tuple[AgreementRow, ...]

    def max_relative_error(self, quantity: str) -> float:
        return max(r.relative_error for r in self.rows if r.quantity == quantity)


def _offered_schedule(duration_s: float) -> List[Tuple[float, int]]:
    """A deterministic mix: singletons, a burst, and mixed usefulness."""
    schedule: List[Tuple[float, int]] = []
    time = 1.0
    index = 0
    while time < duration_s - 2.0:
        if index % 7 == 3:
            # A burst of four frames, one useful.
            for offset, port in (
                (0.00, USELESS_PORT),
                (0.01, USEFUL_PORT),
                (0.02, USELESS_PORT),
                (0.03, USELESS_PORT),
            ):
                schedule.append((time + offset, port))
        else:
            port = USEFUL_PORT if index % 3 == 0 else USELESS_PORT
            schedule.append((time, port))
        time += 1.7 if index % 2 == 0 else 3.1
        index += 1
    return schedule


def _run_des(policy: ClientPolicy, duration_s: float, profile: DeviceEnergyProfile):
    sim = Simulator()
    medium = Medium(sim)
    ap = AccessPoint(AP_MAC, medium, ApConfig())
    medium.attach(ap)
    client = Client(
        MacAddress.station(1), medium, AP_MAC,
        ClientConfig(
            policy=policy,
            wakelock_timeout_s=profile.wakelock_timeout_s,
            resume_duration_s=profile.resume_duration_s,
            suspend_duration_s=profile.suspend_duration_s,
        ),
    )
    medium.attach(client)
    record = ap.associate(client.mac, hide_capable=True)
    client.set_aid(record.aid)
    client.open_port(USEFUL_PORT)
    sniffer = ProtocolSniffer(frame_filter=(DataFrame,))
    medium.attach(sniffer)
    for time, port in _offered_schedule(duration_s):
        packet = build_broadcast_udp_packet(port, b"x" * 120)
        sim.schedule(time, lambda p=packet: ap.deliver_from_ds(p, WIRED))
    sim.run(until=duration_s)
    return client, sniffer


def _events_from_capture(sniffer, useful_only: bool) -> List[FrameEvent]:
    events = []
    for captured in sniffer.captures:
        frame = captured.frame
        if not frame.is_broadcast:
            continue
        port = frame_udp_port(frame)
        useful = port == USEFUL_PORT
        if useful_only and not useful:
            continue
        events.append(
            FrameEvent(
                time=captured.time,
                length_bytes=captured.length_bytes,
                rate_bps=captured.rate_bps,
                useful=useful,
                more_data=frame.more_data,
            )
        )
    return events


def compute(
    duration_s: float = 60.0, profile: DeviceEnergyProfile = NEXUS_ONE
) -> ValidationResult:
    if duration_s <= 10.0:
        raise ConfigurationError("need a non-trivial window to validate over")
    rows: List[AgreementRow] = []
    model = EnergyModel(profile)
    tau = profile.wakelock_timeout_s

    for policy, useful_only, wakelock_fn in (
        (ClientPolicy.RECEIVE_ALL, False, None),
        (ClientPolicy.CLIENT_SIDE, False,
         lambda e: tau if e.useful else 0.0),
        (ClientPolicy.HIDE, True, None),
    ):
        client, sniffer = _run_des(policy, duration_s, profile)
        events = _events_from_capture(sniffer, useful_only=useful_only)
        dynamics = model.derive_dynamics(events, wakelock_fn)
        timeline = build_timeline(dynamics, profile, duration_s)

        rows.append(
            AgreementRow(
                policy=policy.value,
                quantity="resumes",
                des_value=float(client.power.counters.resumes),
                model_value=float(
                    sum(1 for d in dynamics if d.suspended_on_arrival)
                ),
            )
        )
        rows.append(
            AgreementRow(
                policy=policy.value,
                quantity="wakelock_s",
                des_value=client.wakelock.total_held_time(),
                model_value=sum(d.coverage_increment for d in dynamics),
            )
        )
        rows.append(
            AgreementRow(
                policy=policy.value,
                quantity="suspend_fraction",
                des_value=client.suspend_fraction(duration_s),
                model_value=timeline.suspend_fraction,
            )
        )
    return ValidationResult(
        device=profile.name, duration_s=duration_s, rows=tuple(rows)
    )


def render(result: Optional[ValidationResult] = None) -> str:
    if result is None:
        result = compute()
    table_rows = [
        [
            row.policy,
            row.quantity,
            f"{row.des_value:.3f}",
            f"{row.model_value:.3f}",
            f"{row.relative_error:.1%}",
        ]
        for row in result.rows
    ]
    return render_table(
        ["policy", "quantity", "DES", "closed form", "rel. error"],
        table_rows,
        title=(
            f"Extension: DES vs Section IV closed form on one schedule "
            f"({result.duration_s:.0f} s, {result.device})"
        ),
    )


def main() -> None:
    print(render())


if __name__ == "__main__":
    main()
