"""Figure 9: fraction of time in suspend mode (Nexus One)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.energy import DeviceEnergyProfile, NEXUS_ONE
from repro.experiments.context import EvaluationContext, default_context
from repro.reporting import render_bar_chart, render_series_table
from repro.solutions import ClientSideSolution, HideSolution, ReceiveAllSolution

#: Paper order of the four bars per trace.
SOLUTION_LABELS = ("receive-all", "client-side", "HIDE:10%", "HIDE:2%")


@dataclass(frozen=True)
class Figure9Result:
    device: str
    scenarios: Tuple[str, ...]
    #: scenario -> fractions in SOLUTION_LABELS order.
    suspend_fractions: Dict[str, Tuple[float, ...]]


def compute(
    context: Optional[EvaluationContext] = None,
    profile: DeviceEnergyProfile = NEXUS_ONE,
) -> Figure9Result:
    context = context or default_context()
    fractions: Dict[str, Tuple[float, ...]] = {}
    for scenario in context.scenarios:
        receive_all = context.solution_result(
            ReceiveAllSolution(), scenario, 0.10, profile
        )
        client_side = context.solution_result(
            ClientSideSolution(), scenario, 0.10, profile
        )
        hide10 = context.solution_result(HideSolution(), scenario, 0.10, profile)
        hide2 = context.solution_result(HideSolution(), scenario, 0.02, profile)
        fractions[scenario.name] = (
            receive_all.suspend_fraction,
            client_side.suspend_fraction,
            hide10.suspend_fraction,
            hide2.suspend_fraction,
        )
    return Figure9Result(
        device=profile.name,
        scenarios=tuple(s.name for s in context.scenarios),
        suspend_fractions=fractions,
    )


def render(result: Optional[Figure9Result] = None) -> str:
    if result is None:
        result = compute()
    blocks = [
        f"Figure 9: fraction of time in suspend mode ({result.device})",
        render_series_table(
            "trace",
            list(result.scenarios),
            {
                label: [
                    result.suspend_fractions[s][index] for s in result.scenarios
                ]
                for index, label in enumerate(SOLUTION_LABELS)
            },
        ),
    ]
    for scenario in result.scenarios:
        blocks.append(
            render_bar_chart(
                list(SOLUTION_LABELS),
                [f * 100 for f in result.suspend_fractions[scenario]],
                title=scenario,
                unit="%",
                max_value=100.0,
            )
        )
    return "\n\n".join(blocks)


def main() -> None:
    print(render())


if __name__ == "__main__":
    main()
