"""Run every experiment and assemble one report."""

from __future__ import annotations

from typing import List, Optional

from repro.experiments import (
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    headline,
    sensitivity,
    table1,
    table2,
)
from repro.experiments.context import EvaluationContext, default_context

_RULE = "=" * 72


def run_all(context: Optional[EvaluationContext] = None) -> str:
    """Execute all table/figure reproductions; return the full report."""
    context = context or default_context()
    sections: List[str] = []
    sections.append(table1.render())
    sections.append(table2.render())
    sections.append(figure6.render(figure6.compute(context)))
    sections.append(figure7.render(figure7.compute(context)))
    sections.append(figure8.render(figure8.compute(context)))
    sections.append(figure9.render(figure9.compute(context)))
    sections.append(figure10.render())
    sections.append(figure11.render())
    sections.append(figure12.render())
    sections.append(headline.render(headline.compute(context)))
    sections.append(sensitivity.render(sensitivity.compute(context)))
    return ("\n" + _RULE + "\n").join(sections)


def main() -> None:
    print(run_all())


if __name__ == "__main__":
    main()
