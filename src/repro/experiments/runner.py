"""Run every experiment and assemble one report.

Each section is timed with a wall clock; the report ends with a
"Section timings" table so slow figures are visible in CI logs, and a
tracer (``--trace-log`` on the CLI) receives one ``experiment_section``
span per section for machine post-processing.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Tuple

from repro.experiments import (
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    headline,
    sensitivity,
    table1,
    table2,
)
from repro.experiments.context import EvaluationContext, default_context
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACER
from repro.reporting import render_table

_RULE = "=" * 72

#: (section name, render callable taking the shared context).
_SECTIONS: Tuple[Tuple[str, Callable[[EvaluationContext], str]], ...] = (
    ("table1", lambda context: table1.render()),
    ("table2", lambda context: table2.render()),
    ("figure6", lambda context: figure6.render(figure6.compute(context))),
    ("figure7", lambda context: figure7.render(figure7.compute(context))),
    ("figure8", lambda context: figure8.render(figure8.compute(context))),
    ("figure9", lambda context: figure9.render(figure9.compute(context))),
    ("figure10", lambda context: figure10.render()),
    ("figure11", lambda context: figure11.render()),
    ("figure12", lambda context: figure12.render()),
    ("headline", lambda context: headline.render(headline.compute(context))),
    ("sensitivity", lambda context: sensitivity.render(sensitivity.compute(context))),
)


def render_section_timings(timings: List[Tuple[str, float]]) -> str:
    """The per-section wall-time table appended to every full run."""
    total = sum(elapsed for _, elapsed in timings)
    rows = [
        [name, f"{elapsed:.3f}", f"{elapsed / total:.1%}" if total > 0 else "-"]
        for name, elapsed in timings
    ]
    rows.append(["total", f"{total:.3f}", "100.0%" if total > 0 else "-"])
    return render_table(
        ["section", "wall time (s)", "share"], rows, title="Section timings"
    )


def run_all(
    context: Optional[EvaluationContext] = None,
    tracer=NULL_TRACER,
    registry: Optional[MetricsRegistry] = None,
) -> str:
    """Execute all table/figure reproductions; return the full report.

    ``tracer`` receives an ``experiment_section`` span per section;
    ``registry`` (when given) accumulates the same wall times as
    ``repro_experiment_section_seconds_total`` counters.
    """
    context = context or default_context()
    sections: List[str] = []
    timings: List[Tuple[str, float]] = []
    for name, render_section in _SECTIONS:
        start = time.perf_counter()
        text = render_section(context)
        elapsed = time.perf_counter() - start
        timings.append((name, elapsed))
        sections.append(text)
        if tracer.enabled:
            tracer.span_record("experiment_section", elapsed, section=name)
        if registry is not None:
            registry.counter(
                "repro_experiment_section_seconds_total",
                "Wall time per experiment section",
                labels={"section": name},
            ).inc(elapsed)
    sections.append(render_section_timings(timings))
    return ("\n" + _RULE + "\n").join(sections)


def main() -> None:
    print(run_all())


if __name__ == "__main__":
    main()
