"""One module per paper table/figure, plus the headline-claims check.

Every module exposes ``compute(...)`` returning a result object and
``render(result)`` returning the printable reproduction. ``run_all``
(in :mod:`repro.experiments.runner`) executes the lot and assembles an
EXPERIMENTS-style report.
"""

from repro.experiments.context import EvaluationContext
from repro.experiments import (
    table1,
    table2,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    figure11,
    figure12,
    headline,
    sensitivity,
    adoption,
    validation,
)
from repro.experiments.runner import run_all

__all__ = [
    "EvaluationContext",
    "table1",
    "table2",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "headline",
    "sensitivity",
    "adoption",
    "validation",
    "run_all",
]
