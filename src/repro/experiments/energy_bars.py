"""Shared machinery for Figures 7 and 8 (per-device energy bar grids)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.energy import COMPONENT_LABELS, DeviceEnergyProfile
from repro.experiments.context import EvaluationContext, default_context
from repro.reporting import render_table
from repro.solutions import SolutionResult


@dataclass(frozen=True)
class EnergyBar:
    """One bar: a solution's component average powers in mW."""

    label: str
    components_mw: Tuple[float, ...]  # ordered as COMPONENT_LABELS

    @property
    def total_mw(self) -> float:
        return sum(self.components_mw)


@dataclass(frozen=True)
class EnergyBarGrid:
    """One figure: scenarios × bars."""

    device: str
    bar_labels: Tuple[str, ...]
    scenarios: Tuple[str, ...]
    bars: Dict[str, Tuple[EnergyBar, ...]]

    def total_mw(self, scenario: str, bar_label: str) -> float:
        for bar in self.bars[scenario]:
            if bar.label == bar_label:
                return bar.total_mw
        raise KeyError(bar_label)

    def hide_savings(self, scenario: str, hide_label: str) -> float:
        """Energy saving of a HIDE bar vs receive-all, as a fraction."""
        baseline = self.total_mw(scenario, "receive-all")
        return 1.0 - self.total_mw(scenario, hide_label) / baseline


def _bar_from_result(result: SolutionResult, label: str) -> EnergyBar:
    powers = result.breakdown.component_power_w()
    return EnergyBar(
        label=label,
        components_mw=tuple(powers[c] * 1e3 for c in COMPONENT_LABELS),
    )


def compute_grid(
    profile: DeviceEnergyProfile, context: Optional[EvaluationContext] = None
) -> EnergyBarGrid:
    context = context or default_context()
    labels = ["receive-all", "client-side"] + [
        f"HIDE:{fraction:.0%}" for fraction in context.fractions
    ]
    bars: Dict[str, Tuple[EnergyBar, ...]] = {}
    for scenario in context.scenarios:
        results = context.energy_bars(scenario, profile)
        bars[scenario.name] = tuple(
            _bar_from_result(result, label)
            for result, label in zip(results, labels)
        )
    return EnergyBarGrid(
        device=profile.name,
        bar_labels=tuple(labels),
        scenarios=tuple(s.name for s in context.scenarios),
        bars=bars,
    )


def render_grid(grid: EnergyBarGrid, figure_name: str) -> str:
    blocks: List[str] = [
        f"{figure_name}: energy consumption comparison ({grid.device}). "
        "Average power in mW, broken into the Eq. (2) components."
    ]
    for scenario in grid.scenarios:
        headers = ["solution"] + list(COMPONENT_LABELS) + ["total"]
        rows = []
        for bar in grid.bars[scenario]:
            rows.append(
                [bar.label]
                + [f"{value:.1f}" for value in bar.components_mw]
                + [f"{bar.total_mw:.1f}"]
            )
        blocks.append(render_table(headers, rows, title=scenario))
    savings_rows = []
    for scenario in grid.scenarios:
        savings_rows.append(
            [scenario]
            + [
                f"{grid.hide_savings(scenario, label) * 100:.1f}%"
                for label in grid.bar_labels
                if label.startswith("HIDE:")
            ]
        )
    blocks.append(
        render_table(
            ["trace"] + [l for l in grid.bar_labels if l.startswith("HIDE:")],
            savings_rows,
            title="HIDE energy savings vs receive-all",
        )
    )
    return "\n\n".join(blocks)
