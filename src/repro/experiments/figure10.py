"""Figure 10: decrease in network capacity vs HIDE deployment share."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis import CapacityAnalysis
from repro.reporting import render_series_table

STATION_COUNTS: Tuple[int, ...] = (5, 10, 20, 30, 40, 50)
HIDE_FRACTIONS: Tuple[float, ...] = (0.05, 0.25, 0.50, 0.75)

#: Paper settings: a 50-port UDP Port Message every 10 seconds.
PORT_MESSAGE_INTERVAL_S = 10.0
PORTS_PER_MESSAGE = 50


@dataclass(frozen=True)
class Figure10Result:
    station_counts: Tuple[int, ...]
    hide_fractions: Tuple[float, ...]
    #: fraction -> decrease per station count (as fractions of capacity).
    decreases: Dict[float, Tuple[float, ...]]
    baseline_capacity_bps: Dict[int, float]


def compute(analysis: Optional[CapacityAnalysis] = None) -> Figure10Result:
    analysis = analysis or CapacityAnalysis()
    decreases: Dict[float, Tuple[float, ...]] = {}
    baselines: Dict[int, float] = {}
    for fraction in HIDE_FRACTIONS:
        row = []
        for stations in STATION_COUNTS:
            result = analysis.evaluate(
                stations,
                fraction,
                port_message_interval_s=PORT_MESSAGE_INTERVAL_S,
                ports_per_message=PORTS_PER_MESSAGE,
            )
            row.append(result.capacity_decrease)
            baselines[stations] = result.baseline_capacity_bps
        decreases[fraction] = tuple(row)
    return Figure10Result(
        station_counts=STATION_COUNTS,
        hide_fractions=HIDE_FRACTIONS,
        decreases=decreases,
        baseline_capacity_bps=baselines,
    )


def render(result: Optional[Figure10Result] = None) -> str:
    if result is None:
        result = compute()
    table = render_series_table(
        "nodes",
        list(result.station_counts),
        {
            f"p = {fraction:.0%}": [d * 100 for d in result.decreases[fraction]]
            for fraction in result.hide_fractions
        },
        value_format="{:.3f}",
        title=(
            "Figure 10: decrease in network capacity (%) with different "
            "percents of HIDE-enabled nodes"
        ),
    )
    worst = max(
        d for row in result.decreases.values() for d in row
    )
    note = (
        f"Worst case: {worst * 100:.3f}% "
        f"(paper: 0.13% with 50 nodes, p = 75%)."
    )
    return table + "\n" + note


def main() -> None:
    print(render())


if __name__ == "__main__":
    main()
