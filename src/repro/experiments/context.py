"""Shared evaluation context: traces, masks, and solution sweeps.

Generating a scenario trace takes a noticeable fraction of a second, so
the context memoizes traces and usefulness masks across the experiment
modules that share them (Figures 6-9 and the headline check).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.energy import DeviceEnergyProfile, GALAXY_S4, NEXUS_ONE
from repro.solutions import (
    ClientSideSolution,
    HideSolution,
    ReceiveAllSolution,
    Solution,
    SolutionResult,
)
from repro.traces import (
    BroadcastTrace,
    PAPER_SCENARIOS,
    ScenarioSpec,
    UsefulnessAssignment,
    clustered_fraction_mask,
    generate_trace,
)

#: The useful-fraction sweep of Figures 7-8, in paper order.
USEFUL_FRACTIONS: Tuple[float, ...] = (0.10, 0.08, 0.06, 0.04, 0.02)

#: Seed for usefulness masks (fixed so reruns are identical).
MASK_SEED = 42


class EvaluationContext:
    """Caches traces and masks for one experiment run."""

    def __init__(
        self,
        scenarios: Sequence[ScenarioSpec] = PAPER_SCENARIOS,
        fractions: Sequence[float] = USEFUL_FRACTIONS,
        mask_seed: int = MASK_SEED,
    ) -> None:
        self.scenarios = tuple(scenarios)
        self.fractions = tuple(fractions)
        self.mask_seed = mask_seed
        self._traces: Dict[str, BroadcastTrace] = {}
        self._masks: Dict[Tuple[str, float], UsefulnessAssignment] = {}

    def trace(self, scenario: ScenarioSpec) -> BroadcastTrace:
        if scenario.name not in self._traces:
            self._traces[scenario.name] = generate_trace(scenario)
        return self._traces[scenario.name]

    def mask(self, scenario: ScenarioSpec, fraction: float) -> UsefulnessAssignment:
        key = (scenario.name, fraction)
        if key not in self._masks:
            self._masks[key] = clustered_fraction_mask(
                self.trace(scenario), fraction, seed=self.mask_seed
            )
        return self._masks[key]

    # -- solution sweeps ------------------------------------------------

    def energy_bars(
        self, scenario: ScenarioSpec, profile: DeviceEnergyProfile
    ) -> List[SolutionResult]:
        """The seven bars of one Figure 7/8 subplot, in paper order:
        receive-all, client-side, HIDE at 10/8/6/4/2 % useful."""
        trace = self.trace(scenario)
        reference_mask = self.mask(scenario, self.fractions[0])
        bars: List[SolutionResult] = [
            ReceiveAllSolution().evaluate(trace, reference_mask, profile),
            ClientSideSolution().evaluate(trace, reference_mask, profile),
        ]
        for fraction in self.fractions:
            bars.append(
                HideSolution().evaluate(trace, self.mask(scenario, fraction), profile)
            )
        return bars

    def solution_result(
        self,
        solution: Solution,
        scenario: ScenarioSpec,
        fraction: float,
        profile: DeviceEnergyProfile,
    ) -> SolutionResult:
        return solution.evaluate(
            self.trace(scenario), self.mask(scenario, fraction), profile
        )


def default_context() -> EvaluationContext:
    """A fresh context over the five paper scenarios."""
    return EvaluationContext()
