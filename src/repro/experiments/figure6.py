"""Figure 6: CDFs of broadcast traffic volume (frames/s) per scenario."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.experiments.context import EvaluationContext, default_context
from repro.reporting import render_cdf, render_series_table


@dataclass(frozen=True)
class Figure6Result:
    """Per-scenario CDF points and means."""

    cdf_points: Dict[str, Tuple[Tuple[float, float], ...]]
    means: Dict[str, float]
    sample_grid: Tuple[int, ...]
    cdf_at_grid: Dict[str, Tuple[float, ...]]


def compute(context: Optional[EvaluationContext] = None) -> Figure6Result:
    context = context or default_context()
    grid = tuple(range(0, 51, 5))
    cdf_points: Dict[str, Tuple[Tuple[float, float], ...]] = {}
    means: Dict[str, float] = {}
    cdf_at_grid: Dict[str, Tuple[float, ...]] = {}
    for scenario in context.scenarios:
        cdf = context.trace(scenario).volume_cdf()
        cdf_points[scenario.name] = tuple(cdf.points())
        means[scenario.name] = cdf.mean
        cdf_at_grid[scenario.name] = tuple(cdf.evaluate(x) for x in grid)
    return Figure6Result(
        cdf_points=cdf_points,
        means=means,
        sample_grid=grid,
        cdf_at_grid=cdf_at_grid,
    )


def render(result: Optional[Figure6Result] = None) -> str:
    if result is None:
        result = compute()
    blocks: List[str] = [
        "Figure 6: broadcast traffic volumes in traces "
        "(CDF of UDP-padded broadcast frames per second)"
    ]
    blocks.append(
        render_series_table(
            "frames/s",
            list(result.sample_grid),
            {name: list(values) for name, values in result.cdf_at_grid.items()},
            title="Empirical CDF values",
        )
    )
    mean_lines = [
        f"  {name}: mean = {mean:.2f} frames/s" for name, mean in result.means.items()
    ]
    blocks.append("Trace means (the black squares in the paper):\n" + "\n".join(mean_lines))
    for name, points in result.cdf_points.items():
        blocks.append(render_cdf(points, title=f"{name}", x_max=50))
    return "\n\n".join(blocks)


def main() -> None:
    print(render())


if __name__ == "__main__":
    main()
