"""Figure 8: energy consumption comparison on the Galaxy S4."""

from __future__ import annotations

from typing import Optional

from repro.energy import GALAXY_S4
from repro.experiments.context import EvaluationContext
from repro.experiments.energy_bars import EnergyBarGrid, compute_grid, render_grid


def compute(context: Optional[EvaluationContext] = None) -> EnergyBarGrid:
    return compute_grid(GALAXY_S4, context)


def render(grid: Optional[EnergyBarGrid] = None) -> str:
    if grid is None:
        grid = compute()
    return render_grid(grid, "Figure 8")


def main() -> None:
    print(render())


if __name__ == "__main__":
    main()
