"""Table II: the 802.11b network configuration (analysis inputs)."""

from __future__ import annotations

from repro.analysis.netconfig import DOT11B_CONFIG, NetworkConfig
from repro.reporting import render_table


def compute(config: NetworkConfig = DOT11B_CONFIG):
    return [
        ["min contention window", str(config.cw_min)],
        ["max contention window", str(config.cw_max)],
        ["slot time", f"{config.slot_time_s * 1e6:.0f} us"],
        ["SIFS", f"{config.sifs_s * 1e6:.0f} us"],
        ["DIFS", f"{config.difs_s * 1e6:.0f} us"],
        ["propagation delay", f"{config.propagation_delay_s * 1e6:.0f} us"],
        ["channel data rate", f"{config.channel_rate_bps / 1e6:.0f} Mbits/s"],
        ["MAC header", f"{config.mac_header_bits} bits"],
        ["PHY preamble + header", f"{config.phy_overhead_bits} bits"],
        ["average data payload size", f"{config.payload_bits} bits"],
    ]


def render(rows=None) -> str:
    if rows is None:
        rows = compute()
    return render_table(
        ["parameter", "value"],
        rows,
        title="Table II: network configuration for overhead analysis",
    )


def main() -> None:
    print(render())


if __name__ == "__main__":
    main()
