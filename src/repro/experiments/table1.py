"""Table I: the device energy/power profiles (model inputs)."""

from __future__ import annotations

from typing import List, Tuple

from repro.energy.profile import ALL_PROFILES, DeviceEnergyProfile
from repro.reporting import render_table


def compute(profiles: Tuple[DeviceEnergyProfile, ...] = ALL_PROFILES):
    """Return the profiles as rendered in the paper's units."""
    rows: List[List[str]] = []
    for profile in profiles:
        rows.append(
            [
                profile.name,
                f"{profile.wakelock_timeout_s:.0f} s",
                f"{profile.resume_duration_s * 1e3:.0f} ms",
                f"{profile.suspend_duration_s * 1e3:.0f} ms",
                f"{profile.resume_energy_j * 1e3:.2f} mJ",
                f"{profile.suspend_energy_j * 1e3:.2f} mJ",
                f"{profile.beacon_rx_j * 1e3:.2f} mJ",
                f"{profile.rx_power_w * 1e3:.0f} mW",
                f"{profile.tx_power_w * 1e3:.0f} mW",
                f"{profile.idle_power_w * 1e3:.0f} mW",
                f"{profile.suspend_power_w * 1e3:.0f} mW",
                f"{profile.active_idle_power_w * 1e3:.0f} mW",
            ]
        )
    return rows


def render(rows=None) -> str:
    if rows is None:
        rows = compute()
    headers = [
        "Device", "tau", "Trm", "Tsp", "Erm", "Esp",
        "Eb_u", "Pr", "Pt", "Pidle", "Pss", "Psa",
    ]
    return render_table(
        headers, rows, title="Table I: energy/power consumption measured from phones"
    )


def main() -> None:
    print(render())


if __name__ == "__main__":
    main()
