"""Extension experiment: fleet energy vs HIDE adoption, measured in the DES.

The paper evaluates one client at a time against traces; this experiment
runs an actual BSS — one AP, a population of phones with mixed service
interests — and sweeps what fraction of the phones run HIDE, metering
every phone with :class:`~repro.energy.meter.ClientEnergyMeter`. It
answers the deployment question the paper's Section V only brushes:
what does *partial* adoption buy the fleet?

(The DES is expensive relative to the closed form, so the default
workload is minutes, not the traces' full hour.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.ap.access_point import AccessPoint, ApConfig
from repro.dot11.mac_address import MacAddress
from repro.energy.meter import ClientEnergyMeter
from repro.energy.profile import DeviceEnergyProfile, NEXUS_ONE
from repro.errors import ConfigurationError
from repro.net.packet import build_broadcast_udp_packet
from repro.net.ports import WELL_KNOWN_BROADCAST_SERVICES
from repro.reporting import render_table
from repro.sim.engine import Simulator
from repro.sim.medium import Medium
from repro.station.client import Client, ClientConfig, ClientPolicy

AP_MAC = MacAddress.from_string("02:aa:00:00:00:01")
WIRED = MacAddress.from_string("02:bb:00:00:00:99")

#: Services phones in the sweep may care about.
_INTERESTS: Tuple[Tuple[int, ...], ...] = ((5353,), (1900,), (17500,), ())


@dataclass(frozen=True)
class AdoptionPoint:
    """One swept adoption level."""

    hide_fraction: float
    clients: int
    mean_power_mw: float
    mean_hide_power_mw: float
    mean_legacy_power_mw: float
    mean_suspend_fraction: float


@dataclass(frozen=True)
class AdoptionResult:
    device: str
    duration_s: float
    points: Tuple[AdoptionPoint, ...]


def _run_bss(
    hide_count: int,
    total_clients: int,
    duration_s: float,
    profile: DeviceEnergyProfile,
    seed: int,
) -> Tuple[List[Client], List[ClientPolicy]]:
    sim = Simulator()
    medium = Medium(sim)
    ap = AccessPoint(AP_MAC, medium, ApConfig())
    medium.attach(ap)
    rng = random.Random(seed)

    clients: List[Client] = []
    policies: List[ClientPolicy] = []
    for index in range(total_clients):
        policy = (
            ClientPolicy.HIDE if index < hide_count else ClientPolicy.RECEIVE_ALL
        )
        mac = MacAddress.station(index + 1)
        client = Client(
            mac, medium, AP_MAC,
            ClientConfig(
                policy=policy,
                wakelock_timeout_s=profile.wakelock_timeout_s,
                resume_duration_s=profile.resume_duration_s,
                suspend_duration_s=profile.suspend_duration_s,
            ),
        )
        medium.attach(client)
        record = ap.associate(mac, hide_capable=policy is ClientPolicy.HIDE)
        client.set_aid(record.aid)
        for port in _INTERESTS[index % len(_INTERESTS)]:
            client.open_port(port)
        clients.append(client)
        policies.append(policy)

    # Broadcast chatter: a weighted mix of services at ~2 frames/s.
    ports = sorted(WELL_KNOWN_BROADCAST_SERVICES)
    weights = [WELL_KNOWN_BROADCAST_SERVICES[p].traffic_weight for p in ports]
    time = 0.0
    while True:
        time += rng.expovariate(2.0)
        if time >= duration_s:
            break
        port = rng.choices(ports, weights=weights, k=1)[0]
        packet = build_broadcast_udp_packet(port, b"x" * 120)
        sim.schedule(time, lambda p=packet: ap.deliver_from_ds(p, WIRED))

    sim.run(until=duration_s)
    return clients, policies


def compute(
    fractions: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    total_clients: int = 8,
    duration_s: float = 120.0,
    profile: DeviceEnergyProfile = NEXUS_ONE,
    seed: int = 202,
) -> AdoptionResult:
    if total_clients < 1:
        raise ConfigurationError("need at least one client")
    if duration_s <= 0:
        raise ConfigurationError("duration must be positive")
    points: List[AdoptionPoint] = []
    for fraction in fractions:
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError(f"fraction out of range: {fraction}")
        hide_count = round(fraction * total_clients)
        clients, policies = _run_bss(
            hide_count, total_clients, duration_s, profile, seed
        )
        powers = []
        hide_powers = []
        legacy_powers = []
        suspend_fractions = []
        for client, policy in zip(clients, policies):
            metered = ClientEnergyMeter(client, profile).measure(duration_s)
            power_mw = metered.breakdown.average_power_w * 1e3
            powers.append(power_mw)
            if policy is ClientPolicy.HIDE:
                hide_powers.append(power_mw)
            else:
                legacy_powers.append(power_mw)
            suspend_fractions.append(client.suspend_fraction(duration_s))
        points.append(
            AdoptionPoint(
                hide_fraction=hide_count / total_clients,
                clients=total_clients,
                mean_power_mw=sum(powers) / len(powers),
                mean_hide_power_mw=(
                    sum(hide_powers) / len(hide_powers) if hide_powers else 0.0
                ),
                mean_legacy_power_mw=(
                    sum(legacy_powers) / len(legacy_powers)
                    if legacy_powers
                    else 0.0
                ),
                mean_suspend_fraction=(
                    sum(suspend_fractions) / len(suspend_fractions)
                ),
            )
        )
    return AdoptionResult(
        device=profile.name, duration_s=duration_s, points=tuple(points)
    )


def render(result: Optional[AdoptionResult] = None) -> str:
    if result is None:
        result = compute()
    rows = [
        [
            f"{p.hide_fraction:.0%}",
            f"{p.mean_power_mw:.1f}",
            f"{p.mean_hide_power_mw:.1f}" if p.mean_hide_power_mw else "-",
            f"{p.mean_legacy_power_mw:.1f}" if p.mean_legacy_power_mw else "-",
            f"{p.mean_suspend_fraction:.1%}",
        ]
        for p in result.points
    ]
    return render_table(
        ["adoption", "fleet mW", "HIDE phones mW", "legacy mW", "suspended"],
        rows,
        title=(
            f"Extension: fleet average power vs HIDE adoption "
            f"(DES, {result.points[0].clients} phones, "
            f"{result.duration_s:.0f} s, {result.device})"
        ),
    )


def main() -> None:
    print(render())


if __name__ == "__main__":
    main()
