"""Sharded seed/scenario sweeps: many DES runs, one merged report.

A *sweep* is the cross product of scenarios and trace seeds, each cell
one full deterministic DES replay (:func:`~repro.experiments.des_run
.run_trace_des`).  Cells are independent by construction — every run
builds its own trace, simulator, and (when a fault spec is given) its
own per-seed fault plan — so the sweep shards across worker processes
with no shared state and merges into a report whose content is
**independent of the worker count**: results are keyed and sorted by
``(scenario, seed)``, and the merged fingerprint hashes the sorted
per-run fingerprints.  ``tests/experiments/test_sweep.py`` pins the
1-worker-vs-N-workers identity.

Workers use the ``fork`` start method when the platform offers it
(child processes inherit the parent's imports for free — a ``spawn``
would re-import the package per worker, dwarfing the per-run work) and
fall back to in-process execution otherwise, so the runner behaves
identically — minus the parallelism — on any platform.

The report (schema ``repro-sweep/v1``) is JSON-serializable and
diffable; per-run failures (invariant violations, configuration
errors) are captured as structured entries instead of aborting the
sweep, so one bad seed out of fifty still yields a complete report
with that seed called out.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.experiments.des_run import DesRunConfig, TelemetryConfig, run_trace_des
from repro.faults import FaultPlan
from repro.sim.invariants import InvariantViolation
from repro.traces import generate_trace, scenario_by_name

SWEEP_SCHEMA = "repro-sweep/v1"


@dataclass(frozen=True)
class SweepSpec:
    """One sweep: scenarios x seeds under a shared run configuration.

    ``fault_spec`` is a :meth:`~repro.faults.plan.FaultPlan.parse` spec
    (inline string or JSON file path); its ``seed`` field is overridden
    with each run's trace seed, so every cell gets an independent but
    reproducible failure schedule.  ``timeseries_dir`` turns on per-run
    windowed telemetry and dumps one ``<scenario>_seed<seed>.json``
    per cell.
    """

    scenarios: Tuple[str, ...]
    seeds: Tuple[int, ...]
    config: DesRunConfig = DesRunConfig()
    fault_spec: Optional[str] = None
    timeseries_dir: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ConfigurationError("sweep needs at least one scenario")
        if not self.seeds:
            raise ConfigurationError("sweep needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ConfigurationError(f"duplicate seeds in sweep: {self.seeds}")
        for name in self.scenarios:
            scenario_by_name(name)  # raises ReproError on a bad name
        if self.fault_spec is not None:
            FaultPlan.parse(self.fault_spec)  # validate eagerly, once

    def cells(self) -> List[Tuple[str, int]]:
        """Every (scenario, seed) pair, in deterministic order."""
        return [(s, seed) for s in self.scenarios for seed in self.seeds]


def _run_cell(task: Tuple[str, int, SweepSpec]) -> Dict[str, object]:
    """Execute one sweep cell; never raises (failures become entries)."""
    scenario, seed, spec = task
    entry: Dict[str, object] = {"scenario": scenario, "seed": seed}
    try:
        config = spec.config
        if spec.fault_spec is not None:
            plan = FaultPlan.parse(spec.fault_spec)
            config = dataclasses.replace(
                config, fault_plan=dataclasses.replace(plan, seed=seed)
            )
        if spec.timeseries_dir is not None and config.telemetry is None:
            config = dataclasses.replace(config, telemetry=TelemetryConfig())
        trace = generate_trace(scenario_by_name(scenario), seed=seed)
        result = run_trace_des(trace, config)
        try:
            entry.update(
                fingerprint=result.deterministic_fingerprint(),
                events=result.simulator.events_processed,
                duration_s=result.duration_s,
                transmissions=result.medium.transmissions_completed,
                frames_dropped=result.medium.frames_dropped,
                queue_kind=result.simulator.queue_kind,
            )
            if spec.timeseries_dir is not None and result.timeseries is not None:
                path = os.path.join(
                    spec.timeseries_dir, f"{scenario}_seed{seed}.json"
                )
                result.timeseries.write(path)
                entry["timeseries"] = path
        finally:
            result.close()
    except InvariantViolation as exc:
        entry["error"] = f"invariant violation: {exc}"
    except ReproError as exc:
        entry["error"] = str(exc)
    return entry


def merge_results(
    spec: SweepSpec, results: Sequence[Dict[str, object]], workers: int
) -> Dict[str, object]:
    """Fold per-cell results into one ``repro-sweep/v1`` document.

    Pure: the output depends only on the result *set*, never on arrival
    order or worker count — entries are sorted by (scenario, seed) and
    the merged fingerprint hashes that sorted sequence.
    """
    runs = sorted(results, key=lambda r: (r["scenario"], r["seed"]))
    failures = [r for r in runs if "error" in r]
    successes = [r for r in runs if "error" not in r]
    digest = hashlib.sha256()
    for run in successes:
        digest.update(
            f"{run['scenario']}:{run['seed']}:{run['fingerprint']}\n".encode()
        )
    return {
        "schema": SWEEP_SCHEMA,
        "scenarios": list(spec.scenarios),
        "seeds": list(spec.seeds),
        "workers": workers,
        "runs": runs,
        "totals": {
            "cells": len(runs),
            "succeeded": len(successes),
            "failed": len(failures),
            "events": sum(int(r["events"]) for r in successes),
            "transmissions": sum(int(r["transmissions"]) for r in successes),
            "frames_dropped": sum(int(r["frames_dropped"]) for r in successes),
        },
        "failures": [
            {"scenario": r["scenario"], "seed": r["seed"], "error": r["error"]}
            for r in failures
        ],
        "merged_fingerprint": digest.hexdigest(),
    }


def run_sweep(spec: SweepSpec, workers: int = 1) -> Dict[str, object]:
    """Run every cell of ``spec`` across ``workers`` processes.

    ``workers <= 1`` (or a platform without ``fork``) runs in-process;
    either way the merged report is identical.
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1: {workers}")
    if spec.timeseries_dir is not None:
        os.makedirs(spec.timeseries_dir, exist_ok=True)
    tasks = [(scenario, seed, spec) for scenario, seed in spec.cells()]
    effective = min(workers, len(tasks))
    if effective > 1:
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = None
        if context is not None:
            with context.Pool(processes=effective) as pool:
                results = pool.map(_run_cell, tasks)
            return merge_results(spec, results, workers=effective)
        effective = 1
    results = [_run_cell(task) for task in tasks]
    return merge_results(spec, results, workers=effective)


def write_sweep_json(document: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(document, stream, indent=2, sort_keys=True)
        stream.write("\n")


def render_sweep(document: Dict[str, object]) -> str:
    """Human summary: per-scenario rollup plus any failing seeds."""
    from repro.reporting import render_table

    by_scenario: Dict[str, List[Dict[str, object]]] = {}
    for run in document["runs"]:
        by_scenario.setdefault(str(run["scenario"]), []).append(run)
    rows = []
    for scenario in sorted(by_scenario):
        runs = by_scenario[scenario]
        good = [r for r in runs if "error" not in r]
        rows.append(
            [
                scenario,
                f"{len(good)}/{len(runs)}",
                str(sum(int(r["events"]) for r in good)),
                str(sum(int(r["transmissions"]) for r in good)),
                str(sum(int(r["frames_dropped"]) for r in good)),
            ]
        )
    totals = document["totals"]
    lines = [
        render_table(
            ["scenario", "ok", "events", "frames", "dropped"],
            rows,
            title=(
                f"sweep: {totals['cells']} runs on "
                f"{document['workers']} worker(s)"
            ),
        ),
        f"merged fingerprint: {document['merged_fingerprint']}",
    ]
    for failure in document["failures"]:
        lines.append(
            f"FAILED {failure['scenario']} seed {failure['seed']}: "
            f"{failure['error']}"
        )
    return "\n".join(lines)
