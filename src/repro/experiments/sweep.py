"""Sharded seed/scenario sweeps: many DES runs, one merged report.

A *sweep* is the cross product of scenarios and trace seeds, each cell
one full deterministic DES replay (:func:`~repro.experiments.des_run
.run_trace_des`).  Cells are independent by construction — every run
builds its own trace, simulator, and (when a fault spec is given) its
own per-seed fault plan — so the sweep shards across worker processes
with no shared state and merges into a report whose content is
**independent of the worker count**: results are keyed and sorted by
``(scenario, seed)``, and the merged fingerprint hashes the sorted
per-run fingerprints.  ``tests/experiments/test_sweep.py`` pins the
1-worker-vs-N-workers identity.

Workers use the ``fork`` start method when the platform offers it
(child processes inherit the parent's imports for free — a ``spawn``
would re-import the package per worker, dwarfing the per-run work) and
fall back to in-process execution otherwise, so the runner behaves
identically — minus the parallelism — on any platform.

The fleet is observable while it runs, not just at the end:

* Results stream back as cells finish (``imap_unordered``), so a
  ``progress`` callback sees every cell the moment it lands — the
  ``repro sweep`` per-cell progress lines.
* Workers stream heartbeat and cell-lifecycle records over a pipe
  (a fork-context ``SimpleQueue``) to the parent, where a
  :class:`SweepTelemetry` aggregator folds them into live gauges —
  cells done/failed, per-worker events/s and sim clock, merged
  profiler hot totals — served on the usual ``/metrics`` + ``/healthz``
  endpoint via ``repro sweep --serve-metrics``.

The report (schema ``repro-sweep/v1``) is JSON-serializable and
diffable; per-run failures (invariant violations, configuration
errors) are captured as structured entries instead of aborting the
sweep, so one bad seed out of fifty still yields a complete report
with that seed called out.  Host-clock data — per-cell wall times,
worker rollups, the merged attribution profile — lives in the
``telemetry`` and ``profile`` sections, *outside* ``runs``/``totals``/
``merged_fingerprint``, which therefore stay worker-count-invariant.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ReproError
from repro.experiments.des_run import (
    DesRunConfig,
    TelemetryConfig,
    prepare_trace_des,
)
from repro.faults import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import merge_profiles
from repro.sim.invariants import InvariantViolation
from repro.traces import generate_trace, scenario_by_name

SWEEP_SCHEMA = "repro-sweep/v1"

#: Worker-side telemetry sink: set by the pool initializer in forked
#: workers (queue.put) or directly by the in-process path; ``None``
#: keeps every record off the wire.
_WORKER_SINK: Optional[Callable[[Dict[str, object]], None]] = None
_HEARTBEAT_EVERY_S: float = 0.0

#: How many of a cell's hottest sites ride along in its ``cell_done``
#: record (live gauges only; the report merges full profiles).
_HOT_SITES_PER_CELL = 10


def _init_worker(queue, heartbeat_every_s: float) -> None:
    global _WORKER_SINK, _HEARTBEAT_EVERY_S
    _WORKER_SINK = queue.put
    _HEARTBEAT_EVERY_S = heartbeat_every_s


@dataclass(frozen=True)
class SweepSpec:
    """One sweep: scenarios x seeds under a shared run configuration.

    ``fault_spec`` is a :meth:`~repro.faults.plan.FaultPlan.parse` spec
    (inline string or JSON file path); its ``seed`` field is overridden
    with each run's trace seed, so every cell gets an independent but
    reproducible failure schedule.  ``timeseries_dir`` turns on per-run
    windowed telemetry and dumps one ``<scenario>_seed<seed>.json``
    per cell.  ``heartbeat_every_s`` is the simulated-time period of
    worker heartbeat records when a telemetry sink is attached (the
    heartbeat rides an observer probe, so it never perturbs the run's
    fingerprint); set it to 0 to disable heartbeats.
    """

    scenarios: Tuple[str, ...]
    seeds: Tuple[int, ...]
    config: DesRunConfig = DesRunConfig()
    fault_spec: Optional[str] = None
    timeseries_dir: Optional[str] = None
    heartbeat_every_s: float = 1.0

    def __post_init__(self) -> None:
        if not self.scenarios:
            raise ConfigurationError("sweep needs at least one scenario")
        if not self.seeds:
            raise ConfigurationError("sweep needs at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ConfigurationError(f"duplicate seeds in sweep: {self.seeds}")
        if self.heartbeat_every_s < 0:
            raise ConfigurationError(
                f"heartbeat period must be >= 0: {self.heartbeat_every_s}"
            )
        for name in self.scenarios:
            scenario_by_name(name)  # raises ReproError on a bad name
        if self.fault_spec is not None:
            FaultPlan.parse(self.fault_spec)  # validate eagerly, once

    def cells(self) -> List[Tuple[str, int]]:
        """Every (scenario, seed) pair, in deterministic order."""
        return [(s, seed) for s in self.scenarios for seed in self.seeds]


def _run_cell(task: Tuple[str, int, SweepSpec]) -> Dict[str, object]:
    """Execute one sweep cell; never raises (failures become entries).

    Deterministic results land in the entry's top level (these feed
    ``runs`` and the merged fingerprint); host-clock observations —
    wall time, events/s, the cell's profile — land under the
    ``telemetry`` key, which :func:`merge_results` strips into the
    report's telemetry section.
    """
    scenario, seed, spec = task
    entry: Dict[str, object] = {"scenario": scenario, "seed": seed}
    sink = _WORKER_SINK
    worker = os.getpid()
    start_wall = time.perf_counter()
    cell_telemetry: Dict[str, object] = {"worker": worker}
    if sink is not None:
        sink(
            {"type": "cell_start", "worker": worker,
             "scenario": scenario, "seed": seed}
        )
    try:
        config = spec.config
        if spec.fault_spec is not None:
            plan = FaultPlan.parse(spec.fault_spec)
            config = dataclasses.replace(
                config, fault_plan=dataclasses.replace(plan, seed=seed)
            )
        if spec.timeseries_dir is not None and config.telemetry is None:
            config = dataclasses.replace(config, telemetry=TelemetryConfig())
        trace = generate_trace(scenario_by_name(scenario), seed=seed)
        prepared = prepare_trace_des(trace, config)
        if sink is not None and _HEARTBEAT_EVERY_S > 0:
            simulator = prepared.simulator

            def heartbeat() -> None:
                sink(
                    {
                        "type": "heartbeat",
                        "worker": worker,
                        "scenario": scenario,
                        "seed": seed,
                        "sim_time": simulator.now,
                        "events": simulator.events_processed,
                        "wall_s": time.perf_counter() - start_wall,
                    }
                )

            simulator.add_probe(_HEARTBEAT_EVERY_S, heartbeat)
        result = prepared.execute()
        try:
            entry.update(
                fingerprint=result.deterministic_fingerprint(),
                events=result.simulator.events_processed,
                duration_s=result.duration_s,
                transmissions=result.medium.transmissions_completed,
                frames_dropped=result.medium.frames_dropped,
                queue_kind=result.simulator.queue_kind,
            )
            if spec.timeseries_dir is not None and result.timeseries is not None:
                path = os.path.join(
                    spec.timeseries_dir, f"{scenario}_seed{seed}.json"
                )
                result.timeseries.write(path)
                entry["timeseries"] = path
            profile = result.profile_report()
            if profile is not None:
                cell_telemetry["profile"] = profile
        finally:
            result.close()
    except InvariantViolation as exc:
        entry["error"] = f"invariant violation: {exc}"
    except ReproError as exc:
        entry["error"] = str(exc)
    wall_s = time.perf_counter() - start_wall
    events = int(entry.get("events", 0))
    cell_telemetry["wall_s"] = wall_s
    cell_telemetry["events_per_second"] = events / wall_s if wall_s > 0 else 0.0
    entry["telemetry"] = cell_telemetry
    if sink is not None:
        done: Dict[str, object] = {
            "type": "cell_done",
            "worker": worker,
            "scenario": scenario,
            "seed": seed,
            "ok": "error" not in entry,
            "wall_s": wall_s,
            "events": events,
        }
        profile = cell_telemetry.get("profile")
        if isinstance(profile, dict):
            done["hot_sites"] = [
                (
                    f"{site['owner']}.{site['method']}",
                    str(site["kind"]),
                    float(site["wall_s"]),
                    float(site["events"]),
                )
                for site in profile.get("sites", [])[:_HOT_SITES_PER_CELL]
            ]
        sink(done)
    return entry


class SweepTelemetry:
    """Thread-safe aggregator for the sweep fleet's live telemetry.

    Consumes the worker records (``cell_start``/``heartbeat``/
    ``cell_done``) plus the parent-side result stream, and renders the
    rollup as registry gauges for the scrape endpoint.  All methods are
    safe to call from the queue-drain thread, the sweep loop, and the
    HTTP server threads concurrently.
    """

    def __init__(self, cells_total: int = 0) -> None:
        self.cells_total = cells_total
        self._lock = threading.Lock()
        self._cells_started = 0
        self._cells_done = 0
        self._cells_failed = 0
        self._events_total = 0
        self._wall_total_s = 0.0
        self._heartbeats = 0
        self._workers: Dict[int, Dict[str, float]] = {}
        self._hot_sites: Dict[Tuple[str, str], List[float]] = {}

    def _worker(self, worker: int) -> Dict[str, float]:
        state = self._workers.get(worker)
        if state is None:
            state = self._workers[worker] = {
                "cells_done": 0.0,
                "cells_failed": 0.0,
                "events": 0.0,
                "wall_s": 0.0,
                "events_per_second": 0.0,
                "sim_time": 0.0,
                "heartbeats": 0.0,
            }
        return state

    def handle(self, record: Dict[str, object]) -> None:
        """Fold one worker record into the rollup."""
        kind = record.get("type")
        with self._lock:
            worker = self._worker(int(record.get("worker", 0)))
            if kind == "cell_start":
                self._cells_started += 1
            elif kind == "heartbeat":
                self._heartbeats += 1
                worker["heartbeats"] += 1
                worker["sim_time"] = float(record.get("sim_time", 0.0))
                wall = float(record.get("wall_s", 0.0))
                events = float(record.get("events", 0))
                if wall > 0:
                    worker["events_per_second"] = events / wall
            elif kind == "cell_done":
                self._cells_done += 1
                worker["cells_done"] += 1
                if not record.get("ok", True):
                    self._cells_failed += 1
                    worker["cells_failed"] += 1
                events = float(record.get("events", 0))
                wall = float(record.get("wall_s", 0.0))
                self._events_total += int(events)
                self._wall_total_s += wall
                worker["events"] += events
                worker["wall_s"] += wall
                if wall > 0:
                    worker["events_per_second"] = events / wall
                for site, site_kind, wall_s, site_events in record.get(
                    "hot_sites", []
                ):
                    bucket = self._hot_sites.setdefault(
                        (str(site), str(site_kind)), [0.0, 0.0]
                    )
                    bucket[0] += float(wall_s)
                    bucket[1] += float(site_events)

    def observe_entry(self, entry: Dict[str, object]) -> None:
        """Fold one finished result entry (the in-process counterpart
        of a ``cell_done`` record, used when no pipe is attached)."""
        telemetry = entry.get("telemetry")
        if not isinstance(telemetry, dict):
            return
        record: Dict[str, object] = {
            "type": "cell_done",
            "worker": telemetry.get("worker", 0),
            "ok": "error" not in entry,
            "wall_s": telemetry.get("wall_s", 0.0),
            "events": entry.get("events", 0),
        }
        profile = telemetry.get("profile")
        if isinstance(profile, dict):
            record["hot_sites"] = [
                (
                    f"{site['owner']}.{site['method']}",
                    str(site["kind"]),
                    float(site["wall_s"]),
                    float(site["events"]),
                )
                for site in profile.get("sites", [])[:_HOT_SITES_PER_CELL]
            ]
        self.handle(record)

    def health(self) -> Dict[str, object]:
        with self._lock:
            return {
                "cells_total": self.cells_total,
                "cells_started": self._cells_started,
                "cells_done": self._cells_done,
                "cells_failed": self._cells_failed,
                "workers": len(self._workers),
                "heartbeats": self._heartbeats,
            }

    def collect_into(self, registry: MetricsRegistry) -> MetricsRegistry:
        """Render the rollup as live gauges (the scrape collect_fn)."""
        with self._lock:
            registry.gauge(
                "repro_sweep_cells_total", "Cells in this sweep"
            ).set(self.cells_total)
            registry.gauge(
                "repro_sweep_cells_started", "Cells workers have begun"
            ).set(self._cells_started)
            registry.gauge(
                "repro_sweep_cells_done", "Cells finished (ok or failed)"
            ).set(self._cells_done)
            registry.gauge(
                "repro_sweep_cells_failed", "Cells that ended in an error"
            ).set(self._cells_failed)
            registry.gauge(
                "repro_sweep_cells_running",
                "Cells started but not yet finished",
            ).set(max(0, self._cells_started - self._cells_done))
            registry.counter(
                "repro_sweep_events_total",
                "Engine events across finished cells",
            ).set_total(self._events_total)
            registry.counter(
                "repro_sweep_run_wall_seconds_total",
                "Wall seconds across finished cells",
            ).set_total(self._wall_total_s)
            registry.counter(
                "repro_sweep_heartbeats_total", "Worker heartbeat records"
            ).set_total(self._heartbeats)
            for worker, state in sorted(self._workers.items()):
                labels = {"worker": str(worker)}
                registry.gauge(
                    "repro_sweep_worker_cells_done",
                    "Finished cells by worker process",
                    labels=labels,
                ).set(state["cells_done"])
                registry.gauge(
                    "repro_sweep_worker_cells_failed",
                    "Failed cells by worker process",
                    labels=labels,
                ).set(state["cells_failed"])
                registry.gauge(
                    "repro_sweep_worker_events_per_second",
                    "Engine throughput at the worker's last report",
                    labels=labels,
                ).set(state["events_per_second"])
                registry.gauge(
                    "repro_sweep_worker_sim_time_seconds",
                    "Simulation clock at the worker's last heartbeat",
                    labels=labels,
                ).set(state["sim_time"])
            for (site, kind), (wall_s, events) in sorted(self._hot_sites.items()):
                labels = {"site": site, "kind": kind}
                registry.counter(
                    "repro_sweep_profile_wall_seconds_total",
                    "Attributed wall seconds by site across finished cells",
                    labels=labels,
                ).set_total(wall_s)
                registry.counter(
                    "repro_sweep_profile_events_total",
                    "Attributed events by site across finished cells",
                    labels=labels,
                ).set_total(events)
        return registry


def merge_results(
    spec: SweepSpec, results: Sequence[Dict[str, object]], workers: int
) -> Dict[str, object]:
    """Fold per-cell results into one ``repro-sweep/v1`` document.

    Pure: ``runs``, ``totals``, and ``merged_fingerprint`` depend only
    on the result *set*, never on arrival order or worker count —
    entries are sorted by (scenario, seed) and the merged fingerprint
    hashes that sorted sequence.  Host-clock observations are split off
    into ``telemetry`` (per-cell walls, per-worker rollup) and
    ``profile`` (the merged attribution profile), which naturally vary
    between executions.
    """
    ordered = sorted(results, key=lambda r: (r["scenario"], r["seed"]))
    runs: List[Dict[str, object]] = []
    telemetry_cells: List[Dict[str, object]] = []
    profiles: List[Dict[str, object]] = []
    for result in ordered:
        run = dict(result)
        cell_telemetry = run.pop("telemetry", None)
        if isinstance(cell_telemetry, dict):
            cell = {
                "scenario": run["scenario"],
                "seed": run["seed"],
                **{k: v for k, v in cell_telemetry.items() if k != "profile"},
            }
            profile = cell_telemetry.get("profile")
            if isinstance(profile, dict):
                profiles.append(profile)
            telemetry_cells.append(cell)
        runs.append(run)
    failures = [r for r in runs if "error" in r]
    successes = [r for r in runs if "error" not in r]
    digest = hashlib.sha256()
    for run in successes:
        digest.update(
            f"{run['scenario']}:{run['seed']}:{run['fingerprint']}\n".encode()
        )
    by_worker: Dict[str, Dict[str, float]] = {}
    for cell in telemetry_cells:
        state = by_worker.setdefault(
            str(cell.get("worker", 0)),
            {"cells": 0.0, "wall_s": 0.0, "events_per_second_mean": 0.0},
        )
        state["cells"] += 1
        state["wall_s"] += float(cell.get("wall_s", 0.0))
        state["events_per_second_mean"] += float(
            cell.get("events_per_second", 0.0)
        )
    for state in by_worker.values():
        if state["cells"]:
            state["events_per_second_mean"] /= state["cells"]
    document: Dict[str, object] = {
        "schema": SWEEP_SCHEMA,
        "scenarios": list(spec.scenarios),
        "seeds": list(spec.seeds),
        "workers": workers,
        "runs": runs,
        "totals": {
            "cells": len(runs),
            "succeeded": len(successes),
            "failed": len(failures),
            "events": sum(int(r["events"]) for r in successes),
            "transmissions": sum(int(r["transmissions"]) for r in successes),
            "frames_dropped": sum(int(r["frames_dropped"]) for r in successes),
        },
        "failures": [
            {"scenario": r["scenario"], "seed": r["seed"], "error": r["error"]}
            for r in failures
        ],
        "merged_fingerprint": digest.hexdigest(),
        "telemetry": {
            "cells": telemetry_cells,
            "workers": by_worker,
            "wall_s": sum(float(c.get("wall_s", 0.0)) for c in telemetry_cells),
        },
    }
    merged_profile = merge_profiles(profiles)
    if merged_profile is not None:
        document["profile"] = merged_profile
    return document


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    progress: Optional[Callable[[Dict[str, object], int, int], None]] = None,
    telemetry: Optional[SweepTelemetry] = None,
) -> Dict[str, object]:
    """Run every cell of ``spec`` across ``workers`` processes.

    ``workers <= 1`` (or a platform without ``fork``) runs in-process;
    either way the merged report's deterministic sections are
    identical.  ``progress`` is called with ``(entry, done, total)``
    as each cell's result arrives (arrival order, not cell order).
    ``telemetry`` receives the fleet's live records — worker
    heartbeats via a pipe when sharded, direct calls in-process — for
    serving on a scrape endpoint while the sweep runs.
    """
    global _WORKER_SINK, _HEARTBEAT_EVERY_S
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1: {workers}")
    if spec.timeseries_dir is not None:
        os.makedirs(spec.timeseries_dir, exist_ok=True)
    tasks = [(scenario, seed, spec) for scenario, seed in spec.cells()]
    total = len(tasks)
    if telemetry is not None:
        telemetry.cells_total = total
    effective = min(workers, total)
    if effective > 1:
        import multiprocessing

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            context = None
        if context is not None:
            queue = None
            drain: Optional[threading.Thread] = None
            initializer = None
            initargs: tuple = ()
            if telemetry is not None:
                queue = context.SimpleQueue()
                initializer = _init_worker
                initargs = (queue, spec.heartbeat_every_s)

                def _drain() -> None:
                    while True:
                        record = queue.get()
                        if record is None:
                            return
                        telemetry.handle(record)

                drain = threading.Thread(
                    target=_drain, name="repro-sweep-telemetry", daemon=True
                )
            results: List[Dict[str, object]] = []
            with context.Pool(
                processes=effective,
                initializer=initializer,
                initargs=initargs,
            ) as pool:
                if drain is not None:
                    drain.start()
                for entry in pool.imap_unordered(_run_cell, tasks, chunksize=1):
                    results.append(entry)
                    if progress is not None:
                        progress(entry, len(results), total)
            if queue is not None:
                queue.put(None)
            if drain is not None:
                drain.join(timeout=5.0)
            return merge_results(spec, results, workers=effective)
        effective = 1
    previous_sink = _WORKER_SINK
    previous_heartbeat = _HEARTBEAT_EVERY_S
    if telemetry is not None:
        _WORKER_SINK = telemetry.handle
        _HEARTBEAT_EVERY_S = spec.heartbeat_every_s
    try:
        results = []
        for task in tasks:
            entry = _run_cell(task)
            results.append(entry)
            if progress is not None:
                progress(entry, len(results), total)
    finally:
        _WORKER_SINK = previous_sink
        _HEARTBEAT_EVERY_S = previous_heartbeat
    return merge_results(spec, results, workers=effective)


def write_sweep_json(document: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(document, stream, indent=2, sort_keys=True)
        stream.write("\n")


def render_progress_line(
    entry: Dict[str, object], done: int, total: int
) -> str:
    """One cell's arrival as a human progress line."""
    telemetry = entry.get("telemetry") or {}
    width = len(str(total))
    head = (
        f"[{done:>{width}}/{total}] "
        f"{entry['scenario']} seed {entry['seed']}: "
    )
    if "error" in entry:
        return head + f"FAIL ({entry['error']})"
    wall = float(telemetry.get("wall_s", 0.0))
    rate = float(telemetry.get("events_per_second", 0.0))
    return head + (
        f"ok ({entry.get('events', 0)} events, {wall:.2f} s wall, "
        f"{rate:,.0f} ev/s, worker {telemetry.get('worker', '?')})"
    )


def render_sweep(document: Dict[str, object]) -> str:
    """Human summary: per-scenario rollup plus any failing seeds."""
    from repro.reporting import render_table

    by_scenario: Dict[str, List[Dict[str, object]]] = {}
    for run in document["runs"]:
        by_scenario.setdefault(str(run["scenario"]), []).append(run)
    rows = []
    for scenario in sorted(by_scenario):
        runs = by_scenario[scenario]
        good = [r for r in runs if "error" not in r]
        rows.append(
            [
                scenario,
                f"{len(good)}/{len(runs)}",
                str(sum(int(r["events"]) for r in good)),
                str(sum(int(r["transmissions"]) for r in good)),
                str(sum(int(r["frames_dropped"]) for r in good)),
            ]
        )
    totals = document["totals"]
    lines = [
        render_table(
            ["scenario", "ok", "events", "frames", "dropped"],
            rows,
            title=(
                f"sweep: {totals['cells']} runs on "
                f"{document['workers']} worker(s)"
            ),
        ),
        f"merged fingerprint: {document['merged_fingerprint']}",
    ]
    telemetry = document.get("telemetry") or {}
    worker_rollup = telemetry.get("workers") or {}
    if worker_rollup:
        parts = []
        for worker in sorted(worker_rollup):
            state = worker_rollup[worker]
            parts.append(
                f"{worker}: {state['cells']:.0f} cells "
                f"in {state['wall_s']:.2f} s"
            )
        lines.append("workers: " + "; ".join(parts))
    profile = document.get("profile")
    if isinstance(profile, dict) and profile.get("sites"):
        from repro.obs.profiler import render_profile_table

        lines.append(render_profile_table(profile, top=5))
    for failure in document["failures"]:
        lines.append(
            f"FAILED {failure['scenario']} seed {failure['seed']}: "
            f"{failure['error']}"
        )
    return "\n".join(lines)
