"""Drive the full DES over a synthesized scenario trace.

The figure reproductions evaluate scenarios through the Section IV
closed form; this harness replays the same traces through the
event-level simulator — AP, medium, and a population of stations —
so protocol-level behaviour (DTIM cycles, BTIM flags, wakeups,
retransmissions) can be observed, traced, and metered directly.

It is the engine behind ``repro sim run`` and the observability
integration tests: attach a :class:`~repro.obs.tracing.JsonlTracer`
and every DTIM cycle, Algorithm-1 run, BTIM element, and client wakeup
lands in the trace log; call :meth:`DesRunResult.collect_metrics` and
the whole run lands in a metrics registry ready for export.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass
from functools import partial
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from repro.ap.access_point import AccessPoint, ApConfig
from repro.dot11.mac_address import MacAddress
from repro.energy.meter import ClientEnergyMeter, MeteredEnergy
from repro.energy.profile import DeviceEnergyProfile, NEXUS_ONE
from repro.errors import ConfigurationError
from repro.faults import FaultInjector, FaultPlan
from repro.net.packet import build_broadcast_udp_packet
from repro.obs.collectors import collect_all, collect_delivery, collect_profiler
from repro.obs.ledger import FrameLedger
from repro.obs.metrics import MetricsRegistry
from repro.obs.profiler import AttributionProfiler, ProfilerConfig
from repro.obs.server import MetricsServer
from repro.obs.timeseries import TimeseriesRecorder, dtim_window_s
from repro.obs.tracing import NULL_TRACER
from repro.sim.engine import Simulator
from repro.sim.eventq import QUEUE_KINDS
from repro.sim.invariants import InvariantSuite
from repro.sim.medium import DELIVERY_KINDS, Medium
from repro.station.client import Client, ClientConfig, ClientPolicy
from repro.traces.trace import BroadcastTrace
from repro.traces.usefulness import ports_for_target_fraction

#: Metric families excluded from determinism fingerprints: wall-clock
#: families measure the host, not the protocol, and the probe counter
#: measures the *observer* (a run with telemetry attached must
#: fingerprint identically to the same run without it).
_FINGERPRINT_EXCLUDED_METRICS = frozenset(
    {
        "repro_sim_run_wall_seconds_total",
        "repro_sim_wall_seconds_per_sim_second",
        "repro_ap_algorithm1_wall_seconds_total",
        "repro_sim_probes_fired_total",
    }
)

#: Backwards-compatible alias (pre-telemetry name).
_WALL_CLOCK_METRICS = _FINGERPRINT_EXCLUDED_METRICS

AP_MAC = MacAddress.from_string("02:aa:00:00:00:01")
WIRED_SOURCE = MacAddress.from_string("02:bb:00:00:00:99")

#: On-air bytes a trace record spends on 802.11 + LLC + IP + UDP
#: framing; the remainder becomes UDP payload so the simulated frame's
#: length approximates the recorded one.
_FRAMING_OVERHEAD_BYTES = 78


@dataclass(frozen=True)
class TelemetryConfig:
    """Streaming-observability knobs for one DES run.

    ``window`` is either the string ``"dtim"`` (one aggregation window
    per DTIM interval — the granularity the paper's Section IV energy
    model reasons at) or a fixed width in simulated seconds.
    ``serve_port`` starts a live :class:`~repro.obs.server.MetricsServer`
    next to the run (0 picks an ephemeral port).
    """

    window: Union[str, float] = "dtim"
    capacity: int = 512
    ewma_alpha: float = 0.3
    serve_port: Optional[int] = None
    serve_host: str = "127.0.0.1"

    def __post_init__(self) -> None:
        if isinstance(self.window, str):
            if self.window != "dtim":
                raise ConfigurationError(
                    f"window must be 'dtim' or seconds: {self.window!r}"
                )
        elif self.window <= 0:
            raise ConfigurationError(
                f"window seconds must be positive: {self.window}"
            )
        if self.capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1: {self.capacity}")
        if self.serve_port is not None and not 0 <= self.serve_port <= 65535:
            raise ConfigurationError(f"bad serve port: {self.serve_port}")

    def window_seconds(self, beacon_interval_s: float, dtim_period: int) -> float:
        if self.window == "dtim":
            return dtim_window_s(beacon_interval_s, dtim_period)
        return float(self.window)


@dataclass(frozen=True)
class DesRunConfig:
    """Knobs for one DES replay of a scenario trace."""

    policy: ClientPolicy = ClientPolicy.HIDE
    client_count: int = 3
    useful_fraction: float = 0.10
    duration_s: Optional[float] = 60.0
    profile: DeviceEnergyProfile = NEXUS_ONE
    dtim_period: int = 1
    #: When False the AP is a plain 802.11 AP (receive-all world).
    hide_ap: bool = True
    #: Seeded failure schedule; ``None`` (or a null plan) runs the exact
    #: legacy lossless medium — byte-identical to no plan at all.
    fault_plan: Optional[FaultPlan] = None
    #: Attach :class:`~repro.sim.invariants.InvariantSuite` and check
    #: periodically plus at end of run (raising on violation).
    check_invariants: bool = False
    #: Whether clients run the loss-recovery protocol when a (non-null)
    #: fault plan is active. Disable to demonstrate the invariants
    #: catching the unprotected protocol.
    recovery: bool = True
    #: AP-side refresh-timer TTL for port-table entries.
    port_entry_ttl_s: Optional[float] = None
    #: Client keep-alive period for re-sending port reports.
    port_refresh_interval_s: Optional[float] = None
    #: Streaming telemetry: windowed timeseries plus (optionally) a live
    #: scrape endpoint. ``None`` disables both; the run's determinism
    #: fingerprint is identical either way.
    telemetry: Optional[TelemetryConfig] = None
    #: Event-queue backend for the simulator: ``"heap"``, ``"calendar"``,
    #: or ``None`` for the engine default. The backends are observably
    #: identical (the fingerprint-identity tests pin it), so this is a
    #: pure throughput knob.
    queue_backend: Optional[str] = None
    #: Hot-path attribution profiling (``repro profile``). Like the
    #: telemetry stack, attaching it leaves the run's determinism
    #: fingerprint bit-identical — the profiler observes the host
    #: clock, never the simulation.
    profiler: Optional[ProfilerConfig] = None
    #: Delivery backend for the medium: ``"reference"``,
    #: ``"vectorized"``, or ``None`` for the medium default
    #: (vectorized). Bit-identical pair (the delivery-equivalence suite
    #: pins it), so — like ``queue_backend`` — a pure throughput knob.
    delivery_backend: Optional[str] = None
    #: Attach the frame-lifecycle ledger (``--ledger-out``): per-frame
    #: buffering/delivery delay and per-client energy-attribution
    #: histograms. Reads only simulation time and settled state, so —
    #: like telemetry and the profiler — the run's determinism
    #: fingerprint is identical with it on or off.
    ledger: bool = False

    def __post_init__(self) -> None:
        if self.queue_backend is not None and self.queue_backend not in QUEUE_KINDS:
            raise ConfigurationError(
                f"unknown queue backend {self.queue_backend!r}; "
                f"expected one of {QUEUE_KINDS}"
            )
        if (
            self.delivery_backend is not None
            and self.delivery_backend not in DELIVERY_KINDS
        ):
            raise ConfigurationError(
                f"unknown delivery backend {self.delivery_backend!r}; "
                f"expected one of {DELIVERY_KINDS}"
            )
        if self.client_count < 1:
            raise ConfigurationError("need at least one client")
        if not 0.0 <= self.useful_fraction <= 1.0:
            raise ConfigurationError(
                f"useful fraction must be in [0, 1]: {self.useful_fraction}"
            )
        if self.duration_s is not None and self.duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if (
            self.port_entry_ttl_s is not None
            and self.port_refresh_interval_s is not None
            and self.port_refresh_interval_s >= self.port_entry_ttl_s
        ):
            raise ConfigurationError(
                "port refresh interval must stay below the AP's entry TTL, "
                "or live clients age out between keep-alives"
            )


@dataclass
class DesRunResult:
    """Everything one DES replay produced, ready for metering/export."""

    trace_name: str
    duration_s: float
    useful_ports: FrozenSet[int]
    simulator: Simulator
    medium: Medium
    access_point: AccessPoint
    clients: List[Client]
    config: DesRunConfig
    #: Live when the run had a non-null fault plan.
    fault_injector: Optional[FaultInjector] = None
    #: Live when the run checked invariants.
    invariants: Optional[InvariantSuite] = None
    #: Live when telemetry was configured: the windowed recorder, the
    #: registry it sampled into, and (if serving) the scrape endpoint.
    timeseries: Optional[TimeseriesRecorder] = None
    live_registry: Optional[MetricsRegistry] = None
    metrics_server: Optional[MetricsServer] = None
    #: Live when the run profiled its hot path.
    profiler: Optional[AttributionProfiler] = None
    #: Live when the run carried the frame-lifecycle ledger (finalized:
    #: per-client energy attribution is already accrued).
    ledger: Optional[FrameLedger] = None

    def close(self) -> None:
        """Stop the metrics server, if one is still running."""
        if self.metrics_server is not None:
            self.metrics_server.stop()

    def meter(self) -> List[MeteredEnergy]:
        """Per-client energy from what each client actually did."""
        return [
            ClientEnergyMeter(client, self.config.profile).measure(self.duration_s)
            for client in self.clients
        ]

    def collect_metrics(
        self, registry: Optional[MetricsRegistry] = None
    ) -> MetricsRegistry:
        """Pull every component of this run into a registry."""
        registry = registry if registry is not None else MetricsRegistry()
        return collect_all(
            registry,
            simulator=self.simulator,
            medium=self.medium,
            access_points=[self.access_point],
            clients=self.clients,
        )

    def deterministic_fingerprint(self) -> str:
        """SHA-256 over everything the simulation determined.

        Covers every collected metric except the wall-clock families
        (those measure the host, not the protocol), serialized as
        canonical JSON. Two runs with the same seed and fault plan must
        produce the same fingerprint; the determinism regression test
        pins exactly that.
        """
        snapshot = [
            entry
            for entry in self.collect_metrics(MetricsRegistry()).snapshot()
            if entry["name"] not in _FINGERPRINT_EXCLUDED_METRICS
        ]
        payload = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def profile_report(self) -> Optional[Dict[str, object]]:
        """The run's ``repro-profile/v1`` document (None if unprofiled)."""
        if self.profiler is None:
            return None
        return self.profiler.report()

    def ledger_document(self) -> Optional[Dict[str, object]]:
        """The run's ``repro-ledger/v1`` document (None if detached)."""
        if self.ledger is None:
            return None
        return self.ledger.to_document()


class PreparedDesRun:
    """A fully wired DES run that has not executed yet.

    Splitting preparation from execution lets callers observe the run
    *while it happens*: the live metrics registry, timeseries recorder,
    and scrape endpoint (already serving, if configured) all exist
    before :meth:`execute` starts the clock. ``repro sim run
    --serve-metrics`` prints the endpoint URL in that gap, so a scraper
    can attach from simulated second zero.
    """

    def __init__(
        self,
        trace: BroadcastTrace,
        config: DesRunConfig,
        duration: float,
        useful_ports: FrozenSet[int],
        simulator: Simulator,
        medium: Medium,
        access_point: AccessPoint,
        clients: List[Client],
        fault_injector: Optional[FaultInjector],
        invariants: Optional[InvariantSuite],
        ledger: Optional[FrameLedger] = None,
    ) -> None:
        self.trace = trace
        self.config = config
        self.duration = duration
        self.useful_ports = useful_ports
        self.simulator = simulator
        self.medium = medium
        self.access_point = access_point
        self.clients = clients
        self.fault_injector = fault_injector
        self.invariants = invariants
        self.ledger = ledger
        self.live_registry: Optional[MetricsRegistry] = None
        self.recorder: Optional[TimeseriesRecorder] = None
        self.metrics_server: Optional[MetricsServer] = None
        self.profiler: Optional[AttributionProfiler] = None
        self._collect_lock = threading.Lock()
        self._executed = False
        if config.profiler is not None:
            self.profiler = AttributionProfiler(config.profiler)
            simulator.attach_profiler(self.profiler)
        if config.telemetry is not None:
            self._wire_telemetry(config.telemetry)

    def _wire_telemetry(self, telemetry: TelemetryConfig) -> None:
        self.live_registry = MetricsRegistry()
        window_s = telemetry.window_seconds(
            self.access_point.config.beacon_interval_s,
            self.access_point.config.dtim_period,
        )
        self.recorder = TimeseriesRecorder(
            self.live_registry,
            window_s,
            capacity=telemetry.capacity,
            ewma_alpha=telemetry.ewma_alpha,
            values_fn=self.sample_live_values,
        )
        self.recorder.attach(self.simulator)
        if telemetry.serve_port is not None:
            profile_fn = None
            if self.profiler is not None:
                profile_fn = self.profiler.report
            self.metrics_server = MetricsServer(
                self.live_registry,
                collect_fn=self.collect_live,
                recorder=self.recorder,
                health_fn=lambda: {
                    "sim_time": self.simulator.now,
                    "events_processed": self.simulator.events_processed,
                    "trace": self.trace.name,
                },
                profile_fn=profile_fn,
                host=telemetry.serve_host,
                port=telemetry.serve_port,
            )
            self.metrics_server.start()

    def sample_live_values(self) -> "Dict[str, float]":
        """The per-window energy-timeline series, read straight off
        the components.

        This is the timeseries recorder's hot path: it fires once per
        DTIM, so its cost must stay a small fraction of the simulator's
        own per-window work (the < 10% contract ``repro bench``
        enforces). Full registry collection scales with the number of
        series — hundreds at 25 clients — so instead this reads a
        fixed-size curated set: the counters Section IV's energy
        timeline is built from, with client counters summed fleet-wide
        (the per-client split stays available from ``/metrics`` scrapes
        and the end-of-run snapshot, which are off the hot path).
        """
        sim = self.simulator
        medium = self.medium
        ap = self.access_point
        ap_counters = ap.counters
        values = {
            "repro_sim_events_processed_total": float(sim.events_processed),
            "repro_sim_time_seconds": sim.now,
            "repro_medium_transmissions_total": float(
                medium.transmissions_completed
            ),
            "repro_medium_busy_seconds_total": medium.busy_time,
            "repro_medium_frames_dropped_total": float(medium.frames_dropped),
            "repro_medium_frames_queued_total": float(medium.frames_queued),
            "repro_ap_beacons_sent_total": float(ap_counters.beacons_sent),
            "repro_ap_dtims_sent_total": float(ap_counters.dtims_sent),
            "repro_ap_broadcast_frames_sent_total": float(
                ap_counters.broadcast_frames_sent
            ),
            "repro_ap_broadcast_frames_buffered_total": float(
                ap_counters.broadcast_frames_buffered
            ),
            "repro_ap_btim_bits_set_total": float(
                ap_counters.btim_bits_set_total
            ),
            "repro_ap_algorithm1_runs_total": float(ap_counters.algorithm1_runs),
            "repro_ap_broadcast_buffer_depth": float(len(ap.broadcast_buffer)),
            "repro_ap_associated_clients": float(len(ap.associations)),
        }
        received = ignored = useful = useless = delivered = missed = 0
        ps_polls = wakeups = suspends = 0
        wakelock_s = 0.0
        for client in self.clients:
            counters = client.counters
            received += counters.broadcast_frames_received
            ignored += counters.broadcast_frames_ignored
            useful += counters.useful_frames_received
            useless += counters.useless_frames_received
            delivered += counters.frames_delivered_to_apps
            missed += counters.useful_frames_missed
            ps_polls += counters.ps_polls_sent
            if client.power is not None:
                wakeups += client.power.counters.resumes
                suspends += client.power.counters.suspends_completed
            if client.wakelock is not None:
                wakelock_s += client.wakelock.total_held_time()
        values.update(
            repro_client_broadcast_frames_received_total=float(received),
            repro_client_broadcast_frames_ignored_total=float(ignored),
            repro_client_useful_frames_received_total=float(useful),
            repro_client_useless_frames_received_total=float(useless),
            repro_client_frames_delivered_to_apps_total=float(delivered),
            repro_client_useful_frames_missed_total=float(missed),
            repro_client_ps_polls_sent_total=float(ps_polls),
            repro_client_wakeups_total=float(wakeups),
            repro_client_suspends_completed_total=float(suspends),
            repro_client_wakelock_held_seconds_total=wakelock_s,
        )
        return values

    def collect_live(self) -> MetricsRegistry:
        """Refresh the live registry from every component (read-only).

        Called from the recorder's probe (main thread) and from scrape
        handlers (server threads); the lock keeps concurrent refreshes
        from interleaving. Components are only read, never mutated, so
        this cannot perturb the simulation.
        """
        registry = self.live_registry
        if registry is None:
            registry = self.live_registry = MetricsRegistry()
        with self._collect_lock:
            collect_all(
                registry,
                simulator=self.simulator,
                medium=self.medium,
                access_points=[self.access_point],
                clients=self.clients,
            )
            if self.profiler is not None:
                # Live scrapes only: end-of-run collection (and thus
                # determinism fingerprints) never includes these.
                collect_profiler(self.profiler, registry)
            # Live scrapes only, for the same reason. Reads the slot
            # columns without settling them (scrape threads must not
            # mutate accrual state), so — like ``_events_processed`` —
            # a live value is at most one probe window stale.
            collect_delivery(self.medium, registry)
            return registry

    def close(self) -> None:
        if self.metrics_server is not None:
            self.metrics_server.stop()

    def execute(self) -> DesRunResult:
        """Run the simulation to completion and package the result.

        The metrics server (if any) is left running with final values
        so late scrapes still work; stop it via ``result.close()``.
        """
        if self._executed:
            raise ConfigurationError("this prepared run has already executed")
        self._executed = True
        self.simulator.run(until=self.duration)
        if self.recorder is not None:
            # Close the trailing partial window so the dump covers the
            # whole run even when duration % window != 0.
            self.recorder.close_partial(self.duration)
        if self.invariants is not None:
            self.invariants.check_final()
        if self.ledger is not None:
            # After run(): the final sync hook has flushed the deferred
            # RadioArray accrual, so both delivery lanes meter the same
            # settled counters here.
            self.ledger.finalize(
                self.clients, self.config.profile, self.duration
            )
        return DesRunResult(
            trace_name=self.trace.name,
            duration_s=self.duration,
            useful_ports=self.useful_ports,
            simulator=self.simulator,
            medium=self.medium,
            access_point=self.access_point,
            clients=self.clients,
            config=self.config,
            fault_injector=self.fault_injector,
            invariants=self.invariants,
            timeseries=self.recorder,
            live_registry=self.live_registry,
            metrics_server=self.metrics_server,
            profiler=self.profiler,
            ledger=self.ledger,
        )


def prepare_trace_des(
    trace: BroadcastTrace,
    config: Optional[DesRunConfig] = None,
    tracer=NULL_TRACER,
) -> PreparedDesRun:
    """Wire up AP + stations + telemetry for ``trace`` without running.

    Usefulness is protocol-realistic: a port subset covering
    ``useful_fraction`` of the trace's frames is computed via
    :func:`ports_for_target_fraction` and opened on every client, so a
    frame is useful iff its destination port is open — exactly the
    signal HIDE's port table works from.
    """
    config = config or DesRunConfig()
    duration = config.duration_s if config.duration_s is not None else trace.duration_s
    duration = min(duration, trace.duration_s)

    # A null plan is indistinguishable from no plan: no injector is
    # attached and no recovery machinery is armed, so zero-loss runs
    # reproduce the legacy numbers exactly.
    active_plan = (
        config.fault_plan
        if config.fault_plan is not None and not config.fault_plan.is_null
        else None
    )
    injector = FaultInjector(active_plan) if active_plan is not None else None

    simulator = Simulator(queue=config.queue_backend)
    medium = Medium(
        simulator,
        fault_injector=injector,
        delivery_backend=config.delivery_backend,
    )
    ap = AccessPoint(
        AP_MAC,
        medium,
        ApConfig(
            dtim_period=config.dtim_period,
            hide_enabled=config.hide_ap,
            port_entry_ttl_s=config.port_entry_ttl_s,
        ),
    )
    ap.tracer = tracer
    medium.attach(ap)

    ledger: Optional[FrameLedger] = None
    if config.ledger:
        ledger = FrameLedger(clock=lambda: simulator.now)
        ap.ledger = ledger
        # Both delivery lanes fire observers at the same per-frame
        # point (after recipient fan-out, before on_complete).
        medium.add_delivery_observer(ledger.on_delivery)

    useful_ports = ports_for_target_fraction(trace, config.useful_fraction)
    profile = config.profile
    client_config = ClientConfig(
        policy=config.policy,
        wakelock_timeout_s=profile.wakelock_timeout_s,
        resume_duration_s=profile.resume_duration_s,
        suspend_duration_s=profile.suspend_duration_s,
        loss_recovery=active_plan is not None and config.recovery,
        port_refresh_interval_s=config.port_refresh_interval_s,
    )
    clients: List[Client] = []
    for index in range(config.client_count):
        client = Client(
            MacAddress.station(index + 1), medium, AP_MAC, client_config
        )
        client.tracer = tracer
        medium.attach(client)
        record = ap.associate(client.mac, hide_capable=config.policy is ClientPolicy.HIDE)
        client.set_aid(record.aid)
        for port in useful_ports:
            client.open_port(port)
        clients.append(client)

    if active_plan is not None:
        for event in active_plan.crashes:
            target = clients[event.client_index % len(clients)]
            simulator.schedule_at(event.crash_at_s, target.crash)
            if event.rejoin_at_s is not None:
                simulator.schedule_at(event.rejoin_at_s, target.rejoin)

    invariants: Optional[InvariantSuite] = None
    if config.check_invariants:
        invariants = InvariantSuite(
            simulator,
            medium,
            ap,
            clients,
            seed=active_plan.seed if active_plan is not None else None,
        )

    for record in trace:
        if record.time > duration:
            break
        offered = (
            record.offered_time if record.offered_time is not None else record.time
        )
        payload_bytes = max(1, record.length_bytes - _FRAMING_OVERHEAD_BYTES)
        packet = build_broadcast_udp_packet(record.udp_port, b"\x00" * payload_bytes)
        # post_at, not schedule_at: trace replay never cancels, so the
        # preschedule loop skips one EventHandle allocation per frame.
        # partial, not a lambda: same call, but the profiler can unwrap
        # it to the real site (AccessPoint.deliver_from_ds) instead of
        # attributing every trace frame to an anonymous <lambda>.
        simulator.post_at(
            min(offered, duration),
            partial(ap.deliver_from_ds, packet, WIRED_SOURCE),
        )

    return PreparedDesRun(
        trace=trace,
        config=config,
        duration=duration,
        useful_ports=useful_ports,
        simulator=simulator,
        medium=medium,
        access_point=ap,
        clients=clients,
        fault_injector=injector,
        invariants=invariants,
        ledger=ledger,
    )


def run_trace_des(
    trace: BroadcastTrace,
    config: Optional[DesRunConfig] = None,
    tracer=NULL_TRACER,
) -> DesRunResult:
    """Prepare and execute one DES replay (see :func:`prepare_trace_des`).

    When the config serves metrics, the endpoint outlives the run so
    its final state stays scrapeable — call ``result.close()`` when
    done with it.
    """
    return prepare_trace_des(trace, config, tracer=tracer).execute()


def client_summary_rows(result: DesRunResult) -> List[List[str]]:
    """Per-client report rows: wakeups, suspend share, metered power."""
    rows: List[List[str]] = []
    for client, metered in zip(result.clients, result.meter()):
        if client.power is None or client.wakelock is None:
            continue  # never attached (should not happen in a real run)
        rows.append(
            [
                str(client.aid if client.aid is not None else client.last_aid),
                str(client.power.counters.resumes),
                str(client.power.counters.suspends_aborted),
                f"{client.wakelock.total_held_time():.2f}",
                f"{client.counters.useful_frames_received}"
                f"/{client.counters.broadcast_frames_received}",
                f"{client.suspend_fraction(result.duration_s):.1%}",
                f"{metered.breakdown.average_power_w * 1e3:.1f}",
            ]
        )
    return rows


CLIENT_SUMMARY_HEADERS: Tuple[str, ...] = (
    "aid",
    "wakeups",
    "aborted",
    "wakelock (s)",
    "useful/rx",
    "suspended",
    "avg power (mW)",
)
