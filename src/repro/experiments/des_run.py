"""Drive the full DES over a synthesized scenario trace.

The figure reproductions evaluate scenarios through the Section IV
closed form; this harness replays the same traces through the
event-level simulator — AP, medium, and a population of stations —
so protocol-level behaviour (DTIM cycles, BTIM flags, wakeups,
retransmissions) can be observed, traced, and metered directly.

It is the engine behind ``repro sim run`` and the observability
integration tests: attach a :class:`~repro.obs.tracing.JsonlTracer`
and every DTIM cycle, Algorithm-1 run, BTIM element, and client wakeup
lands in the trace log; call :meth:`DesRunResult.collect_metrics` and
the whole run lands in a metrics registry ready for export.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.ap.access_point import AccessPoint, ApConfig
from repro.dot11.mac_address import MacAddress
from repro.energy.meter import ClientEnergyMeter, MeteredEnergy
from repro.energy.profile import DeviceEnergyProfile, NEXUS_ONE
from repro.errors import ConfigurationError
from repro.faults import FaultInjector, FaultPlan
from repro.net.packet import build_broadcast_udp_packet
from repro.obs.collectors import collect_all
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import NULL_TRACER
from repro.sim.engine import Simulator
from repro.sim.invariants import InvariantSuite
from repro.sim.medium import Medium
from repro.station.client import Client, ClientConfig, ClientPolicy
from repro.traces.trace import BroadcastTrace
from repro.traces.usefulness import ports_for_target_fraction

#: Metric families whose values depend on host wall-clock speed, not on
#: the simulated system — excluded from determinism fingerprints.
_WALL_CLOCK_METRICS = frozenset(
    {
        "repro_sim_run_wall_seconds_total",
        "repro_sim_wall_seconds_per_sim_second",
        "repro_ap_algorithm1_wall_seconds_total",
    }
)

AP_MAC = MacAddress.from_string("02:aa:00:00:00:01")
WIRED_SOURCE = MacAddress.from_string("02:bb:00:00:00:99")

#: On-air bytes a trace record spends on 802.11 + LLC + IP + UDP
#: framing; the remainder becomes UDP payload so the simulated frame's
#: length approximates the recorded one.
_FRAMING_OVERHEAD_BYTES = 78


@dataclass(frozen=True)
class DesRunConfig:
    """Knobs for one DES replay of a scenario trace."""

    policy: ClientPolicy = ClientPolicy.HIDE
    client_count: int = 3
    useful_fraction: float = 0.10
    duration_s: Optional[float] = 60.0
    profile: DeviceEnergyProfile = NEXUS_ONE
    dtim_period: int = 1
    #: When False the AP is a plain 802.11 AP (receive-all world).
    hide_ap: bool = True
    #: Seeded failure schedule; ``None`` (or a null plan) runs the exact
    #: legacy lossless medium — byte-identical to no plan at all.
    fault_plan: Optional[FaultPlan] = None
    #: Attach :class:`~repro.sim.invariants.InvariantSuite` and check
    #: periodically plus at end of run (raising on violation).
    check_invariants: bool = False
    #: Whether clients run the loss-recovery protocol when a (non-null)
    #: fault plan is active. Disable to demonstrate the invariants
    #: catching the unprotected protocol.
    recovery: bool = True
    #: AP-side refresh-timer TTL for port-table entries.
    port_entry_ttl_s: Optional[float] = None
    #: Client keep-alive period for re-sending port reports.
    port_refresh_interval_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.client_count < 1:
            raise ConfigurationError("need at least one client")
        if not 0.0 <= self.useful_fraction <= 1.0:
            raise ConfigurationError(
                f"useful fraction must be in [0, 1]: {self.useful_fraction}"
            )
        if self.duration_s is not None and self.duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if (
            self.port_entry_ttl_s is not None
            and self.port_refresh_interval_s is not None
            and self.port_refresh_interval_s >= self.port_entry_ttl_s
        ):
            raise ConfigurationError(
                "port refresh interval must stay below the AP's entry TTL, "
                "or live clients age out between keep-alives"
            )


@dataclass
class DesRunResult:
    """Everything one DES replay produced, ready for metering/export."""

    trace_name: str
    duration_s: float
    useful_ports: FrozenSet[int]
    simulator: Simulator
    medium: Medium
    access_point: AccessPoint
    clients: List[Client]
    config: DesRunConfig
    #: Live when the run had a non-null fault plan.
    fault_injector: Optional[FaultInjector] = None
    #: Live when the run checked invariants.
    invariants: Optional[InvariantSuite] = None

    def meter(self) -> List[MeteredEnergy]:
        """Per-client energy from what each client actually did."""
        return [
            ClientEnergyMeter(client, self.config.profile).measure(self.duration_s)
            for client in self.clients
        ]

    def collect_metrics(
        self, registry: Optional[MetricsRegistry] = None
    ) -> MetricsRegistry:
        """Pull every component of this run into a registry."""
        registry = registry if registry is not None else MetricsRegistry()
        return collect_all(
            registry,
            simulator=self.simulator,
            medium=self.medium,
            access_points=[self.access_point],
            clients=self.clients,
        )

    def deterministic_fingerprint(self) -> str:
        """SHA-256 over everything the simulation determined.

        Covers every collected metric except the wall-clock families
        (those measure the host, not the protocol), serialized as
        canonical JSON. Two runs with the same seed and fault plan must
        produce the same fingerprint; the determinism regression test
        pins exactly that.
        """
        snapshot = [
            entry
            for entry in self.collect_metrics(MetricsRegistry()).snapshot()
            if entry["name"] not in _WALL_CLOCK_METRICS
        ]
        payload = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def run_trace_des(
    trace: BroadcastTrace,
    config: Optional[DesRunConfig] = None,
    tracer=NULL_TRACER,
) -> DesRunResult:
    """Replay ``trace`` through AP + stations; returns the live objects.

    Usefulness is protocol-realistic: a port subset covering
    ``useful_fraction`` of the trace's frames is computed via
    :func:`ports_for_target_fraction` and opened on every client, so a
    frame is useful iff its destination port is open — exactly the
    signal HIDE's port table works from.
    """
    config = config or DesRunConfig()
    duration = config.duration_s if config.duration_s is not None else trace.duration_s
    duration = min(duration, trace.duration_s)

    # A null plan is indistinguishable from no plan: no injector is
    # attached and no recovery machinery is armed, so zero-loss runs
    # reproduce the legacy numbers exactly.
    active_plan = (
        config.fault_plan
        if config.fault_plan is not None and not config.fault_plan.is_null
        else None
    )
    injector = FaultInjector(active_plan) if active_plan is not None else None

    simulator = Simulator()
    medium = Medium(simulator, fault_injector=injector)
    ap = AccessPoint(
        AP_MAC,
        medium,
        ApConfig(
            dtim_period=config.dtim_period,
            hide_enabled=config.hide_ap,
            port_entry_ttl_s=config.port_entry_ttl_s,
        ),
    )
    ap.tracer = tracer
    medium.attach(ap)

    useful_ports = ports_for_target_fraction(trace, config.useful_fraction)
    profile = config.profile
    client_config = ClientConfig(
        policy=config.policy,
        wakelock_timeout_s=profile.wakelock_timeout_s,
        resume_duration_s=profile.resume_duration_s,
        suspend_duration_s=profile.suspend_duration_s,
        loss_recovery=active_plan is not None and config.recovery,
        port_refresh_interval_s=config.port_refresh_interval_s,
    )
    clients: List[Client] = []
    for index in range(config.client_count):
        client = Client(
            MacAddress.station(index + 1), medium, AP_MAC, client_config
        )
        client.tracer = tracer
        medium.attach(client)
        record = ap.associate(client.mac, hide_capable=config.policy is ClientPolicy.HIDE)
        client.set_aid(record.aid)
        for port in useful_ports:
            client.open_port(port)
        clients.append(client)

    if active_plan is not None:
        for event in active_plan.crashes:
            target = clients[event.client_index % len(clients)]
            simulator.schedule_at(event.crash_at_s, target.crash)
            if event.rejoin_at_s is not None:
                simulator.schedule_at(event.rejoin_at_s, target.rejoin)

    invariants: Optional[InvariantSuite] = None
    if config.check_invariants:
        invariants = InvariantSuite(
            simulator,
            medium,
            ap,
            clients,
            seed=active_plan.seed if active_plan is not None else None,
        )

    for record in trace:
        if record.time > duration:
            break
        offered = (
            record.offered_time if record.offered_time is not None else record.time
        )
        payload_bytes = max(1, record.length_bytes - _FRAMING_OVERHEAD_BYTES)
        packet = build_broadcast_udp_packet(record.udp_port, b"\x00" * payload_bytes)
        simulator.schedule_at(
            min(offered, duration),
            lambda p=packet: ap.deliver_from_ds(p, WIRED_SOURCE),
        )

    simulator.run(until=duration)
    if invariants is not None:
        invariants.check_final()
    return DesRunResult(
        trace_name=trace.name,
        duration_s=duration,
        useful_ports=useful_ports,
        simulator=simulator,
        medium=medium,
        access_point=ap,
        clients=clients,
        config=config,
        fault_injector=injector,
        invariants=invariants,
    )


def client_summary_rows(result: DesRunResult) -> List[List[str]]:
    """Per-client report rows: wakeups, suspend share, metered power."""
    rows: List[List[str]] = []
    for client, metered in zip(result.clients, result.meter()):
        if client.power is None or client.wakelock is None:
            continue  # never attached (should not happen in a real run)
        rows.append(
            [
                str(client.aid if client.aid is not None else client.last_aid),
                str(client.power.counters.resumes),
                str(client.power.counters.suspends_aborted),
                f"{client.wakelock.total_held_time():.2f}",
                f"{client.counters.useful_frames_received}"
                f"/{client.counters.broadcast_frames_received}",
                f"{client.suspend_fraction(result.duration_s):.1%}",
                f"{metered.breakdown.average_power_w * 1e3:.1f}",
            ]
        )
    return rows


CLIENT_SUMMARY_HEADERS: Tuple[str, ...] = (
    "aid",
    "wakeups",
    "aborted",
    "wakelock (s)",
    "useful/rx",
    "suspended",
    "avg power (mW)",
)
