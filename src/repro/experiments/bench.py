"""The ``repro bench`` suite: hot-path timings in a diffable schema.

The benchmarks cover the paths every perf PR touches:

* ``engine_events_per_second`` — raw DES event-loop throughput over a
  chained ``post()`` schedule on the calendar-queue backend (higher is
  better); ``engine_events_per_second_heap`` is the same workload on
  the reference binary heap.
* ``sweep_runs_per_second`` — full DES runs per second through the
  sharded sweep runner at 8 workers.
* ``algorithm1_seconds_per_dtim`` — one Algorithm-1 execution at the
  paper's operating point (25 clients, 10 buffered frames; lower is
  better).
* ``obs_overhead_fraction`` — the cost of streaming telemetry (per-DTIM
  timeseries windows + live collector sampling) over the exact same
  seeded run with telemetry off. Both sides use the NULL_TRACER, so
  the delta is purely the new streaming stack; the full JSONL tracer
  is timed separately in ``detail`` (it serializes every span and is
  deliberately not under the contract). The contract is < 25% of the
  vectorized-lane run (re-based from < 10% when the fast delivery lane
  shrank the baseline wall to ~20 ms at this operating point, leaving
  the unchanged ~3 ms absolute recorder cost as a larger, noisier
  fraction); ``benchmarks/bench_telemetry.py`` asserts it.
* ``service_reports_per_second`` — the port-service ingest pipeline
  (route → bounded queue → strict decode → table apply → TTL-wheel
  arm) in-process at loadgen scale; the loopback numbers with real
  sockets live in EXPERIMENTS.md.
* ``service_flags_per_second`` — Algorithm 1 flag throughput at
  service scale (1k-client table), the quantity the live
  ``service_flags_per_second`` gauge tracks.
* ``delivery_fanout_events_per_second`` — full-DES event throughput at
  a dense-fleet operating point (DenseFleet scenario, hundreds of
  clients) on the vectorized delivery backend, the workload the
  struct-of-arrays fast lane exists for;
  ``delivery_fanout_events_per_second_reference`` is the same run on
  the reference per-entity loop, so the fan-out speedup stays a
  visible, diffable number.
* ``ledger_overhead_fraction`` — the cost of the attached frame
  ledger (per-frame delay spans + delivery observer) over the exact
  same seeded run with the ledger detached, at the dense-fleet
  operating point (DenseFleet, 1000 clients, vectorized delivery)
  where per-frame work dominates. The record path is one deque append
  per enqueue, one popleft + two histogram increments per drain, and a
  dict pop per delivery event, so the contract is < 5%;
  ``benchmarks/bench_telemetry.py`` asserts it.
* ``profiler_overhead_fraction`` — the cost of the sampling-mode
  attribution profiler over the same seeded run unprofiled. The
  sampled run loop touches one extra countdown per event and resolves
  a site every stride-th event, so the contract is < 5%;
  ``benchmarks/bench_telemetry.py`` asserts it. The exact mode is
  timed into ``detail`` for visibility but carries no contract (it
  calls ``perf_counter`` twice per event by design).

Results are written as ``BENCH_telemetry.json`` under schema
``repro-bench/v1``, which ``repro obs diff`` parses — so CI can compare
a fresh run against the committed baseline and fail only on gross
regressions. Timings take the best of several repeats (the standard
way to suppress scheduler noise on shared machines).
"""

from __future__ import annotations

import gc
import io
import json
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.ap.flags import compute_broadcast_flags
from repro.ap.port_table import ClientUdpPortTable
from repro.dot11.data import DataFrame
from repro.dot11.mac_address import MacAddress
from repro.experiments.des_run import DesRunConfig, TelemetryConfig, run_trace_des
from repro.net.packet import build_broadcast_udp_packet
from repro.obs.tracing import JsonlTracer
from repro.sim.engine import Simulator
from repro.traces import generate_trace, scenario_by_name

BENCH_SCHEMA = "repro-bench/v1"

_BSSID = MacAddress.from_string("02:aa:00:00:00:01")
_SRC = MacAddress.from_string("02:bb:00:00:00:99")


@dataclass(frozen=True)
class BenchResult:
    """One benchmark's headline number plus context."""

    name: str
    value: float
    unit: str
    higher_is_better: bool
    detail: Dict[str, float]


def _best_of(fn: Callable[[], float], repeats: int, pick_max: bool) -> Tuple[float, List[float]]:
    samples = [fn() for _ in range(max(1, repeats))]
    return (max(samples) if pick_max else min(samples)), samples


def bench_engine_throughput(
    events: int = 20_000,
    repeats: int = 3,
    queue: str = "calendar",
    name: str = "engine_events_per_second",
) -> BenchResult:
    """Events per wall second through a chained self-scheduling loop.

    Measures the true hot path — ``post()`` into the run loop, no
    handle allocation — with GC parked during the timed section, the
    same hygiene as any microbenchmark of a sub-microsecond operation.
    Short samples with best-of-N suppress the slow-host drift a single
    long sample would average in.  The headline number runs the
    calendar backend; ``engine_events_per_second_heap`` is the same
    workload on the reference heap for an honest side-by-side.
    """

    def one_run() -> float:
        sim = Simulator(queue=queue)
        remaining = [events]
        post = sim.post

        def tick() -> None:
            remaining[0] -= 1
            if remaining[0] > 0:
                post(0.001, tick)

        post(0.0, tick)
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            sim.run()
            elapsed = time.perf_counter() - start
        finally:
            if gc_was_enabled:
                gc.enable()
        assert sim.events_processed == events
        return events / elapsed

    value, samples = _best_of(one_run, repeats, pick_max=True)
    return BenchResult(
        name=name,
        value=value,
        unit="events/s",
        higher_is_better=True,
        detail={
            "events": float(events),
            "samples": float(len(samples)),
            "queue_calendar": 1.0 if queue == "calendar" else 0.0,
        },
    )


def bench_sweep_throughput(
    seeds: int = 8,
    workers: int = 8,
    duration_s: float = 2.0,
    repeats: int = 1,
) -> BenchResult:
    """Sharded-sweep throughput: full DES runs per wall second.

    One short Starbucks run per seed, fanned across ``workers``
    processes — the shape ``repro sweep`` uses for seed sweeps. On a
    single-core host this degenerates to serial throughput; the bench
    still guards the per-run fixed costs (trace synthesis, wiring,
    fork/merge overhead).
    """
    from repro.experiments.sweep import SweepSpec, run_sweep

    spec = SweepSpec(
        scenarios=("Starbucks",),
        seeds=tuple(range(seeds)),
        config=DesRunConfig(client_count=2, duration_s=duration_s),
    )

    def one_run() -> float:
        start = time.perf_counter()
        document = run_sweep(spec, workers=workers)
        elapsed = time.perf_counter() - start
        assert document["totals"]["failed"] == 0
        return seeds / elapsed

    value, samples = _best_of(one_run, repeats, pick_max=True)
    return BenchResult(
        name="sweep_runs_per_second",
        value=value,
        unit="runs/s",
        higher_is_better=True,
        detail={
            "seeds": float(seeds),
            "workers": float(workers),
            "duration_s": duration_s,
            "samples": float(len(samples)),
        },
    )


def bench_algorithm1(
    clients: int = 25,
    buffered_frames: int = 10,
    iterations: int = 2_000,
    repeats: int = 3,
) -> BenchResult:
    """Seconds per Algorithm-1 run (the per-DTIM broadcast-flag pass)."""
    table = ClientUdpPortTable()
    for aid in range(1, clients + 1):
        table.update_client(aid, {5353, 1900} if aid % 3 == 0 else {137})
    frames = [
        DataFrame.broadcast_udp(
            bssid=_BSSID,
            source=_SRC,
            ip_packet=build_broadcast_udp_packet(
                (137, 5353, 1900)[i % 3], b"x" * 150
            ),
        )
        for i in range(buffered_frames)
    ]

    def one_run() -> float:
        start = time.perf_counter()
        for _ in range(iterations):
            compute_broadcast_flags(frames, table)
        return (time.perf_counter() - start) / iterations

    value, _ = _best_of(one_run, repeats, pick_max=False)
    return BenchResult(
        name="algorithm1_seconds_per_dtim",
        value=value,
        unit="s/run",
        higher_is_better=False,
        detail={
            "clients": float(clients),
            "buffered_frames": float(buffered_frames),
            "iterations": float(iterations),
        },
    )


def bench_delivery_fanout(
    clients: int = 200,
    duration_s: float = 5.0,
    repeats: int = 2,
    delivery: str = "vectorized",
    name: str = "delivery_fanout_events_per_second",
    scenario: str = "DenseFleet",
) -> BenchResult:
    """DES events per wall second under dense broadcast fan-out.

    A full protocol run (association, DTIM cycles, announcement storms)
    at a fleet size where delivery dominates the wall clock, so the
    number moves with exactly the path the delivery backends differ on.
    Both backends produce bit-identical fingerprints (the delivery-
    equivalence suite pins that); this measures only how fast each gets
    there.  Events per second rather than raw wall time, so the value
    stays comparable if the scenario's event count shifts.
    """
    trace = generate_trace(scenario_by_name(scenario))
    config = DesRunConfig(
        client_count=clients,
        duration_s=duration_s,
        delivery_backend=delivery,
    )

    def one_run() -> float:
        result = run_trace_des(trace, config)
        result.close()
        simulator = result.simulator
        assert simulator.events_processed > 0
        return simulator.events_processed / simulator.run_wall_time_s

    value, samples = _best_of(one_run, repeats, pick_max=True)
    return BenchResult(
        name=name,
        value=value,
        unit="events/s",
        higher_is_better=True,
        detail={
            "clients": float(clients),
            "duration_s": duration_s,
            "vectorized": 1.0 if delivery == "vectorized" else 0.0,
            "samples": float(len(samples)),
        },
    )


def bench_obs_overhead(
    duration_s: float = 8.0,
    clients: int = 25,
    repeats: int = 3,
    scenario: str = "Classroom",
) -> BenchResult:
    """Streaming-telemetry vs telemetry-off wall time, same seeded run.

    "Instrumented" turns on the streaming stack — a per-DTIM
    :class:`TimeseriesRecorder` sampling the curated energy-timeline
    series each window — while both sides keep the NULL_TRACER, so the
    delta is purely the telemetry cost the
    ``--serve-metrics``/``--timeseries-out`` path adds. Measured at the
    paper's operating point (Classroom scenario, 25 clients), where the
    simulator does real per-window work; an idle sim would make any
    fixed per-window cost look enormous. The full JSONL tracer
    serializes every span and costs far more by design; it is timed
    once into ``detail`` for visibility but is not under the < 25%
    contract.
    """
    trace = generate_trace(scenario_by_name(scenario))
    base_config = DesRunConfig(client_count=clients, duration_s=duration_s)
    telemetry_config = replace(
        base_config, telemetry=TelemetryConfig(window="dtim")
    )

    def _quiesced(run: Callable[[], float]) -> float:
        # The instrumented side allocates per-window recorder objects the
        # bare side never does, so with GC live a gen-2 pass (whose cost
        # scales with the *host process's* whole heap, e.g. a pytest
        # session's) lands asymmetrically in the instrumented wall and
        # can double the measured fraction. Collect first, then time with
        # GC off — the same discipline as the engine-throughput bench.
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            return run()
        finally:
            if gc_was_enabled:
                gc.enable()

    def baseline() -> float:
        return _quiesced(
            lambda: run_trace_des(trace, base_config).simulator.run_wall_time_s
        )

    def instrumented() -> float:
        return _quiesced(
            lambda: run_trace_des(
                trace, telemetry_config
            ).simulator.run_wall_time_s
        )

    def traced() -> float:
        tracer = JsonlTracer(io.StringIO())
        try:
            return _quiesced(
                lambda: run_trace_des(
                    trace, telemetry_config, tracer=tracer
                ).simulator.run_wall_time_s
            )
        finally:
            tracer.close()

    # One untimed warm-up of each side, then interleaved timed repeats:
    # allocator and code caches warm on the first run, and interleaving
    # cancels slow host-speed drift that would otherwise bias whichever
    # side ran first.
    baseline()
    instrumented()
    base_samples: List[float] = []
    instr_samples: List[float] = []
    for _ in range(max(1, repeats)):
        base_samples.append(baseline())
        instr_samples.append(instrumented())
    base_s = min(base_samples)
    instr_s = min(instr_samples)
    traced_s, _ = _best_of(traced, 1, pick_max=False)
    overhead = instr_s / base_s - 1.0 if base_s > 0 else 0.0
    return BenchResult(
        name="obs_overhead_fraction",
        value=overhead,
        unit="fraction",
        higher_is_better=False,
        detail={
            "baseline_wall_s": base_s,
            "instrumented_wall_s": instr_s,
            "jsonl_traced_wall_s": traced_s,
            "duration_s": duration_s,
            "clients": float(clients),
        },
    )


def bench_profiler_overhead(
    duration_s: float = 8.0,
    clients: int = 25,
    repeats: int = 3,
    stride: int = 16,
    scenario: str = "Classroom",
) -> BenchResult:
    """Sampling-profiler vs unprofiled wall time, same seeded run.

    Same methodology as :func:`bench_obs_overhead`: warm-up, then
    interleaved best-of-N on both sides so host drift cancels. The
    profiled side attaches a sampling-mode
    :class:`~repro.obs.profiler.AttributionProfiler` at the default
    stride; the exact mode is timed once into ``detail`` so its cost
    stays visible without being under the < 5% contract.
    """
    from repro.obs.profiler import ProfilerConfig

    trace = generate_trace(scenario_by_name(scenario))
    base_config = DesRunConfig(client_count=clients, duration_s=duration_s)
    sampling_config = replace(
        base_config, profiler=ProfilerConfig(mode="sampling", stride=stride)
    )
    exact_config = replace(
        base_config, profiler=ProfilerConfig(mode="exact")
    )

    def timed(config: DesRunConfig) -> float:
        result = run_trace_des(trace, config)
        try:
            return result.simulator.run_wall_time_s
        finally:
            result.close()

    timed(base_config)
    timed(sampling_config)
    base_samples: List[float] = []
    sampled_samples: List[float] = []
    for _ in range(max(1, repeats)):
        base_samples.append(timed(base_config))
        sampled_samples.append(timed(sampling_config))
    base_s = min(base_samples)
    sampled_s = min(sampled_samples)
    exact_s = timed(exact_config)
    overhead = sampled_s / base_s - 1.0 if base_s > 0 else 0.0
    return BenchResult(
        name="profiler_overhead_fraction",
        value=overhead,
        unit="fraction",
        higher_is_better=False,
        detail={
            "baseline_wall_s": base_s,
            "sampling_wall_s": sampled_s,
            "exact_wall_s": exact_s,
            "stride": float(stride),
            "duration_s": duration_s,
            "clients": float(clients),
        },
    )


def bench_ledger_overhead(
    clients: int = 1_000,
    duration_s: float = 4.0,
    repeats: int = 3,
    scenario: str = "DenseFleet",
) -> BenchResult:
    """Attached-ledger vs detached wall time, same seeded run.

    Same methodology as :func:`bench_obs_overhead`: GC quiesced, one
    warm-up per side, then interleaved best-of-N so host drift cancels.
    Measured on the vectorized dense-fleet hot path — the worst case
    for the ledger, since every broadcast frame crosses all four span
    points while the delivery lane itself is at its cheapest.
    """
    trace = generate_trace(scenario_by_name(scenario))
    base_config = DesRunConfig(
        client_count=clients,
        duration_s=duration_s,
        delivery_backend="vectorized",
    )
    ledger_config = replace(base_config, ledger=True)
    frames_tracked = [0.0]

    def timed(config: DesRunConfig) -> float:
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            result = run_trace_des(trace, config)
        finally:
            if gc_was_enabled:
                gc.enable()
        try:
            if result.ledger is not None:
                frames_tracked[0] = float(
                    result.ledger.frames_enqueued
                    + result.ledger.frames_immediate
                )
            return result.simulator.run_wall_time_s
        finally:
            result.close()

    timed(base_config)
    timed(ledger_config)
    base_samples: List[float] = []
    ledger_samples: List[float] = []
    for _ in range(max(1, repeats)):
        base_samples.append(timed(base_config))
        ledger_samples.append(timed(ledger_config))
    base_s = min(base_samples)
    ledger_s = min(ledger_samples)
    overhead = ledger_s / base_s - 1.0 if base_s > 0 else 0.0
    return BenchResult(
        name="ledger_overhead_fraction",
        value=overhead,
        unit="fraction",
        higher_is_better=False,
        detail={
            "baseline_wall_s": base_s,
            "ledger_wall_s": ledger_s,
            "frames_tracked": frames_tracked[0],
            "duration_s": duration_s,
            "clients": float(clients),
        },
    )


def bench_service_reports(
    messages: int = 40_000,
    clients: int = 1_000,
    shards: int = 4,
    repeats: int = 3,
) -> BenchResult:
    """Port-service ingest pipeline throughput, messages per second.

    Runs the exact per-datagram path ``repro serve`` executes — route
    (magic peek + shard hash), bounded-queue offer, strict decode,
    table apply, TTL-wheel arm — in-process with no sockets, so the
    number is stable enough to diff in CI. The loopback number
    (sockets + event loop on top) lives in EXPERIMENTS.md.
    """
    from repro.service import wire
    from repro.service.shard import PortShard

    def _mac(i: int) -> bytes:
        return bytes([0x02, 0x00]) + i.to_bytes(4, "big")

    # 1:3 report/keep-alive mix, matching the loadgen default.
    datagrams: List[bytes] = []
    for i in range(messages):
        c = i % clients
        if i % 4 == 0:
            datagrams.append(
                wire.encode_port_report(0, c + 1, _mac(c), i, (137, 5353))
            )
        else:
            datagrams.append(wire.encode_keep_alive(0, c + 1, _mac(c), i))
    addr = ("127.0.0.1", 1)

    def one_run() -> float:
        shard_list = [
            PortShard(index=i, queue_capacity=messages) for i in range(shards)
        ]
        # Prime: every client reports once so keep-alives land on live
        # entries, as in a steady-state service.
        for c in range(clients):
            report = wire.encode_port_report(0, c + 1, _mac(c), 0, (137,))
            bss, aid, mac = wire.peek_route(report)
            shard_list[wire.shard_index(bss, aid, mac, shards)].offer(report, addr)
        for shard in shard_list:
            shard.drain(0.0)
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            peek = wire.peek_route
            shard_of = wire.shard_index
            for data in datagrams:
                bss, aid, mac = peek(data)
                shard_list[shard_of(bss, aid, mac, shards)].offer(data, addr)
            processed = 0
            for shard in shard_list:
                processed += shard.drain(1.0)
            elapsed = time.perf_counter() - start
        finally:
            if gc_was_enabled:
                gc.enable()
        assert processed == messages
        total = sum(
            s.counters.reports + s.counters.keepalives for s in shard_list
        )
        assert total == messages + clients, total
        return messages / elapsed

    value, samples = _best_of(one_run, repeats, pick_max=True)
    return BenchResult(
        name="service_reports_per_second",
        value=value,
        unit="messages/s",
        higher_is_better=True,
        detail={
            "messages": float(messages),
            "clients": float(clients),
            "shards": float(shards),
            "samples": float(len(samples)),
        },
    )


def bench_service_flags(
    clients: int = 1_000,
    buffered_frames: int = 12,
    iterations: int = 200,
    repeats: int = 3,
) -> BenchResult:
    """Per-DTIM flag throughput at service scale, flags per second.

    The service's DTIM loop runs Algorithm 1 over every shard's table
    against the broadcast-frame batch; this measures that pass on one
    table at loadgen scale (1k clients, a realistic service mix) and
    reports flags computed per wall second — the same quantity the
    live ``service_flags_per_second`` gauge tracks.
    """
    table = ClientUdpPortTable()
    ports_cycle = ((137,), (5353,), (1900, 137), (138,), (17500, 5353))
    for aid in range(1, clients + 1):
        table.update_client(aid, set(ports_cycle[aid % len(ports_cycle)]))
    frames = [
        DataFrame.broadcast_udp(
            bssid=_BSSID,
            source=_SRC,
            ip_packet=build_broadcast_udp_packet(
                (137, 5353, 1900, 138, 17500, 67)[i % 6], b"x" * 200
            ),
        )
        for i in range(buffered_frames)
    ]
    flags_per_pass = len(compute_broadcast_flags(frames, table))
    assert flags_per_pass > 0

    def one_run() -> float:
        gc.collect()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            for _ in range(iterations):
                compute_broadcast_flags(frames, table)
            elapsed = time.perf_counter() - start
        finally:
            if gc_was_enabled:
                gc.enable()
        return iterations * flags_per_pass / elapsed

    value, samples = _best_of(one_run, repeats, pick_max=True)
    return BenchResult(
        name="service_flags_per_second",
        value=value,
        unit="flags/s",
        higher_is_better=True,
        detail={
            "clients": float(clients),
            "buffered_frames": float(buffered_frames),
            "flags_per_pass": float(flags_per_pass),
            "iterations": float(iterations),
            "samples": float(len(samples)),
        },
    )


def run_benchmarks(
    quick: bool = False, repeats: Optional[int] = None
) -> Dict[str, object]:
    """Run the suite; returns the ``repro-bench/v1`` document."""
    reps = repeats if repeats is not None else (2 if quick else 3)
    engine_reps = max(reps, 3 if quick else 6)
    results = [
        bench_engine_throughput(
            events=10_000 if quick else 20_000,
            repeats=engine_reps,
            queue="calendar",
        ),
        bench_engine_throughput(
            events=10_000 if quick else 20_000,
            repeats=engine_reps,
            queue="heap",
            name="engine_events_per_second_heap",
        ),
        bench_sweep_throughput(
            seeds=4 if quick else 8,
            duration_s=1.0 if quick else 2.0,
            repeats=1,
        ),
        bench_algorithm1(iterations=300 if quick else 2_000, repeats=reps),
        bench_delivery_fanout(
            clients=100 if quick else 200,
            duration_s=2.5 if quick else 5.0,
            repeats=min(reps, 2),
            delivery="vectorized",
        ),
        bench_delivery_fanout(
            clients=100 if quick else 200,
            duration_s=2.5 if quick else 5.0,
            repeats=1,  # the slow lane: one sample keeps the suite usable
            delivery="reference",
            name="delivery_fanout_events_per_second_reference",
        ),
        bench_obs_overhead(duration_s=4.0 if quick else 8.0, repeats=reps),
        bench_ledger_overhead(
            clients=250 if quick else 1_000,
            duration_s=2.0 if quick else 4.0,
            # The true cost is a handful of dict/deque ops per broadcast
            # frame, far below host jitter on a ~0.3 s wall: extra
            # interleaved repeats let min() find the quiet floor.
            repeats=min(reps, 2) if quick else max(reps, 6),
        ),
        bench_profiler_overhead(duration_s=4.0 if quick else 8.0, repeats=reps),
        bench_service_reports(
            messages=10_000 if quick else 40_000, repeats=reps
        ),
        bench_service_flags(iterations=50 if quick else 200, repeats=reps),
    ]
    return {
        "schema": BENCH_SCHEMA,
        "suite": "telemetry",
        "quick": quick,
        "repeats": reps,
        "benchmarks": {
            r.name: {
                "value": r.value,
                "unit": r.unit,
                "higher_is_better": r.higher_is_better,
                "detail": r.detail,
            }
            for r in results
        },
    }


def write_bench_json(document: Dict[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(document, stream, indent=2, sort_keys=True)
        stream.write("\n")


def render_bench(document: Dict[str, object]) -> str:
    """A human summary of one bench document."""
    from repro.reporting import render_table

    rows = []
    for name, entry in sorted(document.get("benchmarks", {}).items()):
        rows.append(
            [
                name,
                f"{entry['value']:.6g}",
                str(entry.get("unit", "")),
                "higher" if entry.get("higher_is_better") else "lower",
            ]
        )
    title = "Telemetry benchmarks" + (
        " (quick)" if document.get("quick") else ""
    )
    return render_table(["benchmark", "value", "unit", "better"], rows, title=title)
