"""Figure 12: RTT increase vs number of open UDP ports per client."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis import DelayAnalysis
from repro.reporting import render_series_table

STATION_COUNTS: Tuple[int, ...] = (5, 10, 20, 30, 40, 50)
PORT_COUNTS: Tuple[int, ...] = (100, 50, 20, 10)  # paper legend order

#: Paper settings for this sweep.
PORT_MESSAGE_INTERVAL_S = 30.0
HIDE_FRACTION = 0.5
BUFFERED_FRAMES_PER_DTIM = 10.0


@dataclass(frozen=True)
class Figure12Result:
    station_counts: Tuple[int, ...]
    port_counts: Tuple[int, ...]
    #: open-port count -> delay increase per station count (fractions).
    increases: Dict[int, Tuple[float, ...]]


def compute(analysis: Optional[DelayAnalysis] = None) -> Figure12Result:
    analysis = analysis or DelayAnalysis()
    increases: Dict[int, Tuple[float, ...]] = {}
    for ports in PORT_COUNTS:
        increases[ports] = tuple(
            analysis.evaluate(
                stations,
                hide_fraction=HIDE_FRACTION,
                port_message_interval_s=PORT_MESSAGE_INTERVAL_S,
                open_ports_per_client=ports,
                buffered_frames_per_dtim=BUFFERED_FRAMES_PER_DTIM,
            ).delay_increase
            for stations in STATION_COUNTS
        )
    return Figure12Result(
        station_counts=STATION_COUNTS, port_counts=PORT_COUNTS, increases=increases
    )


def render(result: Optional[Figure12Result] = None) -> str:
    if result is None:
        result = compute()
    table = render_series_table(
        "nodes",
        list(result.station_counts),
        {
            f"no = {ports}": [d * 100 for d in result.increases[ports]]
            for ports in result.port_counts
        },
        value_format="{:.3f}",
        title=(
            "Figure 12: increase in network delay (%) with different numbers "
            "of UDP ports in use"
        ),
    )
    worst = max(result.increases[100])
    note = f"At no = 100, 50 nodes: {worst * 100:.2f}% (paper: < 1.6%)."
    return table + "\n" + note


def main() -> None:
    print(render())


if __name__ == "__main__":
    main()
