"""The Client UDP Port Table (paper §III-B/C).

A hash multimap from UDP port number to the set of client AIDs that
reported the port open. Refreshing a client's report means deleting its
old ports and inserting the new ones — exactly the operation sequence
whose cost drives the paper's delay analysis (Eq. 25), so the table
counts delete/insert/lookup operations and can time them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.dot11.pvb import MAX_AID
from repro.errors import PortTableError


@dataclass(frozen=True)
class ExpiredEntry:
    """One client aged out of the table: who, what it held, and when it
    last reported. Both the sim AP and the stand-alone port-service use
    these to emit per-client expiry events."""

    aid: int
    ports: FrozenSet[int]
    updated_at: float


@dataclass
class PortTableStats:
    """Operation counters for the delay-overhead analysis."""

    inserts: int = 0
    deletes: int = 0
    lookups: int = 0
    refreshes: int = 0
    #: Clients whose entries aged out of the refresh-timer TTL.
    expirations: int = 0

    def reset(self) -> None:
        self.inserts = 0
        self.deletes = 0
        self.lookups = 0
        self.refreshes = 0
        self.expirations = 0


class ClientUdpPortTable:
    """Port → {AIDs} with per-client replacement semantics."""

    def __init__(self) -> None:
        self._clients_by_port: Dict[int, Set[int]] = {}
        self._ports_by_aid: Dict[int, FrozenSet[int]] = {}
        self._updated_at: Dict[int, float] = {}
        self.stats = PortTableStats()

    def __len__(self) -> int:
        """Number of (port, AID) pairs currently stored."""
        return sum(len(aids) for aids in self._clients_by_port.values())

    @property
    def distinct_ports(self) -> int:
        return len(self._clients_by_port)

    @property
    def client_count(self) -> int:
        return len(self._ports_by_aid)

    def _insert(self, port: int, aid: int) -> None:
        self._clients_by_port.setdefault(port, set()).add(aid)
        self.stats.inserts += 1

    def _delete(self, port: int, aid: int) -> None:
        aids = self._clients_by_port.get(port)
        if aids is not None:
            aids.discard(aid)
            if not aids:
                del self._clients_by_port[port]
        self.stats.deletes += 1

    def update_client(
        self, aid: int, ports: Iterable[int], now: float = 0.0
    ) -> None:
        """Replace the stored port set for ``aid`` (one UDP Port Message).

        Implements the paper's refresh: delete every old (port, aid)
        pair, then insert every new one. ``now`` timestamps the report
        so :meth:`expire_older_than` can age out clients that stopped
        refreshing (crashed without disassociating).

        Raises :class:`~repro.errors.PortTableError` for AIDs outside
        1..2007, out-of-range UDP ports, or an empty port set — a
        report with nothing to report is a protocol error; clearing a
        client is :meth:`remove_client`.
        """
        if not 1 <= aid <= MAX_AID:
            raise PortTableError(f"AID out of range (1..{MAX_AID}): {aid}")
        new_ports = frozenset(ports)
        if not new_ports:
            raise PortTableError(
                f"zero-length port set for AID {aid}; "
                "use remove_client() to clear a client"
            )
        for port in new_ports:
            if not 0 < port <= 0xFFFF:
                raise PortTableError(f"UDP port out of range: {port}")
        old_ports = self._ports_by_aid.get(aid, frozenset())
        for port in old_ports:
            self._delete(port, aid)
        for port in new_ports:
            self._insert(port, aid)
        self._ports_by_aid[aid] = new_ports
        self._updated_at[aid] = now
        self.stats.refreshes += 1

    def touch(self, aid: int, now: float) -> bool:
        """Refresh ``aid``'s report timestamp without changing its ports
        (a keep-alive). Returns False when the client has no entries —
        the keep-alive raced an expiry and the client must re-report.
        """
        if aid not in self._ports_by_aid:
            return False
        self._updated_at[aid] = now
        return True

    def remove_client(self, aid: int) -> None:
        """Drop all state for a disassociated client."""
        for port in self._ports_by_aid.pop(aid, frozenset()):
            self._delete(port, aid)
        self._updated_at.pop(aid, None)

    def expire_older_than(self, cutoff: float) -> List[ExpiredEntry]:
        """Age out clients whose last report predates ``cutoff``.

        This is the AP-side recovery for crashed clients: without it, a
        client that died without disassociating pins its broadcast flag
        bits forever and every surviving station pays the wake-ups.
        Returns the expired entries — AID, the port set it held, and
        its last report time — sorted by AID for deterministic logs, so
        callers can emit per-client expiry events rather than a bare
        count.
        """
        expired = [
            ExpiredEntry(
                aid=aid,
                ports=self._ports_by_aid.get(aid, frozenset()),
                updated_at=updated,
            )
            for aid, updated in sorted(self._updated_at.items())
            if updated < cutoff
        ]
        for entry in expired:
            self.remove_client(entry.aid)
        self.stats.expirations += len(expired)
        return expired

    def updated_at(self, aid: int) -> Optional[float]:
        """When ``aid`` last reported, or None if it has no entries."""
        return self._updated_at.get(aid)

    def aids(self) -> FrozenSet[int]:
        """AIDs with at least one stored (port, AID) pair."""
        return frozenset(self._ports_by_aid)

    def check_consistency(self) -> List[str]:
        """Cross-check the two internal maps; returns problem strings.

        The table maintains ``port -> {aids}`` and ``aid -> {ports}`` as
        exact inverses; the invariant suite calls this every sweep so a
        refresh/expiry bug surfaces at the event that introduced it.
        """
        problems: List[str] = []
        for aid, ports in self._ports_by_aid.items():
            for port in ports:
                if aid not in self._clients_by_port.get(port, ()):
                    problems.append(
                        f"aid {aid} claims port {port} but the port map disagrees"
                    )
            if aid not in self._updated_at:
                problems.append(f"aid {aid} has entries but no refresh timestamp")
        for port, aids in self._clients_by_port.items():
            if not aids:
                problems.append(f"port {port} has an empty AID set")
            for aid in aids:
                if port not in self._ports_by_aid.get(aid, frozenset()):
                    problems.append(
                        f"port {port} lists aid {aid} but the aid map disagrees"
                    )
        for aid in self._updated_at:
            if aid not in self._ports_by_aid:
                problems.append(f"aid {aid} has a timestamp but no entries")
        return problems

    def clients_for_port(self, port: int) -> FrozenSet[int]:
        """Algorithm 1, line 4: table lookup with the port as the key."""
        self.stats.lookups += 1
        return frozenset(self._clients_by_port.get(port, ()))

    def has_subscribers(self, port: int) -> bool:
        """Whether any client currently holds ``port`` open.

        A read-only probe that deliberately does **not** count as a
        lookup in :attr:`stats`: those op counters model the paper's
        delay analysis and are exported into the deterministic
        fingerprint, so passive observers (the frame ledger) must use
        this instead of :meth:`clients_for_port`.
        """
        return bool(self._clients_by_port.get(port))

    def ports_for_client(self, aid: int) -> FrozenSet[int]:
        return self._ports_by_aid.get(aid, frozenset())

    def port_is_open_for(self, port: int, aid: int) -> bool:
        return aid in self._clients_by_port.get(port, ())

    def measure_operation_times(
        self, samples: int = 100, port_base: int = 40000
    ) -> "MeasuredOpTimes":
        """Measure wall-clock delete/insert/lookup times on this table.

        Mirrors the paper's measurement methodology: repeat ``samples``
        operations against the live table and average. Uses transient
        (port, AID) pairs in a high port range so the table contents are
        unchanged afterwards.
        """
        probe_aid = 2007  # highest AID: never used by the simulations here
        ports = [port_base + i for i in range(samples)]
        start = time.perf_counter()
        for port in ports:
            self._insert(port, probe_aid)
        insert_s = (time.perf_counter() - start) / samples
        start = time.perf_counter()
        for port in ports:
            self.clients_for_port(port)
        lookup_s = (time.perf_counter() - start) / samples
        start = time.perf_counter()
        for port in ports:
            self._delete(port, probe_aid)
        delete_s = (time.perf_counter() - start) / samples
        return MeasuredOpTimes(insert_s=insert_s, delete_s=delete_s, lookup_s=lookup_s)


@dataclass(frozen=True)
class MeasuredOpTimes:
    """Wall-clock averages from :meth:`ClientUdpPortTable.measure_operation_times`."""

    insert_s: float
    delete_s: float
    lookup_s: float
