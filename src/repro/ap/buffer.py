"""PS-mode frame buffering at the AP."""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.dot11.data import DataFrame
from repro.dot11.mac_address import MacAddress


class BroadcastBuffer:
    """FIFO of group-addressed frames held until the next DTIM.

    The 802.11 rule: as long as any associated client is in PS mode, the
    AP buffers all broadcast/multicast frames and releases them right
    after a DTIM beacon, each carrying more-data = 1 except the last.
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._frames: Deque[DataFrame] = deque()
        self._capacity = capacity
        self._dropped = 0

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def dropped(self) -> int:
        return self._dropped

    def enqueue(self, frame: DataFrame) -> bool:
        """Buffer a frame; drops (and counts) when full. Returns success."""
        if len(self._frames) >= self._capacity:
            self._dropped += 1
            return False
        self._frames.append(frame)
        return True

    def peek_all(self) -> Tuple[DataFrame, ...]:
        """The frames Algorithm 1 iterates over, in arrival order."""
        return tuple(self._frames)

    def drain(self) -> List[DataFrame]:
        """Remove all frames, tagging more-data on all but the last."""
        frames = list(self._frames)
        self._frames.clear()
        if not frames:
            return []
        tagged = [frame.with_more_data(True) for frame in frames[:-1]]
        tagged.append(frames[-1].with_more_data(False))
        return tagged


class UnicastBuffer:
    """Per-client FIFOs of unicast frames for PS clients."""

    def __init__(self, per_client_capacity: int = 256) -> None:
        if per_client_capacity <= 0:
            raise ValueError("capacity must be positive")
        self._queues: Dict[MacAddress, Deque[DataFrame]] = {}
        self._capacity = per_client_capacity
        self._dropped = 0

    @property
    def dropped(self) -> int:
        return self._dropped

    def enqueue(self, frame: DataFrame) -> bool:
        queue = self._queues.setdefault(frame.destination, deque())
        if len(queue) >= self._capacity:
            self._dropped += 1
            return False
        queue.append(frame)
        return True

    def has_frames_for(self, mac: MacAddress) -> bool:
        return bool(self._queues.get(mac))

    def clients_with_traffic(self) -> Tuple[MacAddress, ...]:
        return tuple(mac for mac, queue in self._queues.items() if queue)

    def pop_for(self, mac: MacAddress) -> Optional[DataFrame]:
        """Release one frame in response to a PS-Poll.

        The returned frame's more-data bit reflects whether more frames
        remain buffered for this client.
        """
        queue = self._queues.get(mac)
        if not queue:
            return None
        frame = queue.popleft()
        return frame.with_more_data(bool(queue))
