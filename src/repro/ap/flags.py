"""Algorithm 1: compute per-client broadcast flags at the start of a DTIM.

For every broadcast frame currently buffered, extract the destination
UDP port from the frame bytes, look up which clients have that port
open, and set those clients' flags. The output is the AID set that the
BTIM element encodes.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Set

from repro.ap.port_table import ClientUdpPortTable
from repro.dot11.data import DataFrame
from repro.errors import FrameDecodeError
from repro.net.packet import extract_udp_dst_port_from_dot11_body


def compute_broadcast_flags(
    buffered_frames: Iterable[DataFrame],
    port_table: ClientUdpPortTable,
) -> FrozenSet[int]:
    """Return the AIDs with at least one useful buffered broadcast frame.

    Frames that are not UDP-over-IPv4 (or are unparseable) contribute no
    flags: the HIDE policy covers UDP-padded broadcast frames only, and
    a frame the AP cannot classify must not wake anyone through the
    BTIM. (Legacy clients still learn about it through the standard
    TIM's group-traffic bit.)
    """
    flags: Set[int] = set()
    for frame in buffered_frames:
        port = frame_udp_port(frame)
        if port is None:
            continue
        flags.update(port_table.clients_for_port(port))
    return frozenset(flags)


def frame_udp_port(frame: DataFrame) -> Optional[int]:
    """Destination UDP port of a buffered frame, or ``None``.

    This is the byte-parsing path a real AP would run: LLC/SNAP → IPv4
    → UDP. Malformed packets are treated as unclassifiable.  The parse
    is memoized on the frame (:meth:`DataFrame.udp_dst_port`), so the
    AP and every receiving radio share one decode per frame object.
    """
    try:
        return frame.udp_dst_port()
    except AttributeError:
        # A duck-typed test double without the memoized accessor.
        try:
            return extract_udp_dst_port_from_dot11_body(frame.llc_payload)
        except FrameDecodeError:
            return None
