"""Association state: MAC ↔ AID bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.dot11.mac_address import MacAddress
from repro.dot11.pvb import MAX_AID
from repro.errors import AssociationError


@dataclass
class AssociationRecord:
    """One associated station."""

    mac: MacAddress
    aid: int
    #: Whether the station declared HIDE support at association time.
    hide_capable: bool = False
    #: Whether the station's WiFi radio is in 802.11 power-save mode.
    power_save: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.aid <= MAX_AID:
            raise ValueError(f"AID out of range: {self.aid}")


class AssociationTable:
    """Allocates AIDs densely from 1 and tracks per-station state."""

    def __init__(self) -> None:
        self._by_mac: Dict[MacAddress, AssociationRecord] = {}
        self._by_aid: Dict[int, AssociationRecord] = {}

    def __len__(self) -> int:
        return len(self._by_mac)

    def __iter__(self) -> Iterator[AssociationRecord]:
        return iter(sorted(self._by_mac.values(), key=lambda r: r.aid))

    def associate(self, mac: MacAddress, hide_capable: bool = False) -> AssociationRecord:
        """Associate ``mac``; idempotent (re-association keeps the AID)."""
        existing = self._by_mac.get(mac)
        if existing is not None:
            existing.hide_capable = hide_capable
            return existing
        aid = self._next_free_aid()
        record = AssociationRecord(mac=mac, aid=aid, hide_capable=hide_capable)
        self._by_mac[mac] = record
        self._by_aid[aid] = record
        return record

    def disassociate(self, mac: MacAddress) -> None:
        record = self._by_mac.pop(mac, None)
        if record is None:
            raise AssociationError(f"{mac} is not associated")
        del self._by_aid[record.aid]

    def _next_free_aid(self) -> int:
        for aid in range(1, MAX_AID + 1):
            if aid not in self._by_aid:
                return aid
        raise AssociationError("no free AIDs (BSS is full)")

    def by_mac(self, mac: MacAddress) -> AssociationRecord:
        record = self._by_mac.get(mac)
        if record is None:
            raise AssociationError(f"{mac} is not associated")
        return record

    def by_aid(self, aid: int) -> AssociationRecord:
        record = self._by_aid.get(aid)
        if record is None:
            raise AssociationError(f"AID {aid} is not associated")
        return record

    def get_by_mac(self, mac: MacAddress) -> Optional[AssociationRecord]:
        return self._by_mac.get(mac)

    def any_in_power_save(self) -> bool:
        """True if at least one client radio is in PS mode — the condition
        under which the AP must buffer group traffic."""
        return any(record.power_save for record in self._by_mac.values())
