"""The HIDE-enabled access point.

Pieces:

* :class:`~repro.ap.association.AssociationTable` — AID allocation.
* :class:`~repro.ap.port_table.ClientUdpPortTable` — the paper's hash
  table mapping UDP port → clients listening on it.
* :func:`~repro.ap.flags.compute_broadcast_flags` — Algorithm 1.
* :class:`~repro.ap.buffer.BroadcastBuffer` /
  :class:`~repro.ap.buffer.UnicastBuffer` — PS-mode frame buffering.
* :class:`~repro.ap.access_point.AccessPoint` — the DES entity tying it
  together: beaconing, DTIM scheduling, BTIM construction, buffer
  draining with more-data bits, UDP Port Message handling.
"""

from repro.ap.association import AssociationTable, AssociationRecord
from repro.ap.port_table import ClientUdpPortTable, PortTableStats
from repro.ap.flags import compute_broadcast_flags
from repro.ap.buffer import BroadcastBuffer, UnicastBuffer
from repro.ap.access_point import AccessPoint, ApConfig

__all__ = [
    "AssociationTable",
    "AssociationRecord",
    "ClientUdpPortTable",
    "PortTableStats",
    "compute_broadcast_flags",
    "BroadcastBuffer",
    "UnicastBuffer",
    "AccessPoint",
    "ApConfig",
]
