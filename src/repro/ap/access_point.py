"""The access point entity: beaconing, DTIM bursts, and HIDE logic."""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Optional

from repro.ap.association import AssociationTable
from repro.dot11.association_frames import (
    STATUS_DENIED,
    STATUS_SUCCESS,
    AssociationRequest,
    AssociationResponse,
)
from repro.dot11.disassociation import Disassociation
from repro.dot11.probe_frames import ProbeRequest, ProbeResponse
from repro.errors import AssociationError
from repro.ap.buffer import BroadcastBuffer, UnicastBuffer
from repro.ap.flags import compute_broadcast_flags
from repro.ap.port_table import ClientUdpPortTable
from repro.dot11.control import Ack, PsPoll
from repro.dot11.data import DataFrame
from repro.dot11.elements.btim import BtimElement
from repro.dot11.elements.dsss import DsssParameterElement
from repro.dot11.elements.tim import TimElement
from repro.dot11.management import Beacon, UdpPortMessage
from repro.dot11.mac_address import MacAddress
from repro.errors import ConfigurationError
from repro.obs.tracing import NULL_TRACER
from repro.sim.entity import Entity
from repro.sim.medium import Medium, SIFS_S, Transmission
from repro.units import BEACON_INTERVAL_S, mbps


@dataclass(frozen=True)
class ApConfig:
    """Static AP configuration.

    ``hide_enabled`` switches the whole mechanism: when False the AP is
    a plain 802.11 AP (the paper's receive-all world) and beacons carry
    no BTIM.
    """

    ssid: str = "hide-net"
    beacon_interval_s: float = BEACON_INTERVAL_S
    dtim_period: int = 1
    channel: int = 6
    beacon_rate_bps: float = mbps(1)
    broadcast_rate_bps: float = mbps(1)
    hide_enabled: bool = True
    #: When set, port-table entries not refreshed within this many
    #: seconds are expired at the next DTIM — the recovery that stops a
    #: crashed client from pinning broadcast flags forever. Pair it with
    #: a client-side refresh interval comfortably below the TTL.
    port_entry_ttl_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.beacon_interval_s <= 0:
            raise ConfigurationError("beacon interval must be positive")
        if not 1 <= self.dtim_period <= 255:
            raise ConfigurationError(f"DTIM period out of range: {self.dtim_period}")
        if self.port_entry_ttl_s is not None and self.port_entry_ttl_s <= 0:
            raise ConfigurationError(
                f"port entry TTL must be positive: {self.port_entry_ttl_s}"
            )


@dataclass
class ApCounters:
    """Observable AP activity, for tests and examples."""

    beacons_sent: int = 0
    dtims_sent: int = 0
    broadcast_frames_sent: int = 0
    broadcast_frames_buffered: int = 0
    port_messages_received: int = 0
    acks_sent: int = 0
    ps_polls_received: int = 0
    unicast_frames_sent: int = 0
    association_requests_received: int = 0
    probe_requests_answered: int = 0
    disassociations_received: int = 0
    #: AID bits set across all BTIM elements sent (observability).
    btim_bits_set_total: int = 0
    #: Port-table entries aged out by the refresh-timer TTL.
    port_entries_expired: int = 0
    #: Algorithm 1 executions and their cumulative wall-clock cost.
    algorithm1_runs: int = 0
    algorithm1_wall_s: float = 0.0


class AccessPoint(Entity):
    """A DES access point implementing standard PS buffering plus HIDE."""

    def __init__(
        self,
        mac: MacAddress,
        medium: Medium,
        config: Optional[ApConfig] = None,
    ) -> None:
        super().__init__(name=f"ap-{mac}")
        self.mac = mac
        self._medium = medium
        self.config = config or ApConfig()
        self.associations = AssociationTable()
        self.port_table = ClientUdpPortTable()
        self.broadcast_buffer = BroadcastBuffer()
        self.unicast_buffer = UnicastBuffer()
        self.counters = ApCounters()
        self._dtim_count = 0
        self._sequence = 0
        #: AIDs flagged in the most recent BTIM (exposed for tests).
        self.last_btim_aids: frozenset = frozenset()
        #: Structured-event tracer; the null default costs one attribute
        #: check per DTIM. Swap in a JsonlTracer to record dtim_cycle
        #: spans and btim events.
        self.tracer = NULL_TRACER
        #: Optional frame-lifecycle ledger (repro.obs.ledger). Detached
        #: by default: one ``is None`` check per broadcast frame, the
        #: same zero-cost contract as the tracer.
        self.ledger = None

    # -- association -------------------------------------------------

    def associate(self, mac: MacAddress, hide_capable: bool = False):
        """Admit a station (association handshake abstracted away)."""
        return self.associations.associate(mac, hide_capable=hide_capable)

    def disassociate(self, mac: MacAddress) -> None:
        record = self.associations.by_mac(mac)
        self.port_table.remove_client(record.aid)
        self.associations.disassociate(mac)

    # -- scheduling ---------------------------------------------------

    def on_attach(self) -> None:
        self.simulator.schedule(self.config.beacon_interval_s, self._beacon_tick)

    def _next_sequence(self) -> int:
        self._sequence = (self._sequence + 1) & 0xFFF
        return self._sequence

    def _beacon_tick(self) -> None:
        is_dtim = self._dtim_count == 0
        if is_dtim and self.tracer.enabled:
            with self.tracer.span(
                "dtim_cycle",
                sim_time=self.now,
                buffered_frames=len(self.broadcast_buffer),
                clients=len(self.associations),
            ) as span:
                self._transmit_beacon()
                self._drain_broadcast_buffer()
                span.add(btim_bits=len(self.last_btim_aids))
        else:
            self._transmit_beacon()
            if is_dtim:
                self._drain_broadcast_buffer()
        self._dtim_count = (self._dtim_count + 1) % self.config.dtim_period
        self.simulator.schedule(self.config.beacon_interval_s, self._beacon_tick)

    def _transmit_beacon(self) -> None:
        group_buffered = (
            len(self.broadcast_buffer) > 0 and self.associations.any_in_power_save()
        )
        tim = TimElement(
            dtim_count=self._dtim_count,
            dtim_period=self.config.dtim_period,
            group_traffic_buffered=group_buffered,
            aids_with_traffic=frozenset(
                self.associations.by_mac(mac).aid
                for mac in self.unicast_buffer.clients_with_traffic()
            ),
        )
        btim = None
        if self.config.hide_enabled and self._dtim_count == 0:
            if self.config.port_entry_ttl_s is not None:
                expired = self.port_table.expire_older_than(
                    self.now - self.config.port_entry_ttl_s
                )
                self.counters.port_entries_expired += len(expired)
                if expired and self.tracer.enabled:
                    self.tracer.event(
                        "port_entries_expired",
                        sim_time=self.now,
                        aids=[entry.aid for entry in expired],
                        ports=[sorted(entry.ports) for entry in expired],
                    )
            wall_start = _time.perf_counter()
            flags = compute_broadcast_flags(
                self.broadcast_buffer.peek_all(), self.port_table
            )
            elapsed = _time.perf_counter() - wall_start
            self.counters.algorithm1_runs += 1
            self.counters.algorithm1_wall_s += elapsed
            self.counters.btim_bits_set_total += len(flags)
            self.last_btim_aids = flags
            btim = BtimElement(flags)
            if self.tracer.enabled:
                self.tracer.span_record(
                    "algorithm1",
                    elapsed,
                    sim_time=self.now,
                    btim_bits=len(flags),
                    buffered_frames=len(self.broadcast_buffer),
                )
                self.tracer.event(
                    "btim",
                    sim_time=self.now,
                    bits_set=len(flags),
                    total_clients=len(self.associations),
                    aids=sorted(flags),
                )
        beacon = Beacon(
            bssid=self.mac,
            timestamp_us=int(self.now * 1e6),
            beacon_interval_tu=max(1, round(self.config.beacon_interval_s / 1024e-6)),
            tim=tim,
            btim=btim,
            ssid=self.config.ssid,
            dsss=DsssParameterElement(self.config.channel),
            sequence=self._next_sequence(),
        )
        self.counters.beacons_sent += 1
        if self._dtim_count == 0:
            self.counters.dtims_sent += 1
        self._medium.transmit(
            self, beacon, beacon.to_bytes(), self.config.beacon_rate_bps
        )

    def _drain_broadcast_buffer(self) -> None:
        ledger = self.ledger
        for frame in self.broadcast_buffer.drain():
            self.counters.broadcast_frames_sent += 1
            if ledger is not None:
                # After _transmit_beacon: the table state here is what
                # Algorithm 1 just classified against.
                ledger.frame_drained(frame, self.port_table)
            self._medium.transmit(
                self, frame, frame.to_bytes(), self.config.broadcast_rate_bps
            )

    # -- ingress from the distribution system -------------------------

    def deliver_from_ds(self, ip_packet: bytes, source_mac: MacAddress) -> None:
        """A broadcast IP packet arrived from the wired side.

        Buffered until the next DTIM whenever any client radio is in PS
        mode (the standard rule); sent immediately otherwise.
        """
        frame = DataFrame.broadcast_udp(
            bssid=self.mac,
            source=source_mac,
            ip_packet=ip_packet,
            sequence=self._next_sequence(),
        )
        if self.associations.any_in_power_save():
            self.counters.broadcast_frames_buffered += 1
            accepted = self.broadcast_buffer.enqueue(frame)
            if self.ledger is not None:
                if accepted:
                    self.ledger.frame_enqueued()
                else:
                    self.ledger.frame_buffer_dropped()
        else:
            self.counters.broadcast_frames_sent += 1
            if self.ledger is not None:
                self.ledger.frame_immediate(frame)
            self._medium.transmit(
                self, frame, frame.to_bytes(), self.config.broadcast_rate_bps
            )

    def deliver_unicast_from_ds(self, frame: DataFrame) -> None:
        """A unicast frame for an associated client arrived from the DS."""
        record = self.associations.get_by_mac(frame.destination)
        if record is not None and record.power_save:
            self.unicast_buffer.enqueue(frame)
        else:
            self._medium.transmit(
                self, frame, frame.to_bytes(), self.config.broadcast_rate_bps
            )

    # -- receive path --------------------------------------------------

    def on_receive(self, transmission: Transmission) -> None:
        frame = transmission.frame
        if isinstance(frame, UdpPortMessage):
            self._handle_port_message(frame)
        elif isinstance(frame, PsPoll):
            self._handle_ps_poll(frame)
        elif isinstance(frame, AssociationRequest):
            self._handle_association_request(frame)
        elif isinstance(frame, ProbeRequest):
            self._handle_probe_request(frame)
        elif isinstance(frame, Disassociation):
            self._handle_disassociation(frame)

    def _handle_disassociation(self, frame: Disassociation) -> None:
        if frame.destination != self.mac and frame.bssid != self.mac:
            return
        record = self.associations.get_by_mac(frame.source)
        if record is None:
            return
        self.counters.disassociations_received += 1
        self.port_table.remove_client(record.aid)
        self.associations.disassociate(frame.source)

    def _handle_probe_request(self, request: ProbeRequest) -> None:
        if not request.is_wildcard and request.ssid != self.config.ssid:
            return
        self.counters.probe_requests_answered += 1
        response = ProbeResponse(
            destination=request.source,
            bssid=self.mac,
            ssid=self.config.ssid,
            beacon_interval_tu=max(
                1, round(self.config.beacon_interval_s / 1024e-6)
            ),
            channel=self.config.channel,
            hide_supported=self.config.hide_enabled,
            timestamp_us=int(self.now * 1e6),
            sequence=self._next_sequence(),
        )
        self._medium.transmit(
            self, response, response.to_bytes(), self.config.beacon_rate_bps,
            gap_s=SIFS_S,
        )

    def _handle_association_request(self, request: AssociationRequest) -> None:
        if request.bssid != self.mac:
            return
        self.counters.association_requests_received += 1
        try:
            record = self.associations.associate(
                request.source, hide_capable=request.hide_capable
            )
        except AssociationError:
            response = AssociationResponse(
                destination=request.source,
                bssid=self.mac,
                status=STATUS_DENIED,
                aid=0,
                sequence=self._next_sequence(),
            )
        else:
            if request.hide_capable and request.initial_ports:
                self.port_table.update_client(
                    record.aid, request.initial_ports, now=self.now
                )
            response = AssociationResponse(
                destination=request.source,
                bssid=self.mac,
                status=STATUS_SUCCESS,
                aid=record.aid,
                sequence=self._next_sequence(),
            )
        self._medium.transmit(
            self, response, response.to_bytes(), self.config.beacon_rate_bps,
            gap_s=SIFS_S,
        )

    def _handle_port_message(self, message: UdpPortMessage) -> None:
        record = self.associations.get_by_mac(message.source)
        if record is None:
            return  # not associated: silently dropped, no ACK
        self.counters.port_messages_received += 1
        if message.ports:
            self.port_table.update_client(record.aid, message.ports, now=self.now)
        else:
            # An empty report means "no reportable sockets": clear the
            # client's entries (the table itself rejects empty sets).
            self.port_table.remove_client(record.aid)
        ack = Ack(receiver=message.source)
        self.counters.acks_sent += 1
        self._medium.transmit(
            self, ack, ack.to_bytes(), self.config.beacon_rate_bps, gap_s=SIFS_S
        )

    def _handle_ps_poll(self, poll: PsPoll) -> None:
        self.counters.ps_polls_received += 1
        try:
            record = self.associations.by_aid(poll.aid)
        except Exception:
            return
        frame = self.unicast_buffer.pop_for(record.mac)
        if frame is not None:
            self.counters.unicast_frames_sent += 1
            self._medium.transmit(
                self,
                frame,
                frame.to_bytes(),
                self.config.broadcast_rate_bps,
                gap_s=SIFS_S,
            )
