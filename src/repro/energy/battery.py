"""Battery arithmetic: turning average power into standby-life terms.

The paper reports mW; what a user feels is hours. This module converts
breakdowns into battery-drain projections, including the platform's
suspend-mode floor (P_ss) that the paper's five components deliberately
exclude — without it, "days of standby" would be wildly optimistic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.components import EnergyBreakdown
from repro.energy.profile import DeviceEnergyProfile
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Battery:
    """A battery described the way spec sheets do."""

    capacity_mah: float
    voltage_v: float = 3.7

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0:
            raise ConfigurationError("capacity must be positive")
        if self.voltage_v <= 0:
            raise ConfigurationError("voltage must be positive")

    @property
    def capacity_j(self) -> float:
        return self.capacity_mah * 1e-3 * self.voltage_v * 3600

    def drain_hours(self, power_w: float) -> float:
        """Hours to empty at a constant draw."""
        if power_w <= 0:
            raise ConfigurationError("power must be positive")
        return self.capacity_j / power_w / 3600

    def fraction_per_day(self, power_w: float) -> float:
        """Battery fraction consumed per 24 h at a constant draw."""
        if power_w < 0:
            raise ConfigurationError("power must be non-negative")
        return power_w * 86_400 / self.capacity_j


#: The Nexus One ships a 1400 mAh battery; the Galaxy S4 a 2600 mAh one.
NEXUS_ONE_BATTERY = Battery(capacity_mah=1400)
GALAXY_S4_BATTERY = Battery(capacity_mah=2600)


@dataclass(frozen=True)
class StandbyProjection:
    """Standby life with broadcast handling on top of the platform floor."""

    battery: Battery
    broadcast_power_w: float
    platform_floor_w: float

    @property
    def total_power_w(self) -> float:
        return self.broadcast_power_w + self.platform_floor_w

    @property
    def standby_hours(self) -> float:
        return self.battery.drain_hours(self.total_power_w)

    @property
    def broadcast_share(self) -> float:
        """What fraction of standby drain broadcast handling causes."""
        return self.broadcast_power_w / self.total_power_w


def project_standby(
    breakdown: EnergyBreakdown,
    profile: DeviceEnergyProfile,
    battery: Battery,
    suspend_fraction: float = 1.0,
) -> StandbyProjection:
    """Project standby life for a breakdown measured on ``profile``.

    ``suspend_fraction`` scales the platform floor: P_ss applies while
    suspended; awake time's platform cost is already inside the
    breakdown's wakelock/state-transfer components.
    """
    if not 0.0 <= suspend_fraction <= 1.0:
        raise ConfigurationError(
            f"suspend fraction must be in [0, 1]: {suspend_fraction}"
        )
    return StandbyProjection(
        battery=battery,
        broadcast_power_w=breakdown.average_power_w,
        platform_floor_w=profile.suspend_power_w * suspend_fraction,
    )
