"""An explicit power-state timeline built from the frame dynamics.

The closed-form model (Eqs. 6-19) sums energies; this module lays the
same dynamics out as wall-clock intervals — suspended / resuming /
active / suspending — which gives:

* the fraction of time in suspend mode (the paper's Figure 9), and
* an independent cross-check: integrating the timeline must agree with
  the closed form on wakelock time and state-transfer counts (asserted
  by property tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.energy.dynamics import FrameDynamics
from repro.energy.profile import DeviceEnergyProfile
from repro.errors import ConfigurationError
from repro.station.power import PowerState, StateSegment


@dataclass(frozen=True)
class PowerTimeline:
    """A gap-free sequence of state segments covering [0, duration]."""

    segments: tuple
    duration_s: float

    def __post_init__(self) -> None:
        previous_end = 0.0
        for segment in self.segments:
            if abs(segment.start - previous_end) > 1e-9:
                raise ConfigurationError(
                    f"timeline has a gap at {previous_end}..{segment.start}"
                )
            previous_end = segment.end
        if abs(previous_end - self.duration_s) > 1e-9:
            raise ConfigurationError("timeline does not cover the full window")

    def time_in_state(self, state: PowerState) -> float:
        return sum(s.duration for s in self.segments if s.state is state)

    @property
    def suspend_fraction(self) -> float:
        """Fraction of the window spent in SUSPENDED — Figure 9's metric."""
        if self.duration_s <= 0:
            return 0.0
        return self.time_in_state(PowerState.SUSPENDED) / self.duration_s

    @property
    def awake_fraction(self) -> float:
        return 1.0 - self.suspend_fraction

    def count_segments(self, state: PowerState) -> int:
        return sum(1 for s in self.segments if s.state is state)

    def baseline_energy_j(self, profile: DeviceEnergyProfile) -> float:
        """Background platform energy: P_ss while suspended. (The awake
        components are what the closed-form model accounts for.)"""
        return profile.suspend_power_w * self.time_in_state(PowerState.SUSPENDED)


class _SegmentBuilder:
    """Accumulates clamped, merged, gap-free segments."""

    def __init__(self, duration_s: float) -> None:
        self._duration = duration_s
        self._segments: List[StateSegment] = []
        self._cursor = 0.0

    def emit(self, state: PowerState, end: float) -> None:
        """Extend the timeline in ``state`` up to ``end`` (clamped)."""
        end = min(end, self._duration)
        if end <= self._cursor:
            return
        if self._segments and self._segments[-1].state is state:
            last = self._segments[-1]
            self._segments[-1] = StateSegment(state, last.start, end)
        else:
            self._segments.append(StateSegment(state, self._cursor, end))
        self._cursor = end

    @property
    def cursor(self) -> float:
        return self._cursor

    def finish(self) -> tuple:
        self.emit(PowerState.SUSPENDED, self._duration)
        if not self._segments:
            self._segments.append(
                StateSegment(PowerState.SUSPENDED, 0.0, self._duration)
            )
        return tuple(self._segments)


def build_timeline(
    dynamics: Sequence[FrameDynamics],
    profile: DeviceEnergyProfile,
    duration_s: float,
) -> PowerTimeline:
    """Lay the recursion's per-frame quantities out on the clock.

    Walks the same awake episodes the dynamics describe: a suspended
    arrival opens an episode with a resume operation; within an episode,
    gaps between lock coverage and the next frame are (aborted) suspend
    operations; the episode closes with a completed suspend.
    """
    if duration_s <= 0:
        raise ConfigurationError("duration must be positive")
    tsp = profile.suspend_duration_s

    builder = _SegmentBuilder(duration_s)
    previous_awake_until: Optional[float] = None

    for dyn in dynamics:
        if dyn.suspended_on_arrival:
            if previous_awake_until is not None:
                # Close the previous episode: completed suspend op.
                builder.emit(PowerState.SUSPENDING, previous_awake_until + tsp)
            builder.emit(PowerState.SUSPENDED, dyn.event.rx_complete)
            builder.emit(PowerState.RESUMING, dyn.wakelock_start)
        else:
            # Aborted suspend: the gap between the last busy instant and
            # this frame's wakelock activation was spent suspending.
            builder.emit(PowerState.SUSPENDING, dyn.wakelock_start)
        builder.emit(PowerState.ACTIVE, dyn.wakelock_start + dyn.wakelock_timeout)
        previous_awake_until = dyn.awake_until

    if previous_awake_until is not None:
        builder.emit(PowerState.SUSPENDING, previous_awake_until + tsp)
    return PowerTimeline(segments=builder.finish(), duration_s=duration_s)
