"""Energy metering for DES clients.

The closed-form model (Section IV) computes energy from a frame trace;
this meter computes it from what a simulated client *actually did*:
its power-state history, its wakelock holds, its radio receive/transmit
activity, and its protocol overhead counters. Having both lets tests
pin the DES and the analytic model against each other, and lets users
meter arbitrary protocol scenarios the closed form cannot express
(retransmissions, PS-Poll exchanges, mixed client populations).

Component mapping to Eq. (2):

* E_b   — beacons the client's radio received, at E_b^u each;
* E_f   — airtime of received data frames at P_r (idle listening
  between burst frames is below the meter's resolution here; the DES
  delivers frames back-to-back);
* E_st  — resumes and (completed + aborted) suspends from the power
  state machine's counters;
* E_wl  — wakelock-held time at P_sa;
* E_o   — UDP Port Message airtime at P_t plus BTIM bytes at prorated
  E_b^u (HIDE clients only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dot11.sizes import standard_beacon_length
from repro.energy.components import EnergyBreakdown
from repro.energy.profile import DeviceEnergyProfile
from repro.errors import SimulationError
from repro.sim.medium import PHY_OVERHEAD_S
from repro.station.client import Client, ClientPolicy
from repro.station.power import PowerState


@dataclass(frozen=True)
class MeteredEnergy:
    """A breakdown plus the platform-baseline energy the closed form
    leaves out (P_ss while suspended, so totals can be compared to a
    whole-device power budget)."""

    breakdown: EnergyBreakdown
    platform_baseline_j: float

    @property
    def total_with_baseline_j(self) -> float:
        return self.breakdown.total_j + self.platform_baseline_j

    @property
    def average_power_with_baseline_w(self) -> float:
        return self.total_with_baseline_j / self.breakdown.duration_s


class ClientEnergyMeter:
    """Meters one DES client against a device profile."""

    def __init__(
        self,
        client: Client,
        profile: DeviceEnergyProfile,
        btim_bytes: int = 6,
        avg_received_frame_bytes: int = 250,
        avg_data_rate_bps: float = 1_000_000.0,
    ) -> None:
        self.client = client
        self.profile = profile
        self.btim_bytes = btim_bytes
        self.avg_received_frame_bytes = avg_received_frame_bytes
        self.avg_data_rate_bps = avg_data_rate_bps

    def measure(self, duration_s: Optional[float] = None) -> MeteredEnergy:
        client = self.client
        profile = self.profile
        if client.power is None or client.wakelock is None:
            raise SimulationError("client has not been attached to a simulator")
        elapsed = duration_s if duration_s is not None else client.simulator.now
        if elapsed <= 0:
            raise SimulationError("nothing to meter: no simulated time elapsed")

        beacon_j = profile.beacon_rx_j * client.counters.beacons_received

        frames = (
            client.counters.broadcast_frames_received
            + client.counters.unicast_frames_received
        )
        frame_airtime = (
            PHY_OVERHEAD_S
            + self.avg_received_frame_bytes * 8 / self.avg_data_rate_bps
        )
        receive_j = profile.rx_power_w * frames * frame_airtime

        power = client.power.counters
        state_transfer_j = (
            profile.resume_energy_j * power.resumes
            + profile.suspend_energy_j * power.suspends_completed
            + profile.suspend_energy_j
            * (
                power.aborted_suspend_time / profile.suspend_duration_s
                if profile.suspend_duration_s > 0
                else 0.0
            )
        )

        wakelock_j = profile.active_idle_power_w * client.wakelock.total_held_time()

        overhead_j = 0.0
        if client.config.policy is ClientPolicy.HIDE:
            message_seconds = (
                client.counters.port_message_bytes_sent
                * 8
                / client.config.management_rate_bps
                + client.counters.port_messages_sent * PHY_OVERHEAD_S
            )
            overhead_j += profile.tx_power_w * message_seconds
            overhead_j += (
                profile.beacon_rx_j
                * (self.btim_bytes / standard_beacon_length())
                * client.counters.dtims_received
            )

        breakdown = EnergyBreakdown(
            beacon_j=beacon_j,
            receive_j=receive_j,
            state_transfer_j=state_transfer_j,
            wakelock_j=wakelock_j,
            overhead_j=overhead_j,
            duration_s=elapsed,
        )
        platform_baseline_j = profile.suspend_power_w * client.power.time_in_state(
            PowerState.SUSPENDED
        )
        return MeteredEnergy(
            breakdown=breakdown, platform_baseline_j=platform_baseline_j
        )
