"""The five-way energy breakdown of the paper's Eq. (2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Component order and labels as used in Figures 7-8.
COMPONENT_LABELS = ("Eb", "Ef", "Est", "Ewl", "Eo")


@dataclass(frozen=True)
class EnergyBreakdown:
    """E = E_b + E_f + E_st + E_wl + E_o over an observation window."""

    #: E_b — receiving beacon frames (J).
    beacon_j: float
    #: E_f — receiving broadcast data frames + associated idle listening (J).
    receive_j: float
    #: E_st — system resume/suspend operations, incl. aborted suspends (J).
    state_transfer_j: float
    #: E_wl — system active-idle time under WiFi wakelocks (J).
    wakelock_j: float
    #: E_o — HIDE overhead: BTIM bytes + UDP Port Messages (J). Zero for
    #: the baselines.
    overhead_j: float
    #: Observation window length (s); average power normalizer.
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(f"duration must be positive: {self.duration_s}")

    @property
    def total_j(self) -> float:
        return (
            self.beacon_j
            + self.receive_j
            + self.state_transfer_j
            + self.wakelock_j
            + self.overhead_j
        )

    @property
    def average_power_w(self) -> float:
        """E/T — the quantity plotted in Figures 7-8."""
        return self.total_j / self.duration_s

    def component_power_w(self) -> Dict[str, float]:
        """Per-component average power, keyed by the Figure 7/8 labels."""
        return {
            "Eb": self.beacon_j / self.duration_s,
            "Ef": self.receive_j / self.duration_s,
            "Est": self.state_transfer_j / self.duration_s,
            "Ewl": self.wakelock_j / self.duration_s,
            "Eo": self.overhead_j / self.duration_s,
        }

    def savings_vs(self, baseline: "EnergyBreakdown") -> float:
        """Fractional energy saving relative to ``baseline`` (1 - E/E_base)."""
        if baseline.total_j <= 0:
            raise ValueError("baseline consumed no energy")
        return 1.0 - (self.average_power_w / baseline.average_power_w)

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """All components multiplied by ``factor`` (duration unchanged)."""
        return EnergyBreakdown(
            beacon_j=self.beacon_j * factor,
            receive_j=self.receive_j * factor,
            state_transfer_j=self.state_transfer_j * factor,
            wakelock_j=self.wakelock_j * factor,
            overhead_j=self.overhead_j * factor,
            duration_s=self.duration_s,
        )
