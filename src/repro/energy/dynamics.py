"""The per-frame state recursion of Section IV (Eqs. 3-5 and 14).

Given a sequence of received broadcast frames, derive for each frame
when its wakelock activates (t_r, Eq. 3), whether the system was
suspended on arrival (s(i), Eq. 5), how much new wakelock-held time it
contributes (Σ over frames equals Σ t_wl of Eq. 4), and what fraction of
a suspend operation its arrival aborted (y(i), Eq. 14).

The recursion generalizes the paper's uniform wakelock timeout τ to a
per-frame timeout τ_i so the client-side baseline (τ_i = 0 for useless
frames) falls out of the same machinery. The generalization keeps real
wakelock semantics: a lock already held can only be *extended* by a new
frame, never shortened — a τ_i = 0 frame arriving under an active lock
contributes nothing but also releases nothing. For uniform τ the
derived quantities coincide exactly with the paper's Eqs. (3)-(5)/(14)
(property-tested in tests/energy/test_dynamics.py).

State variables carried through the scan:

* ``covered_until`` — the furthest time covered by wakelocks in the
  current awake episode (the union sweep pointer);
* ``awake_until`` — when the system last stopped being busy: the later
  of lock coverage and the last frame's processing instant. A suspend
  operation starts here; it completes Tsp later unless aborted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.units import airtime


@dataclass(frozen=True)
class FrameEvent:
    """One broadcast frame as seen by the client's radio.

    ``useful`` is the paper's u_i; ``more_data`` is the frame's
    more-data bit d_more(i), which controls post-frame idle listening.
    """

    time: float
    length_bytes: int
    rate_bps: float
    useful: bool
    more_data: bool = False
    udp_port: Optional[int] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"frame time must be non-negative: {self.time}")
        if self.length_bytes <= 0:
            raise ValueError(f"frame length must be positive: {self.length_bytes}")
        if self.rate_bps <= 0:
            raise ValueError(f"data rate must be positive: {self.rate_bps}")

    @property
    def rx_complete(self) -> float:
        """t_i + l_i / r_i."""
        return self.time + airtime(self.length_bytes, self.rate_bps)

    @property
    def transmission_time(self) -> float:
        """t_t(i) = l_i / r_i (Eq. 8)."""
        return airtime(self.length_bytes, self.rate_bps)


@dataclass(frozen=True)
class FrameDynamics:
    """Derived state for one frame."""

    event: FrameEvent
    #: s(i) == 0: the system was in suspend mode when the frame arrived.
    suspended_on_arrival: bool
    #: t_r(i): when this frame's wakelock activates (Eq. 3).
    wakelock_start: float
    #: The per-frame wakelock timeout τ_i used in the recursion.
    wakelock_timeout: float
    #: New wakelock-held seconds this frame adds to the episode's lock
    #: coverage. Σ coverage_increment == Σ t_wl(i) of Eq. (4).
    coverage_increment: float
    #: y(i): fraction of a suspend operation aborted by this frame.
    aborted_suspend_fraction: float
    #: When the system stops being busy after this frame (lock coverage
    #: or, for τ_i = 0 past coverage, the processing instant itself).
    awake_until: float


def derive_frame_dynamics(
    frames: Sequence[FrameEvent],
    wakelock_timeout_s: float,
    resume_duration_s: float,
    suspend_duration_s: float,
    wakelock_for_frame: Optional[Callable[[FrameEvent], float]] = None,
) -> List[FrameDynamics]:
    """Run the Section IV recursion over time-sorted ``frames``.

    ``wakelock_for_frame`` overrides the per-frame timeout τ_i; the
    default is the constant device τ. Like the paper, the first frame
    is assumed to find the system suspended (s(1) = 0).
    """
    if wakelock_timeout_s < 0 or resume_duration_s < 0 or suspend_duration_s < 0:
        raise ConfigurationError("timing constants must be non-negative")
    for earlier, later in zip(frames, frames[1:]):
        if later.time < earlier.time:
            raise ConfigurationError("frames must be sorted by arrival time")

    tau_of = wakelock_for_frame or (lambda _frame: wakelock_timeout_s)
    dynamics: List[FrameDynamics] = []
    covered_until = 0.0
    awake_until: Optional[float] = None
    prev_wakelock_start = 0.0

    for index, frame in enumerate(frames):
        tau = tau_of(frame)
        if tau < 0:
            raise ConfigurationError(f"negative wakelock timeout for frame {index}")
        arrival = frame.rx_complete

        if index == 0:
            suspended = True
        else:
            assert awake_until is not None
            # Eq. (5): the suspend op that began at awake_until finished
            # before the frame landed.
            suspended = arrival >= awake_until + suspend_duration_s

        if suspended:
            # Eq. (3), first case: the resume op delays the wakelock.
            wakelock_start = arrival + resume_duration_s
            aborted_fraction = 0.0
            covered_until = wakelock_start  # fresh awake episode
        else:
            # Eq. (3), second case: delayed activation if still resuming,
            # immediate otherwise.
            wakelock_start = max(arrival, prev_wakelock_start)
            assert awake_until is not None
            gap = wakelock_start - awake_until
            if gap > 0 and suspend_duration_s > 0:
                # Eq. (14): the system had begun suspending at
                # awake_until; this frame aborts it ``gap`` in.
                aborted_fraction = min(1.0, gap / suspend_duration_s)
            else:
                aborted_fraction = 0.0

        lock_end = wakelock_start + tau
        increment = max(0.0, lock_end - max(wakelock_start, covered_until))
        covered_until = max(covered_until, lock_end)
        awake_until = max(covered_until, wakelock_start)

        dynamics.append(
            FrameDynamics(
                event=frame,
                suspended_on_arrival=suspended,
                wakelock_start=wakelock_start,
                wakelock_timeout=tau,
                coverage_increment=increment,
                aborted_suspend_fraction=aborted_fraction,
                awake_until=awake_until,
            )
        )
        prev_wakelock_start = wakelock_start

    return dynamics
