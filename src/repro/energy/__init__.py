"""The paper's Section IV energy model.

Layers:

* :mod:`repro.energy.profile` — device constants (paper Table I).
* :mod:`repro.energy.dynamics` — the per-frame state recursion
  (Eqs. 3-5, 14): wakelock start times, effective wakelock durations,
  suspended-vs-awake state on arrival, aborted-suspend fractions.
* :mod:`repro.energy.model` — the component energies (Eqs. 2, 6-19):
  E_b, E_f, E_wl, E_st, E_o.
* :mod:`repro.energy.timeline` — an explicit interval timeline built
  from the same dynamics, used for the suspend-mode fraction (Fig. 9)
  and as an independent cross-check of the closed form.
"""

from repro.energy.profile import DeviceEnergyProfile, NEXUS_ONE, GALAXY_S4
from repro.energy.components import EnergyBreakdown, COMPONENT_LABELS
from repro.energy.dynamics import FrameDynamics, FrameEvent, derive_frame_dynamics
from repro.energy.model import EnergyModel, HideOverheadParams
from repro.energy.timeline import PowerTimeline, build_timeline
from repro.energy.meter import ClientEnergyMeter, MeteredEnergy
from repro.energy.battery import (
    Battery,
    GALAXY_S4_BATTERY,
    NEXUS_ONE_BATTERY,
    StandbyProjection,
    project_standby,
)

__all__ = [
    "DeviceEnergyProfile",
    "NEXUS_ONE",
    "GALAXY_S4",
    "EnergyBreakdown",
    "COMPONENT_LABELS",
    "FrameDynamics",
    "FrameEvent",
    "derive_frame_dynamics",
    "EnergyModel",
    "HideOverheadParams",
    "PowerTimeline",
    "build_timeline",
    "ClientEnergyMeter",
    "MeteredEnergy",
    "Battery",
    "GALAXY_S4_BATTERY",
    "NEXUS_ONE_BATTERY",
    "StandbyProjection",
    "project_standby",
]
