"""Component energies — Eqs. (2), (6)-(19) of the paper.

:class:`EnergyModel` evaluates one client's energy for handling a
stream of received broadcast frames over an observation window. What to
feed it is the *solution's* choice (see :mod:`repro.solutions`): the
receive-all and client-side baselines pass every frame in the trace;
HIDE passes only the useful ones plus an overhead description.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.dot11.sizes import FCS_BYTES, MAC_HEADER_BYTES
from repro.energy.components import EnergyBreakdown
from repro.energy.dynamics import (
    FrameDynamics,
    FrameEvent,
    derive_frame_dynamics,
)
from repro.energy.profile import DeviceEnergyProfile
from repro.errors import ConfigurationError
from repro.sim.medium import PHY_OVERHEAD_S
from repro.units import BEACON_INTERVAL_S, mbps


@dataclass(frozen=True)
class HideOverheadParams:
    """Inputs to E_o (Eqs. 15-19).

    Defaults follow the paper's evaluation settings: a UDP Port Message
    every 10 s carrying 100 ports at the lowest rate (1 Mb/s) — "able to
    represent smartphones in heavy usage".
    """

    port_message_interval_s: float = 10.0
    ports_per_message: int = 100
    message_rate_bps: float = mbps(1)
    #: On-air bytes of the BTIM element added to each DTIM beacon.
    btim_bytes: int = 6
    #: Standard (pre-HIDE) beacon length used to prorate E_b^u per byte.
    standard_beacon_bytes: int = 65
    #: Mean transmissions each port report costs on air. 1.0 is the
    #: paper's lossless channel; under uniform loss ``p`` with
    #: retransmit-until-ACK recovery the expectation is ``1/(1-p)``
    #: (each attempt independently survives with probability 1-p).
    expected_transmissions_per_report: float = 1.0

    def __post_init__(self) -> None:
        if self.port_message_interval_s <= 0:
            raise ConfigurationError("port message interval must be positive")
        if self.ports_per_message < 0:
            raise ConfigurationError("ports per message must be non-negative")
        if self.message_rate_bps <= 0:
            raise ConfigurationError("message rate must be positive")
        if self.btim_bytes < 0 or self.standard_beacon_bytes <= 0:
            raise ConfigurationError("bad beacon size parameters")
        if self.expected_transmissions_per_report < 1.0:
            raise ConfigurationError(
                "expected transmissions per report cannot be below 1"
            )

    @classmethod
    def for_bss(
        cls,
        station_count: int,
        flagged_fraction: float = 0.2,
        **kwargs,
    ) -> "HideOverheadParams":
        """Overhead params with the BTIM size computed from a *real*
        encoded element for a BSS of ``station_count`` clients with
        ``flagged_fraction`` of them flagged — instead of the default
        6-byte estimate. Uses a worst-case-spread AID pattern (every
        (1/fraction)-th AID set), which defeats the offset compression
        and upper-bounds the element length."""
        from repro.dot11.elements.btim import BtimElement

        if station_count < 0:
            raise ConfigurationError("station count must be non-negative")
        if not 0.0 <= flagged_fraction <= 1.0:
            raise ConfigurationError("flagged fraction must be in [0, 1]")
        flagged_count = round(station_count * flagged_fraction)
        if flagged_count > 0:
            step = max(1, int(1 / max(flagged_fraction, 1e-9)))
            aids = frozenset(
                1 + i * step for i in range(flagged_count) if 1 + i * step <= 2007
            )
            btim_bytes = BtimElement(aids).encoded_length
        else:
            btim_bytes = BtimElement().encoded_length
        return cls(btim_bytes=btim_bytes, **kwargs)

    @property
    def message_length_bytes(self) -> int:
        """Eq. (19): MAC overhead + 2 fixed bytes + 2 bytes per port.

        (The PHY preamble is time, not bytes; it enters via airtime.)
        """
        return MAC_HEADER_BYTES + FCS_BYTES + 2 + 2 * self.ports_per_message

    @property
    def message_airtime_s(self) -> float:
        return PHY_OVERHEAD_S + self.message_length_bytes * 8 / self.message_rate_bps


class EnergyModel:
    """Evaluate Section IV for one device profile and beacon schedule."""

    def __init__(
        self,
        profile: DeviceEnergyProfile,
        beacon_interval_s: float = BEACON_INTERVAL_S,
        dtim_period: int = 1,
        listen_dtim_only: bool = False,
    ) -> None:
        """``listen_dtim_only`` models a station whose listen interval
        equals the DTIM period: it skips non-DTIM beacons entirely,
        dividing E_b by the DTIM period. (It then also misses per-beacon
        unicast TIMs — acceptable for the broadcast-centric evaluation;
        the paper's default is to receive every beacon.)"""
        if beacon_interval_s <= 0:
            raise ConfigurationError("beacon interval must be positive")
        if dtim_period < 1:
            raise ConfigurationError("DTIM period must be at least 1")
        self.profile = profile
        self.beacon_interval_s = beacon_interval_s
        self.dtim_period = dtim_period
        self.listen_dtim_only = listen_dtim_only

    # -- helpers -----------------------------------------------------

    def beacon_count(self, duration_s: float) -> int:
        """Beacons received during [0, duration)."""
        beacons = max(1, math.ceil(duration_s / self.beacon_interval_s))
        if self.listen_dtim_only:
            return max(1, math.ceil(beacons / self.dtim_period))
        return beacons

    def beacon_index(self, time_s: float) -> int:
        """Which beacon interval b_i a time falls in (0-based)."""
        return int(time_s / self.beacon_interval_s)

    def derive_dynamics(
        self,
        frames: Sequence[FrameEvent],
        wakelock_for_frame: Optional[Callable[[FrameEvent], float]] = None,
    ) -> List[FrameDynamics]:
        return derive_frame_dynamics(
            frames,
            wakelock_timeout_s=self.profile.wakelock_timeout_s,
            resume_duration_s=self.profile.resume_duration_s,
            suspend_duration_s=self.profile.suspend_duration_s,
            wakelock_for_frame=wakelock_for_frame,
        )

    # -- component energies ------------------------------------------

    def beacon_energy(self, duration_s: float) -> float:
        """E_b (Eq. 6): all beacons in the window, every solution alike."""
        return self.profile.beacon_rx_j * self.beacon_count(duration_s)

    def receive_energy(self, frames: Sequence[FrameEvent], duration_s: float) -> float:
        """E_f (Eq. 7): transmission time at P_r plus idle listening at
        P_idle — both the post-DTIM wait for the first frame (t_f) and
        the more-data gaps between frames (t_d)."""
        rx_time = sum(frame.transmission_time for frame in frames)

        idle_time = 0.0
        first_frame_in_interval: Dict[int, float] = {}
        for index, frame in enumerate(frames):
            interval = self.beacon_index(frame.time)
            if interval not in first_frame_in_interval:
                first_frame_in_interval[interval] = frame.time
            if frame.more_data:
                interval_end = (interval + 1) * self.beacon_interval_s
                if index + 1 < len(frames):
                    next_event = min(frames[index + 1].time, interval_end)
                else:
                    next_event = interval_end
                idle_time += max(0.0, next_event - frame.rx_complete)
        # t_f (Eq. 9): from each beacon to its first broadcast frame.
        for interval, first_time in first_frame_in_interval.items():
            idle_time += max(0.0, first_time - interval * self.beacon_interval_s)

        return self.profile.rx_power_w * rx_time + self.profile.idle_power_w * idle_time

    def wakelock_energy(self, dynamics: Sequence[FrameDynamics]) -> float:
        """E_wl (Eq. 12): active-idle power over all wakelock-held time
        (the union of the per-frame locks; equals Σ t_wl of Eq. 4)."""
        return self.profile.active_idle_power_w * sum(
            d.coverage_increment for d in dynamics
        )

    def state_transfer_energy(self, dynamics: Sequence[FrameDynamics]) -> float:
        """E_st (Eq. 13): full resume+suspend per suspended arrival, plus
        partial suspends aborted by awake arrivals."""
        suspended_arrivals = sum(1 for d in dynamics if d.suspended_on_arrival)
        aborted = sum(d.aborted_suspend_fraction for d in dynamics)
        return (
            (self.profile.resume_energy_j + self.profile.suspend_energy_j)
            * suspended_arrivals
            + self.profile.suspend_energy_j * aborted
        )

    def overhead_energy(
        self, overhead: Optional[HideOverheadParams], duration_s: float
    ) -> float:
        """E_o (Eqs. 15-19): zero unless HIDE overhead params are given."""
        if overhead is None:
            return 0.0
        dtim_count = self.beacon_count(duration_s) / self.dtim_period
        btim_energy = (
            self.profile.beacon_rx_j
            * (overhead.btim_bytes / overhead.standard_beacon_bytes)
            * dtim_count
        )
        message_count = (
            duration_s / overhead.port_message_interval_s
        ) * overhead.expected_transmissions_per_report
        message_energy = (
            message_count * self.profile.tx_power_w * overhead.message_airtime_s
        )
        return btim_energy + message_energy

    # -- the full evaluation -------------------------------------------

    def evaluate(
        self,
        frames: Sequence[FrameEvent],
        duration_s: float,
        wakelock_for_frame: Optional[Callable[[FrameEvent], float]] = None,
        overhead: Optional[HideOverheadParams] = None,
    ) -> EnergyBreakdown:
        """Eq. (2): E = E_b + E_f + E_wl + E_st + E_o over the window."""
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        dynamics = self.derive_dynamics(frames, wakelock_for_frame)
        return EnergyBreakdown(
            beacon_j=self.beacon_energy(duration_s),
            receive_j=self.receive_energy(frames, duration_s),
            state_transfer_j=self.state_transfer_energy(dynamics),
            wakelock_j=self.wakelock_energy(dynamics),
            overhead_j=self.overhead_energy(overhead, duration_s),
            duration_s=duration_s,
        )
