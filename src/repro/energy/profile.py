"""Device energy profiles — the paper's Table I, measured with a Monsoon
power monitor on a Nexus One and a Galaxy S4.

Interpretation note (also in DESIGN.md): ``beacon_rx_j`` (the paper's
E_b^u) is treated as energy per received *beacon frame* of standard
length; read as per-byte the Table I values would imply beacon-listening
power two orders of magnitude above the device's own receive power.
Per-beacon, Nexus One's 1.25 mJ at a 102.4 ms beacon interval gives
≈12 mW of beacon-listening power, which matches the E_b band of the
paper's Figures 7-8.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.units import mj, ms, mw


@dataclass(frozen=True)
class DeviceEnergyProfile:
    """All constants the Section IV model needs for one device."""

    name: str
    #: τ — WiFi driver wakelock duration per received frame (s).
    wakelock_timeout_s: float
    #: T_rm — system resume operation duration (s).
    resume_duration_s: float
    #: T_sp — system suspend operation duration (s).
    suspend_duration_s: float
    #: E_rm — energy of one resume operation (J).
    resume_energy_j: float
    #: E_sp — energy of one (complete) suspend operation (J).
    suspend_energy_j: float
    #: E_b^u — energy to receive one standard beacon frame (J).
    beacon_rx_j: float
    #: P_r — WiFi radio receive power (W).
    rx_power_w: float
    #: P_t — WiFi radio transmit power (W).
    tx_power_w: float
    #: P_idle — WiFi radio idle-listening power (W).
    idle_power_w: float
    #: P_ss — whole-system suspend power (W).
    suspend_power_w: float
    #: P_sa — whole-system active-idle power (W).
    active_idle_power_w: float

    def __post_init__(self) -> None:
        for field_name in (
            "wakelock_timeout_s",
            "resume_duration_s",
            "suspend_duration_s",
            "resume_energy_j",
            "suspend_energy_j",
            "beacon_rx_j",
            "rx_power_w",
            "tx_power_w",
            "idle_power_w",
            "suspend_power_w",
            "active_idle_power_w",
        ):
            value = getattr(self, field_name)
            if value < 0:
                raise ConfigurationError(f"{field_name} must be non-negative: {value}")

    def with_overrides(self, **kwargs) -> "DeviceEnergyProfile":
        """Copy with selected constants replaced (for sensitivity studies)."""
        return replace(self, **kwargs)


#: Table I, row 1.
NEXUS_ONE = DeviceEnergyProfile(
    name="Nexus One",
    wakelock_timeout_s=1.0,
    resume_duration_s=ms(46),
    suspend_duration_s=ms(86),
    resume_energy_j=mj(18.26),
    suspend_energy_j=mj(17.66),
    beacon_rx_j=mj(1.25),
    rx_power_w=mw(530),
    tx_power_w=mw(1200),
    idle_power_w=mw(245),
    suspend_power_w=mw(11),
    active_idle_power_w=mw(125),
)

#: Table I, row 2.
GALAXY_S4 = DeviceEnergyProfile(
    name="Galaxy S4",
    wakelock_timeout_s=1.0,
    resume_duration_s=ms(44),
    suspend_duration_s=ms(165),
    resume_energy_j=mj(58.3),
    suspend_energy_j=mj(85.8),
    beacon_rx_j=mj(1.71),
    rx_power_w=mw(538),
    tx_power_w=mw(1500),
    idle_power_w=mw(275),
    suspend_power_w=mw(15),
    active_idle_power_w=mw(130),
)

#: Both Table I devices, in paper order.
ALL_PROFILES = (NEXUS_ONE, GALAXY_S4)
