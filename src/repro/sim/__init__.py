"""Deterministic discrete-event simulation engine.

A small, dependency-free DES kernel: a :class:`Simulator` owns a clock
and an event heap; entities schedule callbacks; a :class:`Medium`
serializes transmissions onto a shared half-duplex channel and delivers
frames to every attached receiver after the frame's airtime.

Determinism matters here — two runs with the same seed must produce the
same event order — so ties on the event heap break by (priority,
sequence number), never by object identity.
"""

from repro.sim.engine import Simulator, EventHandle
from repro.sim.medium import Medium, Transmission
from repro.sim.entity import Entity
from repro.sim.sniffer import ProtocolSniffer, CapturedFrame

__all__ = [
    "Simulator",
    "EventHandle",
    "Medium",
    "Transmission",
    "Entity",
    "ProtocolSniffer",
    "CapturedFrame",
]
