"""The event loop: a monotonic clock over a pluggable event queue.

The queue contract and both backends (reference binary heap, bucketed
calendar queue) live in :mod:`repro.sim.eventq`; this module owns event
semantics — total order, cancellation, recurring timers, observer
probes — and the fused run loop that pops records without a method call
per event.

Events at equal times fire in (priority, insertion) order.  An event
record is a 6-slot list ``[time, priority, sequence, callback,
cancelled, interval_or_None]`` (see ``eventq``); every scheduling API
consumes exactly one sequence number per queued record, so the live
count is the arithmetic identity ``sequence - cancelled - processed``
instead of a per-event counter update.

Counter visibility: ``now`` is exact at all times.  ``events_processed``
(and therefore ``pending_events``) is kept in a run-loop local for speed
and synced to the instance at every probe boundary, at ``step()``
granularity, and on ``run()`` exit — i.e. it is exact everywhere
telemetry reads it, and may lag only inside a single uninterrupted burst
of event callbacks.
"""

from __future__ import annotations

import math
import time as _time
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Union

from repro.errors import SimulationError
from repro.sim.eventq import make_queue

_INF = float("inf")

# Record field indices, for readers of the loops below.
_TIME, _PRIORITY, _SEQ, _CALLBACK, _CANCELLED, _INTERVAL = range(6)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancel().

    Cancellation is lazy: the queue entry stays but is skipped when
    popped, which keeps cancel O(1). The simulator is notified so its
    live-event count stays exact without scanning the queue.
    """

    __slots__ = ("_record", "_simulator")

    def __init__(self, record: list, simulator: "Simulator") -> None:
        self._record = record
        self._simulator = simulator

    @property
    def time(self) -> float:
        return self._record[0]

    @property
    def cancelled(self) -> bool:
        return self._record[4]

    def cancel(self) -> None:
        self._simulator._cancel(self._record)


class RecurringHandle:
    """Handle for :meth:`Simulator.every`; cancel() stops future firings."""

    __slots__ = ("_record", "_simulator", "_cancelled")

    def __init__(self, record: list, simulator: "Simulator") -> None:
        self._record = record
        self._simulator = simulator
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        self._cancelled = True
        self._simulator._cancel(self._record)


class ProbeHandle:
    """Handle for :meth:`Simulator.add_probe`; cancel() stops sampling.

    A probe is an *observer*, not an event: it lives outside the event
    queue, never counts toward ``events_processed``, and must not mutate
    simulation state — only read it. That separation is what lets a
    telemetry flush run every window without perturbing determinism
    fingerprints.
    """

    __slots__ = ("interval_s", "next_due", "callback", "cancelled")

    def __init__(
        self, interval_s: float, next_due: float, callback: Callable[[], None]
    ) -> None:
        self.interval_s = interval_s
        self.next_due = next_due
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    Events at equal times fire in (priority, insertion order). Lower
    priority values fire first; the default priority is 0.

    ``queue`` selects the scheduling backend: ``"calendar"`` (default;
    the bucketed calendar queue tuned to the beacon-period event mix),
    ``"heap"`` (the reference binary heap), or a pre-built queue object.
    The two backends are observably identical — the differential suite
    and the fingerprint-identity tests pin that — so the choice is
    purely a throughput knob.
    """

    def __init__(self, queue: Union[str, Any, None] = None) -> None:
        self._now = 0.0
        self._queue = make_queue(queue)
        self._push = self._queue.push
        self._sequence = 0
        self._events_processed = 0
        self._events_cancelled = 0
        self._run_wall_time = 0.0
        self._running = False
        self._probes: List[ProbeHandle] = []
        self._probes_fired = 0
        self._next_probe_due = _INF
        self._profiler: Optional[Any] = None
        self._sync_hooks: List[Callable[[], None]] = []

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def queue_kind(self) -> str:
        """Which event-queue backend is active (``heap``/``calendar``)."""
        return self._queue.kind

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def events_cancelled(self) -> int:
        """Events cancelled before they could fire."""
        return self._events_cancelled

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) scheduled events — O(1).

        Every queued record consumes one sequence number, so the live
        count is ``scheduled - cancelled - processed`` — no scanning,
        no per-event bookkeeping.
        """
        return self._sequence - self._events_cancelled - self._events_processed

    @property
    def queue_depth(self) -> int:
        """Queue entries including cancelled tombstones awaiting pop."""
        return self._queue.depth()

    @property
    def heap_depth(self) -> int:
        """Backward-compatible alias for :attr:`queue_depth`."""
        return self._queue.depth()

    @property
    def run_wall_time_s(self) -> float:
        """Wall-clock seconds spent inside :meth:`run` so far."""
        return self._run_wall_time

    @property
    def probes_fired(self) -> int:
        """Observer-probe firings (never counted as events)."""
        return self._probes_fired

    @property
    def profiler(self) -> Optional[Any]:
        """The attached attribution profiler, if any."""
        return self._profiler

    def attach_profiler(self, profiler: Any) -> Any:
        """Route event execution through ``profiler`` (attribution).

        The profiler is an *observer of the host clock only*: it wraps
        callback invocation with wall timing but adds, removes, and
        reorders nothing, so same-seed fingerprints are identical with
        or without it.  When no profiler is attached, ``run()`` takes
        the original fused loop — detached profiling costs zero.
        """
        if self._running:
            raise SimulationError("cannot attach a profiler mid-run")
        if self._profiler is not None:
            raise SimulationError("a profiler is already attached")
        self._profiler = profiler
        return profiler

    def detach_profiler(self) -> None:
        if self._running:
            raise SimulationError("cannot detach a profiler mid-run")
        self._profiler = None

    def _cancel(self, record: list) -> None:
        if not record[4]:
            record[4] = True
            self._events_cancelled += 1

    def post(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
        _heappush: Callable[[list, list], None] = heappush,
    ) -> None:
        """Fire-and-forget :meth:`schedule`: no handle is allocated.

        The hot-path scheduling call for events that are never
        cancelled (frame deliveries, trace replay, benchmarks).  The
        near-window push is inlined here — one compare against the
        queue's ``near_end`` skips the ``push`` method call for the
        overwhelmingly common due-soon case.  ``not delay >= 0`` rejects
        negatives and NaN in one compare; a non-finite resulting time
        can only reach the queue's cold overflow path, which rejects it.
        """
        if not delay >= 0.0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        sequence = self._sequence
        self._sequence = sequence + 1
        time = self._now + delay
        record = [time, priority, sequence, callback, False, None]
        queue = self._queue
        if time < queue.near_end:
            _heappush(queue.near, record)
        else:
            queue.push(record)

    def post_at(
        self, time: float, callback: Callable[[], None], priority: int = 0
    ) -> None:
        """Fire-and-forget :meth:`schedule_at`: no handle is allocated."""
        if not self._now <= time < _INF:
            if not math.isfinite(time):
                raise SimulationError(f"event time must be finite: {time}")
            raise SimulationError(
                f"cannot schedule into the past: t={time} < now={self._now}"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        record = [time, priority, sequence, callback, False, None]
        queue = self._queue
        if time < queue.near_end:
            heappush(queue.near, record)
        else:
            queue.push(record)

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        return self.schedule_at(self._now + delay, callback, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite: {time}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: t={time} < now={self._now}"
            )
        sequence = self._sequence
        self._sequence = sequence + 1
        record = [time, priority, sequence, callback, False, None]
        self._push(record)
        return EventHandle(record, self)

    def every(
        self,
        interval_s: float,
        callback: Callable[[], None],
        priority: int = 0,
        first_delay_s: Optional[float] = None,
    ) -> RecurringHandle:
        """Run ``callback`` every ``interval_s`` seconds until cancelled.

        The first firing is after ``first_delay_s`` (default: one
        interval). Used by periodic machinery — invariant sweeps,
        keep-alive refreshes — that must not die with a single event.

        Recurring timers are native to the run loop: the popped record
        is re-armed in place (new time, fresh sequence number) after the
        callback returns, so steady-state periodic work allocates
        nothing per firing.
        """
        if interval_s <= 0:
            raise SimulationError(
                f"recurring interval must be positive: {interval_s}"
            )
        initial = interval_s if first_delay_s is None else first_delay_s
        if initial < 0:
            raise SimulationError(f"cannot schedule into the past: delay={initial}")
        first_time = self._now + initial
        if not math.isfinite(first_time):
            raise SimulationError(f"event time must be finite: {first_time}")
        sequence = self._sequence
        self._sequence = sequence + 1
        record = [first_time, priority, sequence, callback, False, interval_s]
        self._push(record)
        return RecurringHandle(record, self)

    def add_probe(
        self,
        interval_s: float,
        callback: Callable[[], None],
        first_at_s: Optional[float] = None,
    ) -> ProbeHandle:
        """Sample ``callback`` every ``interval_s`` simulated seconds.

        Probes are read-only observers that fire *between* events: a
        probe due at time ``t`` runs after every event strictly before
        ``t`` and before any event at or after ``t`` (the clock is
        advanced to ``t`` for the callback). They bypass the event queue
        entirely, so enabling one changes no event count, no schedule
        order, and no entity behaviour — the telemetry flush hook.
        """
        if interval_s <= 0:
            raise SimulationError(f"probe interval must be positive: {interval_s}")
        first = self._now + interval_s if first_at_s is None else first_at_s
        if first < self._now:
            raise SimulationError(
                f"cannot probe in the past: t={first} < now={self._now}"
            )
        probe = ProbeHandle(interval_s, first, callback)
        self._probes.append(probe)
        if first < self._next_probe_due:
            self._next_probe_due = first
        return probe

    def add_sync_hook(self, hook: Callable[[], None]) -> None:
        """Register a flush to run at the ``_events_processed`` sync points.

        Hooks fire immediately before any probe batch (so probes — and
        everything downstream of them: timeseries windows, live
        telemetry samples — observe fully settled state), at the end of
        every :meth:`step`, and when :meth:`run` returns.  Subsystems
        that defer per-event work into batched updates (the vectorized
        delivery backend's energy accrual) register here so the deferral
        is invisible at every externally observable boundary.
        """
        self._sync_hooks.append(hook)

    def _fire_probes_until(self, time_limit: float) -> None:
        """Fire every live probe due at or before ``time_limit``.

        Multiple due probes fire in due-time order (registration order
        breaks ties), each seeing the clock at its own due time.  Also
        recomputes the cached next-due time the run loop plans around.
        """
        for hook in self._sync_hooks:
            hook()
        probes = self._probes
        if probes:
            while True:
                chosen: Optional[ProbeHandle] = None
                for probe in probes:
                    if probe.cancelled or probe.next_due > time_limit:
                        continue
                    if chosen is None or probe.next_due < chosen.next_due:
                        chosen = probe
                if chosen is None:
                    break
                if chosen.next_due > self._now:
                    self._now = chosen.next_due
                chosen.next_due += chosen.interval_s
                self._probes_fired += 1
                chosen.callback()
            if any(p.cancelled for p in probes):
                self._probes = probes = [p for p in probes if not p.cancelled]
        self._next_probe_due = min(
            (p.next_due for p in probes), default=_INF
        )

    def _peek_next_time(self) -> Optional[float]:
        """Earliest live event time, draining tombstones on the way."""
        near = self._queue.near
        advance = self._queue.advance
        while True:
            while near:
                record = near[0]
                if record[4]:
                    heappop(near)
                    continue
                return record[0]
            if advance(_INF) is None:
                return None

    def step(self) -> bool:
        """Run the next pending event. Returns False if none remain."""
        next_time = self._peek_next_time()
        if next_time is None:
            return False
        self._fire_probes_until(next_time)
        record = heappop(self._queue.near)
        if record[0] < self._now:
            raise SimulationError("event queue yielded a past event")
        self._now = record[0]
        self._events_processed += 1
        if self._profiler is None:
            record[3]()
        else:
            self._profiler.profiled_call(record)
        interval = record[5]
        if interval is not None and not record[4]:
            record[0] += interval
            sequence = self._sequence
            self._sequence = sequence + 1
            record[2] = sequence
            self._push(record)
        for hook in self._sync_hooks:
            hook()
        return True

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Run until the queue drains or the clock passes ``until``.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` at the end even if the last event fired earlier, so
        measures normalized by elapsed time are well-defined.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        if self._profiler is not None:
            return self._run_profiled(until, max_events)
        self._running = True
        wall_start = _time.perf_counter()
        queue = self._queue
        near = queue.near
        advance = queue.advance
        push = queue.push
        pop = heappop
        hpush = heappush
        limit = _INF if until is None else until
        processed = self._events_processed
        processed_limit = processed + max_events
        try:
            while True:
                # Inner limit: the probe boundary expressed as a single
                # float compare. An event at exactly the probe's due
                # time must yield to the probe, so the boundary is the
                # largest float strictly below it.
                probe_due = self._next_probe_due
                if probe_due <= limit:
                    inner_limit = math.nextafter(probe_due, -_INF)
                else:
                    inner_limit = limit
                blocked_at: Optional[float] = None
                while near:
                    record = near[0]
                    event_time = record[0]
                    if event_time > inner_limit:
                        blocked_at = event_time
                        break
                    pop(near)
                    if record[4]:
                        continue
                    self._now = event_time
                    processed += 1
                    record[3]()
                    interval = record[5]
                    if interval is not None and not record[4]:
                        next_time = event_time + interval
                        record[0] = next_time
                        sequence = self._sequence
                        self._sequence = sequence + 1
                        record[2] = sequence
                        if next_time < queue.near_end:
                            hpush(near, record)
                        else:
                            push(record)
                    if processed > processed_limit:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; runaway schedule?"
                        )
                if blocked_at is None:
                    if advance(limit) is not None:
                        continue  # fresh events merged into `near`
                    # Nothing left at or before the limit.
                    if until is not None:
                        self._events_processed = processed
                        self._fire_probes_until(until)
                        if until > self._now:
                            self._now = until
                    return
                if blocked_at > limit:
                    # Next event is beyond the horizon: trailing probes,
                    # then leave the event queued for a later run().
                    self._events_processed = processed
                    self._fire_probes_until(limit)
                    if until is not None and until > self._now:
                        self._now = until
                    return
                # Probe boundary: fire everything due through the
                # blocking event's timestamp, then resume the fast loop.
                self._events_processed = processed
                self._fire_probes_until(blocked_at)
        finally:
            self._events_processed = processed
            for hook in self._sync_hooks:
                hook()
            self._run_wall_time += _time.perf_counter() - wall_start
            self._running = False

    def _run_profiled(
        self, until: Optional[float], max_events: int
    ) -> None:
        """:meth:`run` with the attached profiler's attribution inlined.

        A structural twin of the fused loop above — same pops, same
        probe boundaries, same recurring re-arm, same counter sync
        points — so event order and counts are bit-identical to the
        unprofiled loop; the only addition is wall timing around
        ``record[3]()``.  Kept as a separate loop so the detached fast
        path above never pays even a per-event branch.
        """
        prof = self._profiler
        exact = prof.mode == "exact"
        stride = prof.stride
        skip = prof._skip
        resolve = prof._resolve
        perf = _time.perf_counter
        self._running = True
        wall_start = perf()
        queue = self._queue
        near = queue.near
        advance = queue.advance
        push = queue.push
        pop = heappop
        hpush = heappush
        limit = _INF if until is None else until
        processed = self._events_processed
        processed_limit = processed + max_events
        # Profiler counters sync at the same boundaries as
        # ``_events_processed`` (probes + exit), so a live ``/profile``
        # scrape mid-run is at most one probe interval stale.
        synced = processed
        wall_synced = 0.0
        try:
            while True:
                probe_due = self._next_probe_due
                if probe_due <= limit:
                    inner_limit = math.nextafter(probe_due, -_INF)
                else:
                    inner_limit = limit
                blocked_at: Optional[float] = None
                while near:
                    record = near[0]
                    event_time = record[0]
                    if event_time > inner_limit:
                        blocked_at = event_time
                        break
                    pop(near)
                    if record[4]:
                        continue
                    self._now = event_time
                    processed += 1
                    callback = record[3]
                    if exact:
                        t0 = perf()
                        callback()
                        elapsed = perf() - t0
                        stats = resolve(callback, record[5])
                        stats[3] += 1
                        stats[4] += 1
                        stats[5] += elapsed
                    else:
                        skip -= 1
                        if skip <= 0:
                            t0 = perf()
                            callback()
                            elapsed = perf() - t0
                            stats = resolve(callback, record[5])
                            stats[3] += 1
                            stats[4] += 1
                            stats[5] += elapsed
                            skip = stride
                        else:
                            callback()
                    interval = record[5]
                    if interval is not None and not record[4]:
                        next_time = event_time + interval
                        record[0] = next_time
                        sequence = self._sequence
                        self._sequence = sequence + 1
                        record[2] = sequence
                        if next_time < queue.near_end:
                            hpush(near, record)
                        else:
                            push(record)
                    if processed > processed_limit:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; runaway schedule?"
                        )
                if blocked_at is None:
                    if advance(limit) is not None:
                        continue
                    if until is not None:
                        self._events_processed = processed
                        prof.events_seen += processed - synced
                        synced = processed
                        wall_now = perf() - wall_start
                        prof.run_wall_s += wall_now - wall_synced
                        wall_synced = wall_now
                        self._fire_probes_until(until)
                        if until > self._now:
                            self._now = until
                    return
                if blocked_at > limit:
                    self._events_processed = processed
                    prof.events_seen += processed - synced
                    synced = processed
                    wall_now = perf() - wall_start
                    prof.run_wall_s += wall_now - wall_synced
                    wall_synced = wall_now
                    self._fire_probes_until(limit)
                    if until is not None and until > self._now:
                        self._now = until
                    return
                self._events_processed = processed
                prof.events_seen += processed - synced
                synced = processed
                wall_now = perf() - wall_start
                prof.run_wall_s += wall_now - wall_synced
                wall_synced = wall_now
                self._fire_probes_until(blocked_at)
        finally:
            self._events_processed = processed
            for hook in self._sync_hooks:
                hook()
            elapsed_wall = perf() - wall_start
            self._run_wall_time += elapsed_wall
            prof._skip = skip
            prof.events_seen += processed - synced
            prof.run_wall_s += elapsed_wall - wall_synced
            self._running = False
