"""The event loop: a monotonic clock over a binary heap of callbacks."""

from __future__ import annotations

import heapq
import math
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    priority: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancel().

    Cancellation is lazy: the heap entry stays but is skipped when
    popped, which keeps scheduling O(log n). The simulator is notified
    so its live-event count stays exact without scanning the heap.
    """

    __slots__ = ("_event", "_simulator")

    def __init__(self, event: _ScheduledEvent, simulator: "Simulator") -> None:
        self._event = event
        self._simulator = simulator

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        self._simulator._cancel(self._event)


class RecurringHandle:
    """Handle for :meth:`Simulator.every`; cancel() stops future firings."""

    __slots__ = ("_handle", "_cancelled")

    def __init__(self) -> None:
        self._handle: Optional[EventHandle] = None
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        self._cancelled = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None


class ProbeHandle:
    """Handle for :meth:`Simulator.add_probe`; cancel() stops sampling.

    A probe is an *observer*, not an event: it lives outside the heap,
    never counts toward ``events_processed``, and must not mutate
    simulation state — only read it. That separation is what lets a
    telemetry flush run every window without perturbing determinism
    fingerprints.
    """

    __slots__ = ("interval_s", "next_due", "callback", "cancelled")

    def __init__(
        self, interval_s: float, next_due: float, callback: Callable[[], None]
    ) -> None:
        self.interval_s = interval_s
        self.next_due = next_due
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    Events at equal times fire in (priority, insertion order). Lower
    priority values fire first; the default priority is 0.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[_ScheduledEvent] = []
        self._sequence = 0
        self._events_processed = 0
        self._events_cancelled = 0
        self._pending_live = 0
        self._run_wall_time = 0.0
        self._running = False
        self._probes: List[ProbeHandle] = []
        self._probes_fired = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def events_cancelled(self) -> int:
        """Events cancelled before they could fire."""
        return self._events_cancelled

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) scheduled events — O(1).

        Maintained incrementally on schedule/cancel/pop so observability
        collectors can read it as a gauge without scanning the heap.
        """
        return self._pending_live

    @property
    def heap_depth(self) -> int:
        """Heap entries including cancelled tombstones awaiting pop."""
        return len(self._heap)

    @property
    def run_wall_time_s(self) -> float:
        """Wall-clock seconds spent inside :meth:`run` so far."""
        return self._run_wall_time

    @property
    def probes_fired(self) -> int:
        """Observer-probe firings (never counted as events)."""
        return self._probes_fired

    def _cancel(self, event: _ScheduledEvent) -> None:
        if not event.cancelled:
            event.cancelled = True
            self._events_cancelled += 1
            self._pending_live -= 1

    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: delay={delay}")
        return self.schedule_at(self._now + delay, callback, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if not math.isfinite(time):
            raise SimulationError(f"event time must be finite: {time}")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: t={time} < now={self._now}"
            )
        event = _ScheduledEvent(time, priority, self._sequence, callback)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        self._pending_live += 1
        return EventHandle(event, self)

    def every(
        self,
        interval_s: float,
        callback: Callable[[], None],
        priority: int = 0,
        first_delay_s: Optional[float] = None,
    ) -> RecurringHandle:
        """Run ``callback`` every ``interval_s`` seconds until cancelled.

        The first firing is after ``first_delay_s`` (default: one
        interval). Used by periodic machinery — invariant sweeps,
        keep-alive refreshes — that must not die with a single event.
        """
        if interval_s <= 0:
            raise SimulationError(
                f"recurring interval must be positive: {interval_s}"
            )
        recurring = RecurringHandle()

        def tick() -> None:
            if recurring.cancelled:
                return
            callback()
            if not recurring.cancelled:
                recurring._handle = self.schedule(interval_s, tick, priority)

        initial = interval_s if first_delay_s is None else first_delay_s
        recurring._handle = self.schedule(initial, tick, priority)
        return recurring

    def add_probe(
        self,
        interval_s: float,
        callback: Callable[[], None],
        first_at_s: Optional[float] = None,
    ) -> ProbeHandle:
        """Sample ``callback`` every ``interval_s`` simulated seconds.

        Probes are read-only observers that fire *between* events: a
        probe due at time ``t`` runs after every event strictly before
        ``t`` and before any event at or after ``t`` (the clock is
        advanced to ``t`` for the callback). They bypass the event heap
        entirely, so enabling one changes no event count, no schedule
        order, and no entity behaviour — the telemetry flush hook.
        """
        if interval_s <= 0:
            raise SimulationError(f"probe interval must be positive: {interval_s}")
        first = self._now + interval_s if first_at_s is None else first_at_s
        if first < self._now:
            raise SimulationError(
                f"cannot probe in the past: t={first} < now={self._now}"
            )
        probe = ProbeHandle(interval_s, first, callback)
        self._probes.append(probe)
        return probe

    def _fire_probes_until(self, time_limit: float) -> None:
        """Fire every live probe due at or before ``time_limit``.

        Multiple due probes fire in due-time order (registration order
        breaks ties), each seeing the clock at its own due time.
        """
        if not self._probes:
            return
        while True:
            chosen: Optional[ProbeHandle] = None
            for probe in self._probes:
                if probe.cancelled or probe.next_due > time_limit:
                    continue
                if chosen is None or probe.next_due < chosen.next_due:
                    chosen = probe
            if chosen is None:
                break
            if chosen.next_due > self._now:
                self._now = chosen.next_due
            chosen.next_due += chosen.interval_s
            self._probes_fired += 1
            chosen.callback()
        if any(p.cancelled for p in self._probes):
            self._probes = [p for p in self._probes if not p.cancelled]

    def step(self) -> bool:
        """Run the next pending event. Returns False if none remain."""
        next_event = self._peek()
        if next_event is not None:
            self._fire_probes_until(next_event.time)
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self._now:
                raise SimulationError("event heap yielded a past event")
            self._now = event.time
            self._events_processed += 1
            self._pending_live -= 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Run until the heap drains or the clock passes ``until``.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` at the end even if the last event fired earlier, so
        measures normalized by elapsed time are well-defined.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        wall_start = _time.perf_counter()
        try:
            processed = 0
            while self._heap:
                next_event = self._peek()
                if next_event is None:
                    break
                if until is not None and next_event.time > until:
                    break
                if not self.step():
                    break
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway schedule?"
                    )
            if until is not None:
                self._fire_probes_until(until)
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._run_wall_time += _time.perf_counter() - wall_start
            self._running = False

    def _peek(self) -> Optional[_ScheduledEvent]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None
