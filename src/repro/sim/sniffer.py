"""A passive sniffer entity: capture and pretty-print what's on the air.

Attach a :class:`ProtocolSniffer` to any medium and every frame is
recorded with its timestamp, type, and HIDE-relevant details — the
tool for watching the paper's Figure 2 message sequence actually happen,
and the backing for protocol-level assertions in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Type

from repro.ap.flags import frame_udp_port
from repro.dot11.association_frames import (
    STATUS_SUCCESS,
    AssociationRequest,
    AssociationResponse,
)
from repro.dot11.control import Ack, PsPoll
from repro.dot11.data import DataFrame
from repro.dot11.disassociation import Disassociation
from repro.dot11.management import Beacon, UdpPortMessage
from repro.dot11.probe_frames import ProbeRequest, ProbeResponse
from repro.sim.entity import Entity
from repro.sim.medium import Transmission


@dataclass(frozen=True)
class CapturedFrame:
    """One sniffed transmission."""

    time: float
    frame: object
    length_bytes: int
    rate_bps: float

    @property
    def kind(self) -> str:
        return type(self.frame).__name__

    def describe(self) -> str:
        """One log line, HIDE-aware."""
        prefix = f"{self.time * 1e3:10.1f} ms  {self.kind:<20}"
        frame = self.frame
        if isinstance(frame, Beacon):
            parts = [f"dtim={'yes' if frame.tim.is_dtim else 'no'}"]
            if frame.tim.group_traffic_buffered:
                parts.append("group-traffic")
            if frame.btim is not None:
                flagged = sorted(frame.btim.aids_with_useful_broadcast)
                parts.append(f"btim={flagged if flagged else '[]'}")
            return prefix + " ".join(parts)
        if isinstance(frame, UdpPortMessage):
            return prefix + (
                f"from={frame.source} ports={sorted(frame.ports)}"
            )
        if isinstance(frame, Ack):
            return prefix + f"to={frame.receiver}"
        if isinstance(frame, PsPoll):
            return prefix + f"aid={frame.aid}"
        if isinstance(frame, DataFrame):
            port = frame_udp_port(frame)
            target = "broadcast" if frame.is_broadcast else str(frame.destination)
            more = " more-data" if frame.more_data else ""
            return prefix + f"to={target} udp-port={port}{more}"
        if isinstance(frame, AssociationRequest):
            detail = (
                f"from={frame.source} hide={'yes' if frame.hide_capable else 'no'}"
            )
            if frame.initial_ports:
                detail += f" ports={sorted(frame.initial_ports)}"
            return prefix + detail
        if isinstance(frame, AssociationResponse):
            status = "ok" if frame.status == STATUS_SUCCESS else "denied"
            return prefix + f"to={frame.destination} status={status} aid={frame.aid}"
        if isinstance(frame, ProbeRequest):
            ssid = "*" if frame.is_wildcard else frame.ssid
            return prefix + f"from={frame.source} ssid={ssid}"
        if isinstance(frame, ProbeResponse):
            hide = "yes" if frame.hide_supported else "no"
            return prefix + (
                f"to={frame.destination} ssid={frame.ssid}"
                f" channel={frame.channel} hide={hide}"
            )
        if isinstance(frame, Disassociation):
            return prefix + f"from={frame.source} reason={frame.reason}"
        return prefix


class ProtocolSniffer(Entity):
    """Records every transmission it hears.

    ``frame_filter`` limits capture to selected frame classes;
    ``on_capture`` is an optional live callback (e.g. ``print``).
    """

    def __init__(
        self,
        name: str = "sniffer",
        frame_filter: Optional[tuple] = None,
        on_capture: Optional[Callable[[CapturedFrame], None]] = None,
        capacity: int = 100_000,
    ) -> None:
        super().__init__(name)
        self._filter = frame_filter
        self._on_capture = on_capture
        self._capacity = capacity
        self.captures: List[CapturedFrame] = []
        self.dropped = 0

    def on_receive(self, transmission: Transmission) -> None:
        frame = transmission.frame
        if self._filter is not None and not isinstance(frame, self._filter):
            return
        if len(self.captures) >= self._capacity:
            self.dropped += 1
            return
        captured = CapturedFrame(
            time=transmission.start_time,
            frame=frame,
            length_bytes=transmission.length_bytes,
            rate_bps=transmission.rate_bps,
        )
        self.captures.append(captured)
        if self._on_capture is not None:
            self._on_capture(captured)

    def of_type(self, frame_type: Type) -> List[CapturedFrame]:
        return [c for c in self.captures if isinstance(c.frame, frame_type)]

    def transcript(self, skip_beacons: bool = False) -> str:
        """The whole capture as readable log lines."""
        lines = []
        for captured in self.captures:
            if skip_beacons and isinstance(captured.frame, Beacon):
                continue
            lines.append(captured.describe())
        return "\n".join(lines)
