"""Struct-of-arrays radio state for the vectorized delivery fast lane.

The reference delivery path hands every frame to every attached entity
and lets each ``Client.on_receive`` decide what to do with it.  That is
N Python calls per frame, and at dense fleets almost all of them are the
same three instructions: "I am dozing, count the frame as ignored, and
if it was useful count it as missed".  This module keeps exactly the
state those instructions need in parallel columns indexed by a dense
*slot id* per client:

* ``listen_mask`` — one bit per slot: the radio is up for the post-DTIM
  burst (``_radio_listening``) *or* in conservative receive-all
  fallback (``_conservative_listen``).  Recipient sets are bitwise
  expressions over this mask.
* ``port_masks`` — per UDP port, the bitset of slots subscribed to it
  (``INADDR_ANY``-bound, i.e. broadcast-delivering), mirrored from each
  client's socket table.
* ``_base_frames`` (``array('Q')``) / ``_base_ports`` — per-slot epoch
  baselines for the *deferred* energy accrual below.

Deferred accrual: instead of bumping two counters on N-1 dozing clients
per broadcast frame, :meth:`RadioArray.account_broadcast` bumps two
*global* epoch counters (``frames_total`` and ``port_frames[port]``) in
O(1).  A dozing slot's pending contribution is the difference between
the globals and its per-slot baseline, valid for as long as its
membership (dozing, AID held, subscribed ports) is unchanged; any state
change settles the slot — adds the exact owed amounts to the client's
own counters — and re-baselines it.  :meth:`flush` settles every slot;
the medium runs it at the engine's probe-boundary sync points (the same
places ``_events_processed`` syncs), so probes, timeseries windows,
fingerprints, and end-of-run collection all observe counters that are
bit-identical to the reference per-event accrual.

Only the *dozing* class is deferrable: a dozing client's broadcast
handling is pure counter arithmetic with no events, no tracer, and no
externally observable order.  Listening clients schedule wakes and
transmissions, so the medium dispatches them per frame in attach order
— exactly the reference interleaving.

The array binds to entities by duck type, never by import: anything
exposing ``radio_broadcast_state()`` / ``bind_radio()`` (i.e.
:class:`~repro.station.client.Client`) gets a slot; everything else
stays on the reference per-frame path.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, FrozenSet, List, Optional

from repro.errors import FrameDecodeError
from repro.net.packet import extract_udp_dst_port_from_dot11_body

#: Delivery routes the medium dispatches on, resolved once per frame
#: class.  Every route is observably identical to the reference
#: everyone-receives loop given ``Client.on_receive`` semantics: a route
#: only skips a client when that client's handler is provably a no-op
#: for the frame kind.
ROUTE_DATA = 0  #: DataFrame: broadcast fan-out or unicast by destination.
ROUTE_BEACON = 1  #: Beacon: every client decodes it (reference loop).
ROUTE_SINGLE_RECEIVER = 2  #: Ack: only ``frame.receiver`` reacts.
ROUTE_SINGLE_DEST = 3  #: AssociationResponse/ProbeResponse: ``frame.destination``.
ROUTE_UPLINK = 4  #: Client-originated frames: no *client* ever reacts.
ROUTE_UNKNOWN = 5  #: Anything else: reference loop, no assumptions.

_ROUTE_CACHE: Dict[type, int] = {}


def _classify(frame_class: type) -> int:
    from repro.dot11.association_frames import (
        AssociationRequest,
        AssociationResponse,
    )
    from repro.dot11.control import Ack, PsPoll
    from repro.dot11.data import DataFrame
    from repro.dot11.disassociation import Disassociation
    from repro.dot11.management import Beacon, UdpPortMessage
    from repro.dot11.probe_frames import ProbeRequest, ProbeResponse

    if issubclass(frame_class, DataFrame):
        return ROUTE_DATA
    if issubclass(frame_class, Beacon):
        return ROUTE_BEACON
    if issubclass(frame_class, Ack):
        return ROUTE_SINGLE_RECEIVER
    if issubclass(frame_class, (AssociationResponse, ProbeResponse)):
        return ROUTE_SINGLE_DEST
    if issubclass(
        frame_class,
        (UdpPortMessage, PsPoll, ProbeRequest, AssociationRequest, Disassociation),
    ):
        return ROUTE_UPLINK
    return ROUTE_UNKNOWN


def route_for(frame_class: type) -> int:
    """Delivery route for ``frame_class`` (cached per class)."""
    route = _ROUTE_CACHE.get(frame_class)
    if route is None:
        route = _ROUTE_CACHE[frame_class] = _classify(frame_class)
    return route


def frame_udp_port(frame: Any) -> Optional[int]:
    """Destination UDP port of a broadcast frame, or ``None``.

    The same answer every client's own doze path computes via
    :func:`repro.ap.flags.frame_udp_port` — memoized on the frame
    (:meth:`~repro.dot11.data.DataFrame.udp_dst_port`) when available,
    with a direct parse against the leaf :mod:`repro.net.packet` for
    duck-typed frames (the sim layer never imports the AP package).
    """
    try:
        return frame.udp_dst_port()
    except AttributeError:
        try:
            return extract_udp_dst_port_from_dot11_body(frame.llc_payload)
        except FrameDecodeError:
            return None


def popcount(mask: int) -> int:
    """Set-bit count (``int.bit_count`` needs 3.10+; CI runs 3.9)."""
    return bin(mask).count("1")


class RadioArray:
    """Dense per-client radio-state columns plus deferred accrual."""

    def __init__(self) -> None:
        #: entity -> slot id, the membership test the medium routes on.
        self.slot_of: Dict[Any, int] = {}
        #: MAC -> entity for addressed (Ack/unicast/response) routing.
        self.by_mac: Dict[Any, Any] = {}
        #: slot -> entity (None while the slot is on the free list).
        self._clients: List[Any] = []
        self._free: List[int] = []
        #: One bit per slot: listening OR conservative receive-all.
        self.listen_mask = 0
        #: port -> bitset of slots subscribed (INADDR_ANY-bound).
        self.port_masks: Dict[int, int] = {}
        #: slot -> subscribed broadcast ports at last refresh.
        self._open_ports: List[FrozenSet[int]] = []
        #: slot -> ``frames_total`` at the slot's current baseline.
        self._base_frames = array("Q")
        #: slot -> {port: port_frames[port] at baseline}; ``None`` when
        #: the slot cannot miss (listening, no AID, or detached).
        self._base_ports: List[Optional[Dict[int, int]]] = []
        #: Epoch counters: broadcast frames fanned out since creation.
        self.frames_total = 0
        self.port_frames: Dict[int, int] = {}
        #: Slots currently capable of missing (dozing + AID + ports):
        #: when zero, ``account_broadcast`` skips the UDP-port parse.
        self._eligible = 0
        #: Bumped whenever the broadcast fan-out set may have changed
        #: (listen bit flip, slot allocated/released); the medium keys
        #: its cached fan-out list on this.
        self.fanout_epoch = 0
        self._flushed_at_total = 0
        # -- introspection for live gauges --------------------------------
        self.settles = 0
        self.flushes = 0

    def __len__(self) -> int:
        return len(self.slot_of)

    @property
    def listeners(self) -> int:
        return popcount(self.listen_mask)

    # -- slot lifecycle ----------------------------------------------------

    def allocate(self, entity: Any) -> int:
        """Bind ``entity`` to a slot, initialized from its live state."""
        if self._free:
            slot = self._free.pop()
            self._clients[slot] = entity
        else:
            slot = len(self._clients)
            self._clients.append(entity)
            self._open_ports.append(frozenset())
            self._base_frames.append(0)
            self._base_ports.append(None)
        self.slot_of[entity] = slot
        self.by_mac[entity.mac] = entity
        self.fanout_epoch += 1
        self._apply_state(slot, entity)
        return slot

    def release(self, entity: Any) -> None:
        """Settle and free ``entity``'s slot (detach/crash).

        Pending deferred accrual is settled into the client's counters
        exactly once, *before* the slot id returns to the free list —
        a crash mid-window must neither lose nor double-count frames.
        """
        slot = self.slot_of.pop(entity)
        self._settle(slot)
        bit = 1 << slot
        self.listen_mask &= ~bit
        for port in self._open_ports[slot]:
            remaining = self.port_masks.get(port, 0) & ~bit
            if remaining:
                self.port_masks[port] = remaining
            else:
                self.port_masks.pop(port, None)
        if self._base_ports[slot] is not None:
            self._eligible -= 1
        self._open_ports[slot] = frozenset()
        self._base_ports[slot] = None
        self._clients[slot] = None
        self.by_mac.pop(entity.mac, None)
        self._free.append(slot)
        self.fanout_epoch += 1

    # -- state mirroring ---------------------------------------------------

    def refresh(self, slot: int) -> None:
        """Re-read a bound client's radio state after a mutation.

        Called from every client-side mutation site (DTIM listen
        decision, burst end, watchdog fallback, AID grant/loss, port
        open/close).  A change settles the slot under its *old*
        membership, applies the new state, and re-baselines — the pivot
        that keeps deferred accrual exact across state transitions.
        """
        entity = self._clients[slot]
        listening, aid, ports = entity.radio_broadcast_state()
        bit = 1 << slot
        was_listening = bool(self.listen_mask & bit)
        was_eligible = self._base_ports[slot] is not None
        eligible = not listening and aid is not None
        if (
            listening == was_listening
            and eligible == was_eligible
            and ports == self._open_ports[slot]
        ):
            return  # the mutation was a no-op for delivery purposes
        self._settle(slot)
        if listening != was_listening:
            self.listen_mask ^= bit
            self.fanout_epoch += 1
        old_ports = self._open_ports[slot]
        if ports != old_ports:
            for port in old_ports - ports:
                remaining = self.port_masks.get(port, 0) & ~bit
                if remaining:
                    self.port_masks[port] = remaining
                else:
                    self.port_masks.pop(port, None)
            for port in ports - old_ports:
                self.port_masks[port] = self.port_masks.get(port, 0) | bit
            self._open_ports[slot] = ports
        self._rebaseline(slot, eligible)

    def _apply_state(self, slot: int, entity: Any) -> None:
        """Initialize a fresh slot's columns from the entity's state."""
        listening, aid, ports = entity.radio_broadcast_state()
        bit = 1 << slot
        if listening:
            self.listen_mask |= bit
        else:
            self.listen_mask &= ~bit
        self._open_ports[slot] = ports
        for port in ports:
            self.port_masks[port] = self.port_masks.get(port, 0) | bit
        self._rebaseline(slot, not listening and aid is not None)

    # -- deferred accrual --------------------------------------------------

    def account_broadcast(self, frame: Any) -> None:
        """Credit one broadcast frame to every dozing slot, in O(1).

        The per-frame half of the deferred accrual: bump the global
        epoch counters; per-slot deltas are realized lazily at settle
        time.  Must run *before* the listener fan-out — a listener that
        drops to doze while handling this very frame baselines against
        the post-bump totals and is therefore (correctly) not credited
        for a frame it received awake.
        """
        self.frames_total += 1
        if self._eligible:
            port = frame_udp_port(frame)
            if port is not None:
                self.port_frames[port] = self.port_frames.get(port, 0) + 1

    def _settle(self, slot: int) -> None:
        """Add the slot's pending deferred counts to its client."""
        if self.listen_mask & (1 << slot):
            return  # listening slots receive frames directly: no backlog
        owed = self.frames_total - self._base_frames[slot]
        if owed:
            counters = self._clients[slot].counters
            counters.broadcast_frames_ignored += owed
            base = self._base_ports[slot]
            if base is not None:
                port_frames = self.port_frames
                missed = 0
                for port, seen in base.items():
                    missed += port_frames.get(port, 0) - seen
                if missed:
                    counters.useful_frames_missed += missed
            self.settles += 1

    def _rebaseline(self, slot: int, eligible: bool) -> None:
        self._base_frames[slot] = self.frames_total
        was_eligible = self._base_ports[slot] is not None
        if eligible:
            port_frames = self.port_frames
            self._base_ports[slot] = {
                port: port_frames.get(port, 0) for port in self._open_ports[slot]
            }
        else:
            self._base_ports[slot] = None
        self._eligible += eligible - was_eligible

    def flush(self) -> None:
        """Settle every slot: counters become exact as of *now*.

        The medium registers this at the engine's probe-boundary sync
        points and exposes it as ``Medium.sync_accounting()`` for
        anything (invariant checks, tests) reading client counters
        between probes.  O(1) when no broadcast frame arrived since the
        last flush.
        """
        if self.frames_total == self._flushed_at_total:
            return
        self.flushes += 1
        for slot in self.slot_of.values():
            self._settle(slot)
            self._rebaseline(slot, self._base_ports[slot] is not None)
        self._flushed_at_total = self.frames_total
