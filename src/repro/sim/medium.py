"""A shared half-duplex broadcast medium.

Models the single 2.4 GHz channel all stations and the AP share:
transmissions occupy the channel for PHY overhead + payload airtime and
are delivered to every *other* attached entity when they end. If the
channel is busy, new transmissions queue FIFO behind it (a simplified
stand-in for CSMA/CA deferral — contention and collisions are modelled
analytically by :mod:`repro.analysis.bianchi`, as in the paper).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Callable, Deque, Dict, List, Optional, Tuple
from collections import deque

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.entity import Entity
from repro.units import us

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector

#: 802.11b long-preamble PHY overhead: 192 bits at 1 Mb/s = 192 µs.
PHY_OVERHEAD_S = us(192)

#: One-microsecond propagation delay (paper Table II).
PROPAGATION_DELAY_S = us(1)

#: Short interframe space, used between a frame and its ACK.
SIFS_S = us(10)

#: DCF interframe space, the idle gap before a fresh transmission.
DIFS_S = us(50)


@dataclass(frozen=True)
class Transmission:
    """One frame in flight: the decoded object plus on-air accounting."""

    sender: Entity
    frame: Any
    frame_bytes: bytes
    rate_bps: float
    start_time: float
    airtime: float

    @property
    def end_time(self) -> float:
        return self.start_time + self.airtime

    @property
    def length_bytes(self) -> int:
        return len(self.frame_bytes)


class Medium:
    """The shared channel. Entities attach; transmit() queues and delivers."""

    def __init__(
        self,
        simulator: Simulator,
        phy_overhead_s: float = PHY_OVERHEAD_S,
        propagation_delay_s: float = PROPAGATION_DELAY_S,
        loss_probability: float = 0.0,
        loss_seed: int = 0,
        fault_injector: Optional["FaultInjector"] = None,
    ) -> None:
        """``loss_probability`` drops each non-beacon frame independently
        with that probability (failure injection for retransmission
        tests); beacons are exempt so the PS schedule stays alive, which
        matches reality where beacons at the base rate are by far the
        most robust frames on the air.

        ``fault_injector`` supersedes the simple loss knob: it realizes
        a seeded :class:`~repro.faults.plan.FaultPlan` with per-kind
        loss (including an explicit beacon-loss knob), per-kind drop
        accounting, and bounded delivery-clock jitter.
        """
        if not 0.0 <= loss_probability < 1.0:
            raise SimulationError(
                f"loss probability must be in [0, 1): {loss_probability}"
            )
        self._simulator = simulator
        self._entities: List[Entity] = []
        #: Immutable delivery snapshot, rebuilt on attach/detach so the
        #: per-delivery hot path iterates a tuple instead of copying the
        #: entity list for every frame.
        self._targets: Tuple[Entity, ...] = ()
        #: Frames awaiting delivery, ordered by (deliver_at, sequence):
        #: a single bound-method drain event per frame replaces the old
        #: per-frame closure, and one drain delivers every frame due at
        #: the same tick.
        self._inflight: List[tuple] = []
        self._inflight_sequence = 0
        self._phy_overhead_s = phy_overhead_s
        self._propagation_delay_s = propagation_delay_s
        self._busy_until = 0.0
        self._pending: Deque = deque()
        self._transmissions_completed = 0
        self._busy_time_accum = 0.0
        self._loss_probability = loss_probability
        self._loss_rng = random.Random(loss_seed)
        self._fault_injector = fault_injector
        self._frames_dropped = 0
        self._airtime_by_kind: Dict[str, float] = {}
        self._frames_by_kind: Dict[str, int] = {}
        self._queue_wait_accum = 0.0
        self._frames_queued = 0
        self._delivery_observers: List[Callable[[Transmission, bool], None]] = []

    @property
    def transmissions_completed(self) -> int:
        return self._transmissions_completed

    @property
    def busy_time(self) -> float:
        """Total channel-occupancy seconds accumulated so far."""
        return self._busy_time_accum

    @property
    def frames_dropped(self) -> int:
        return self._frames_dropped

    @property
    def fault_injector(self) -> Optional["FaultInjector"]:
        return self._fault_injector

    @property
    def drops_by_kind(self) -> Dict[str, int]:
        """Injected drops per frame kind (empty under the legacy knob)."""
        if self._fault_injector is None:
            return {}
        return self._fault_injector.drops_by_kind

    @property
    def airtime_by_kind(self) -> Dict[str, float]:
        """Channel-occupancy seconds per frame class name (a copy)."""
        return dict(self._airtime_by_kind)

    @property
    def frames_by_kind(self) -> Dict[str, int]:
        """Transmission counts per frame class name (a copy)."""
        return dict(self._frames_by_kind)

    @property
    def queue_wait_s(self) -> float:
        """Total seconds frames spent deferring behind a busy channel."""
        return self._queue_wait_accum

    @property
    def frames_queued(self) -> int:
        """Frames that found the channel busy and had to defer."""
        return self._frames_queued

    def attach(self, entity: Entity) -> None:
        """Attach ``entity`` to the channel (and, first time, the clock).

        Re-attaching an entity that already lives on the simulator — a
        crashed client rejoining — only restores channel delivery; its
        :meth:`~repro.sim.entity.Entity.on_attach` does not run again.
        """
        if entity in self._entities:
            raise SimulationError(f"{entity!r} already attached to medium")
        self._entities.append(entity)
        self._targets = tuple(self._entities)
        if not entity.is_attached:
            entity.attach(self._simulator)

    def detach(self, entity: Entity) -> None:
        """Remove ``entity`` from delivery (a crashed radio).

        The entity stays on the simulator clock; only frame delivery
        stops. Frames already in flight to it are lost.
        """
        try:
            self._entities.remove(entity)
        except ValueError:
            raise SimulationError(f"{entity!r} is not attached to medium")
        self._targets = tuple(self._entities)

    def is_attached(self, entity: Entity) -> bool:
        return entity in self._entities

    def add_delivery_observer(
        self, observer: Callable[[Transmission, bool], None]
    ) -> None:
        """Call ``observer(transmission, dropped)`` for every delivery.

        Observers see every completed transmission, including ones the
        loss machinery ate (``dropped=True``) — this is how invariant
        checkers distinguish injected loss from protocol bugs.
        """
        self._delivery_observers.append(observer)

    def airtime_of(self, length_bytes: int, rate_bps: float) -> float:
        """Channel occupancy of one frame: PHY preamble + payload bits."""
        if rate_bps <= 0:
            raise SimulationError(f"rate must be positive: {rate_bps}")
        return self._phy_overhead_s + (length_bytes * 8) / rate_bps

    def transmit(
        self,
        sender: Entity,
        frame: Any,
        frame_bytes: bytes,
        rate_bps: float,
        gap_s: float = DIFS_S,
        on_complete: Optional[Callable[[Transmission], None]] = None,
    ) -> None:
        """Queue a frame for transmission.

        The frame starts after the channel is idle plus ``gap_s`` (DIFS
        for fresh frames, SIFS for ACK-class responses) and is delivered
        to every attached entity except the sender at its end time plus
        propagation delay.
        """
        airtime = self.airtime_of(len(frame_bytes), rate_bps)
        now = self._simulator.now
        start = max(now, self._busy_until) + gap_s
        kind = type(frame).__name__
        self._airtime_by_kind[kind] = self._airtime_by_kind.get(kind, 0.0) + airtime
        self._frames_by_kind[kind] = self._frames_by_kind.get(kind, 0) + 1
        if self._busy_until > now:
            self._queue_wait_accum += self._busy_until - now
            self._frames_queued += 1
        transmission = Transmission(
            sender=sender,
            frame=frame,
            frame_bytes=frame_bytes,
            rate_bps=rate_bps,
            start_time=start,
            airtime=airtime,
        )
        self._busy_until = start + airtime
        self._busy_time_accum += airtime
        deliver_at = transmission.end_time + self._propagation_delay_s
        if self._fault_injector is not None:
            deliver_at += self._fault_injector.delivery_jitter_s()

        sequence = self._inflight_sequence
        self._inflight_sequence = sequence + 1
        heappush(self._inflight, (deliver_at, sequence, transmission, on_complete))
        self._simulator.post_at(deliver_at, self._drain_deliveries)

    def _drain_deliveries(self) -> None:
        """Deliver every in-flight frame due at or before the clock.

        One drain event is posted per transmission, but the first drain
        at a given tick delivers the whole same-tick batch; later drains
        find nothing due and fall through. The (deliver_at, sequence)
        heap order reproduces the old one-event-per-frame order exactly,
        including under fault-injected delivery jitter.
        """
        now = self._simulator.now
        inflight = self._inflight
        while inflight and inflight[0][0] <= now:
            _, _, transmission, on_complete = heappop(inflight)
            self._deliver(transmission, on_complete)

    def _deliver(
        self,
        transmission: Transmission,
        on_complete: Optional[Callable[[Transmission], None]],
    ) -> None:
        frame = transmission.frame
        sender = transmission.sender
        self._transmissions_completed += 1
        dropped = False
        if self._fault_injector is not None:
            dropped = self._fault_injector.should_drop(frame)
        elif self._loss_probability > 0.0 and not _is_beacon(frame):
            dropped = self._loss_rng.random() < self._loss_probability
        if dropped:
            self._frames_dropped += 1
        else:
            for entity in self._targets:
                if entity is not sender:
                    entity.on_receive(transmission)
        for observer in self._delivery_observers:
            observer(transmission, dropped)
        if dropped:
            return  # frame corrupted on air: nobody decodes it
        if on_complete is not None:
            on_complete(transmission)


def _is_beacon(frame: Any) -> bool:
    from repro.dot11.management import Beacon

    return isinstance(frame, Beacon)
