"""A shared half-duplex broadcast medium.

Models the single 2.4 GHz channel all stations and the AP share:
transmissions occupy the channel for PHY overhead + payload airtime and
are delivered to every *other* attached entity when they end. If the
channel is busy, new transmissions queue FIFO behind it (a simplified
stand-in for CSMA/CA deferral — contention and collisions are modelled
analytically by :mod:`repro.analysis.bianchi`, as in the paper).
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Callable, Deque, Dict, List, Optional, Tuple
from collections import deque

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.entity import Entity
from repro.sim.radio_array import (
    RadioArray,
    ROUTE_DATA,
    ROUTE_SINGLE_DEST,
    ROUTE_SINGLE_RECEIVER,
    ROUTE_UPLINK,
    route_for,
)
from repro.units import us

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector

#: Delivery-backend seam, mirroring the Heap/Calendar split in
#: :mod:`repro.sim.eventq`: ``reference`` hands every frame to every
#: attached entity; ``vectorized`` routes through the struct-of-arrays
#: fast lane in :mod:`repro.sim.radio_array`.  The two are bit-identical
#: (fingerprints, .prom snapshots, trace sequences) — pinned by
#: ``tests/property/test_delivery_equivalence.py`` — so the choice is
#: purely a throughput knob.
DELIVERY_KINDS = ("reference", "vectorized")
DEFAULT_DELIVERY_KIND = "vectorized"

#: 802.11b long-preamble PHY overhead: 192 bits at 1 Mb/s = 192 µs.
PHY_OVERHEAD_S = us(192)

#: One-microsecond propagation delay (paper Table II).
PROPAGATION_DELAY_S = us(1)

#: Short interframe space, used between a frame and its ACK.
SIFS_S = us(10)

#: DCF interframe space, the idle gap before a fresh transmission.
DIFS_S = us(50)


@dataclass(frozen=True)
class Transmission:
    """One frame in flight: the decoded object plus on-air accounting."""

    sender: Entity
    frame: Any
    frame_bytes: bytes
    rate_bps: float
    start_time: float
    airtime: float

    @property
    def end_time(self) -> float:
        return self.start_time + self.airtime

    @property
    def length_bytes(self) -> int:
        return len(self.frame_bytes)


class Medium:
    """The shared channel. Entities attach; transmit() queues and delivers."""

    def __init__(
        self,
        simulator: Simulator,
        phy_overhead_s: float = PHY_OVERHEAD_S,
        propagation_delay_s: float = PROPAGATION_DELAY_S,
        loss_probability: float = 0.0,
        loss_seed: int = 0,
        fault_injector: Optional["FaultInjector"] = None,
        delivery_backend: Optional[str] = None,
    ) -> None:
        """``loss_probability`` drops each non-beacon frame independently
        with that probability (failure injection for retransmission
        tests); beacons are exempt so the PS schedule stays alive, which
        matches reality where beacons at the base rate are by far the
        most robust frames on the air.

        ``fault_injector`` supersedes the simple loss knob: it realizes
        a seeded :class:`~repro.faults.plan.FaultPlan` with per-kind
        loss (including an explicit beacon-loss knob), per-kind drop
        accounting, and bounded delivery-clock jitter.

        ``delivery_backend`` selects ``"vectorized"`` (default) or
        ``"reference"`` — see :data:`DELIVERY_KINDS`.
        """
        if not 0.0 <= loss_probability < 1.0:
            raise SimulationError(
                f"loss probability must be in [0, 1): {loss_probability}"
            )
        kind = (
            DEFAULT_DELIVERY_KIND if delivery_backend is None else delivery_backend
        )
        if kind not in DELIVERY_KINDS:
            raise SimulationError(
                f"unknown delivery backend {kind!r}; expected one of {DELIVERY_KINDS}"
            )
        self._simulator = simulator
        self._entities: List[Entity] = []
        #: Immutable delivery snapshot, rebuilt on attach/detach so the
        #: per-delivery hot path iterates a tuple instead of copying the
        #: entity list for every frame.
        self._targets: Tuple[Entity, ...] = ()
        #: Frames awaiting delivery, ordered by (deliver_at, sequence):
        #: a single bound-method drain event per frame replaces the old
        #: per-frame closure, and one drain delivers every frame due at
        #: the same tick.
        self._inflight: List[tuple] = []
        self._inflight_sequence = 0
        self._phy_overhead_s = phy_overhead_s
        self._propagation_delay_s = propagation_delay_s
        self._busy_until = 0.0
        self._pending: Deque = deque()
        self._transmissions_completed = 0
        self._busy_time_accum = 0.0
        self._loss_probability = loss_probability
        self._loss_rng = random.Random(loss_seed)
        self._fault_injector = fault_injector
        self._frames_dropped = 0
        self._airtime_by_kind: Dict[str, float] = {}
        self._frames_by_kind: Dict[str, int] = {}
        self._queue_wait_accum = 0.0
        self._frames_queued = 0
        self._delivery_observers: List[Callable[[Transmission, bool], None]] = []
        self._delivery_kind = kind
        #: Slot-indexed radio columns (vectorized backend only).
        self._radios: Optional[RadioArray] = None
        #: Entities without a radio slot (the AP, test doubles), in
        #: attach order, plus their indices into ``_targets`` — the
        #: recipients of client-originated and unaddressed frames.
        self._nonvector: List[Entity] = []
        self._nonvector_idx: List[int] = []
        self._index_of: Dict[Entity, int] = {}
        self._order_epoch = 0
        self._order_stamp = -1
        #: Cached broadcast fan-out (nonvector + currently listening
        #: clients, attach order), keyed on (attach churn, listen-mask
        #: churn) so stable stretches between DTIM bursts pay nothing.
        self._fanout: Tuple[Entity, ...] = ()
        self._fanout_stamp: Tuple[int, int] = (-1, -1)
        self._fanout_rebuilds = 0
        if kind == "vectorized":
            self._radios = RadioArray()
            self._drain = self._drain_deliveries_vector
            simulator.add_sync_hook(self.sync_accounting)
        else:
            self._drain = self._drain_deliveries

    @property
    def delivery_kind(self) -> str:
        """Which delivery backend is active (``reference``/``vectorized``)."""
        return self._delivery_kind

    @property
    def radio_array(self) -> Optional[RadioArray]:
        """The slot-state columns, or ``None`` on the reference backend."""
        return self._radios

    @property
    def fanout_rebuilds(self) -> int:
        """Times the cached broadcast fan-out list was recomputed."""
        return self._fanout_rebuilds

    @property
    def transmissions_completed(self) -> int:
        return self._transmissions_completed

    @property
    def busy_time(self) -> float:
        """Total channel-occupancy seconds accumulated so far."""
        return self._busy_time_accum

    @property
    def frames_dropped(self) -> int:
        return self._frames_dropped

    @property
    def fault_injector(self) -> Optional["FaultInjector"]:
        return self._fault_injector

    @property
    def drops_by_kind(self) -> Dict[str, int]:
        """Injected drops per frame kind (empty under the legacy knob)."""
        if self._fault_injector is None:
            return {}
        return self._fault_injector.drops_by_kind

    @property
    def airtime_by_kind(self) -> Dict[str, float]:
        """Channel-occupancy seconds per frame class name (a copy)."""
        return dict(self._airtime_by_kind)

    @property
    def frames_by_kind(self) -> Dict[str, int]:
        """Transmission counts per frame class name (a copy)."""
        return dict(self._frames_by_kind)

    @property
    def queue_wait_s(self) -> float:
        """Total seconds frames spent deferring behind a busy channel."""
        return self._queue_wait_accum

    @property
    def frames_queued(self) -> int:
        """Frames that found the channel busy and had to defer."""
        return self._frames_queued

    def attach(self, entity: Entity) -> None:
        """Attach ``entity`` to the channel (and, first time, the clock).

        Re-attaching an entity that already lives on the simulator — a
        crashed client rejoining — only restores channel delivery; its
        :meth:`~repro.sim.entity.Entity.on_attach` does not run again.
        """
        if entity in self._entities:
            raise SimulationError(f"{entity!r} already attached to medium")
        self._entities.append(entity)
        self._targets = tuple(self._entities)
        self._order_epoch += 1
        radios = self._radios
        if radios is not None and hasattr(entity, "radio_broadcast_state"):
            slot = radios.allocate(entity)
            entity.bind_radio(radios, slot)
        if not entity.is_attached:
            entity.attach(self._simulator)

    def detach(self, entity: Entity) -> None:
        """Remove ``entity`` from delivery (a crashed radio).

        The entity stays on the simulator clock; only frame delivery
        stops. Frames already in flight to it are lost.

        Safe mid-drain: a detach from inside a delivery callback (a
        crash handler firing at the same tick as a queued frame batch)
        settles and frees the client's slot immediately, while the
        in-flight ``(deliver_at, sequence, transmission)`` snapshots are
        untouched — the remaining same-tick frames recompute their
        recipient sets and simply skip the departed radio, exactly as
        the reference path's per-frame ``_targets`` read does.
        """
        try:
            self._entities.remove(entity)
        except ValueError:
            raise SimulationError(f"{entity!r} is not attached to medium")
        self._targets = tuple(self._entities)
        self._order_epoch += 1
        radios = self._radios
        if radios is not None and entity in radios.slot_of:
            radios.release(entity)
            entity.unbind_radio()

    def sync_accounting(self) -> None:
        """Settle deferred per-client accrual into client counters.

        Registered as an engine sync hook (probe boundaries, run exit,
        every step) on the vectorized backend; a no-op on the reference
        backend, whose accrual is already per-event.  Anything reading
        client counters *outside* those boundaries — the invariant
        suite's mid-run checks, tests poking counters between manual
        drains — calls this first.
        """
        if self._radios is not None:
            self._radios.flush()

    def is_attached(self, entity: Entity) -> bool:
        return entity in self._entities

    def add_delivery_observer(
        self, observer: Callable[[Transmission, bool], None]
    ) -> None:
        """Call ``observer(transmission, dropped)`` for every delivery.

        Observers see every completed transmission, including ones the
        loss machinery ate (``dropped=True``) — this is how invariant
        checkers distinguish injected loss from protocol bugs.
        """
        self._delivery_observers.append(observer)

    def airtime_of(self, length_bytes: int, rate_bps: float) -> float:
        """Channel occupancy of one frame: PHY preamble + payload bits."""
        if rate_bps <= 0:
            raise SimulationError(f"rate must be positive: {rate_bps}")
        return self._phy_overhead_s + (length_bytes * 8) / rate_bps

    def transmit(
        self,
        sender: Entity,
        frame: Any,
        frame_bytes: bytes,
        rate_bps: float,
        gap_s: float = DIFS_S,
        on_complete: Optional[Callable[[Transmission], None]] = None,
    ) -> None:
        """Queue a frame for transmission.

        The frame starts after the channel is idle plus ``gap_s`` (DIFS
        for fresh frames, SIFS for ACK-class responses) and is delivered
        to every attached entity except the sender at its end time plus
        propagation delay.
        """
        airtime = self.airtime_of(len(frame_bytes), rate_bps)
        now = self._simulator.now
        start = max(now, self._busy_until) + gap_s
        kind = type(frame).__name__
        self._airtime_by_kind[kind] = self._airtime_by_kind.get(kind, 0.0) + airtime
        self._frames_by_kind[kind] = self._frames_by_kind.get(kind, 0) + 1
        if self._busy_until > now:
            self._queue_wait_accum += self._busy_until - now
            self._frames_queued += 1
        transmission = Transmission(
            sender=sender,
            frame=frame,
            frame_bytes=frame_bytes,
            rate_bps=rate_bps,
            start_time=start,
            airtime=airtime,
        )
        self._busy_until = start + airtime
        self._busy_time_accum += airtime
        deliver_at = transmission.end_time + self._propagation_delay_s
        if self._fault_injector is not None:
            deliver_at += self._fault_injector.delivery_jitter_s()

        sequence = self._inflight_sequence
        self._inflight_sequence = sequence + 1
        heappush(self._inflight, (deliver_at, sequence, transmission, on_complete))
        self._simulator.post_at(deliver_at, self._drain)

    def _drain_deliveries(self) -> None:
        """Deliver every in-flight frame due at or before the clock.

        One drain event is posted per transmission, but the first drain
        at a given tick delivers the whole same-tick batch; later drains
        find nothing due and fall through. The (deliver_at, sequence)
        heap order reproduces the old one-event-per-frame order exactly,
        including under fault-injected delivery jitter.
        """
        now = self._simulator.now
        inflight = self._inflight
        while inflight and inflight[0][0] <= now:
            _, _, transmission, on_complete = heappop(inflight)
            self._deliver(transmission, on_complete)

    def _deliver(
        self,
        transmission: Transmission,
        on_complete: Optional[Callable[[Transmission], None]],
    ) -> None:
        frame = transmission.frame
        sender = transmission.sender
        self._transmissions_completed += 1
        dropped = False
        if self._fault_injector is not None:
            dropped = self._fault_injector.should_drop(frame)
        elif self._loss_probability > 0.0 and not _is_beacon(frame):
            dropped = self._loss_rng.random() < self._loss_probability
        if dropped:
            self._frames_dropped += 1
        else:
            for entity in self._targets:
                if entity is not sender:
                    entity.on_receive(transmission)
        for observer in self._delivery_observers:
            observer(transmission, dropped)
        if dropped:
            return  # frame corrupted on air: nobody decodes it
        if on_complete is not None:
            on_complete(transmission)

    # -- vectorized fast lane ---------------------------------------------

    def _drain_deliveries_vector(self) -> None:
        """Vectorized twin of :meth:`_drain_deliveries`.

        Identical pop order and per-frame processing; only the recipient
        computation inside :meth:`_deliver_vector` differs.  A distinct
        bound method so the attribution profiler reports the two lanes
        as separate sites.
        """
        now = self._simulator.now
        inflight = self._inflight
        while inflight and inflight[0][0] <= now:
            _, _, transmission, on_complete = heappop(inflight)
            self._deliver_vector(transmission, on_complete)

    def _deliver_vector(
        self,
        transmission: Transmission,
        on_complete: Optional[Callable[[Transmission], None]],
    ) -> None:
        """Deliver one frame through the slot-routed fast lane.

        Per-frame-class routing; every route is observably identical to
        the reference everyone-receives loop, skipping a client only
        when its ``on_receive`` is provably a no-op for the frame kind
        (see :mod:`repro.sim.radio_array` route notes).  Recipient sets
        are recomputed per frame against live ``_targets``/mask state,
        so same-tick attach/detach between two frames behaves exactly
        like the reference per-frame ``_targets`` read.
        """
        frame = transmission.frame
        sender = transmission.sender
        self._transmissions_completed += 1
        dropped = False
        if self._fault_injector is not None:
            dropped = self._fault_injector.should_drop(frame)
        elif self._loss_probability > 0.0 and not _is_beacon(frame):
            dropped = self._loss_rng.random() < self._loss_probability
        if dropped:
            self._frames_dropped += 1
        else:
            radios = self._radios
            route = route_for(type(frame))
            if route == ROUTE_DATA and frame.is_broadcast:
                if sender in radios.slot_of:
                    # Station-originated broadcast: the sender's own
                    # slot must not accrue, so skip the O(1) shortcut.
                    for entity in self._targets:
                        if entity is not sender:
                            entity.on_receive(transmission)
                else:
                    # Credit every dozing slot in O(1) *before* the
                    # listener callbacks: a listener dropping to doze
                    # while handling this frame re-baselines against
                    # the post-credit totals and is not double-counted.
                    radios.account_broadcast(frame)
                    for entity in self._broadcast_fanout():
                        if entity is not sender:
                            entity.on_receive(transmission)
            elif route == ROUTE_UPLINK:
                if self._order_stamp != self._order_epoch:
                    self._refresh_order()
                for entity in self._nonvector:
                    if entity is not sender:
                        entity.on_receive(transmission)
            elif route == ROUTE_DATA:
                self._deliver_addressed(transmission, sender, frame.destination)
            elif route == ROUTE_SINGLE_RECEIVER:
                self._deliver_addressed(transmission, sender, frame.receiver)
            elif route == ROUTE_SINGLE_DEST:
                self._deliver_addressed(transmission, sender, frame.destination)
            else:  # beacons + unknown frame classes: the reference loop
                for entity in self._targets:
                    if entity is not sender:
                        entity.on_receive(transmission)
        for observer in self._delivery_observers:
            observer(transmission, dropped)
        if dropped:
            return  # frame corrupted on air: nobody decodes it
        if on_complete is not None:
            on_complete(transmission)

    def _deliver_addressed(
        self, transmission: Transmission, sender: Entity, mac: Any
    ) -> None:
        """Deliver a singly-addressed frame (Ack, unicast, response).

        Recipients: every nonvector entity (they see all traffic, like
        the reference) plus the one addressed client — merged at its
        attach position so callback order matches the reference loop.
        The addressed client goes through :meth:`Entity.deliver_many`,
        the batched dispatch point of the fast lane.
        """
        if self._order_stamp != self._order_epoch:
            self._refresh_order()
        target = self._radios.by_mac.get(mac)
        nonvector = self._nonvector
        if target is None:
            for entity in nonvector:
                if entity is not sender:
                    entity.on_receive(transmission)
            return
        pos = bisect_left(self._nonvector_idx, self._index_of[target])
        for entity in nonvector[:pos]:
            if entity is not sender:
                entity.on_receive(transmission)
        if target is not sender:
            target.deliver_many((transmission,))
        for entity in nonvector[pos:]:
            if entity is not sender:
                entity.on_receive(transmission)

    def _refresh_order(self) -> None:
        """Rebuild attach-order indices after attach/detach churn."""
        slot_of = self._radios.slot_of
        nonvector: List[Entity] = []
        nonvector_idx: List[int] = []
        index_of: Dict[Entity, int] = {}
        for idx, entity in enumerate(self._targets):
            index_of[entity] = idx
            if entity not in slot_of:
                nonvector.append(entity)
                nonvector_idx.append(idx)
        self._nonvector = nonvector
        self._nonvector_idx = nonvector_idx
        self._index_of = index_of
        self._order_stamp = self._order_epoch

    def _broadcast_fanout(self) -> Tuple[Entity, ...]:
        """Nonvector entities + listening clients, in attach order.

        Cached across frames; any listen-bit flip or attach/detach
        invalidates the stamp and the next broadcast frame rebuilds.
        Between DTIM bursts the mask is stable and storms of broadcast
        frames reuse the tuple untouched.
        """
        radios = self._radios
        stamp = (self._order_epoch, radios.fanout_epoch)
        if stamp != self._fanout_stamp:
            slot_of = radios.slot_of
            listen = radios.listen_mask
            self._fanout = tuple(
                entity
                for entity in self._targets
                if entity not in slot_of or (listen >> slot_of[entity]) & 1
            )
            self._fanout_stamp = stamp
            self._fanout_rebuilds += 1
        return self._fanout


def _is_beacon(frame: Any) -> bool:
    from repro.dot11.management import Beacon

    return isinstance(frame, Beacon)
