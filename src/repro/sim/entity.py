"""Base class for simulated network entities."""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:
    from repro.sim.engine import Simulator
    from repro.sim.medium import Medium, Transmission


class Entity:
    """Something attached to a simulator and (optionally) a medium.

    Subclasses override :meth:`on_receive` to handle frames delivered by
    the medium and :meth:`on_attach` to schedule their initial events.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._simulator: Optional["Simulator"] = None

    @property
    def simulator(self) -> "Simulator":
        if self._simulator is None:
            raise SimulationError(f"entity {self.name!r} is not attached")
        return self._simulator

    @property
    def is_attached(self) -> bool:
        """Whether this entity has ever been attached to a simulator."""
        return self._simulator is not None

    @property
    def now(self) -> float:
        return self.simulator.now

    def attach(self, simulator: "Simulator") -> None:
        if self._simulator is not None:
            raise SimulationError(f"entity {self.name!r} already attached")
        self._simulator = simulator
        self.on_attach()

    def on_attach(self) -> None:
        """Hook: schedule initial activity. Default does nothing."""

    def on_receive(self, transmission: "Transmission") -> None:
        """Hook: a frame finished arriving at this entity."""

    def deliver_many(self, transmissions) -> None:
        """Batched delivery: the vectorized medium lane dispatches a
        run of frames bound for one entity through a single call.  The
        default unrolls to :meth:`on_receive` per frame, in order, so
        overriding either hook is sufficient.
        """
        for transmission in transmissions:
            self.on_receive(transmission)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
