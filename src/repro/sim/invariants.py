"""Always-on simulation invariant checkers.

The fault-injection layer makes it easy to put the protocol into states
the happy path never visits, so these checkers assert the properties
that must hold *regardless* of loss, crashes, or jitter:

* **No silent misses** — a useful broadcast frame that the medium
  delivered is never slept through. Injected loss is automatically
  excluded: a dropped frame never reaches any radio, so it cannot be
  "missed". Any nonzero miss count is a protocol bug.
* **Energy-timeline conservation** — each client's recorded power-state
  segments exactly tile ``[created_at, now]``: contiguous, in order,
  summing to the elapsed simulation time. Energy integration is only
  meaningful over a gap-free timeline.
* **Port-table / association consistency** — the AP's Client UDP Port
  Table internal maps are exact inverses, every AID it stores is
  currently associated, and every BTIM bit the AP last advertised
  belongs to an associated station.

Violations raise :class:`InvariantViolation` carrying the run seed so a
failing property-sweep case can be replayed exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.dot11.data import DataFrame
from repro.errors import SimulationError

if TYPE_CHECKING:
    from repro.ap.access_point import AccessPoint
    from repro.sim.engine import RecurringHandle, Simulator
    from repro.sim.medium import Medium, Transmission
    from repro.station.client import Client

#: Tolerance for floating-point timeline arithmetic. Segment endpoints
#: are produced by summing scheduled delays, so adjacent boundaries can
#: disagree by a few ULPs without any state having been lost.
TIME_TOLERANCE_S = 1e-9


@dataclass(frozen=True)
class Violation:
    """One failed invariant check."""

    invariant: str
    sim_time: float
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] t={self.sim_time:.6f}s: {self.detail}"


class InvariantViolation(SimulationError):
    """One or more invariants failed; carries the seed for replay."""

    def __init__(
        self, violations: Sequence[Violation], seed: Optional[int] = None
    ) -> None:
        self.violations = list(violations)
        self.seed = seed
        seed_note = f" (seed={seed})" if seed is not None else ""
        lines = "\n".join(f"  - {v}" for v in self.violations)
        super().__init__(
            f"{len(self.violations)} invariant violation(s){seed_note}:\n{lines}"
        )


class InvariantSuite:
    """Periodic + final invariant checks over one simulation run.

    Attach before ``simulator.run()``; the suite subscribes to the
    medium's delivery feed (for broadcast-delivery accounting) and
    re-checks every ``check_interval_s`` of simulated time, so a
    violation surfaces near the event that caused it rather than at the
    end of a long run. Call :meth:`check_final` after the run completes.
    """

    def __init__(
        self,
        simulator: "Simulator",
        medium: "Medium",
        access_point: "AccessPoint",
        clients: Sequence["Client"],
        seed: Optional[int] = None,
        check_interval_s: float = 1.0,
    ) -> None:
        if check_interval_s <= 0:
            raise ValueError("check interval must be positive")
        self._simulator = simulator
        self._medium = medium
        self._ap = access_point
        self._clients = list(clients)
        self._seed = seed
        self.checks_run = 0
        #: Broadcast DataFrames the medium finished airing / dropped by
        #: injected loss — the denominators for delivery-ratio bounds.
        self.broadcast_frames_aired = 0
        self.broadcast_frames_dropped = 0
        medium.add_delivery_observer(self._on_delivery)
        self._tick: Optional["RecurringHandle"] = simulator.every(
            check_interval_s, self.check_now
        )

    # -- delivery accounting --------------------------------------------

    def _on_delivery(self, transmission: "Transmission", dropped: bool) -> None:
        frame = transmission.frame
        if isinstance(frame, DataFrame) and frame.is_broadcast:
            self.broadcast_frames_aired += 1
            if dropped:
                self.broadcast_frames_dropped += 1

    @property
    def broadcast_frames_delivered(self) -> int:
        return self.broadcast_frames_aired - self.broadcast_frames_dropped

    # -- the checks ------------------------------------------------------

    def violations(self) -> List[Violation]:
        """Run every check now; returns violations instead of raising."""
        # Mid-run checks fire as events, between the engine's counter
        # sync points: settle any deferred delivery accrual first so
        # per-client counters are exact at read time.
        self._medium.sync_accounting()
        now = self._simulator.now
        found: List[Violation] = []
        found.extend(self._check_useful_frame_misses(now))
        found.extend(self._check_energy_timelines(now))
        found.extend(self._check_port_table(now))
        return found

    def check_now(self) -> None:
        """Run every check; raise :class:`InvariantViolation` on failure."""
        self.checks_run += 1
        found = self.violations()
        if found:
            raise InvariantViolation(found, seed=self._seed)

    def check_final(self) -> None:
        """End-of-run check; also stops the periodic re-check."""
        if self._tick is not None:
            self._tick.cancel()
            self._tick = None
        self.check_now()

    def _check_useful_frame_misses(self, now: float) -> List[Violation]:
        found: List[Violation] = []
        for client in self._clients:
            missed = client.counters.useful_frames_missed
            if missed:
                found.append(
                    Violation(
                        "useful-frame-miss",
                        now,
                        f"{client.name} slept through {missed} useful "
                        f"broadcast frame(s) the medium delivered",
                    )
                )
        return found

    def _check_energy_timelines(self, now: float) -> List[Violation]:
        found: List[Violation] = []
        for client in self._clients:
            power = client.power
            if power is None:
                continue  # never attached: no timeline to conserve yet
            segments = power.segments()
            if not segments:
                found.append(
                    Violation(
                        "energy-conservation", now, f"{client.name}: no segments"
                    )
                )
                continue
            expected_start = power.created_at
            for segment in segments:
                if abs(segment.start - expected_start) > TIME_TOLERANCE_S:
                    found.append(
                        Violation(
                            "energy-conservation",
                            now,
                            f"{client.name}: timeline gap at "
                            f"{expected_start:.9f}s -> {segment.start:.9f}s "
                            f"({segment.state.value})",
                        )
                    )
                expected_start = segment.end
            if abs(expected_start - now) > TIME_TOLERANCE_S:
                found.append(
                    Violation(
                        "energy-conservation",
                        now,
                        f"{client.name}: timeline ends at "
                        f"{expected_start:.9f}s, not now={now:.9f}s",
                    )
                )
            total = sum(s.duration for s in segments)
            elapsed = now - power.created_at
            if abs(total - elapsed) > TIME_TOLERANCE_S * max(1, len(segments)):
                found.append(
                    Violation(
                        "energy-conservation",
                        now,
                        f"{client.name}: state durations sum to "
                        f"{total:.9f}s over {elapsed:.9f}s elapsed",
                    )
                )
        return found

    def _check_port_table(self, now: float) -> List[Violation]:
        found: List[Violation] = []
        for problem in self._ap.port_table.check_consistency():
            found.append(Violation("port-table-consistency", now, problem))
        associated = frozenset(record.aid for record in self._ap.associations)
        orphans = self._ap.port_table.aids() - associated
        if orphans:
            found.append(
                Violation(
                    "port-table-consistency",
                    now,
                    f"port table holds unassociated AID(s) {sorted(orphans)}",
                )
            )
        ghost_bits = frozenset(self._ap.last_btim_aids) - associated
        if ghost_bits:
            found.append(
                Violation(
                    "port-table-consistency",
                    now,
                    f"BTIM advertised unassociated AID(s) {sorted(ghost_bits)}",
                )
            )
        return found
