"""Pluggable event queues for the DES kernel.

The simulator's hot loop consumes a queue through a deliberately tiny
contract (see :class:`HeapEventQueue` for the reference semantics):

``near``
    A plain-list binary heap of *event records* that are due soon.  The
    run loop pops it directly with :func:`heapq.heappop` — no method
    call per event.
``push(record)``
    Insert a record.  O(log n) for the heap backend; amortized O(1) for
    the calendar backend.
``advance(limit)``
    Called only when ``near`` has drained.  Move the next batch of
    records into ``near`` and return the earliest known event time if it
    is ``<= limit``, else ``None`` (nothing left to run this call).
``depth()``
    Structural entry count, *including* cancelled tombstones — the
    ``repro_sim_queue_depth`` gauge.

An event record is a plain 6-slot list — not an object — so the heap
orders records with C-speed lexicographic list comparison and the hot
loop indexes fields without attribute lookups::

    [time, priority, sequence, callback, cancelled, interval_or_None]

``sequence`` is unique per record, so comparison never reaches the
callback field.  ``interval_or_None`` makes recurring timers a run-loop
re-arm (reuse the popped record) instead of a closure per firing.

Cancellation is lazy everywhere: cancelling flips ``record[4]`` and the
record is skipped when popped, keeping cancel O(1) with no queue search.

The calendar backend (:class:`CalendarEventQueue`) is the classic
bucketed calendar queue / timer wheel (R. Brown, CACM 1988) shaped for
this workload: a *near* heap holds only the events inside the current
bucket window, so its depth stays tiny no matter how many far-future
timers exist — the exact case (thousands of keep-alive/TTL timers per
fleet) where a single binary heap degrades to deep-sift O(log n) with a
large constant.  Pushes beyond the window are plain list appends into a
wheel bucket; a bucket is merged into the near heap wholesale
(``extend`` + ``heapify``, both C) only when the cursor reaches it.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, List, Optional, Union

from repro.errors import SimulationError

_INF = float("inf")

#: Default bucket width: half a beacon interval (102.4 ms / 2), so the
#: DTIM/BTIM event mix lands one-or-two buckets ahead of the cursor.
DEFAULT_BUCKET_WIDTH_S = 0.0512

#: Default wheel size: 256 buckets x 51.2 ms ~= 13.1 s of horizon, which
#: covers beacon schedules, retransmission timers, and keep-alive
#: refreshes; anything further (port-table TTLs, crash plans) overflows
#: into a small auxiliary heap that refills the wheel per rotation.
DEFAULT_NUM_BUCKETS = 256


class HeapEventQueue:
    """The reference implementation: one binary heap holds everything.

    ``near`` *is* the queue, so ``advance`` is always a no-op returning
    ``None`` — by the time the run loop calls it, the heap has drained.
    """

    kind = "heap"

    #: The near window never closes: every record belongs in ``near``.
    #: A class attribute (not per-instance) so the simulator's inlined
    #: ``time < queue.near_end`` fast path works for both backends.
    near_end = float("inf")

    __slots__ = ("near",)

    def __init__(self) -> None:
        self.near: List[list] = []

    def push(self, record: list) -> None:
        if not record[0] < self.near_end:  # rejects +inf and NaN
            raise SimulationError(f"event time must be finite: {record[0]}")
        heappush(self.near, record)

    def advance(self, limit: float) -> Optional[float]:
        return None

    def depth(self) -> int:
        return len(self.near)


class CalendarEventQueue:
    """A bucketed calendar queue with a near-heap for the active window.

    Invariants (the differential suite in
    ``tests/property/test_eventq_equivalence.py`` exercises all of
    them against :class:`HeapEventQueue`):

    * every record with ``time < near_end`` lives in ``near``;
    * wheel buckets hold only records of the *current* rotation
      (``rotation_start <= time < rotation_start + span``) at bucket
      index ``> cursor``;
    * records at or beyond the rotation horizon wait in the ``overflow``
      heap and are dealt into buckets when the wheel rotates;
    * merging a bucket into ``near`` preserves global order because the
      bucket-index function is monotone in time: everything in bucket
      ``i`` precedes everything in bucket ``i+1``, and ties inside one
      bucket are resolved by the near-heap's record comparison.

    The ``index <= cursor`` guard in :meth:`push` closes the one
    floating-point hazard: a time within rounding error of the current
    window edge whose computed bucket has already been swept goes into
    ``near`` (always safe) instead of a dead bucket.
    """

    kind = "calendar"

    __slots__ = (
        "near",
        "near_end",
        "_width",
        "_inv_width",
        "_num_buckets",
        "_span",
        "_buckets",
        "_cursor",
        "_rotation_start",
        "_overflow",
        "_wheel_count",
    )

    def __init__(
        self,
        bucket_width_s: float = DEFAULT_BUCKET_WIDTH_S,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
    ) -> None:
        if bucket_width_s <= 0:
            raise SimulationError(
                f"bucket width must be positive: {bucket_width_s}"
            )
        if num_buckets < 2:
            raise SimulationError(f"need at least 2 buckets: {num_buckets}")
        self.near: List[list] = []
        self._width = bucket_width_s
        self._inv_width = 1.0 / bucket_width_s
        self._num_buckets = num_buckets
        self._span = bucket_width_s * num_buckets
        self._buckets: List[List[list]] = [[] for _ in range(num_buckets)]
        self._cursor = 0
        self._rotation_start = 0.0
        self.near_end = bucket_width_s
        self._overflow: List[list] = []
        self._wheel_count = 0

    def push(self, record: list) -> None:
        time = record[0]
        if time < self.near_end:
            heappush(self.near, record)
            return
        offset = time - self._rotation_start
        if offset < self._span:
            index = int(offset * self._inv_width)
            if index <= self._cursor:
                # Rounding landed on/behind the swept edge: the near
                # heap is always correct, a swept bucket never is.
                heappush(self.near, record)
            else:
                if index >= self._num_buckets:
                    index = self._num_buckets - 1
                self._buckets[index].append(record)
                self._wheel_count += 1
        else:
            if not offset < _INF:  # rejects +inf and NaN times
                raise SimulationError(f"event time must be finite: {time}")
            heappush(self._overflow, record)

    def _refill(self) -> None:
        """Deal overflow records that now fall inside the rotation."""
        overflow = self._overflow
        rotation_start = self._rotation_start
        span = self._span
        inv_width = self._inv_width
        buckets = self._buckets
        last = self._num_buckets - 1
        moved = 0
        while overflow and overflow[0][0] - rotation_start < span:
            record = heappop(overflow)
            index = int((record[0] - rotation_start) * inv_width)
            buckets[index if index < last else last].append(record)
            moved += 1
        self._wheel_count += moved

    def advance(self, limit: float) -> Optional[float]:
        """Merge buckets into ``near`` until an event ``<= limit`` shows.

        Precondition: the caller drained ``near`` (or its head is known
        to be past ``limit``).  Returns the earliest merged event time
        when it is ``<= limit``; ``None`` when nothing at or before
        ``limit`` remains anywhere in the queue.
        """
        near = self.near
        while True:
            if self._wheel_count:
                cursor = self._cursor + 1
                if cursor >= self._num_buckets:
                    self._cursor = 0
                    self._rotation_start += self._span
                    self.near_end = self._rotation_start + self._width
                    self._refill()
                    bucket = self._buckets[0]
                else:
                    self._cursor = cursor
                    self.near_end += self._width
                    bucket = self._buckets[cursor]
                if bucket:
                    self._wheel_count -= len(bucket)
                    near.extend(bucket)
                    heapify(near)
                    del bucket[:]
                    head = near[0][0]
                    return head if head <= limit else None
                if self.near_end > limit and not near:
                    return None
            elif self._overflow:
                earliest = self._overflow[0][0]
                if earliest > limit:
                    return None
                # Jump the wheel to the overflow's era instead of
                # rotating through empty span after empty span.
                self._rotation_start = earliest - (earliest % self._width)
                self._cursor = 0
                self.near_end = self._rotation_start + self._width
                self._refill()
                bucket = self._buckets[0]
                if not bucket:
                    # Rounding dealt the earliest record past bucket 0;
                    # let the wheel branch sweep forward to it.
                    continue
                self._wheel_count -= len(bucket)
                near.extend(bucket)
                heapify(near)
                del bucket[:]
                head = near[0][0]
                return head if head <= limit else None
            else:
                return None

    def depth(self) -> int:
        return len(self.near) + self._wheel_count + len(self._overflow)


#: The queue the simulator builds when none is specified.
DEFAULT_QUEUE_KIND = "calendar"

QUEUE_KINDS = ("heap", "calendar")


def make_queue(kind: Union[str, Any, None] = None):
    """Build (or pass through) an event queue.

    ``kind`` may be ``"heap"``, ``"calendar"``, ``None`` (the default
    backend), or an already-constructed queue object, which is returned
    as-is so tests can inject tuned instances.
    """
    if kind is None:
        kind = DEFAULT_QUEUE_KIND
    if not isinstance(kind, str):
        return kind
    if kind == "heap":
        return HeapEventQueue()
    if kind == "calendar":
        return CalendarEventQueue()
    raise SimulationError(
        f"unknown event queue kind {kind!r}; expected one of {QUEUE_KINDS}"
    )
