"""Unit helpers used across the HIDE reproduction.

Internally the library uses SI base units everywhere: seconds for time,
bits per second for data rates, bytes for frame sizes, watts for power,
and joules for energy. These helpers exist so call sites can say
``ms(46)`` instead of ``0.046`` and stay self-documenting.
"""

from __future__ import annotations

#: Bits per second in one megabit per second.
MBPS = 1_000_000.0

#: The canonical 802.11 beacon interval: 102.4 ms (100 TUs).
BEACON_INTERVAL_S = 0.1024

#: One 802.11 time unit (TU) in seconds (1024 microseconds).
TIME_UNIT_S = 1024e-6


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * 1e-3


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * 1e-6


def mj(value: float) -> float:
    """Convert millijoules to joules."""
    return value * 1e-3


def mw(value: float) -> float:
    """Convert milliwatts to watts."""
    return value * 1e-3


def mbps(value: float) -> float:
    """Convert megabits per second to bits per second."""
    return value * MBPS


def to_mw(watts: float) -> float:
    """Convert watts to milliwatts (for reporting)."""
    return watts * 1e3


def airtime(length_bytes: int, rate_bps: float) -> float:
    """Return the transmission time in seconds of ``length_bytes`` at ``rate_bps``.

    This is the paper's ``l_i / r_i`` term: payload bits divided by the
    frame's data rate.
    """
    if rate_bps <= 0:
        raise ValueError(f"data rate must be positive, got {rate_bps}")
    if length_bytes < 0:
        raise ValueError(f"length must be non-negative, got {length_bytes}")
    return (length_bytes * 8) / rate_bps


def tu(count: float) -> float:
    """Convert 802.11 time units (TUs) to seconds."""
    return count * TIME_UNIT_S
