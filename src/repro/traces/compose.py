"""Trace composition: merge, concatenate, and rate-scale traces.

Tools for building evaluation workloads beyond the five stock
scenarios: overlay two environments (e.g. a cafe's chatter plus one
misbehaving host), play scenarios back to back, or stress-test by
densifying a capture. All operations preserve the invariants the rest
of the library relies on (time-sorted records inside the duration).
"""

from __future__ import annotations

import heapq
from typing import List, Sequence

from repro.errors import ConfigurationError, TraceFormatError
from repro.traces.frame_record import BroadcastFrameRecord
from repro.traces.trace import BroadcastTrace


def merge_traces(name: str, traces: Sequence[BroadcastTrace]) -> BroadcastTrace:
    """Overlay traces on a shared clock (duration = the longest input).

    Frames keep their absolute times; ties preserve input order. The
    more-data bits are kept as-is: merging captures from different BSSs
    is an approximation, flagged here rather than silently "fixed".
    """
    if not traces:
        raise ConfigurationError("need at least one trace to merge")
    merged: List[BroadcastFrameRecord] = list(
        heapq.merge(*[t.records for t in traces], key=lambda r: r.time)
    )
    return BroadcastTrace(
        name=name,
        duration_s=max(t.duration_s for t in traces),
        records=tuple(merged),
    )


def concat_traces(name: str, traces: Sequence[BroadcastTrace]) -> BroadcastTrace:
    """Play traces back to back, shifting each onto the end of the last."""
    if not traces:
        raise ConfigurationError("need at least one trace to concatenate")
    records: List[BroadcastFrameRecord] = []
    offset = 0.0
    for trace in traces:
        records.extend(record.shifted(offset) for record in trace)
        offset += trace.duration_s
    return BroadcastTrace(name=name, duration_s=offset, records=tuple(records))


def scale_rate(
    trace: BroadcastTrace, factor: float, name: str = ""
) -> BroadcastTrace:
    """Compress (factor > 1) or dilate (factor < 1) the time axis.

    Scaling time by 1/factor multiplies the frame rate by ``factor``
    while preserving the burst structure exactly — the right way to ask
    "what if this building were twice as chatty?".
    """
    if factor <= 0:
        raise ConfigurationError(f"scale factor must be positive: {factor}")
    scaled = tuple(
        BroadcastFrameRecord(
            time=record.time / factor,
            udp_port=record.udp_port,
            length_bytes=record.length_bytes,
            rate_bps=record.rate_bps,
            more_data=record.more_data,
            offered_time=(
                None if record.offered_time is None
                else record.offered_time / factor
            ),
        )
        for record in trace
    )
    return BroadcastTrace(
        name=name or f"{trace.name}x{factor:g}",
        duration_s=trace.duration_s / factor,
        records=scaled,
    )


def repeat_trace(trace: BroadcastTrace, times: int, name: str = "") -> BroadcastTrace:
    """Loop a trace ``times`` times (for long-horizon evaluations)."""
    if times < 1:
        raise ConfigurationError(f"repeat count must be >= 1: {times}")
    return concat_traces(name or f"{trace.name}x{times}", [trace] * times)
