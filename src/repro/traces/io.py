"""Trace persistence: JSON-lines (lossless) and CSV (interchange)."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Optional, Union

from repro.errors import TraceFormatError
from repro.traces.frame_record import BroadcastFrameRecord
from repro.traces.trace import BroadcastTrace

_FORMAT_VERSION = 1


def save_trace_jsonl(trace: BroadcastTrace, path: Union[str, Path]) -> None:
    """Write a trace as a header line plus one JSON object per frame."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "format": "repro-broadcast-trace",
            "version": _FORMAT_VERSION,
            "name": trace.name,
            "duration_s": trace.duration_s,
            "frames": len(trace),
        }
        handle.write(json.dumps(header) + "\n")
        for record in trace:
            row = {
                "t": record.time,
                "port": record.udp_port,
                "len": record.length_bytes,
                "rate": record.rate_bps,
                "more": record.more_data,
            }
            if record.offered_time is not None:
                row["offered"] = record.offered_time
            handle.write(json.dumps(row) + "\n")


def load_trace_jsonl(path: Union[str, Path]) -> BroadcastTrace:
    """Inverse of :func:`save_trace_jsonl`, with format validation."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise TraceFormatError(f"{path} is empty")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"{path}: malformed header") from exc
        if header.get("format") != "repro-broadcast-trace":
            raise TraceFormatError(f"{path}: not a broadcast trace file")
        if header.get("version") != _FORMAT_VERSION:
            raise TraceFormatError(
                f"{path}: unsupported version {header.get('version')}"
            )
        records = []
        for line_number, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                row = json.loads(line)
                records.append(
                    BroadcastFrameRecord(
                        time=row["t"],
                        udp_port=row["port"],
                        length_bytes=row["len"],
                        rate_bps=row["rate"],
                        more_data=row.get("more", False),
                        offered_time=row.get("offered"),
                    )
                )
            except (json.JSONDecodeError, KeyError, ValueError) as exc:
                raise TraceFormatError(f"{path}:{line_number}: bad record") from exc
    declared = header.get("frames")
    if declared is not None and declared != len(records):
        raise TraceFormatError(
            f"{path}: header declares {declared} frames, found {len(records)}"
        )
    return BroadcastTrace(
        name=header["name"], duration_s=header["duration_s"], records=tuple(records)
    )


def load_trace_csv(
    path: Union[str, Path],
    name: Optional[str] = None,
    duration_s: Optional[float] = None,
) -> BroadcastTrace:
    """Import a trace from CSV (the :func:`trace_to_csv` column layout).

    This is the bring-your-own-capture path: export your pcap with
    columns ``time_s, udp_port, length_bytes, rate_bps, more_data
    [, offered_time_s]`` and the whole evaluation pipeline runs on it.
    ``duration_s`` defaults to the last frame time rounded up a second.
    """
    path = Path(path)
    records = []
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"time_s", "udp_port", "length_bytes", "rate_bps"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise TraceFormatError(
                f"{path}: CSV must have columns {sorted(required)}"
            )
        for line_number, row in enumerate(reader, start=2):
            try:
                offered = row.get("offered_time_s", "")
                records.append(
                    BroadcastFrameRecord(
                        time=float(row["time_s"]),
                        udp_port=int(row["udp_port"]),
                        length_bytes=int(row["length_bytes"]),
                        rate_bps=float(row["rate_bps"]),
                        more_data=bool(int(row.get("more_data", "0") or 0)),
                        offered_time=float(offered) if offered else None,
                    )
                )
            except (KeyError, ValueError) as exc:
                raise TraceFormatError(f"{path}:{line_number}: bad row") from exc
    records.sort(key=lambda r: r.time)
    if duration_s is None:
        duration_s = (records[-1].time + 1.0) if records else 1.0
    return BroadcastTrace(
        name=name or path.stem, duration_s=duration_s, records=tuple(records)
    )


def trace_to_csv(trace: BroadcastTrace, path: Union[str, Path]) -> None:
    """Export to CSV for external tooling (spreadsheets, pandas)."""
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["time_s", "udp_port", "length_bytes", "rate_bps", "more_data", "offered_time_s"]
        )
        for record in trace:
            writer.writerow(
                [
                    f"{record.time:.6f}",
                    record.udp_port,
                    record.length_bytes,
                    f"{record.rate_bps:.0f}",
                    int(record.more_data),
                    "" if record.offered_time is None else f"{record.offered_time:.6f}",
                ]
            )
