"""Empirical cumulative distribution functions (for Figure 6)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


class EmpiricalCdf:
    """CDF of a finite sample, with evaluation and quantile queries."""

    def __init__(self, samples: Sequence[float]) -> None:
        if not samples:
            raise ValueError("cannot build a CDF from an empty sample")
        self._sorted = sorted(float(s) for s in samples)
        self._n = len(self._sorted)

    def __len__(self) -> int:
        return self._n

    @property
    def mean(self) -> float:
        return sum(self._sorted) / self._n

    @property
    def min(self) -> float:
        return self._sorted[0]

    @property
    def max(self) -> float:
        return self._sorted[-1]

    def evaluate(self, x: float) -> float:
        """P(X <= x) by binary search."""
        lo, hi = 0, self._n
        while lo < hi:
            mid = (lo + hi) // 2
            if self._sorted[mid] <= x:
                lo = mid + 1
            else:
                hi = mid
        return lo / self._n

    def quantile(self, q: float) -> float:
        """Inverse CDF (lower interpolation)."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        if q == 1:
            return self._sorted[-1]
        return self._sorted[int(q * self._n)]

    def points(self) -> List[Tuple[float, float]]:
        """Step-function points (x, P(X <= x)) for plotting."""
        result: List[Tuple[float, float]] = []
        for index, value in enumerate(self._sorted):
            if result and result[-1][0] == value:
                result[-1] = (value, (index + 1) / self._n)
            else:
                result.append((value, (index + 1) / self._n))
        return result
