"""Synthetic broadcast-trace generation (the Figure 6 stand-ins)."""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple, Union

from repro.dot11.llc import LLC_SNAP_BYTES
from repro.dot11.sizes import FCS_BYTES, MAC_HEADER_BYTES
from repro.errors import ConfigurationError
from repro.net.ports import WELL_KNOWN_BROADCAST_SERVICES
from repro.traces.frame_record import BroadcastFrameRecord
from repro.traces.release import apply_dtim_release
from repro.traces.scenarios import ScenarioSpec, scenario_by_name
from repro.traces.trace import BroadcastTrace
from repro.units import BEACON_INTERVAL_S, mbps

#: Fixed per-frame header bytes around the UDP payload on the air:
#: 802.11 MAC header + LLC/SNAP + IPv4 + UDP + FCS.
FRAME_OVERHEAD_BYTES = MAC_HEADER_BYTES + LLC_SNAP_BYTES + 20 + 8 + FCS_BYTES

#: Broadcast frames ride the basic rates; most APs send them at 1-2 Mb/s.
_RATE_CHOICES = (mbps(1), mbps(2), mbps(5.5))
_RATE_WEIGHTS = (0.70, 0.22, 0.08)


class TraceGenerator:
    """Two-state MMPP offered traffic + service-port mix + DTIM release."""

    def __init__(
        self,
        spec: ScenarioSpec,
        beacon_interval_s: float = BEACON_INTERVAL_S,
        dtim_period: int = 1,
    ) -> None:
        self.spec = spec
        self.beacon_interval_s = beacon_interval_s
        self.dtim_period = dtim_period
        self._ports, self._weights = self._build_port_mix(spec)

    @staticmethod
    def _build_port_mix(spec: ScenarioSpec) -> Tuple[List[int], List[float]]:
        overrides: Dict[int, float] = dict(spec.port_weight_overrides)
        ports: List[int] = []
        weights: List[float] = []
        for port, service in sorted(WELL_KNOWN_BROADCAST_SERVICES.items()):
            ports.append(port)
            weights.append(service.traffic_weight * overrides.get(port, 1.0))
        return ports, weights

    def _offered_arrivals(self, rng: random.Random) -> List[float]:
        """MMPP arrival times over the scenario duration."""
        spec = self.spec
        times: List[float] = []
        now = 0.0
        in_burst = False
        state_end = rng.expovariate(1.0 / spec.quiet_dwell_s)
        while now < spec.duration_s:
            rate = spec.burst_rate_fps if in_burst else spec.quiet_rate_fps
            if rate <= 0:
                now = state_end
            else:
                gap = rng.expovariate(rate)
                if now + gap < state_end:
                    now += gap
                    if now < spec.duration_s:
                        times.append(now)
                    continue
                now = state_end
            in_burst = not in_burst
            dwell = spec.burst_dwell_s if in_burst else spec.quiet_dwell_s
            state_end = now + rng.expovariate(1.0 / dwell)
        return times

    def _frame_for(self, rng: random.Random) -> Tuple[int, int, float]:
        """Draw (port, on-air length bytes, rate) for one frame."""
        port = rng.choices(self._ports, weights=self._weights, k=1)[0]
        service = WELL_KNOWN_BROADCAST_SERVICES[port]
        # Payload jitter: real discovery payloads vary with host names,
        # record counts, etc. ±25 % triangular around the typical size.
        payload = max(
            8,
            int(
                rng.triangular(
                    service.typical_payload_bytes * 0.75,
                    service.typical_payload_bytes * 1.25,
                    service.typical_payload_bytes,
                )
            ),
        )
        rate = rng.choices(_RATE_CHOICES, weights=_RATE_WEIGHTS, k=1)[0]
        return port, FRAME_OVERHEAD_BYTES + payload, rate

    def generate(self, seed: Optional[int] = None) -> BroadcastTrace:
        rng = random.Random(self.spec.seed if seed is None else seed)
        offered = [
            (time,) + self._frame_for(rng) for time in self._offered_arrivals(rng)
        ]
        records = apply_dtim_release(
            offered,
            duration_s=self.spec.duration_s,
            beacon_interval_s=self.beacon_interval_s,
            dtim_period=self.dtim_period,
        )
        return BroadcastTrace(
            name=self.spec.name,
            duration_s=self.spec.duration_s,
            records=tuple(records),
        )


def generate_trace(
    scenario: Union[str, ScenarioSpec],
    seed: Optional[int] = None,
    beacon_interval_s: float = BEACON_INTERVAL_S,
    dtim_period: int = 1,
) -> BroadcastTrace:
    """Generate one scenario trace (by name or spec)."""
    spec = scenario_by_name(scenario) if isinstance(scenario, str) else scenario
    return TraceGenerator(
        spec, beacon_interval_s=beacon_interval_s, dtim_period=dtim_period
    ).generate(seed=seed)
