"""One UDP-padded broadcast frame in a trace."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.energy.dynamics import FrameEvent


@dataclass(frozen=True)
class BroadcastFrameRecord:
    """A captured (or synthesized) over-the-air broadcast frame.

    ``time`` is the on-air transmission start (what the paper's t̂_i
    denotes); ``offered_time`` is when the frame reached the AP from the
    wired side (before DTIM buffering) — kept for queueing-delay stats.
    """

    time: float
    udp_port: int
    length_bytes: int
    rate_bps: float
    more_data: bool = False
    offered_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"frame time must be non-negative: {self.time}")
        if not 0 < self.udp_port <= 0xFFFF:
            raise ValueError(f"UDP port out of range: {self.udp_port}")
        if self.length_bytes <= 0:
            raise ValueError(f"length must be positive: {self.length_bytes}")
        if self.rate_bps <= 0:
            raise ValueError(f"rate must be positive: {self.rate_bps}")
        if self.offered_time is not None and self.offered_time > self.time:
            raise ValueError("a frame cannot air before it was offered")

    @property
    def airtime_s(self) -> float:
        return self.length_bytes * 8 / self.rate_bps

    @property
    def buffering_delay_s(self) -> Optional[float]:
        """Time the frame waited in the AP's broadcast buffer."""
        if self.offered_time is None:
            return None
        return self.time - self.offered_time

    def to_event(self, useful: bool) -> FrameEvent:
        """Convert to an energy-model event with a usefulness verdict."""
        return FrameEvent(
            time=self.time,
            length_bytes=self.length_bytes,
            rate_bps=self.rate_bps,
            useful=useful,
            more_data=self.more_data,
            udp_port=self.udp_port,
        )

    def shifted(self, dt: float) -> "BroadcastFrameRecord":
        """Copy of this record moved by ``dt`` seconds."""
        return replace(
            self,
            time=self.time + dt,
            offered_time=None if self.offered_time is None else self.offered_time + dt,
        )
