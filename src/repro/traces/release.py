"""DTIM release: reshape offered arrivals into over-the-air bursts.

Real broadcast traces are captured over the air next to an AP with PS
clients associated, so frames appear in back-to-back bursts right after
DTIM beacons — not at their wired-side arrival times. This pass applies
the standard buffering rule: a frame offered during DTIM period k airs
in the burst after DTIM k+1's beacon, serialized at its own data rate,
with the more-data bit set on every burst frame except the last.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.sim.medium import PHY_OVERHEAD_S, SIFS_S
from repro.traces.frame_record import BroadcastFrameRecord
from repro.units import BEACON_INTERVAL_S


def apply_dtim_release(
    offered: Sequence[Tuple[float, int, int, float]],
    duration_s: float,
    beacon_interval_s: float = BEACON_INTERVAL_S,
    dtim_period: int = 1,
    beacon_airtime_s: float = 0.9e-3,
) -> List[BroadcastFrameRecord]:
    """Turn ``(offered_time, port, length_bytes, rate_bps)`` tuples into
    time-sorted on-air records.

    ``beacon_airtime_s`` is the head-of-burst offset: the DTIM beacon
    itself must finish before the first broadcast frame starts (a 65-byte
    beacon at 1 Mb/s plus preamble is ≈0.7 ms; the default adds a DIFS's
    worth of slack). Bursts too large for one beacon interval spill into
    the next — matching AP behaviour under overload.
    """
    if duration_s <= 0:
        raise ConfigurationError("duration must be positive")
    if beacon_interval_s <= 0 or dtim_period < 1:
        raise ConfigurationError("bad beacon schedule")
    dtim_interval = beacon_interval_s * dtim_period
    ordered = sorted(offered, key=lambda item: item[0])
    records: List[BroadcastFrameRecord] = []

    index = 0
    boundary = dtim_interval  # first DTIM at one interval in
    transmit_cursor = 0.0
    while index < len(ordered) and boundary <= duration_s + dtim_interval:
        # Collect everything offered before this DTIM boundary.
        burst: List[Tuple[float, int, int, float]] = []
        while index < len(ordered) and ordered[index][0] < boundary:
            burst.append(ordered[index])
            index += 1
        if burst:
            transmit_cursor = max(transmit_cursor, boundary + beacon_airtime_s)
            for position, (offered_time, port, length, rate) in enumerate(burst):
                start = transmit_cursor
                airtime = PHY_OVERHEAD_S + length * 8 / rate
                transmit_cursor = start + airtime + SIFS_S
                if start >= duration_s:
                    break
                records.append(
                    BroadcastFrameRecord(
                        time=start,
                        udp_port=port,
                        length_bytes=length,
                        rate_bps=rate,
                        more_data=position < len(burst) - 1,
                        offered_time=offered_time,
                    )
                )
        boundary += dtim_interval
    return records
