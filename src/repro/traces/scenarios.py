"""The five evaluation scenarios, calibrated to the paper's evaluation.

The paper reports 30-60 minute peak-hour captures with very different
broadcast volumes: the classroom building and the college library (WML)
are heavy, the CS department is moderate, Starbucks and the city public
library (WRL) are light. Each scenario is a two-state Markov-modulated
Poisson process (quiet state + burst state, exponential dwells), run
through a DTIM-release pass.

Two traffic characters emerge from calibrating against the paper's
Figures 7-9 jointly (see DESIGN.md and EXPERIMENTS.md):

* **Storm-dominated** (Classroom, WML): short (~0.1 s) very dense
  bursts every ~1.2 s — machines re-announcing services back-to-back.
  This is the only shape consistent with the paper's Figure 9
  (receive-all stays awake ≥80 % of the time on these traces) *and*
  Figure 8 (client-side filtering barely saves on the Galaxy S4,
  because each storm still costs a full resume+suspend cycle).
* **Spread-plus-burst** (CS_Dept, Starbucks, WRL): sparse background
  frames with occasional multi-second bursts. Isolated frames make
  per-frame wake-ups expensive, which is what separates HIDE from the
  client-side baseline on these traces.

Calibration result (Nexus One, clustered 10 %/2 % usefulness): HIDE
saves 29-76 % / 66-84 % across the five traces versus the paper's
34-75 % / 71-82 % — same ordering, same crossovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ScenarioSpec:
    """Generator parameters for one scenario."""

    name: str
    duration_s: float
    #: Poisson rate (frames/s) in the quiet MMPP state.
    quiet_rate_fps: float
    #: Poisson rate (frames/s) in the burst MMPP state.
    burst_rate_fps: float
    #: Mean dwell time in the quiet state (s).
    quiet_dwell_s: float
    #: Mean dwell time in the burst state (s).
    burst_dwell_s: float
    #: Default RNG seed, so every run regenerates identical traces.
    seed: int
    #: Optional per-port weight multipliers to skew the service mix
    #: (e.g. a cafe sees more phone/consumer chatter, a department more
    #: NetBIOS from desktops).
    port_weight_overrides: Tuple[Tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if self.quiet_rate_fps < 0 or self.burst_rate_fps <= 0:
            raise ConfigurationError("rates must be non-negative/positive")
        if self.quiet_dwell_s <= 0 or self.burst_dwell_s <= 0:
            raise ConfigurationError("dwell times must be positive")

    @property
    def mean_rate_fps(self) -> float:
        """Long-run mean offered rate of the MMPP."""
        total = self.quiet_dwell_s + self.burst_dwell_s
        return (
            self.quiet_rate_fps * self.quiet_dwell_s
            + self.burst_rate_fps * self.burst_dwell_s
        ) / total


#: Paper order: Classroom, CS_Dept, WML, Starbucks, WRL.
PAPER_SCENARIOS: Tuple[ScenarioSpec, ...] = (
    ScenarioSpec(
        name="Classroom",
        duration_s=45 * 60,
        quiet_rate_fps=0.20,
        burst_rate_fps=160.0,
        quiet_dwell_s=1.15,
        burst_dwell_s=0.10,
        seed=1001,
        # Lecture halls: lots of student laptops -> NetBIOS + mDNS heavy.
        port_weight_overrides=((137, 1.4), (5353, 1.5)),
    ),
    ScenarioSpec(
        name="CS_Dept",
        duration_s=60 * 60,
        quiet_rate_fps=1.0,
        burst_rate_fps=25.0,
        quiet_dwell_s=35.0,
        burst_dwell_s=5.0,
        seed=1002,
        # Office desktops: NetBIOS datagram + Dropbox LanSync skew.
        port_weight_overrides=((138, 1.6), (17500, 2.0)),
    ),
    ScenarioSpec(
        name="WML",
        duration_s=40 * 60,
        quiet_rate_fps=0.25,
        burst_rate_fps=200.0,
        quiet_dwell_s=0.95,
        burst_dwell_s=0.11,
        seed=1003,
        # College library: dense mixed devices; SSDP from media gear.
        port_weight_overrides=((1900, 1.5),),
    ),
    ScenarioSpec(
        name="Starbucks",
        duration_s=35 * 60,
        quiet_rate_fps=0.4,
        burst_rate_fps=10.0,
        quiet_dwell_s=30.0,
        burst_dwell_s=5.0,
        seed=1004,
        # Cafe: phones and consumer apps, little NetBIOS.
        port_weight_overrides=((137, 0.4), (138, 0.4), (5353, 1.8), (57621, 2.5)),
    ),
    ScenarioSpec(
        name="WRL",
        duration_s=50 * 60,
        quiet_rate_fps=0.85,
        burst_rate_fps=3.0,
        quiet_dwell_s=50.0,
        burst_dwell_s=8.0,
        seed=1005,
        # Quiet public library: a few always-on machines announcing at a
        # steady trickle.
        port_weight_overrides=((1900, 1.3),),
    ),
)


#: Beyond-paper densities (kept out of ``PAPER_SCENARIOS`` so figure
#: reproductions keep iterating exactly the paper's five). DenseFleet
#: is the stadium/airport shape the ROADMAP aims at: Classroom-style
#: service-announcement storms, tuned slightly denser, meant to be run
#: with hundreds to thousands of stations (``--clients 1000``) — the
#: workload the vectorized delivery backend exists for.
EXTRA_SCENARIOS: Tuple[ScenarioSpec, ...] = (
    ScenarioSpec(
        name="DenseFleet",
        duration_s=10 * 60,
        quiet_rate_fps=0.5,
        burst_rate_fps=180.0,
        quiet_dwell_s=0.9,
        burst_dwell_s=0.12,
        seed=1006,
        # Dense venue: phones everywhere -> mDNS/SSDP announcement storms.
        port_weight_overrides=((5353, 1.8), (1900, 1.4)),
    ),
)

#: Every registered scenario, paper five first.
ALL_SCENARIOS: Tuple[ScenarioSpec, ...] = PAPER_SCENARIOS + EXTRA_SCENARIOS


def scenario_by_name(name: str) -> ScenarioSpec:
    """Case-insensitive scenario lookup (paper + extra scenarios)."""
    for spec in ALL_SCENARIOS:
        if spec.name.lower() == name.lower():
            return spec
    known = ", ".join(s.name for s in ALL_SCENARIOS)
    raise ConfigurationError(f"unknown scenario {name!r}; known: {known}")
