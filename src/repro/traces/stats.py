"""Burstiness and structure statistics for broadcast traces.

The energy a trace costs under each solution is driven less by its mean
rate than by its *structure* — how frames clump into bursts and how
long the silences between them are (DESIGN.md's calibration story).
These metrics quantify that structure, so a user substituting their own
capture for the synthetic traces can check it has comparable character.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.traces.trace import BroadcastTrace


@dataclass(frozen=True)
class Burst:
    """A maximal run of frames with inter-frame gaps below a threshold."""

    start: float
    end: float
    frames: int

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class TraceStats:
    """Structure summary of one trace."""

    frame_count: int
    duration_s: float
    mean_rate_fps: float
    #: Index of dispersion of per-second counts (1 = Poisson; > 1 bursty).
    index_of_dispersion: float
    burst_count: int
    mean_burst_frames: float
    mean_burst_duration_s: float
    #: Mean silence between consecutive bursts.
    mean_gap_s: float
    #: Fraction of inter-frame gaps longer than a device sleep cycle
    #: (τ + T_sp at Nexus One constants): every such gap is a chance to
    #: actually reach suspend mode under receive-all.
    sleepable_gap_fraction: float


#: Gap (s) separating two bursts: anything beyond a DTIM interval.
DEFAULT_BURST_GAP_S = 0.2

#: A Nexus One needs τ + T_sp ≈ 1.09 s of silence to reach suspend.
SLEEPABLE_GAP_S = 1.086


def detect_bursts(
    trace: BroadcastTrace, max_gap_s: float = DEFAULT_BURST_GAP_S
) -> List[Burst]:
    """Group frames into bursts split at gaps larger than ``max_gap_s``."""
    if max_gap_s <= 0:
        raise ConfigurationError("burst gap must be positive")
    bursts: List[Burst] = []
    start = None
    previous = None
    count = 0
    for record in trace:
        if start is None:
            start, previous, count = record.time, record.time, 1
            continue
        if record.time - previous <= max_gap_s:
            previous = record.time
            count += 1
        else:
            bursts.append(Burst(start=start, end=previous, frames=count))
            start, previous, count = record.time, record.time, 1
    if start is not None:
        bursts.append(Burst(start=start, end=previous, frames=count))
    return bursts


def index_of_dispersion(trace: BroadcastTrace) -> float:
    """Variance-to-mean ratio of per-second frame counts."""
    series = trace.frames_per_second_series()
    if not series:
        return 0.0
    mean = sum(series) / len(series)
    if mean == 0:
        return 0.0
    variance = sum((x - mean) ** 2 for x in series) / len(series)
    return variance / mean


def compute_stats(
    trace: BroadcastTrace,
    burst_gap_s: float = DEFAULT_BURST_GAP_S,
    sleepable_gap_s: float = SLEEPABLE_GAP_S,
) -> TraceStats:
    """All structure metrics at once."""
    bursts = detect_bursts(trace, burst_gap_s) if len(trace) else []
    gaps = [
        later.start - earlier.end
        for earlier, later in zip(bursts, bursts[1:])
    ]
    times = [record.time for record in trace]
    inter_frame = [b - a for a, b in zip(times, times[1:])]
    sleepable = (
        sum(1 for gap in inter_frame if gap > sleepable_gap_s) / len(inter_frame)
        if inter_frame
        else 0.0
    )
    return TraceStats(
        frame_count=len(trace),
        duration_s=trace.duration_s,
        mean_rate_fps=trace.mean_frames_per_second,
        index_of_dispersion=index_of_dispersion(trace),
        burst_count=len(bursts),
        mean_burst_frames=(
            sum(b.frames for b in bursts) / len(bursts) if bursts else 0.0
        ),
        mean_burst_duration_s=(
            sum(b.duration for b in bursts) / len(bursts) if bursts else 0.0
        ),
        mean_gap_s=sum(gaps) / len(gaps) if gaps else 0.0,
        sleepable_gap_fraction=sleepable,
    )
