"""Assigning usefulness (the paper's u_i) to trace frames.

The evaluation sweeps "x % of the broadcast frames are useful to the
smartphone". Three assignment strategies are provided:

* :func:`spread_fraction_mask` — deterministic, evenly-spread marking
  that hits the target fraction exactly (used for figure reproduction;
  matches the paper's per-frame framing of "x % of the frames").
* :func:`random_fraction_mask` — seeded Bernoulli marking.
* :func:`port_subset_mask` — the protocol-realistic strategy: a frame
  is useful iff its destination UDP port is in the client's open set;
  :func:`ports_for_target_fraction` greedily picks a port subset whose
  traffic share approximates the target.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import FrozenSet, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.traces.trace import BroadcastTrace


@dataclass(frozen=True)
class UsefulnessAssignment:
    """A mask plus provenance, so experiments can report what they used."""

    trace_name: str
    strategy: str
    target_fraction: float
    mask: Tuple[bool, ...]

    @property
    def achieved_fraction(self) -> float:
        if not self.mask:
            return 0.0
        return sum(self.mask) / len(self.mask)

    @property
    def useful_count(self) -> int:
        return sum(self.mask)


def _check_fraction(fraction: float) -> None:
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in [0, 1]: {fraction}")


def spread_fraction_mask(
    trace: BroadcastTrace, fraction: float
) -> UsefulnessAssignment:
    """Mark ⌊n·f⌋-or-⌈n·f⌉ frames, spread evenly through the trace.

    Frame i is useful iff ⌊(i+1)·f⌋ > ⌊i·f⌋ — the Bresenham spread, so
    useful frames appear at a steady cadence rather than clumped, which
    is the neutral assumption when nothing is known about which service
    the client wants.
    """
    _check_fraction(fraction)
    mask = tuple(
        int((i + 1) * fraction) > int(i * fraction) for i in range(len(trace))
    )
    return UsefulnessAssignment(
        trace_name=trace.name,
        strategy="spread",
        target_fraction=fraction,
        mask=mask,
    )


def random_fraction_mask(
    trace: BroadcastTrace, fraction: float, seed: int = 0
) -> UsefulnessAssignment:
    """Seeded i.i.d. Bernoulli(fraction) marking."""
    _check_fraction(fraction)
    rng = random.Random(seed)
    mask = tuple(rng.random() < fraction for _ in range(len(trace)))
    return UsefulnessAssignment(
        trace_name=trace.name,
        strategy="random",
        target_fraction=fraction,
        mask=mask,
    )


def clustered_fraction_mask(
    trace: BroadcastTrace,
    fraction: float,
    mean_run_length: float = 2.0,
    seed: int = 0,
) -> UsefulnessAssignment:
    """Mark ~``fraction`` of frames useful in geometric runs.

    Useful broadcast frames do not arrive i.i.d.: a service the client
    cares about announces itself in multi-frame volleys (an mDNS answer
    set, a NetBIOS re-announcement), so usefulness clusters in time.
    Runs start as a Bernoulli process with rate fraction/mean_run_length
    and have geometric lengths with the given mean — preserving the
    target fraction in expectation while concentrating useful frames
    into fewer wake-up events. This is the assignment used for the
    Figure 7/8 reproduction (see EXPERIMENTS.md).
    """
    _check_fraction(fraction)
    if mean_run_length < 1.0:
        raise ConfigurationError(f"mean run length must be >= 1: {mean_run_length}")
    rng = random.Random(seed)
    start_probability = fraction / mean_run_length
    continue_probability = 1.0 - 1.0 / mean_run_length

    # Draw a fixed amount of randomness per frame regardless of the
    # fraction, so masks are NESTED across fractions for one seed: every
    # frame useful at 2% is also useful at 10%. This makes the HIDE
    # energy sweep of Figures 7-8 monotone by construction.
    mask = [False] * len(trace)
    for index in range(len(trace)):
        start_draw = rng.random()
        length_draw = rng.random()
        if start_draw >= start_probability:
            continue
        if continue_probability > 0.0:
            run_length = 1 + int(
                math.log(max(1e-12, 1.0 - length_draw))
                / math.log(continue_probability)
            )
        else:
            run_length = 1
        for offset in range(run_length):
            if index + offset < len(mask):
                mask[index + offset] = True
    return UsefulnessAssignment(
        trace_name=trace.name,
        strategy=f"clustered(run={mean_run_length:g})",
        target_fraction=fraction,
        mask=tuple(mask),
    )


def ports_for_target_fraction(
    trace: BroadcastTrace, fraction: float
) -> FrozenSet[int]:
    """Greedily pick ports whose combined traffic share ≈ ``fraction``.

    Ports are considered in ascending traffic share so small fractions
    are reachable; a port is added while it brings the achieved share
    closer to the target.
    """
    _check_fraction(fraction)
    total = len(trace)
    if total == 0:
        return frozenset()
    histogram = trace.port_histogram()
    chosen: List[int] = []
    achieved = 0
    target_count = fraction * total
    for port, count in sorted(histogram.items(), key=lambda item: (item[1], item[0])):
        if abs(achieved + count - target_count) < abs(achieved - target_count):
            chosen.append(port)
            achieved += count
    return frozenset(chosen)


def port_subset_mask(
    trace: BroadcastTrace, open_ports: FrozenSet[int], target_fraction: float = -1.0
) -> UsefulnessAssignment:
    """Useful iff the frame's destination port is in ``open_ports``."""
    mask = tuple(record.udp_port in open_ports for record in trace)
    return UsefulnessAssignment(
        trace_name=trace.name,
        strategy="port-subset",
        target_fraction=target_fraction,
        mask=mask,
    )
