"""The trace container and its summary statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.energy.dynamics import FrameEvent
from repro.errors import TraceFormatError
from repro.traces.cdf import EmpiricalCdf
from repro.traces.frame_record import BroadcastFrameRecord


@dataclass(frozen=True)
class BroadcastTrace:
    """An immutable, time-sorted sequence of broadcast frame records."""

    name: str
    duration_s: float
    records: Tuple[BroadcastFrameRecord, ...]

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise TraceFormatError(f"trace duration must be positive: {self.duration_s}")
        records = tuple(self.records)
        object.__setattr__(self, "records", records)
        for earlier, later in zip(records, records[1:]):
            if later.time < earlier.time:
                raise TraceFormatError("trace records must be sorted by time")
        if records and records[-1].time > self.duration_s:
            raise TraceFormatError(
                f"record at t={records[-1].time} beyond trace duration {self.duration_s}"
            )

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def mean_frames_per_second(self) -> float:
        return len(self.records) / self.duration_s

    def frames_per_second_series(self) -> List[int]:
        """Per-second frame counts — the Figure 6 sample population."""
        buckets = [0] * max(1, int(self.duration_s))
        for record in self.records:
            index = min(int(record.time), len(buckets) - 1)
            buckets[index] += 1
        return buckets

    def volume_cdf(self) -> EmpiricalCdf:
        """Empirical CDF of frames/second — one Figure 6 curve."""
        return EmpiricalCdf(self.frames_per_second_series())

    def port_histogram(self) -> Dict[int, int]:
        histogram: Dict[int, int] = {}
        for record in self.records:
            histogram[record.udp_port] = histogram.get(record.udp_port, 0) + 1
        return histogram

    def to_events(self, useful_mask: Sequence[bool]) -> List[FrameEvent]:
        """Pair every record with its usefulness verdict."""
        if len(useful_mask) != len(self.records):
            raise TraceFormatError(
                f"mask length {len(useful_mask)} != record count {len(self.records)}"
            )
        return [
            record.to_event(useful)
            for record, useful in zip(self.records, useful_mask)
        ]

    def slice(self, start_s: float, end_s: float) -> "BroadcastTrace":
        """Sub-trace covering [start_s, end_s), rebased to t=0."""
        if not 0 <= start_s < end_s <= self.duration_s:
            raise TraceFormatError(f"bad slice [{start_s}, {end_s})")
        kept = tuple(
            record.shifted(-start_s)
            for record in self.records
            if start_s <= record.time < end_s
        )
        return BroadcastTrace(
            name=f"{self.name}[{start_s:g}:{end_s:g}]",
            duration_s=end_s - start_s,
            records=kept,
        )
