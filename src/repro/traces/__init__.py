"""Broadcast traffic traces: records, synthetic generators, stats, I/O.

The paper evaluates on five real-world traces (classroom, CS department,
college library "WML", Starbucks, city public library "WRL") that are
not public. This package synthesizes stand-ins: Markov-modulated Poisson
offered traffic with scenario-calibrated rates and burstiness, a
realistic UDP service-port mix, and a DTIM-release pass that reshapes
offered arrivals into the post-beacon bursts an over-the-air capture
would show (see DESIGN.md, substitutions table).
"""

from repro.traces.frame_record import BroadcastFrameRecord
from repro.traces.trace import BroadcastTrace
from repro.traces.cdf import EmpiricalCdf
from repro.traces.scenarios import ScenarioSpec, PAPER_SCENARIOS, scenario_by_name
from repro.traces.generators import generate_trace, TraceGenerator
from repro.traces.release import apply_dtim_release
from repro.traces.usefulness import (
    UsefulnessAssignment,
    spread_fraction_mask,
    random_fraction_mask,
    clustered_fraction_mask,
    port_subset_mask,
    ports_for_target_fraction,
)
from repro.traces.io import save_trace_jsonl, load_trace_jsonl, load_trace_csv, trace_to_csv
from repro.traces.stats import Burst, TraceStats, compute_stats, detect_bursts, index_of_dispersion
from repro.traces.compose import merge_traces, concat_traces, scale_rate, repeat_trace

__all__ = [
    "BroadcastFrameRecord",
    "BroadcastTrace",
    "EmpiricalCdf",
    "ScenarioSpec",
    "PAPER_SCENARIOS",
    "scenario_by_name",
    "generate_trace",
    "TraceGenerator",
    "apply_dtim_release",
    "UsefulnessAssignment",
    "spread_fraction_mask",
    "random_fraction_mask",
    "clustered_fraction_mask",
    "port_subset_mask",
    "ports_for_target_fraction",
    "save_trace_jsonl",
    "load_trace_jsonl",
    "trace_to_csv",
    "load_trace_csv",
    "Burst",
    "TraceStats",
    "compute_stats",
    "detect_bursts",
    "index_of_dispersion",
    "merge_traces",
    "concat_traces",
    "scale_rate",
    "repeat_trace",
]
