"""The broadcast-frame feed driving per-DTIM flag computation.

The live service has real clients but no real broadcast senders, so the
feed replays a scenario trace (the same MMPP catalog the sim and the
energy model consume) as the stream of UDP-padded broadcast frames the
AP would be buffering between DTIMs. Frames are pre-built once into
real :class:`~repro.dot11.data.DataFrame` objects — Algorithm 1 then
runs its genuine byte-parsing path (LLC/SNAP → IPv4 → UDP) against
them, exactly as in the sim.

The feed is deterministic: frame batches follow the trace's own
inter-DTIM spacing, cycling when the trace runs out, so two runs with
the same scenario and seed see identical per-DTIM workloads.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.dot11.data import DataFrame
from repro.dot11.mac_address import MacAddress
from repro.errors import ConfigurationError
from repro.net.packet import build_broadcast_udp_packet
from repro.net.udp import UDP_HEADER_BYTES
from repro.traces import generate_trace, scenario_by_name
from repro.traces.trace import BroadcastTrace

_BSSID = MacAddress.from_string("02:aa:00:00:00:01")
_SENDER = MacAddress.from_string("02:bb:00:00:00:99")

#: IPv4 header bytes ahead of the UDP datagram inside the frame body.
_IPV4_HEADER_BYTES = 20


class BroadcastFrameFeed:
    """Cycled per-DTIM batches of pre-built broadcast data frames."""

    def __init__(
        self,
        trace: BroadcastTrace,
        dtim_interval_s: float,
        max_pool: int = 2048,
    ) -> None:
        if dtim_interval_s <= 0:
            raise ConfigurationError(
                f"DTIM interval must be positive: {dtim_interval_s}"
            )
        records = list(trace)[:max_pool]
        if not records:
            raise ConfigurationError(f"trace {trace.name!r} has no frames")
        self.name = trace.name
        self.dtim_interval_s = dtim_interval_s
        self._frames: List[DataFrame] = []
        for record in records:
            payload = max(
                1, record.length_bytes - _IPV4_HEADER_BYTES - UDP_HEADER_BYTES
            )
            self._frames.append(
                DataFrame.broadcast_udp(
                    bssid=_BSSID,
                    source=_SENDER,
                    ip_packet=build_broadcast_udp_packet(
                        record.udp_port, b"\x00" * min(payload, 1400)
                    ),
                )
            )
        # Frames per DTIM follows the trace's own arrival density: each
        # record keeps its time relative to the pool start, and batches
        # slide a DTIM-wide window over that span, wrapping cyclically.
        start = records[0].time
        self._rel_times = [record.time - start for record in records]
        self._span_s = max(self._rel_times[-1] + dtim_interval_s, dtim_interval_s)
        self._cursor = 0
        self._window_start = 0.0
        self.batches_served = 0
        self.frames_served = 0

    @classmethod
    def from_scenario(
        cls,
        scenario: str,
        dtim_interval_s: float,
        seed: Optional[int] = None,
        max_pool: int = 2048,
    ) -> "BroadcastFrameFeed":
        trace = generate_trace(scenario_by_name(scenario), seed=seed)
        return cls(trace, dtim_interval_s, max_pool=max_pool)

    def __len__(self) -> int:
        return len(self._frames)

    def next_batch(self) -> Sequence[DataFrame]:
        """Frames whose trace time falls inside the next DTIM window.

        The window slides forward one DTIM interval per call and wraps
        around the pooled span, so quiet trace stretches yield empty
        batches and bursts yield dense ones — the same per-DTIM load
        shape the sim AP sees.
        """
        end = self._window_start + self.dtim_interval_s
        batch: List[DataFrame] = []
        total = len(self._frames)
        while (
            self._cursor < total
            and self._rel_times[self._cursor] < end
        ):
            if self._rel_times[self._cursor] >= self._window_start:
                batch.append(self._frames[self._cursor])
            self._cursor += 1
        self._window_start = end
        if self._window_start >= self._span_s:
            self._window_start = 0.0
            self._cursor = 0
        self.batches_served += 1
        self.frames_served += len(batch)
        return batch
