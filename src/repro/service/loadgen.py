"""Trace-replaying load generator for the port-service.

Simulates thousands of HIDE clients over loopback sockets: every client
gets a MAC, a BSS/AID pair (AIDs wrap at 2007 — the 802.11 limit — so
10k clients become five BSSes, matching the service's per-BSS tables),
and an open-port set drawn from the same scenario service-mix the trace
generators use. Each simulated client then behaves like the paper's
recovery protocol: a full port report first, keep-alive refreshes
after, with an occasional re-report (and periodic want-ack probes so
ACK latency and the re-report-on-expiry path stay exercised).

Pacing is a token bucket integrated over wall time with an optional
linear ramp, fanned across ``workers`` asyncio datagram endpoints; each
worker owns a disjoint client slice so sequence numbers stay
per-client monotonic without coordination.
"""

from __future__ import annotations

import asyncio
import json
import random
import struct
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dot11.mac_address import MacAddress
from repro.dot11.pvb import MAX_AID
from repro.errors import ServiceError
from repro.net.ports import WELL_KNOWN_BROADCAST_SERVICES
from repro.obs.hdr import HdrHistogram
from repro.service import wire
from repro.traces.scenarios import scenario_by_name

LOADGEN_SCHEMA = "repro-loadgen/v1"

#: Pending want-ack sends per worker: (bss, aid) -> (seq, perf_counter
#: send time). The server's drained-ACK path coalesces to the latest
#: sequence per client, so a newer want-ack send for the same client
#: simply supersedes the older pending entry.
_PendingAcks = Dict[Tuple[int, int], Tuple[int, float]]


def _rtt_histogram() -> HdrHistogram:
    # Milliseconds; same geometry as the service-side latency histograms
    # so `repro obs diff` can compare the two ends of the round trip.
    return HdrHistogram(min_value=1e-3, max_value=6e4, sub_count=32)

#: seq field offset inside the fixed wire header (see wire._HEADER).
_SEQ_OFFSET = 8
_FLAGS_OFFSET = 4
_SEQ_PACK = struct.Struct(">I")


@dataclass
class LoadgenConfig:
    host: str = "127.0.0.1"
    port: int = 0
    clients: int = 1000
    #: Target aggregate message rate (reports + keep-alives) per second.
    rate: float = 50_000.0
    duration_s: float = 10.0
    #: Linear ramp from 10% to 100% of ``rate`` over this many seconds.
    ramp_s: float = 0.0
    workers: int = 4
    scenario: str = "Classroom"
    seed: int = 1
    #: Fraction of steady-state sends that are keep-alives (the rest
    #: are full port reports; the first send per client is always one).
    keepalive_fraction: float = 0.75
    #: Every Nth send per worker requests an ACK (0 = never).
    ack_every: int = 64
    #: Pacing tick; smaller = smoother, larger = cheaper.
    tick_s: float = 0.005

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ServiceError(f"need at least one client: {self.clients}")
        if self.clients > 255 * MAX_AID:
            raise ServiceError(f"too many clients for the BSS/AID space: {self.clients}")
        if self.rate <= 0:
            raise ServiceError(f"rate must be positive: {self.rate}")
        if self.duration_s <= 0:
            raise ServiceError(f"duration must be positive: {self.duration_s}")
        if not 0 <= self.keepalive_fraction <= 1:
            raise ServiceError(
                f"keepalive fraction must be in [0, 1]: {self.keepalive_fraction}"
            )
        if self.workers < 1:
            raise ServiceError(f"need at least one worker: {self.workers}")


@dataclass
class LoadgenReport:
    """What one loadgen run achieved; rendered and JSON-dumped by the CLI."""

    config: LoadgenConfig
    duration_s: float = 0.0
    sent_total: int = 0
    sent_reports: int = 0
    sent_keepalives: int = 0
    acks_received: int = 0
    acks_by_status: Dict[int, int] = field(default_factory=dict)
    #: Want-ack round-trip latency (send to ACK receipt, milliseconds)
    #: keyed by ACK status byte.
    rtt_ms_by_status: Dict[int, HdrHistogram] = field(default_factory=dict)
    #: ACKs that matched no pending want-ack send: superseded by a newer
    #: sequence for the same client, or duplicated by the network.
    acks_unmatched: int = 0
    #: Full reports re-sent because an ACK said "unknown client".
    rereports: int = 0
    send_errors: int = 0

    @property
    def achieved_rate(self) -> float:
        return self.sent_total / self.duration_s if self.duration_s > 0 else 0.0

    def record_rtt(self, status: int, rtt_ms: float) -> None:
        histogram = self.rtt_ms_by_status.get(status)
        if histogram is None:
            histogram = self.rtt_ms_by_status[status] = _rtt_histogram()
        histogram.record(rtt_ms)

    def merged_rtt(self) -> HdrHistogram:
        """Round-trip latency across every ACK status."""
        if not self.rtt_ms_by_status:
            return _rtt_histogram()
        return HdrHistogram.merged(self.rtt_ms_by_status.values())

    def to_document(self) -> Dict[str, object]:
        return {
            "schema": LOADGEN_SCHEMA,
            "target": {
                "host": self.config.host,
                "port": self.config.port,
                "clients": self.config.clients,
                "rate": self.config.rate,
                "duration_s": self.config.duration_s,
                "ramp_s": self.config.ramp_s,
                "workers": self.config.workers,
                "scenario": self.config.scenario,
                "seed": self.config.seed,
                "keepalive_fraction": self.config.keepalive_fraction,
            },
            "achieved": {
                "duration_s": self.duration_s,
                "sent_total": self.sent_total,
                "sent_reports": self.sent_reports,
                "sent_keepalives": self.sent_keepalives,
                "rate_per_second": self.achieved_rate,
                "acks_received": self.acks_received,
                "acks_by_status": {
                    str(k): v for k, v in sorted(self.acks_by_status.items())
                },
                "acks_unmatched": self.acks_unmatched,
                "rereports": self.rereports,
                "send_errors": self.send_errors,
            },
            "latency": {
                "rtt_ms": self.merged_rtt().to_dict(),
                "rtt_ms_by_status": {
                    str(status): histogram.to_dict()
                    for status, histogram in sorted(self.rtt_ms_by_status.items())
                },
            },
        }


class _SimClient:
    """Pre-encoded datagram templates for one simulated client."""

    __slots__ = ("bss", "aid", "mac", "seq", "report", "keepalive", "reported")

    def __init__(self, index: int, ports) -> None:
        self.bss = index // MAX_AID
        self.aid = (index % MAX_AID) + 1
        self.mac = MacAddress.station(index).octets
        self.seq = 0
        # Templates are bytearrays; each send patches seq (and the
        # want-ack flag bit) in place instead of re-encoding.
        self.report = bytearray(
            wire.encode_port_report(self.bss, self.aid, self.mac, 0, ports)
        )
        self.keepalive = bytearray(
            wire.encode_keep_alive(self.bss, self.aid, self.mac, 0)
        )
        self.reported = False

    def next_payload(self, keepalive: bool, want_ack: bool) -> bytes:
        template = self.keepalive if (keepalive and self.reported) else self.report
        self.seq = (self.seq + 1) & 0xFFFFFFFF
        _SEQ_PACK.pack_into(template, _SEQ_OFFSET, self.seq)
        template[_FLAGS_OFFSET] = wire.FLAG_WANT_ACK if want_ack else 0
        if template is self.report:
            self.reported = True
        return bytes(template)


def _scenario_port_mix(scenario: str) -> Tuple[List[int], List[float]]:
    spec = scenario_by_name(scenario)
    overrides = dict(spec.port_weight_overrides)
    ports: List[int] = []
    weights: List[float] = []
    for port, service in sorted(WELL_KNOWN_BROADCAST_SERVICES.items()):
        ports.append(port)
        weights.append(service.traffic_weight * overrides.get(port, 1.0))
    return ports, weights


def build_clients(config: LoadgenConfig) -> List[_SimClient]:
    """Deterministic client population for ``config.seed``."""
    rng = random.Random(config.seed)
    ports, weights = _scenario_port_mix(config.scenario)
    clients: List[_SimClient] = []
    for index in range(config.clients):
        open_count = rng.randint(1, 4)
        open_ports = set()
        while len(open_ports) < open_count:
            open_ports.add(rng.choices(ports, weights=weights, k=1)[0])
        clients.append(_SimClient(index, open_ports))
    return clients


class _AckProtocol(asyncio.DatagramProtocol):
    """Counts ACKs, records round-trip latency, queues re-reports."""

    def __init__(
        self,
        report: LoadgenReport,
        rereport_queue: List[int],
        pending_acks: _PendingAcks,
    ) -> None:
        self._report = report
        self._rereports = rereport_queue
        self._pending = pending_acks
        self.transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        try:
            message = wire.decode_message(data)
        except Exception:
            return
        if message.msg_type != wire.MSG_ACK:
            return
        self._report.acks_received += 1
        by_status = self._report.acks_by_status
        by_status[message.status] = by_status.get(message.status, 0) + 1
        client = (message.bss, message.aid)
        pending = self._pending.get(client)
        if pending is not None and pending[0] == message.seq:
            del self._pending[client]
            self._report.record_rtt(
                message.status,
                max(0.0, (time.perf_counter() - pending[1]) * 1e3),
            )
        else:
            # Either a stale ACK (we already sent a newer want-ack for
            # this client) or a duplicate; no send time to pair it with.
            self._report.acks_unmatched += 1
        if message.status == wire.ACK_UNKNOWN_CLIENT:
            self._rereports.append((message.bss * MAX_AID) + message.aid - 1)


async def _worker(
    config: LoadgenConfig,
    clients: List[_SimClient],
    offsets: List[int],
    rate_share: float,
    report: LoadgenReport,
    stop: asyncio.Event,
) -> None:
    """One endpoint pushing its client slice at ``rate_share`` msgs/s."""
    loop = asyncio.get_event_loop()
    rereport_queue: List[int] = []
    pending_acks: _PendingAcks = {}
    transport, _ = await loop.create_datagram_endpoint(
        lambda: _AckProtocol(report, rereport_queue, pending_acks),
        remote_addr=(config.host, config.port),
    )
    rng = random.Random((config.seed << 16) ^ offsets[0])
    try:
        start = time.perf_counter()
        end = start + config.duration_s
        sent = 0.0  # fractional credit from the token bucket
        sent_count = 0
        cursor = 0
        while not stop.is_set():
            now = time.perf_counter()
            if now >= end:
                break
            elapsed = now - start
            if config.ramp_s > 0 and elapsed < config.ramp_s:
                current_rate = rate_share * (0.1 + 0.9 * elapsed / config.ramp_s)
            else:
                current_rate = rate_share
            target = min(elapsed, config.duration_s) * current_rate
            budget = int(target - sent)
            for _ in range(budget):
                if rereport_queue:
                    index = rereport_queue.pop()
                    local = index - offsets[0]
                    if 0 <= local < len(clients):
                        clients[local].reported = False
                        report.rereports += 1
                client = clients[cursor]
                cursor = (cursor + 1) % len(clients)
                keepalive = rng.random() < config.keepalive_fraction
                want_ack = (
                    config.ack_every > 0 and sent_count % config.ack_every == 0
                )
                payload = client.next_payload(keepalive, want_ack)
                try:
                    transport.sendto(payload)
                except OSError:  # pragma: no cover - kernel buffer full
                    report.send_errors += 1
                    continue
                if want_ack:
                    # Latest want-ack wins, mirroring the server's
                    # coalesced per-client ACK semantics.
                    pending_acks[(client.bss, client.aid)] = (
                        client.seq,
                        time.perf_counter(),
                    )
                sent_count += 1
                if len(payload) > wire.HEADER_BYTES:
                    report.sent_reports += 1
                else:
                    report.sent_keepalives += 1
            sent += budget
            await asyncio.sleep(config.tick_s)
        report.sent_total += sent_count
    finally:
        transport.close()


async def run_loadgen_async(config: LoadgenConfig) -> LoadgenReport:
    report = LoadgenReport(config=config)
    clients = build_clients(config)
    stop = asyncio.Event()
    workers = min(config.workers, config.clients)
    slices: List[Tuple[List[_SimClient], List[int]]] = []
    per = (len(clients) + workers - 1) // workers
    for w in range(workers):
        chunk = clients[w * per:(w + 1) * per]
        if chunk:
            slices.append((chunk, [w * per]))
    rate_share = config.rate / len(slices)
    start = time.perf_counter()
    await asyncio.gather(
        *(
            _worker(config, chunk, offsets, rate_share, report, stop)
            for chunk, offsets in slices
        )
    )
    # Give in-flight ACKs a moment to land before closing the books.
    await asyncio.sleep(min(0.2, config.duration_s / 10))
    report.duration_s = time.perf_counter() - start
    return report


def run_loadgen(config: LoadgenConfig) -> LoadgenReport:
    """Blocking entry point for ``repro loadgen``."""
    return asyncio.run(run_loadgen_async(config))


def render_report(report: LoadgenReport) -> str:
    lines = [
        f"loadgen: {report.sent_total} messages in {report.duration_s:.2f} s "
        f"({report.achieved_rate:,.0f}/s of {report.config.rate:,.0f}/s target, "
        f"{report.config.clients} clients, {report.config.workers} workers)",
        f"  reports {report.sent_reports}, keep-alives {report.sent_keepalives}, "
        f"re-reports {report.rereports}, send errors {report.send_errors}",
    ]
    if report.acks_received:
        statuses = ", ".join(
            f"status {status}: {count}"
            for status, count in sorted(report.acks_by_status.items())
        )
        lines.append(
            f"  acks {report.acks_received} ({statuses}), "
            f"unmatched {report.acks_unmatched}"
        )
        merged = report.merged_rtt()
        if merged.count:
            lines.append(
                f"  rtt ms (all statuses): p50 {merged.quantile(0.50):.3f}, "
                f"p90 {merged.quantile(0.90):.3f}, "
                f"p99 {merged.quantile(0.99):.3f}, max {merged.max:.3f} "
                f"over {merged.count} matched acks"
            )
            for status, histogram in sorted(report.rtt_ms_by_status.items()):
                lines.append(
                    f"    status {status}: p50 {histogram.quantile(0.50):.3f}, "
                    f"p99 {histogram.quantile(0.99):.3f}, "
                    f"max {histogram.max:.3f} ({histogram.count} acks)"
                )
    else:
        lines.append("  acks 0")
    return "\n".join(lines)


def write_report_json(report: LoadgenReport, path: str) -> None:
    with open(path, "w", encoding="utf-8") as stream:
        json.dump(report.to_document(), stream, indent=2, sort_keys=True)
        stream.write("\n")
