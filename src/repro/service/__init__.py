"""Stand-alone asyncio AP port-service.

This package turns the simulator's AP-side pieces into a deployable
process: live Port Messages and keep-alive refreshes arrive over real
UDP sockets, land in N-way sharded :class:`~repro.ap.port_table.ClientUdpPortTable`
instances (one owning task per shard — no locks), TTL expiry runs on a
hierarchical timing wheel instead of per-scan table walks, and a
per-DTIM loop batches Algorithm 1 flag computation against a
trace-replaying broadcast feed. A companion load generator replays the
scenario catalog as thousands of loopback clients to exercise it.

Entry points: ``repro serve`` / ``repro loadgen`` (see :mod:`repro.cli`)
or :func:`run_service` / :func:`run_loadgen` directly.
"""

from repro.service.wire import (
    Ack,
    KeepAlive,
    PortReport,
    decode_message,
    encode_ack,
    encode_keep_alive,
    encode_message,
    encode_port_report,
    peek_route,
    shard_index,
)
from repro.service.ttl_wheel import TtlWheel
from repro.service.shard import PortShard, ShardCounters
from repro.service.feed import BroadcastFrameFeed
from repro.service.server import PortService, ServiceConfig, run_service
from repro.service.loadgen import (
    LoadgenConfig,
    LoadgenReport,
    run_loadgen,
    run_loadgen_async,
)

__all__ = [
    "Ack",
    "KeepAlive",
    "PortReport",
    "decode_message",
    "encode_ack",
    "encode_keep_alive",
    "encode_message",
    "encode_port_report",
    "peek_route",
    "shard_index",
    "TtlWheel",
    "PortShard",
    "ShardCounters",
    "BroadcastFrameFeed",
    "PortService",
    "ServiceConfig",
    "run_service",
    "LoadgenConfig",
    "LoadgenReport",
    "run_loadgen",
    "run_loadgen_async",
]
