"""One shard of the port-service: tables, TTL wheel, ingress queue.

A shard is plain synchronous state owned by exactly one asyncio task
(the server spawns one worker per shard), so none of this needs locks:
the ingest callback appends raw datagrams to the shard's bounded queue
on the loop thread, and the owning worker drains them in batches.

Backpressure is drop-oldest: when the queue is full the *oldest* raw
datagram is discarded, because a fresher report from the same client
supersedes it anyway — exactly the replacement semantics of the
underlying :class:`~repro.ap.port_table.ClientUdpPortTable`.

ACKs follow a drained-ACK fast path: during a drain the shard only
*records* the latest ack-worthy sequence per client, and emits the
coalesced ACKs once the queue is empty. Under load this collapses an
ACK per message into an ACK per client per batch.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.ap.port_table import ClientUdpPortTable, ExpiredEntry
from repro.errors import FrameDecodeError, PortTableError
from repro.obs.hdr import HdrHistogram
from repro.service import wire
from repro.service.ttl_wheel import TtlWheel

#: (raw datagram, sender address, receive timestamp) as queued by the
#: ingest callback. The timestamp is the service clock at recvfrom
#: (``None`` for callers that don't track one, e.g. benchmarks).
Ingress = Tuple[bytes, Tuple[str, int], Optional[float]]
#: ``send(payload, addr)`` — the server binds this to the UDP transport.
AckSink = Callable[[bytes, Tuple[str, int]], None]


def _latency_histogram() -> HdrHistogram:
    # Milliseconds, 1 µs resolution floor up to a minute — anything
    # above that is a stall the exact max still captures.
    return HdrHistogram(min_value=1e-3, max_value=6e4, sub_count=32)


@dataclass
class ShardCounters:
    """Monotonic per-shard counters, pulled into the metrics registry."""

    reports: int = 0
    keepalives: int = 0
    acks_sent: int = 0
    #: Structurally valid messages refused by protocol/table validation.
    rejected: int = 0
    #: Undecodable datagrams (truncated, bad magic, bad counts).
    garbage: int = 0
    #: Raw datagrams discarded by drop-oldest backpressure.
    drops: int = 0
    expirations: int = 0
    #: Unexpected exceptions inside the worker — always zero in a
    #: healthy service; the smoke job asserts on it.
    errors: int = 0


class PortShard:
    """Sharded port-table state plus its expiry wheel and ingress queue."""

    def __init__(
        self,
        index: int,
        ttl_s: float = 30.0,
        queue_capacity: int = 4096,
        wheel_granularity_s: float = 0.25,
        start: float = 0.0,
    ) -> None:
        self.index = index
        self.ttl_s = ttl_s
        self.queue_capacity = queue_capacity
        self.counters = ShardCounters()
        #: One port table per BSS this shard fronts (AIDs are only
        #: unique within a BSS; tables are created on first report).
        self.tables: Dict[int, ClientUdpPortTable] = {}
        self.wheel = TtlWheel(granularity_s=wheel_granularity_s, start=start)
        self.queue: Deque[Ingress] = deque()
        #: Ingress latency distributions (milliseconds; see the ledger
        #: PR): time queued before the worker drained a datagram, wall
        #: cost of each non-empty drain batch, and receive-to-ACK-
        #: emission latency for ack-worthy messages.
        self.queue_wait_ms = _latency_histogram()
        self.drain_batch_ms = _latency_histogram()
        self.ack_latency_ms = _latency_histogram()
        #: (bss, aid) -> MAC that owns the AID; a report for a bound
        #: AID from a different MAC is rejected, not silently stolen.
        self._mac_by_client: Dict[Tuple[int, int], bytes] = {}

    # -- ingest (runs on the loop thread, must stay cheap) -------------

    def offer(
        self,
        data: bytes,
        addr: Tuple[str, int],
        at: Optional[float] = None,
    ) -> None:
        """Queue one raw datagram, dropping the oldest when full.

        ``at`` is the service-clock receive time (the server stamps one
        per recvfrom batch); latency histograms are skipped when it is
        omitted, so timestamp-less callers pay nothing extra.
        """
        if len(self.queue) >= self.queue_capacity:
            self.queue.popleft()
            self.counters.drops += 1
        self.queue.append((data, addr, at))

    @property
    def depth(self) -> int:
        return len(self.queue)

    # -- draining (runs on the owning worker task) ---------------------

    def drain(self, now: float, ack_sink: Optional[AckSink] = None) -> int:
        """Decode and apply every queued datagram; returns the count.

        Coalesced ACKs go out after the queue is empty (the drained-ACK
        fast path), keyed by client so only the latest sequence per
        client in the batch is confirmed.
        """
        processed = 0
        pending_acks: Dict[
            Tuple[int, int], Tuple[bytes, Tuple[str, int], Optional[float]]
        ] = {}
        popleft = self.queue.popleft
        queue_wait = self.queue_wait_ms.record
        batch_start = perf_counter()
        while self.queue:
            data, addr, received_at = popleft()
            processed += 1
            if received_at is not None:
                queue_wait(max(0.0, (now - received_at) * 1e3))
            try:
                message = wire.decode_message(data)
            except FrameDecodeError:
                self.counters.garbage += 1
                continue
            try:
                self._apply(message, now, addr, pending_acks, received_at)
            except Exception:
                self.counters.errors += 1
        if ack_sink is not None:
            for payload, addr, received_at in pending_acks.values():
                ack_sink(payload, addr)
                self.counters.acks_sent += 1
                if received_at is not None:
                    # Service time advanced by the drain's own wall
                    # cost since ``now`` was stamped; fold it in so
                    # the coalescing delay is visible in the tail.
                    elapsed = perf_counter() - batch_start
                    self.ack_latency_ms.record(
                        max(0.0, (now - received_at + elapsed) * 1e3)
                    )
        if processed:
            self.drain_batch_ms.record((perf_counter() - batch_start) * 1e3)
        return processed

    def _apply(
        self,
        message: wire.Message,
        now: float,
        addr: Tuple[str, int],
        pending_acks: Dict[
            Tuple[int, int], Tuple[bytes, Tuple[str, int], Optional[float]]
        ],
        received_at: Optional[float] = None,
    ) -> None:
        if message.msg_type == wire.MSG_ACK:
            # Clients never ack the server; count it as garbage-adjacent
            # rejection rather than an error.
            self.counters.rejected += 1
            return
        client = (message.bss, message.aid)
        status = wire.ACK_OK
        if message.msg_type == wire.MSG_PORT_REPORT:
            owner = self._mac_by_client.get(client)
            if owner is not None and owner != message.mac:
                self.counters.rejected += 1
                status = wire.ACK_REJECTED
            else:
                try:
                    self._table_for(message.bss).update_client(
                        message.aid, message.ports, now=now
                    )
                except PortTableError:
                    self.counters.rejected += 1
                    status = wire.ACK_REJECTED
                else:
                    self._mac_by_client[client] = message.mac
                    self.wheel.schedule(client, now + self.ttl_s)
                    self.counters.reports += 1
        else:  # keep-alive
            table = self.tables.get(message.bss)
            if (
                table is None
                or self._mac_by_client.get(client) != message.mac
                or not table.touch(message.aid, now)
            ):
                # Expired (or never-seen) client: tell it to re-report.
                self.counters.rejected += 1
                status = wire.ACK_UNKNOWN_CLIENT
            else:
                self.wheel.schedule(client, now + self.ttl_s)
                self.counters.keepalives += 1
        if message.want_ack:
            pending_acks[client] = (
                wire.encode_ack(
                    message.bss, message.aid, message.mac, message.seq, status
                ),
                addr,
                received_at,
            )

    def _table_for(self, bss: int) -> ClientUdpPortTable:
        table = self.tables.get(bss)
        if table is None:
            table = self.tables[bss] = ClientUdpPortTable()
        return table

    # -- expiry --------------------------------------------------------

    def expire(self, now: float) -> List[Tuple[int, ExpiredEntry]]:
        """Advance the wheel; returns ``(bss, entry)`` per expired client."""
        expired: List[Tuple[int, ExpiredEntry]] = []
        for bss, aid in self.wheel.advance(now):
            table = self.tables.get(bss)
            if table is None:
                continue
            updated = table.updated_at(aid)
            if updated is None:
                self._mac_by_client.pop((bss, aid), None)
                continue
            deadline = updated + self.ttl_s
            if deadline > now:
                # Refreshed through a path that did not re-arm the
                # wheel; push the entry out to its true deadline.
                self.wheel.schedule((bss, aid), deadline)
                continue
            entry = ExpiredEntry(
                aid=aid, ports=table.ports_for_client(aid), updated_at=updated
            )
            table.remove_client(aid)
            table.stats.expirations += 1
            self._mac_by_client.pop((bss, aid), None)
            self.counters.expirations += 1
            expired.append((bss, entry))
        return expired

    # -- introspection -------------------------------------------------

    @property
    def client_count(self) -> int:
        return sum(table.client_count for table in self.tables.values())

    @property
    def pair_count(self) -> int:
        return sum(len(table) for table in self.tables.values())

    def latency_histograms(self) -> Dict[str, HdrHistogram]:
        """The shard's latency distributions, by exported series name."""
        return {
            "queue_wait_ms": self.queue_wait_ms,
            "drain_batch_ms": self.drain_batch_ms,
            "ack_latency_ms": self.ack_latency_ms,
        }

    def snapshot(self) -> Dict[str, object]:
        """JSON-friendly state for the final flush / health endpoint."""
        return {
            "shard": self.index,
            "clients": self.client_count,
            "pairs": self.pair_count,
            "bss_tables": len(self.tables),
            "queue_depth": self.depth,
            "wheel_pending": len(self.wheel),
            "counters": dict(vars(self.counters)),
            "latency": {
                name: histogram.to_dict()
                for name, histogram in self.latency_histograms().items()
            },
        }
