"""The stand-alone async AP port-service.

This is HIDE's AP-side state machine — the Client UDP Port Table plus
Algorithm 1 — lifted out of the discrete-event simulator and run as a
live ``asyncio`` UDP service:

* a raw nonblocking socket on ``loop.add_reader`` ingests port reports
  and keep-alives; each readiness wake-up drains the kernel queue in a
  tight ``recvfrom`` batch (hundreds of datagrams per selector trip —
  far cheaper than asyncio's per-datagram protocol path), and the
  per-datagram work is only routing: magic check + shard hash on
  MAC/AID, then an append to a bounded per-shard queue with
  drop-oldest backpressure;
* N shard workers (one task per :class:`~repro.service.shard.PortShard`)
  decode strictly, apply table semantics, arm the TTL wheel, and emit
  coalesced ACKs once their queue drains;
* a DTIM task runs Algorithm 1 (`repro.ap.flags`) every DTIM interval
  against a scenario-driven broadcast-frame feed, across every shard;
* an expiry task advances the hierarchical TTL wheels, replacing the
  sim's per-scan ``expire_older_than``;
* the existing obs stack provides the ops surface: a
  :class:`~repro.obs.server.MetricsServer` (``/metrics`` + ``/healthz``)
  over a pull-collected registry, exporting reports/s, flags/s, shard
  depths, expirations, and drops;
* SIGTERM/SIGINT trigger a graceful drain — ingest closes, shards
  flush, and a final-state JSON snapshot is written.
"""

from __future__ import annotations

import asyncio
import json
import signal
import socket
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ap.flags import compute_broadcast_flags
from repro.errors import FrameDecodeError, ServiceError
from repro.obs.hdr import HdrHistogram, QUANTILE_LABELS
from repro.obs.metrics import MetricsRegistry
from repro.service import wire
from repro.service.feed import BroadcastFrameFeed
from repro.service.shard import PortShard

FINAL_STATE_SCHEMA = "repro-service-state/v1"


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 0
    shards: int = 4
    ttl_s: float = 30.0
    queue_capacity: int = 8192
    #: Beacon interval × DTIM period; the paper's AP beacons at 102.4 ms.
    dtim_interval_s: float = 0.1024
    #: Scenario feeding the per-DTIM broadcast buffer.
    scenario: str = "Classroom"
    feed_seed: Optional[int] = None
    feed_pool: int = 2048
    #: TTL wheel sweep cadence (also its granularity).
    expiry_sweep_s: float = 0.25
    #: Port for the /metrics + /healthz endpoint (None = no endpoint,
    #: 0 = ephemeral).
    metrics_port: Optional[int] = None
    #: Auto-stop after this many seconds (None = run until signalled).
    duration_s: Optional[float] = None
    #: Write ``{"service_port": ..., "metrics_port": ...}`` here once
    #: bound — how scripts and CI discover ephemeral ports.
    port_file: Optional[str] = None
    #: Where the shutdown flush lands (None = skip the file).
    final_state_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ServiceError(f"need at least one shard: {self.shards}")
        if self.ttl_s <= 0:
            raise ServiceError(f"TTL must be positive: {self.ttl_s}")
        if self.queue_capacity < 1:
            raise ServiceError(
                f"queue capacity must be positive: {self.queue_capacity}"
            )
        if self.dtim_interval_s <= 0:
            raise ServiceError(
                f"DTIM interval must be positive: {self.dtim_interval_s}"
            )


#: recvfrom calls per readiness wake-up; level-triggered selectors
#: re-fire immediately if the kernel queue is still non-empty.
_RECV_BATCH = 512


class PortService:
    """Lifecycle owner: socket, shard workers, DTIM + expiry tasks."""

    def __init__(
        self,
        config: ServiceConfig,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self.registry = registry if registry is not None else MetricsRegistry()
        self.shards: List[PortShard] = [
            PortShard(
                index=i,
                ttl_s=config.ttl_s,
                queue_capacity=config.queue_capacity,
                wheel_granularity_s=config.expiry_sweep_s,
                start=0.0,
            )
            for i in range(config.shards)
        ]
        self.feed: Optional[BroadcastFrameFeed] = None
        self.wake_events: List[asyncio.Event] = []
        self.datagrams_received = 0
        self.garbage_datagrams = 0
        self.socket_errors = 0
        self.flags_computed_total = 0
        self.algorithm1_runs = 0
        self.algorithm1_wall_s = 0.0
        self.expired_total = 0
        self._start_wall = 0.0
        self._epoch = 0.0
        self._sock: Optional[socket.socket] = None
        self._tasks: List[asyncio.Task] = []
        self._stop_event: Optional[asyncio.Event] = None
        self._metrics_server = None
        self._rate_sample: Tuple[float, int, int] = (0.0, 0, 0)
        self._last_rates: Tuple[float, float] = (0.0, 0.0)

    # -- clock ---------------------------------------------------------

    def now(self) -> float:
        """Service-relative monotonic seconds (wheel + table time)."""
        return time.monotonic() - self._epoch

    # -- lifecycle -----------------------------------------------------

    @property
    def server_port(self) -> int:
        if self._sock is None:
            return self.config.port
        return self._sock.getsockname()[1]

    @property
    def metrics_port(self) -> Optional[int]:
        if self._metrics_server is None:
            return None
        return self._metrics_server.port

    async def start(self) -> "PortService":
        if self._sock is not None:
            return self
        loop = asyncio.get_event_loop()
        self._epoch = time.monotonic()
        self._start_wall = time.time()
        self._stop_event = asyncio.Event()
        self.wake_events = [asyncio.Event() for _ in self.shards]
        self.feed = BroadcastFrameFeed.from_scenario(
            self.config.scenario,
            self.config.dtim_interval_s,
            seed=self.config.feed_seed,
            max_pool=self.config.feed_pool,
        )
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        # Fat buffers: the loadgen bursts faster than a Python loop
        # iteration, and the kernel queue is the first backpressure tier.
        for opt in (socket.SO_RCVBUF, socket.SO_SNDBUF):
            try:
                sock.setsockopt(socket.SOL_SOCKET, opt, 4 << 20)
            except OSError:  # pragma: no cover - platform-dependent
                pass
        sock.setblocking(False)
        sock.bind((self.config.host, self.config.port))
        self._sock = sock
        loop.add_reader(sock.fileno(), self._on_readable)
        for shard in self.shards:
            self._tasks.append(
                loop.create_task(self._shard_worker(shard))
            )
        self._tasks.append(loop.create_task(self._dtim_loop()))
        self._tasks.append(loop.create_task(self._expiry_loop()))
        if self.config.metrics_port is not None:
            from repro.obs.server import MetricsServer

            self._metrics_server = MetricsServer(
                registry=self.registry,
                collect_fn=self.collect_into_registry,
                health_fn=self.health,
                host=self.config.host,
                port=self.config.metrics_port,
            )
            self._metrics_server.start()
        if self.config.port_file:
            with open(self.config.port_file, "w", encoding="utf-8") as stream:
                json.dump(
                    {
                        "service_port": self.server_port,
                        "metrics_port": self.metrics_port,
                    },
                    stream,
                )
                stream.write("\n")
        return self

    async def stop(self) -> None:
        if self._sock is None:
            return
        # 1. Stop ingest so the drain below is final.
        loop = asyncio.get_event_loop()
        loop.remove_reader(self._sock.fileno())
        self._on_readable()  # pull whatever the kernel still holds
        sock, self._sock = self._sock, None
        # 2. Give every worker one last wake-up, then cancel the loops.
        for event in self.wake_events:
            event.set()
        await asyncio.sleep(0)
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        # 3. Final synchronous drain of anything still queued.
        now = self.now()
        for shard in self.shards:
            shard.drain(now, ack_sink=None)
        sock.close()
        # 4. Flush final state, then tear down the ops surface.
        document = self.final_state()
        if self.config.final_state_path:
            with open(self.config.final_state_path, "w", encoding="utf-8") as stream:
                json.dump(document, stream, indent=2, sort_keys=True)
                stream.write("\n")
        if self._metrics_server is not None:
            self._metrics_server.stop()
            self._metrics_server = None

    def request_stop(self) -> None:
        """Signal-safe stop trigger (wired to SIGTERM/SIGINT)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve(self) -> Dict[str, object]:
        """Start, run until signalled (or ``duration_s``), stop.

        Returns the final-state document.
        """
        await self.start()
        loop = asyncio.get_event_loop()
        installed: List[int] = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_stop)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-main thread or platform without signal support
        try:
            assert self._stop_event is not None
            if self.config.duration_s is not None:
                try:
                    await asyncio.wait_for(
                        self._stop_event.wait(), timeout=self.config.duration_s
                    )
                except asyncio.TimeoutError:
                    pass
            else:
                await self._stop_event.wait()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.stop()
        return self.final_state()

    # -- ingest (runs on the loop thread, must stay cheap) -------------

    def _on_readable(self) -> None:
        """Drain the kernel receive queue in one batched pass."""
        sock = self._sock
        if sock is None:  # pragma: no cover - close race
            return
        shards = self.shards
        nshards = len(shards)
        wake = self.wake_events
        recvfrom = sock.recvfrom
        peek = wire.peek_route
        shard_of = wire.shard_index
        received = 0
        # One timestamp per readiness wake-up, not per datagram: the
        # batch drains in well under a millisecond, and the latency
        # histograms' sub-bucket resolution is coarser than the skew.
        received_at = self.now()
        for _ in range(_RECV_BATCH):
            try:
                data, addr = recvfrom(2048)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:  # pragma: no cover - kernel-dependent
                self.socket_errors += 1
                break
            received += 1
            try:
                bss, aid, mac = peek(data)
            except FrameDecodeError:
                self.garbage_datagrams += 1
                continue
            shard = shards[shard_of(bss, aid, mac, nshards)]
            shard.offer(data, addr, at=received_at)
            event = wake[shard.index]
            if not event.is_set():
                event.set()
        self.datagrams_received += received

    # -- workers -------------------------------------------------------

    async def _shard_worker(self, shard: PortShard) -> None:
        event = self.wake_events[shard.index]
        send = self._send_ack
        while True:
            await event.wait()
            event.clear()
            shard.drain(self.now(), ack_sink=send)
            # Yield so the receive callback can refill before we check
            # again; anything that arrived mid-drain re-set the event.
            await asyncio.sleep(0)

    def _send_ack(self, payload: bytes, addr) -> None:
        sock = self._sock
        if sock is None:
            return
        try:
            sock.sendto(payload, addr)
        except (BlockingIOError, InterruptedError):
            pass  # send buffer full: the client re-probes on its next ack
        except OSError:  # pragma: no cover - kernel-dependent
            self.socket_errors += 1

    async def _dtim_loop(self) -> None:
        """Batched per-DTIM flag computation across every shard."""
        assert self.feed is not None
        interval = self.config.dtim_interval_s
        next_tick = self.now() + interval
        while True:
            delay = next_tick - self.now()
            if delay > 0:
                await asyncio.sleep(delay)
            next_tick += interval
            frames = self.feed.next_batch()
            start = time.perf_counter()
            flagged = 0
            if frames:
                for shard in self.shards:
                    for table in shard.tables.values():
                        flagged += len(compute_broadcast_flags(frames, table))
            self.algorithm1_wall_s += time.perf_counter() - start
            self.algorithm1_runs += 1
            self.flags_computed_total += flagged

    async def _expiry_loop(self) -> None:
        interval = self.config.expiry_sweep_s
        while True:
            await asyncio.sleep(interval)
            now = self.now()
            for shard in self.shards:
                self.expired_total += len(shard.expire(now))

    # -- aggregation / ops surface -------------------------------------

    def totals(self) -> Dict[str, int]:
        counters = [shard.counters for shard in self.shards]
        return {
            "datagrams_received": self.datagrams_received,
            "garbage": self.garbage_datagrams + sum(c.garbage for c in counters),
            "reports": sum(c.reports for c in counters),
            "keepalives": sum(c.keepalives for c in counters),
            "acks_sent": sum(c.acks_sent for c in counters),
            "rejected": sum(c.rejected for c in counters),
            "drops": sum(c.drops for c in counters),
            "expirations": sum(c.expirations for c in counters),
            "shard_errors": sum(c.errors for c in counters),
            "socket_errors": self.socket_errors,
            "clients": sum(shard.client_count for shard in self.shards),
            "pairs": sum(shard.pair_count for shard in self.shards),
            "flags_computed": self.flags_computed_total,
            "algorithm1_runs": self.algorithm1_runs,
        }

    def merged_latency(self) -> Dict[str, HdrHistogram]:
        """Each latency distribution folded across every shard."""
        merged: Dict[str, HdrHistogram] = {}
        for name in ("queue_wait_ms", "drain_batch_ms", "ack_latency_ms"):
            merged[name] = HdrHistogram.merged(
                shard.latency_histograms()[name] for shard in self.shards
            )
        return merged

    def _windowed_rates(self) -> Tuple[float, float]:
        """(reports/s, flags/s) since the previous rate sample."""
        now = time.monotonic()
        totals = self.totals()
        messages = totals["reports"] + totals["keepalives"]
        flags = totals["flags_computed"]
        last_t, last_messages, last_flags = self._rate_sample
        self._rate_sample = (now, messages, flags)
        if last_t == 0.0 or now <= last_t:
            return self._last_rates
        window = now - last_t
        self._last_rates = (
            (messages - last_messages) / window,
            (flags - last_flags) / window,
        )
        return self._last_rates

    def collect_into_registry(self) -> None:
        """Pull-collect shard counters into the metrics registry (the
        ``/metrics`` scrape path)."""
        registry = self.registry
        totals = self.totals()
        help_text = {
            "reports": "Port reports applied",
            "keepalives": "Keep-alive refreshes applied",
            "acks_sent": "Coalesced ACKs sent (drained-ACK fast path)",
            "rejected": "Messages refused by validation",
            "drops": "Datagrams discarded by drop-oldest backpressure",
            "garbage": "Undecodable datagrams",
            "expirations": "Clients aged out by the TTL wheel",
            "shard_errors": "Unexpected shard worker exceptions",
            "datagrams_received": "Raw datagrams received",
            "flags_computed": "Broadcast flags set by Algorithm 1",
            "algorithm1_runs": "Per-DTIM Algorithm 1 passes",
        }
        for key, text in help_text.items():
            registry.counter(f"service_{key}_total", text).set_total(totals[key])
        registry.gauge(
            "service_clients", "Clients with live port-table entries"
        ).set(totals["clients"])
        registry.gauge(
            "service_table_pairs", "(port, AID) pairs across all shards"
        ).set(totals["pairs"])
        registry.gauge(
            "service_uptime_seconds", "Seconds since the service started"
        ).set(self.now())
        for shard in self.shards:
            labels = {"shard": str(shard.index)}
            registry.gauge(
                "service_shard_depth", "Ingress queue depth", labels
            ).set(shard.depth)
            registry.gauge(
                "service_shard_clients", "Clients owned by this shard", labels
            ).set(shard.client_count)
        reports_rate, flags_rate = self._windowed_rates()
        registry.gauge(
            "service_reports_per_second",
            "Port messages applied per second (scrape-to-scrape window)",
        ).set(reports_rate)
        registry.gauge(
            "service_flags_per_second",
            "Broadcast flags computed per second (scrape-to-scrape window)",
        ).set(flags_rate)
        latency_help = {
            "queue_wait_ms": "Ingress-to-drain queue wait (HDR, ms)",
            "drain_batch_ms": "Wall cost per non-empty drain batch (HDR, ms)",
            "ack_latency_ms": "Receive-to-ACK-emission latency (HDR, ms)",
        }
        for name, histogram in self.merged_latency().items():
            text = latency_help[name]
            registry.counter(f"service_{name}_count_total", text).set_total(
                histogram.count
            )
            if histogram.count == 0:
                continue
            for label, q in QUANTILE_LABELS:
                registry.gauge(
                    f"service_{name}", text, {"quantile": label}
                ).set(histogram.quantile(q))
            registry.gauge(
                f"service_{name}", text, {"quantile": "max"}
            ).set(histogram.max)

    def health(self) -> Dict[str, object]:
        totals = self.totals()
        return {
            "service": "repro-port-service",
            "scenario": self.config.scenario,
            "shards": len(self.shards),
            "clients": totals["clients"],
            "uptime_s": round(self.now(), 3),
            "shard_errors": totals["shard_errors"],
        }

    def final_state(self) -> Dict[str, object]:
        """The shutdown flush: totals plus per-shard snapshots."""
        return {
            "schema": FINAL_STATE_SCHEMA,
            "started_unix": self._start_wall,
            "uptime_s": self.now(),
            "config": {
                "host": self.config.host,
                "port": self.server_port,
                "shards": self.config.shards,
                "ttl_s": self.config.ttl_s,
                "dtim_interval_s": self.config.dtim_interval_s,
                "scenario": self.config.scenario,
            },
            "totals": self.totals(),
            "shards": [shard.snapshot() for shard in self.shards],
            "feed": {
                "batches_served": self.feed.batches_served if self.feed else 0,
                "frames_served": self.feed.frames_served if self.feed else 0,
            },
        }


def run_service(config: ServiceConfig) -> Dict[str, object]:
    """Blocking entry point for ``repro serve``."""
    service = PortService(config)
    return asyncio.run(service.serve())
