"""Wire codec for the stand-alone AP port-service.

The sim speaks 802.11 management frames (`repro.dot11.management`); the
live service speaks plain UDP datagrams over real sockets, so it needs
its own compact framing. Three message types cover the whole HIDE
client protocol:

* **port report** — a client's full open-port set (the UDP Port
  Message of paper §III-B), replacing whatever the AP stored before.
* **keep-alive** — refreshes the client's TTL without re-sending ports
  (the recovery protocol's cheap heartbeat).
* **ack** — server → client confirmation carrying the echoed sequence
  number and a status code; clients use ``ACK_UNKNOWN_CLIENT`` as the
  signal to re-send a full report after an expiry.

Layout (big-endian), fixed 18-byte header on every message::

    magic   2s   b"HI"
    version B    1
    type    B    1=report 2=keep-alive 3=ack
    flags   B    bit0 = want_ack
    bss     B    BSS index (a service instance can front >1 BSS, since
                 AIDs are only unique within one)
    aid     H    association ID, 1..2007
    seq     I    per-client sequence number
    mac     6s   client MAC octets

then per type::

    report     count:H then count ports (H each), 1..MAX_PORTS_PER_REPORT
    keep-alive (nothing)
    ack        status:B

Decoding is strict: bad magic/version/type, truncated bodies, trailing
garbage, out-of-range ports, a zero or oversized port count — all raise
:class:`~repro.errors.FrameDecodeError`. The one exception is the
routing fast path :func:`peek_route`, which the ingest callback uses to
pick a shard without paying for a full decode.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import FrozenSet, Tuple, Union
from zlib import crc32

from repro.errors import FrameDecodeError, FrameEncodeError

WIRE_MAGIC = b"HI"
WIRE_VERSION = 1

MSG_PORT_REPORT = 1
MSG_KEEP_ALIVE = 2
MSG_ACK = 3

FLAG_WANT_ACK = 0x01

ACK_OK = 0
ACK_REJECTED = 1
ACK_UNKNOWN_CLIENT = 2

#: Ceiling on ports per report. The paper's delay analysis tops out at
#: 50 open ports per client; 64 keeps every report inside one datagram.
MAX_PORTS_PER_REPORT = 64

_HEADER = struct.Struct(">2sBBBBHI6s")
_COUNT = struct.Struct(">H")
_STATUS = struct.Struct(">B")

HEADER_BYTES = _HEADER.size  # 18


@dataclass(frozen=True)
class PortReport:
    """A client's full open-port set (replaces the stored set)."""

    bss: int
    aid: int
    mac: bytes
    seq: int
    ports: FrozenSet[int]
    want_ack: bool = False

    msg_type = MSG_PORT_REPORT


@dataclass(frozen=True)
class KeepAlive:
    """TTL refresh without a port-set change."""

    bss: int
    aid: int
    mac: bytes
    seq: int
    want_ack: bool = False

    msg_type = MSG_KEEP_ALIVE


@dataclass(frozen=True)
class Ack:
    """Server confirmation for one report/keep-alive sequence number."""

    bss: int
    aid: int
    mac: bytes
    seq: int
    status: int = ACK_OK

    msg_type = MSG_ACK


Message = Union[PortReport, KeepAlive, Ack]


def _check_identity(bss: int, aid: int, mac: bytes, seq: int) -> None:
    if not 0 <= bss <= 0xFF:
        raise FrameEncodeError(f"BSS index out of range: {bss}")
    if not 0 <= aid <= 0xFFFF:
        raise FrameEncodeError(f"AID does not fit the wire field: {aid}")
    if len(mac) != 6:
        raise FrameEncodeError(f"MAC needs 6 octets, got {len(mac)}")
    if not 0 <= seq <= 0xFFFFFFFF:
        raise FrameEncodeError(f"sequence out of range: {seq}")


def _header(msg_type: int, flags: int, bss: int, aid: int, seq: int, mac: bytes) -> bytes:
    return _HEADER.pack(WIRE_MAGIC, WIRE_VERSION, msg_type, flags, bss, aid, seq, mac)


def encode_port_report(
    bss: int, aid: int, mac: bytes, seq: int, ports, want_ack: bool = False
) -> bytes:
    """Serialize one port report; ports are deduplicated and sorted."""
    _check_identity(bss, aid, mac, seq)
    unique = sorted(set(ports))
    if not unique:
        raise FrameEncodeError("a port report needs at least one port")
    if len(unique) > MAX_PORTS_PER_REPORT:
        raise FrameEncodeError(
            f"too many ports in one report: {len(unique)} > {MAX_PORTS_PER_REPORT}"
        )
    for port in unique:
        if not 0 < port <= 0xFFFF:
            raise FrameEncodeError(f"UDP port out of range: {port}")
    flags = FLAG_WANT_ACK if want_ack else 0
    body = _COUNT.pack(len(unique)) + struct.pack(f">{len(unique)}H", *unique)
    return _header(MSG_PORT_REPORT, flags, bss, aid, seq, mac) + body


def encode_keep_alive(
    bss: int, aid: int, mac: bytes, seq: int, want_ack: bool = False
) -> bytes:
    _check_identity(bss, aid, mac, seq)
    flags = FLAG_WANT_ACK if want_ack else 0
    return _header(MSG_KEEP_ALIVE, flags, bss, aid, seq, mac)


def encode_ack(bss: int, aid: int, mac: bytes, seq: int, status: int = ACK_OK) -> bytes:
    _check_identity(bss, aid, mac, seq)
    if not 0 <= status <= 0xFF:
        raise FrameEncodeError(f"ack status out of range: {status}")
    return _header(MSG_ACK, 0, bss, aid, seq, mac) + _STATUS.pack(status)


def encode_message(message: Message) -> bytes:
    """Serialize any of the three message dataclasses."""
    if isinstance(message, PortReport):
        return encode_port_report(
            message.bss, message.aid, message.mac, message.seq,
            message.ports, message.want_ack,
        )
    if isinstance(message, KeepAlive):
        return encode_keep_alive(
            message.bss, message.aid, message.mac, message.seq, message.want_ack
        )
    if isinstance(message, Ack):
        return encode_ack(
            message.bss, message.aid, message.mac, message.seq, message.status
        )
    raise FrameEncodeError(f"not a wire message: {type(message).__name__}")


def decode_message(data: bytes) -> Message:
    """Parse one datagram; raises :class:`FrameDecodeError` on anything
    that is not a well-formed v1 message."""
    if len(data) < HEADER_BYTES:
        raise FrameDecodeError(
            f"datagram shorter than the {HEADER_BYTES}-byte header: {len(data)}"
        )
    magic, version, msg_type, flags, bss, aid, seq, mac = _HEADER.unpack_from(data)
    if magic != WIRE_MAGIC:
        raise FrameDecodeError(f"bad magic: {magic!r}")
    if version != WIRE_VERSION:
        raise FrameDecodeError(f"unsupported wire version: {version}")
    want_ack = bool(flags & FLAG_WANT_ACK)
    body = data[HEADER_BYTES:]
    if msg_type == MSG_PORT_REPORT:
        if len(body) < _COUNT.size:
            raise FrameDecodeError("port report truncated before the count")
        (count,) = _COUNT.unpack_from(body)
        if not 0 < count <= MAX_PORTS_PER_REPORT:
            raise FrameDecodeError(
                f"port count out of range (1..{MAX_PORTS_PER_REPORT}): {count}"
            )
        expected = _COUNT.size + 2 * count
        if len(body) != expected:
            raise FrameDecodeError(
                f"port report length mismatch: {len(body)} != {expected}"
            )
        ports = struct.unpack_from(f">{count}H", body, _COUNT.size)
        for port in ports:
            if port == 0:
                raise FrameDecodeError("UDP port 0 in report")
        return PortReport(
            bss=bss, aid=aid, mac=mac, seq=seq,
            ports=frozenset(ports), want_ack=want_ack,
        )
    if msg_type == MSG_KEEP_ALIVE:
        if body:
            raise FrameDecodeError(
                f"keep-alive carries {len(body)} unexpected body bytes"
            )
        return KeepAlive(bss=bss, aid=aid, mac=mac, seq=seq, want_ack=want_ack)
    if msg_type == MSG_ACK:
        if len(body) != _STATUS.size:
            raise FrameDecodeError(f"ack body must be 1 byte, got {len(body)}")
        (status,) = _STATUS.unpack_from(body)
        return Ack(bss=bss, aid=aid, mac=mac, seq=seq, status=status)
    raise FrameDecodeError(f"unknown message type: {msg_type}")


_ROUTE = struct.Struct(">BH")  # bss, aid at offset 5 (after magic/version/type/flags)


def peek_route(data: bytes) -> Tuple[int, int, bytes]:
    """The ingest fast path: ``(bss, aid, mac)`` without a full decode.

    Validates just enough (length, magic, version) to route the
    datagram to a shard; the shard worker does the strict decode off
    the receive callback. Raises :class:`FrameDecodeError` on datagrams
    that cannot possibly be v1 messages.
    """
    if len(data) < HEADER_BYTES or data[:2] != WIRE_MAGIC or data[2] != WIRE_VERSION:
        raise FrameDecodeError("not a v1 service datagram")
    bss, aid = _ROUTE.unpack_from(data, 5)
    return bss, aid, data[12:18]


def shard_index(bss: int, aid: int, mac: bytes, shards: int) -> int:
    """Stable shard choice: hash on the client's MAC and AID.

    CRC32 of the MAC mixes the (mostly sequential) station addresses;
    the BSS index is spread with a Knuth multiplicative constant so it
    reaches the low bits (a plain shift would vanish modulo any small
    shard count), and XOR with the AID keeps pairs apart even when
    MACs collide across BSSes.
    """
    return (crc32(mac) ^ (bss * 0x9E3779B1) ^ aid) % shards
