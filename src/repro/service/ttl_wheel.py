"""A hierarchical TTL expiry wheel for port-table entries.

The sim's AP calls ``expire_older_than`` on every DTIM — an O(clients)
scan that is fine at 25 stations and ruinous at 10k. The service
instead keeps a two-level timing wheel: scheduling a deadline is O(1),
and an :meth:`advance` sweep touches only the slots the clock actually
crossed, so a mostly-alive fleet costs almost nothing per tick.

Design notes:

* **Lazy cancellation.** Refreshing a client's TTL just records the new
  deadline and appends to the new slot; the stale slot entry is
  discarded when its slot is swept (the same trick the calendar event
  queue uses). ``deadlines[key]`` is the single source of truth.
* **Two levels.** Level 0 is ``wheel_slots`` fine slots of
  ``granularity_s`` each; level 1 is ``cascade_slots`` coarse slots
  each spanning the whole level-0 horizon. Deadlines beyond both go to
  an overflow list that re-files on every coarse cascade. With the
  defaults (0.25 s × 256 ≈ 64 s fine horizon, × 64 ≈ 68 min coarse)
  every realistic keep-alive TTL lands in level 0 directly.
* **Exact expiry.** A fine slot is only swept once ``now`` has passed
  the slot's *end*, so nothing ever expires early; an entry expires at
  most one :meth:`advance` call after its deadline.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.errors import ConfigurationError


class TtlWheel:
    """Two-level timing wheel mapping keys to expiry deadlines."""

    def __init__(
        self,
        granularity_s: float = 0.25,
        wheel_slots: int = 256,
        cascade_slots: int = 64,
        start: float = 0.0,
    ) -> None:
        if granularity_s <= 0:
            raise ConfigurationError(f"granularity must be positive: {granularity_s}")
        if wheel_slots < 2 or cascade_slots < 2:
            raise ConfigurationError("both wheel levels need at least 2 slots")
        self.granularity_s = granularity_s
        self.wheel_slots = wheel_slots
        self.cascade_slots = cascade_slots
        #: key -> authoritative deadline (lazy-cancellation truth).
        self._deadlines: Dict[Hashable, float] = {}
        self._fine: List[List] = [[] for _ in range(wheel_slots)]
        self._coarse: List[List] = [[] for _ in range(cascade_slots)]
        self._overflow: List = []
        self._fine_span = granularity_s * wheel_slots
        self._coarse_span = self._fine_span * cascade_slots
        #: Absolute index of the last fully swept fine slot.
        self._fine_cursor = self._fine_index(start) - 1
        self._coarse_cursor = self._coarse_index(start)
        self._now = start

    def _fine_index(self, when: float) -> int:
        return int(when / self.granularity_s)

    def _coarse_index(self, when: float) -> int:
        return int(when / self._fine_span)

    def __len__(self) -> int:
        return len(self._deadlines)

    @property
    def now(self) -> float:
        return self._now

    def deadline_of(self, key: Hashable) -> Optional[float]:
        return self._deadlines.get(key)

    def schedule(self, key: Hashable, deadline: float) -> None:
        """(Re)arm ``key`` to expire at ``deadline``; latest call wins."""
        self._deadlines[key] = deadline
        self._file(key, deadline)

    def cancel(self, key: Hashable) -> None:
        """Disarm ``key``; its slot entries die lazily at sweep time."""
        self._deadlines.pop(key, None)

    def _file(self, key: Hashable, deadline: float) -> None:
        entry = (key, deadline)
        if deadline - self._now < self._fine_span:
            # Might still land on an already-swept absolute slot when
            # the deadline is in the past; clamp to the next sweep.
            slot = max(self._fine_index(deadline), self._fine_cursor + 1)
            self._fine[slot % self.wheel_slots].append(entry)
        elif deadline - self._now < self._coarse_span:
            self._coarse[self._coarse_index(deadline) % self.cascade_slots].append(entry)
        else:
            self._overflow.append(entry)

    def advance(self, now: float) -> List[Hashable]:
        """Sweep the clock forward; returns expired keys sorted for
        deterministic downstream events."""
        if now < self._now:
            raise ConfigurationError(
                f"wheel time went backwards: {now} < {self._now}"
            )
        self._now = now
        expired: List[Hashable] = []

        # Cascade coarse slots whose span the clock has fully entered,
        # re-filing their entries into fine slots (or back, if stale).
        target_coarse = self._coarse_index(now)
        while self._coarse_cursor < target_coarse:
            self._coarse_cursor += 1
            slot = self._coarse[self._coarse_cursor % self.cascade_slots]
            if slot:
                pending, slot[:] = slot[:], []
                for key, deadline in pending:
                    if self._deadlines.get(key) == deadline:
                        self._file(key, deadline)
            if self._overflow:
                pending, self._overflow = self._overflow, []
                for key, deadline in pending:
                    if self._deadlines.get(key) == deadline:
                        self._file(key, deadline)

        # Sweep fine slots whose entire range is in the past. Slot s
        # covers [s*g, (s+1)*g), so it is due once now >= (s+1)*g —
        # i.e. once the cursor target (the slot `now` sits in) is past s.
        target_fine = self._fine_index(now)
        while self._fine_cursor < target_fine - 1:
            self._fine_cursor += 1
            slot = self._fine[self._fine_cursor % self.wheel_slots]
            if not slot:
                continue
            pending, slot[:] = slot[:], []
            for key, deadline in pending:
                if self._deadlines.get(key) != deadline:
                    continue  # rescheduled or cancelled: stale entry
                if deadline <= now:
                    del self._deadlines[key]
                    expired.append(key)
                else:  # pragma: no cover - defensive; cannot happen today
                    self._file(key, deadline)
        expired.sort()
        return expired
