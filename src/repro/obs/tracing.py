"""Structured event tracing: JSONL spans and point events.

Two tracer implementations share one interface:

* :class:`JsonlTracer` — writes one JSON object per line, stamped with
  wall time (``perf_counter``-based, relative to tracer creation) and,
  when the caller provides it, simulation time.
* :data:`NULL_TRACER` — the default everywhere; every method is a no-op
  and ``enabled`` is False, so instrumented hot paths pay exactly one
  attribute check (``if tracer.enabled:``) when tracing is off.

Record shapes::

    {"type": "event", "name": "wakeup", "wall_time": 0.0123,
     "sim_time": 4.1, ...fields}
    {"type": "span", "name": "dtim_cycle", "wall_time": 0.0123,
     "sim_time": 4.1, "wall_duration_s": 0.0007, ...fields}

``wall_time`` is the record's start offset in seconds since the tracer
was created; ``sim_time`` is whatever clock the instrumented component
passed (omitted when None).
"""

from __future__ import annotations

import io
import json
import time
from typing import Any, Dict, IO, List, Optional, Union


class NullSpan:
    """The span returned by the null tracer: absorbs everything."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def add(self, **fields: Any) -> None:
        return None


_NULL_SPAN = NullSpan()


class NullTracer:
    """A tracer that does nothing, as cheaply as possible."""

    __slots__ = ()
    enabled = False

    def event(self, name: str, sim_time: Optional[float] = None, **fields: Any) -> None:
        return None

    def span(self, name: str, sim_time: Optional[float] = None, **fields: Any) -> NullSpan:
        return _NULL_SPAN

    def span_record(
        self,
        name: str,
        wall_duration_s: float,
        sim_time: Optional[float] = None,
        **fields: Any,
    ) -> None:
        return None

    def flush(self) -> None:
        return None

    def close(self) -> None:
        return None


NULL_TRACER = NullTracer()


class Span:
    """A context manager timing one operation for a live tracer."""

    __slots__ = ("_tracer", "_name", "_sim_time", "_fields", "_start")

    def __init__(
        self,
        tracer: "JsonlTracer",
        name: str,
        sim_time: Optional[float],
        fields: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._sim_time = sim_time
        self._fields = fields
        self._start = 0.0

    def add(self, **fields: Any) -> None:
        """Attach fields discovered mid-span (e.g. a result count)."""
        self._fields.update(fields)

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        duration = time.perf_counter() - self._start
        if exc_type is not None:
            self._fields.setdefault("error", exc_type.__name__)
        self._tracer.span_record(
            self._name, duration, sim_time=self._sim_time,
            _wall_time=self._start - self._tracer._epoch, **self._fields
        )


class JsonlTracer:
    """Writes events and spans as JSON Lines to a path or stream."""

    enabled = True

    def __init__(self, sink: Union[str, IO[str]]) -> None:
        if isinstance(sink, (str, bytes)):
            self._stream: IO[str] = open(sink, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = sink
            self._owns_stream = False
        self._epoch = time.perf_counter()
        self.records_written = 0

    # -- emit ---------------------------------------------------------

    def _write(self, record: Dict[str, Any]) -> None:
        self._stream.write(json.dumps(record, default=_jsonify) + "\n")
        self.records_written += 1

    def event(self, name: str, sim_time: Optional[float] = None, **fields: Any) -> None:
        record: Dict[str, Any] = {
            "type": "event",
            "name": name,
            "wall_time": time.perf_counter() - self._epoch,
        }
        if sim_time is not None:
            record["sim_time"] = sim_time
        record.update(fields)
        self._write(record)

    def span(self, name: str, sim_time: Optional[float] = None, **fields: Any) -> Span:
        """``with tracer.span("dtim_cycle", sim_time=now) as s: ...``"""
        return Span(self, name, sim_time, dict(fields))

    def span_record(
        self,
        name: str,
        wall_duration_s: float,
        sim_time: Optional[float] = None,
        **fields: Any,
    ) -> None:
        """Emit a completed span directly (caller already timed it)."""
        wall_time = fields.pop("_wall_time", None)
        record: Dict[str, Any] = {
            "type": "span",
            "name": name,
            "wall_time": (
                wall_time if wall_time is not None
                else time.perf_counter() - self._epoch - wall_duration_s
            ),
        }
        if sim_time is not None:
            record["sim_time"] = sim_time
        record["wall_duration_s"] = wall_duration_s
        record.update(fields)
        self._write(record)

    # -- lifecycle ----------------------------------------------------

    def flush(self) -> None:
        self._stream.flush()

    def close(self) -> None:
        if self._owns_stream and not self._stream.closed:
            self._stream.close()
        else:
            self.flush()

    def __enter__(self) -> "JsonlTracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _jsonify(value: Any) -> Any:
    """Last-resort encoder: frozensets become sorted lists, objects str."""
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    return str(value)


def read_trace_jsonl(source: Union[str, IO[str]]) -> List[Dict[str, Any]]:
    """Load every record from a JSONL trace log (blank lines skipped)."""
    records, _ = read_trace_jsonl_lenient(source, strict=True)
    return records


def read_trace_jsonl_lenient(
    source: Union[str, IO[str]], strict: bool = False
) -> "tuple[List[Dict[str, Any]], int]":
    """Load a JSONL trace, tolerating malformed lines.

    Returns ``(records, skipped)`` where ``skipped`` counts lines that
    were not valid JSON objects — typically a truncated final line from
    a run that was killed mid-write. With ``strict=True`` the first bad
    line raises ``json.JSONDecodeError`` instead (the legacy behaviour
    behind :func:`read_trace_jsonl`).
    """
    if isinstance(source, (str, bytes)):
        with open(source, "r", encoding="utf-8") as stream:
            return _read_records(stream, strict)
    return _read_records(source, strict)


def _read_records(
    stream: IO[str], strict: bool
) -> "tuple[List[Dict[str, Any]], int]":
    records: List[Dict[str, Any]] = []
    skipped = 0
    for line in stream:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if strict:
                raise
            skipped += 1
            continue
        if not isinstance(record, dict):
            if strict:
                raise json.JSONDecodeError("trace record is not an object", line, 0)
            skipped += 1
            continue
        records.append(record)
    return records, skipped


def tracer_to_string_buffer() -> "tuple[JsonlTracer, io.StringIO]":
    """A tracer writing into an in-memory buffer (tests, summaries)."""
    buffer = io.StringIO()
    return JsonlTracer(buffer), buffer
